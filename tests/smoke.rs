//! Tier-1 smoke tests: the quickstart pipeline end-to-end in seconds, so CI
//! catches pipeline breaks without running the heavy paper-shape suite.
//!
//! Covers EfficientNet-B0 on the Table-3 FAST-Large preset through every
//! stage: graph build → simulate → fuse → score → ROI, plus one tiny cached
//! parallel search.

use fast::prelude::*;

#[test]
fn quickstart_pipeline_b0_end_to_end() {
    // 1. Build: the workload graph materializes and validates.
    let w = Workload::EfficientNet(EfficientNet::B0);
    let graph = w.build(8).expect("B0 builds at batch 8");
    graph.validate().expect("well-formed graph");
    assert!(graph.total_flops() > 0);

    // 2. Simulate: the Table-3 preset schedules every op.
    let cfg = fast::arch::presets::fast_large();
    let perf = simulate(&graph, &cfg, &SimOptions::default()).expect("preset schedules");
    assert!(perf.prefusion_seconds > 0.0);
    assert!(perf.compute_seconds <= perf.prefusion_seconds * (1.0 + 1e-9));

    // 3. Fuse: never slower, never over Global-Memory capacity.
    let fused = fuse_workload(&perf, &cfg, &FusionOptions::heuristic_only());
    assert!(fused.total_seconds <= perf.prefusion_seconds * (1.0 + 1e-9));
    assert!(fused.total_seconds >= perf.compute_seconds * (1.0 - 1e-9));
    assert!(fused.peak_gm_bytes <= cfg.global_memory_bytes());

    // 4. Score: the evaluator agrees with the hand-composed pipeline.
    let evaluator = Evaluator::new(vec![w], Objective::PerfPerTdp, Budget::paper_default());
    let eval = evaluator.evaluate(&cfg, &SimOptions::default()).expect("FAST-Large is in budget");
    assert_eq!(eval.workloads[0].step_seconds.to_bits(), fused.total_seconds.to_bits());
    assert!(eval.objective_value > 0.0);
    assert!(eval.tdp_w > 0.0 && eval.area_mm2 > 0.0);

    // 5. ROI: the §5.1 model produces a positive-return volume for a design
    //    with a real speedup.
    let roi = RoiModel::paper_default();
    let speedup = 2.0;
    let volume = roi.volume_for_roi(speedup, 1.0).expect("2x speedup pays back");
    assert!(volume > 0.0);
    assert!(roi.roi(volume * 2.0, speedup) > roi.roi(volume, speedup));
}

#[test]
fn tiny_parallel_search_smokes() {
    let evaluator = Evaluator::new(
        vec![Workload::EfficientNet(EfficientNet::B0)],
        Objective::PerfPerTdp,
        Budget::paper_default(),
    );
    let out = FastStudy::new(&evaluator, 12)
        .seed(0)
        .execution(Execution::Parallel { threads: 4 })
        .run()
        .expect("valid study configuration");
    assert_eq!(out.study.convergence.len(), 12);
    let best = out.best.expect("seed designs guarantee a valid trial");
    assert!(best.objective_value > 0.0);
}
