//! Integration tests for durable sweeps — the interrupted-equals-
//! uninterrupted contract, end to end:
//!
//! * a sweep killed after scenario `k` and resumed from its checkpoint
//!   produces bit-identical per-scenario frontiers to an uninterrupted run,
//!   with >90 % cache hits on the replayed scenarios;
//! * the contract holds under both batched and rayon-parallel execution
//!   (the sweep evaluates rounds across the rayon pool; the study-level
//!   checkpoint is exercised through the `Study` builder's file-based
//!   durability in both modes);
//! * the contract extends to [`Fidelity::Screened`] sweeps: the resumed
//!   run reproduces the exact surrogate accounting, not just the frontier;
//! * damaged checkpoint files degrade to a cold — but still correct — run.

use fast::core::{
    BudgetLevel, Checkpointer, Fidelity, Objective, ScenarioMatrix, SurrogateTier, SweepConfig,
    SweepRunner,
};
use fast::prelude::*;
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fast-ckpt-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn matrix() -> ScenarioMatrix {
    ScenarioMatrix {
        budgets: vec![BudgetLevel::scaled(1.0), BudgetLevel::scaled(0.7)],
        objectives: vec![Objective::Qps, Objective::PerfPerTdp],
        domains: vec![WorkloadDomain::per_model(Workload::EfficientNet(EfficientNet::B0))],
    }
}

fn config() -> SweepConfig {
    SweepConfig { trials: 24, batch: 8, ..SweepConfig::default() }
}

/// The acceptance-criterion test: interrupt after scenario k, resume,
/// compare against uninterrupted — bit-identical frontiers, >90 % cache
/// hits on the replayed prefix.
#[test]
fn interrupted_sweep_resumes_bit_identically_with_warm_cache() {
    let uninterrupted = SweepRunner::new(matrix(), config()).run();
    assert_eq!(uninterrupted.scenarios.len(), 4);

    // "Kill" after scenario k = 2: a prefix run persists exactly what a
    // SIGKILL at that boundary would have left on disk.
    let ck = Checkpointer::new(scratch_dir("kill-after-k")).unwrap();
    let killed = SweepRunner::new(matrix(), config()).run_prefix(&ck, 2);
    assert_eq!(killed.scenarios.len(), 2);
    assert!(ck.cache_path().exists(), "cache snapshot must exist at the kill point");
    assert!(ck.sweep_path().exists(), "scenario ledger must exist at the kill point");

    // A fresh runner — a fresh process, conceptually — resumes.
    let resumed = SweepRunner::new(matrix(), config()).resume(&ck);
    assert_eq!(resumed.scenarios.len(), uninterrupted.scenarios.len());
    for (a, b) in uninterrupted.scenarios.iter().zip(&resumed.scenarios) {
        assert_eq!(a.scenario.name, b.scenario.name);
        // Bit-identical: FrontierPoint equality is exact f64 equality.
        assert_eq!(a.frontier_points, b.frontier_points, "{}", a.scenario.name);
        assert_eq!(a.invalid_trials, b.invalid_trials, "{}", a.scenario.name);
        assert_eq!(a.best_objective.map(f64::to_bits), b.best_objective.map(f64::to_bits));
    }
    // Replayed scenarios answer from the loaded snapshot.
    for s in &resumed.scenarios[..2] {
        assert!(
            s.cache_hit_rate() > 0.9,
            "{}: replayed scenario hit rate {:.2} ({:?})",
            s.scenario.name,
            s.cache_hit_rate(),
            s.cache
        );
    }
}

/// Killing *mid-scenario* (between rounds) loses at most the in-flight
/// round: the resumed run still matches and the partially-completed
/// scenario replays its finished rounds from the cache snapshot.
#[test]
fn mid_scenario_kill_loses_at_most_one_round() {
    let uninterrupted = SweepRunner::new(matrix(), config()).run();

    // Simulate a mid-scenario kill: run only the first scenario (its
    // per-round cache saves happened), then delete the ledger so the
    // checkpoint looks like a run that died before any scenario boundary…
    let ck = Checkpointer::new(scratch_dir("mid-scenario")).unwrap();
    let _ = SweepRunner::new(matrix(), config()).run_prefix(&ck, 1);
    std::fs::remove_file(ck.sweep_path()).unwrap();

    // …and resume: scenario 0 re-runs as cache traffic, everything matches.
    let resumed = SweepRunner::new(matrix(), config()).resume(&ck);
    for (a, b) in uninterrupted.scenarios.iter().zip(&resumed.scenarios) {
        assert_eq!(a.frontier_points, b.frontier_points, "{}", a.scenario.name);
    }
    assert!(
        resumed.scenarios[0].cache_hit_rate() > 0.9,
        "rounds finished before the kill must replay from the snapshot: {:?}",
        resumed.scenarios[0].cache
    );
}

/// The interrupted-equals-uninterrupted contract holds on the fidelity
/// axis too: a *screened* sweep (tier S1, so the checkpoint carries a
/// fitted ridge model and burn-in progress) killed after scenario k and
/// resumed from a fresh runner replays bit-identically — frontiers,
/// trial records, and the full [`fast::core::FidelityReport`] accounting
/// (counts and rank-correlation floats included).
#[test]
fn interrupted_screened_sweep_resumes_bit_identically() {
    let screened = |mut config: SweepConfig| {
        config.fidelity =
            Fidelity::Screened { keep_fraction: 0.25, min_full: 2, tier: SurrogateTier::S1 };
        config
    };
    let uninterrupted = SweepRunner::new(matrix(), screened(config())).run();
    assert_eq!(uninterrupted.scenarios.len(), 4);
    for s in &uninterrupted.scenarios {
        let fid = s.fidelity.as_ref().expect("screened scenarios carry fidelity");
        assert_eq!(fid.full_evals + fid.screened_out, config().trials, "{}", s.scenario.name);
    }

    let ck = Checkpointer::new(scratch_dir("screened-kill")).unwrap();
    let killed = SweepRunner::new(matrix(), screened(config())).run_prefix(&ck, 2);
    assert_eq!(killed.scenarios.len(), 2);

    let resumed = SweepRunner::new(matrix(), screened(config())).resume(&ck);
    assert_eq!(resumed.scenarios.len(), uninterrupted.scenarios.len());
    for (a, b) in uninterrupted.scenarios.iter().zip(&resumed.scenarios) {
        assert_eq!(a.scenario.name, b.scenario.name);
        assert_eq!(a.frontier_points, b.frontier_points, "{}", a.scenario.name);
        assert_eq!(a.invalid_trials, b.invalid_trials, "{}", a.scenario.name);
        assert_eq!(a.best_objective.map(f64::to_bits), b.best_objective.map(f64::to_bits));
        // FidelityReport equality is exact f64 equality on the correlation
        // statistics — the resumed surrogate must have reproduced the same
        // kept sets, pair sets, and therefore the same spearman/kendall.
        assert_eq!(a.fidelity, b.fidelity, "{}", a.scenario.name);
    }
}

/// The study-level checkpoint contract holds whether a round is evaluated
/// serially or across the rayon pool — the resumed frontier is
/// bit-identical to the uninterrupted one either way. This drives the
/// unified `Study` builder's file-based durability end to end: run 16 of 32
/// trials checkpointed ("the kill"), then rerun the full budget against the
/// same directory ("the resume").
#[test]
fn study_checkpoint_contract_holds_for_sequential_and_parallel_drivers() {
    let dirs = [MetricDirection::Maximize, MetricDirection::Minimize, MetricDirection::Minimize];
    let space = FastSpace::table3();
    let evaluator = Evaluator::new(
        vec![Workload::EfficientNet(EfficientNet::B0)],
        Objective::PerfPerTdp,
        Budget::paper_default(),
    );
    let seed_points = vec![
        space.encode(&fast::arch::presets::fast_large(), &SimOptions::default()),
        space.encode(&fast::arch::presets::fast_small(), &SimOptions::default()),
    ];

    for parallel in [false, true] {
        let execution = if parallel {
            Execution::Parallel { threads: 8 }
        } else {
            Execution::Batched { batch_size: 8 }
        };
        let run = |trials: usize, durability: Durability, e: &Evaluator| {
            let score = |p: &[usize]| match e.evaluate_point(&space, p) {
                Ok(ev) => MultiObjective::valid(
                    vec![ev.objective_value, ev.tdp_w, ev.area_mm2],
                    ev.objective_value,
                ),
                Err(_) => MultiObjective::Invalid,
            };
            let mut opt = make_seeded(&seed_points);
            Study::new(space.space(), trials)
                .seed(5)
                .objective(StudyObjective::pareto(&dirs))
                .execution(execution)
                .durability(durability)
                .run(opt.as_mut(), StudyEval::shared(&score))
                .expect("valid study configuration")
                .into_pareto_result()
        };

        // Uninterrupted run, fresh cache.
        let e1 = evaluator.fresh_eval_cache();
        let straight = run(32, Durability::Ephemeral, &e1);

        // Interrupted after round 2 (16 trials), then resumed from disk.
        let dir = scratch_dir(&format!("study-level-{parallel}"));
        let e2 = evaluator.fresh_eval_cache();
        let _ = run(16, Durability::Checkpointed { dir: dir.clone(), every: 1 }, &e2);
        let resumed = run(32, Durability::Checkpointed { dir, every: 1 }, &e2);

        assert_eq!(resumed.frontier, straight.frontier, "parallel={parallel}");
        assert_eq!(
            resumed.guide_convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            straight.guide_convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "parallel={parallel}"
        );
        assert_eq!(resumed.trials, straight.trials, "parallel={parallel}");
    }
}

/// Seed-injecting optimizer equivalent to the sweep's (LCS would also work;
/// random keeps the test fast and its proposals domain-independent).
fn make_seeded(seeds: &[Vec<usize>]) -> Box<dyn fast::search::Optimizer> {
    struct Seeded {
        inner: fast::search::RandomSearch,
        seeds: Vec<Vec<usize>>,
        next: usize,
    }
    impl fast::search::Optimizer for Seeded {
        fn name(&self) -> &'static str {
            "seeded-random"
        }
        fn propose(
            &mut self,
            space: &fast::search::ParamSpace,
            rng: &mut rand::rngs::StdRng,
        ) -> Vec<usize> {
            if self.next < self.seeds.len() {
                self.next += 1;
                self.seeds[self.next - 1].clone()
            } else {
                self.inner.propose(space, rng)
            }
        }
        fn observe(&mut self, space: &fast::search::ParamSpace, trial: &fast::search::Trial) {
            self.inner.observe(space, trial);
        }
        fn save_state(&self) -> fast::search::OptimizerState {
            fast::search::OptimizerState::Seeded {
                seeds: self.seeds.clone(),
                next: self.next,
                inner: Box::new(self.inner.save_state()),
            }
        }
        fn load_state(&mut self, state: &fast::search::OptimizerState) -> bool {
            let fast::search::OptimizerState::Seeded { seeds, next, inner } = state else {
                return false;
            };
            if *next > seeds.len() || !self.inner.load_state(inner) {
                return false;
            }
            self.seeds = seeds.clone();
            self.next = *next;
            true
        }
    }
    Box::new(Seeded { inner: fast::search::RandomSearch::new(), seeds: seeds.to_vec(), next: 0 })
}

/// Corrupt checkpoint artifacts must never poison a resume: the run falls
/// back to cold and still matches the uninterrupted result.
#[test]
fn corrupt_checkpoints_degrade_to_cold_but_correct_runs() {
    let uninterrupted = SweepRunner::new(matrix(), config()).run();

    for (name, damage) in
        [("truncated", b"FASTEVC1".to_vec()), ("garbage", vec![0x5Au8; 512]), ("empty", Vec::new())]
    {
        let ck = Checkpointer::new(scratch_dir(&format!("corrupt-{name}"))).unwrap();
        let _ = SweepRunner::new(matrix(), config()).run_prefix(&ck, 2);
        std::fs::write(ck.cache_path(), &damage).unwrap();
        std::fs::write(ck.sweep_path(), &damage).unwrap();
        let resumed = SweepRunner::new(matrix(), config()).resume(&ck);
        for (a, b) in uninterrupted.scenarios.iter().zip(&resumed.scenarios) {
            assert_eq!(a.frontier_points, b.frontier_points, "{name}: {}", a.scenario.name);
        }
    }
}
