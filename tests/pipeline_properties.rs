//! Property-based integration tests over the full evaluation pipeline:
//! random valid datapaths, random workloads — invariants that must hold for
//! *every* design the search could visit.

use fast::core::FastSpace;
use fast::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_workload(ix: u8) -> Workload {
    match ix % 4 {
        0 => Workload::EfficientNet(EfficientNet::B0),
        1 => Workload::EfficientNet(EfficientNet::B2),
        2 => Workload::ResNet50,
        _ => Workload::Bert { seq_len: 128 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any schedulable design: fused time is bracketed by pure-compute
    /// and pre-fusion time; fusion respects Global-Memory capacity; DRAM
    /// traffic never increases.
    #[test]
    fn fusion_invariants_on_random_designs(seed in 0u64..500, wix in 0u8..4) {
        let space = FastSpace::table3();
        let mut rng = StdRng::seed_from_u64(seed);
        // Sample until a structurally valid config (budget is irrelevant
        // here; we cap size to keep runtime sane).
        let mut found = None;
        for _ in 0..40 {
            let p = space.space().sample(&mut rng);
            let (cfg, sim) = space.decode(&p);
            if cfg.total_macs() > 1 << 20 || cfg.native_batch > 16 {
                continue;
            }
            let w = small_workload(wix);
            let Ok(graph) = w.build(cfg.native_batch) else { continue };
            if let Ok(perf) = simulate(&graph, &cfg, &sim) {
                found = Some((cfg, perf));
                break;
            }
        }
        let Some((cfg, perf)) = found else {
            // All sampled points unschedulable — acceptable for a random draw.
            return Ok(());
        };
        let fused = fuse_workload(&perf, &cfg, &FusionOptions::heuristic_only());
        prop_assert!(fused.total_seconds <= perf.prefusion_seconds * (1.0 + 1e-9),
            "fusion may not slow down: {} vs {}", fused.total_seconds, perf.prefusion_seconds);
        prop_assert!(fused.total_seconds >= perf.compute_seconds * (1.0 - 1e-9),
            "fused time below compute floor");
        prop_assert!(fused.peak_gm_bytes <= cfg.global_memory_bytes(),
            "capacity violated: {} > {}", fused.peak_gm_bytes, cfg.global_memory_bytes());
        prop_assert!(fused.dram_bytes <= perf.prefusion_dram_bytes,
            "fusion may not add traffic");
    }

    /// Utilization is a true fraction and step times are positive for every
    /// schedulable random design.
    #[test]
    fn utilization_bounded(seed in 0u64..500) {
        let space = FastSpace::table3();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7919));
        for _ in 0..20 {
            let p = space.space().sample(&mut rng);
            let (cfg, sim) = space.decode(&p);
            if cfg.total_macs() > 1 << 20 || cfg.native_batch > 8 {
                continue;
            }
            let graph = Workload::EfficientNet(EfficientNet::B0)
                .build(cfg.native_batch)
                .expect("builds");
            if let Ok(perf) = simulate(&graph, &cfg, &sim) {
                prop_assert!(perf.prefusion_seconds > 0.0);
                let util = perf.utilization_at(perf.prefusion_seconds);
                prop_assert!(util > 0.0 && util <= 1.0 + 1e-9, "util {util}");
                prop_assert!(perf.compute_seconds <= perf.prefusion_seconds * (1.0 + 1e-9));
            }
        }
    }

    /// Doubling DRAM channels never slows a design down (monotonicity of the
    /// memory system).
    #[test]
    fn bandwidth_monotonicity(channels_exp in 0u32..3) {
        let mut slow = presets::fast_large();
        slow.dram_channels = 1 << channels_exp;
        let mut fast_cfg = slow;
        fast_cfg.dram_channels = slow.dram_channels * 2;
        let g = Workload::EfficientNet(EfficientNet::B2).build(8).expect("builds");
        let p_slow = simulate(&g, &slow, &SimOptions::default()).expect("schedules");
        let p_fast = simulate(&g, &fast_cfg, &SimOptions::default()).expect("schedules");
        prop_assert!(p_fast.prefusion_seconds <= p_slow.prefusion_seconds * (1.0 + 1e-9));
    }

    /// A larger Global Memory never hurts post-fusion time.
    #[test]
    fn global_memory_monotonicity(gm_exp in 3u32..7) {
        let mut small = presets::fast_large();
        small.global_memory_mib = 1 << gm_exp;
        let mut big = small;
        big.global_memory_mib = small.global_memory_mib * 2;
        let g = Workload::EfficientNet(EfficientNet::B4).build(8).expect("builds");
        let fuse = |cfg: &DatapathConfig| {
            let perf = simulate(&g, cfg, &SimOptions::default()).expect("schedules");
            fuse_workload(&perf, cfg, &FusionOptions::heuristic_only()).total_seconds
        };
        prop_assert!(fuse(&big) <= fuse(&small) * (1.0 + 1e-9));
    }
}

/// Graph-level sanity across the whole zoo at several batch sizes.
#[test]
fn zoo_builds_at_all_search_batches() {
    for w in Workload::suite() {
        for batch in [1u64, 4, 32] {
            let g = w.build(batch).unwrap_or_else(|e| panic!("{w} b{batch}: {e}"));
            g.validate().unwrap();
            assert!(g.total_flops() > 0);
        }
    }
}

/// The simulator is deterministic: identical inputs give identical outputs.
#[test]
fn simulation_is_deterministic() {
    let g = Workload::Bert { seq_len: 128 }.build(8).unwrap();
    let cfg = presets::fast_large();
    let a = simulate(&g, &cfg, &SimOptions::default()).unwrap();
    let b = simulate(&g, &cfg, &SimOptions::default()).unwrap();
    assert_eq!(a.prefusion_seconds.to_bits(), b.prefusion_seconds.to_bits());
    assert_eq!(a.prefusion_dram_bytes, b.prefusion_dram_bytes);
}
