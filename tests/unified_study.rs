//! The `Study` builder's acceptance suite: for every (objective × execution
//! × durability) axis combination that has a deprecated legacy driver, the
//! builder's output is **bit-identical** to that driver — best point,
//! convergence curve (bitwise, NaN prefixes included), trial sequence,
//! invalid count, and (for Pareto) the frontier. Plus a resume-mid-run case
//! through the builder's file durability, and the core-level equivalence of
//! `FastStudy` with `run_fast_search{,_parallel}`.
//!
//! The legacy drivers are deliberately called here: they are kept one
//! release as deprecated wrappers, and this suite is the proof that
//! migrating to the builder changes nothing.
#![allow(deprecated)]

use fast::prelude::*;
use fast::search::{
    run_study_batched_resumable, run_study_pareto_resumable, LcsSwarm, Optimizer, ParamDomain,
    ParamSpace, RandomSearch, StudyCheckpoint, StudyResult, Tpe,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.add("x", ParamDomain::Pow2 { min: 1, max: 256 });
    s.add("y", ParamDomain::Categorical { n: 6 });
    s
}

fn make_opt(ix: usize) -> Box<dyn Optimizer> {
    match ix {
        0 => Box::new(RandomSearch::new()),
        1 => Box::new(LcsSwarm::default()),
        _ => Box::new(Tpe::new()),
    }
}

/// Scalar objective with an invalid region (safe-search rejections) so the
/// convergence curve has a NaN prefix on some seeds.
fn scalar_score(p: &[usize]) -> TrialResult {
    if p[1] == 5 {
        TrialResult::Invalid
    } else {
        TrialResult::Valid((p[0] * (p[1] + 2) + 3 * p[1]) as f64)
    }
}

/// Multi-objective score: guide plus two tracked metrics.
fn multi_score(p: &[usize]) -> MultiObjective {
    if p[1] == 5 {
        MultiObjective::Invalid
    } else {
        MultiObjective::valid(
            vec![(p[0] * (p[1] + 1)) as f64, (p[0] + 3 * p[1]) as f64],
            (p[0] * 2 + p[1]) as f64,
        )
    }
}

fn bits(c: &[f64]) -> Vec<u64> {
    c.iter().map(|v| v.to_bits()).collect()
}

fn assert_scalar_eq(legacy: &StudyResult, report: &StudyReport) -> Result<(), TestCaseError> {
    prop_assert_eq!(&legacy.best_point, &report.best_point);
    prop_assert_eq!(
        legacy.best_objective.map(f64::to_bits),
        report.best_objective.map(f64::to_bits)
    );
    prop_assert_eq!(bits(&legacy.convergence), bits(&report.convergence));
    prop_assert_eq!(legacy.invalid_trials, report.invalid_trials);
    let report_scalar = report.clone().into_study_result();
    prop_assert_eq!(&legacy.trials, &report_scalar.trials);
    Ok(())
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fast-unified-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single + Sequential == `run_study` (the shared-RNG classic loop),
    /// for every optimizer kind.
    #[test]
    fn single_sequential_matches_run_study(seed in 0u64..500, opt_ix in 0usize..3) {
        let s = space();
        let legacy = run_study(&s, make_opt(opt_ix).as_mut(), 60, seed, scalar_score);
        let mut eval = |p: &[usize]| scalar_score(p).into();
        let report = Study::new(&s, 60)
            .seed(seed)
            .run(make_opt(opt_ix).as_mut(), StudyEval::points(&mut eval))
            .expect("valid configuration");
        assert_scalar_eq(&legacy, &report)?;
    }

    /// Single + Batched == `run_study_batched`, for every optimizer kind
    /// and round size.
    #[test]
    fn single_batched_matches_run_study_batched(
        seed in 0u64..500,
        batch in 1usize..16,
        opt_ix in 0usize..3,
    ) {
        let s = space();
        let legacy = run_study_batched(&s, make_opt(opt_ix).as_mut(), 60, batch, seed, |pts| {
            pts.iter().map(|p| scalar_score(p)).collect()
        });
        let mut eval = |pts: &[Vec<usize>]| {
            pts.iter().map(|p| scalar_score(p).into()).collect::<Vec<_>>()
        };
        let report = Study::new(&s, 60)
            .seed(seed)
            .execution(Execution::Batched { batch_size: batch })
            .run(make_opt(opt_ix).as_mut(), StudyEval::batch(&mut eval))
            .expect("valid configuration");
        assert_scalar_eq(&legacy, &report)?;
    }

    /// Single + Parallel == `run_study_batched` at the same round size:
    /// fanning a round across threads must not change a bit.
    #[test]
    fn single_parallel_matches_run_study_batched(
        seed in 0u64..500,
        batch in 1usize..16,
        opt_ix in 0usize..3,
    ) {
        let s = space();
        let legacy = run_study_batched(&s, make_opt(opt_ix).as_mut(), 60, batch, seed, |pts| {
            pts.iter().map(|p| scalar_score(p)).collect()
        });
        let eval = |p: &[usize]| scalar_score(p).into();
        let report = Study::new(&s, 60)
            .seed(seed)
            .execution(Execution::Parallel { threads: batch })
            .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval))
            .expect("valid configuration");
        assert_scalar_eq(&legacy, &report)?;
    }

    /// Pareto + Batched{1} == `run_study_pareto`, and Pareto + Batched{b}
    /// == `run_study_pareto_batched`, for every optimizer kind.
    #[test]
    fn pareto_matches_legacy_pareto_drivers(
        seed in 0u64..500,
        batch in 1usize..16,
        opt_ix in 0usize..3,
    ) {
        let s = space();
        let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
        for batch_size in [1, batch] {
            let legacy = run_study_pareto_batched(
                &s,
                make_opt(opt_ix).as_mut(),
                48,
                batch_size,
                seed,
                &dirs,
                |pts| pts.iter().map(|p| multi_score(p)).collect(),
            );
            let eval = |p: &[usize]| multi_score(p);
            let report = Study::new(&s, 48)
                .seed(seed)
                .objective(StudyObjective::pareto(&dirs))
                .execution(Execution::Batched { batch_size })
                .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval))
                .expect("valid configuration");
            prop_assert_eq!(&legacy.frontier, report.frontier.as_ref().unwrap());
            prop_assert_eq!(bits(&legacy.guide_convergence), bits(&report.convergence));
            prop_assert_eq!(legacy.invalid_trials, report.invalid_trials);
            prop_assert_eq!(&legacy.trials, &report.trials);
        }
        // The single-point legacy driver is itself batch-1.
        let legacy_seq =
            run_study_pareto(&s, make_opt(opt_ix).as_mut(), 48, seed, &dirs, multi_score);
        let eval = |p: &[usize]| multi_score(p);
        let report = Study::new(&s, 48)
            .seed(seed)
            .objective(StudyObjective::pareto(&dirs))
            .execution(Execution::Batched { batch_size: 1 })
            .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval))
            .expect("valid configuration");
        prop_assert_eq!(&legacy_seq.frontier, report.frontier.as_ref().unwrap());
        prop_assert_eq!(bits(&legacy_seq.guide_convergence), bits(&report.convergence));
    }

    /// Checkpointed durability == the legacy `*_resumable` drivers: a
    /// builder study killed at a round boundary and rerun from its
    /// directory equals both the uninterrupted legacy run and a legacy
    /// checkpoint-and-resume, scalar and Pareto alike.
    #[test]
    fn checkpointed_matches_legacy_resumable(seed in 0u64..200, opt_ix in 0usize..3) {
        let s = space();
        let (n_trials, batch, stop) = (40, 8, 24);

        // --- scalar ---
        let straight = run_study_batched(&s, make_opt(opt_ix).as_mut(), n_trials, batch, seed, |pts| {
            pts.iter().map(|p| scalar_score(p)).collect()
        });
        // Legacy resumable: capture the checkpoint at `stop`, resume it.
        let mut checkpoints: Vec<StudyCheckpoint> = Vec::new();
        let _ = run_study_batched_resumable(
            &s,
            make_opt(opt_ix).as_mut(),
            stop,
            batch,
            seed,
            None,
            |pts| pts.iter().map(|p| scalar_score(p)).collect(),
            |ck| checkpoints.push(ck.clone()),
        );
        let legacy_resumed = run_study_batched_resumable(
            &s,
            make_opt(opt_ix).as_mut(),
            n_trials,
            batch,
            seed,
            checkpoints.pop(),
            |pts| pts.iter().map(|p| scalar_score(p)).collect(),
            |_| {},
        );
        // Builder: kill at `stop` via a short budget, rerun the full one.
        let dir = scratch_dir(&format!("scalar-{seed}-{opt_ix}"));
        let eval = |p: &[usize]| scalar_score(p).into();
        let run = |trials: usize| {
            Study::new(&s, trials)
                .seed(seed)
                .execution(Execution::Batched { batch_size: batch })
                .durability(Durability::Checkpointed { dir: dir.clone(), every: 1 })
                .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval))
                .expect("valid configuration")
        };
        let _ = run(stop);
        let resumed = run(n_trials);
        prop_assert_eq!(resumed.checkpoint.as_ref().unwrap().resumed_trials, stop);
        assert_scalar_eq(&straight, &resumed)?;
        assert_scalar_eq(&legacy_resumed, &resumed)?;

        // --- Pareto ---
        let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
        let straight_p = run_study_pareto_batched(
            &s,
            make_opt(opt_ix).as_mut(),
            n_trials,
            batch,
            seed,
            &dirs,
            |pts| pts.iter().map(|p| multi_score(p)).collect(),
        );
        let mut p_checkpoints = Vec::new();
        let _ = run_study_pareto_resumable(
            &s,
            make_opt(opt_ix).as_mut(),
            stop,
            batch,
            seed,
            &dirs,
            None,
            |pts| pts.iter().map(|p| multi_score(p)).collect(),
            |ck| p_checkpoints.push(ck.clone()),
        );
        let legacy_resumed_p = run_study_pareto_resumable(
            &s,
            make_opt(opt_ix).as_mut(),
            n_trials,
            batch,
            seed,
            &dirs,
            p_checkpoints.pop(),
            |pts| pts.iter().map(|p| multi_score(p)).collect(),
            |_| {},
        );
        let p_dir = scratch_dir(&format!("pareto-{seed}-{opt_ix}"));
        let p_eval = |p: &[usize]| multi_score(p);
        let p_run = |trials: usize| {
            Study::new(&s, trials)
                .seed(seed)
                .objective(StudyObjective::pareto(&dirs))
                .execution(Execution::Batched { batch_size: batch })
                .durability(Durability::Checkpointed { dir: p_dir.clone(), every: 1 })
                .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&p_eval))
                .expect("valid configuration")
        };
        let _ = p_run(stop);
        let resumed_p = p_run(n_trials);
        for reference in [&straight_p, &legacy_resumed_p] {
            prop_assert_eq!(&reference.frontier, resumed_p.frontier.as_ref().unwrap());
            prop_assert_eq!(bits(&reference.guide_convergence), bits(&resumed_p.convergence));
            prop_assert_eq!(&reference.trials, &resumed_p.trials);
            prop_assert_eq!(reference.invalid_trials, resumed_p.invalid_trials);
        }
    }

    /// Sequential + Checkpointed — a combination the legacy API never had:
    /// the shared-RNG loop resumes by replay and still ends bit-identical
    /// to an uninterrupted sequential study.
    #[test]
    fn sequential_checkpointed_resumes_bit_identically(seed in 0u64..200, opt_ix in 0usize..3) {
        let s = space();
        let straight = run_study(&s, make_opt(opt_ix).as_mut(), 40, seed, scalar_score);
        let dir = scratch_dir(&format!("seq-{seed}-{opt_ix}"));
        let eval = |p: &[usize]| scalar_score(p).into();
        let run = |trials: usize| {
            Study::new(&s, trials)
                .seed(seed)
                .durability(Durability::Checkpointed { dir: dir.clone(), every: 1 })
                .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval))
                .expect("valid configuration")
        };
        let _ = run(17); // any trial count is a boundary for sequential
        let resumed = run(40);
        prop_assert_eq!(resumed.checkpoint.as_ref().unwrap().resumed_trials, 17);
        assert_scalar_eq(&straight, &resumed)?;
    }
}

/// Core-level equivalence: `FastStudy` reproduces the deprecated
/// `run_fast_search` / `run_fast_search_parallel` drivers bit for bit
/// against the real evaluator pipeline (a few seeds — each run simulates).
#[test]
fn fast_study_matches_deprecated_core_drivers() {
    let evaluator = Evaluator::new(
        vec![Workload::EfficientNet(EfficientNet::B0)],
        Objective::PerfPerTdp,
        Budget::paper_default(),
    );
    for seed in [0u64, 9] {
        let cfg = SearchConfig { trials: 24, seed, batch: 6, ..SearchConfig::default() };
        let legacy_seq = run_fast_search(&evaluator.fresh_eval_cache(), &cfg);
        let legacy_par = run_fast_search_parallel(&evaluator.fresh_eval_cache(), &cfg);
        let builder = |execution: Execution| {
            let fresh = evaluator.fresh_eval_cache();
            FastStudy::new(&fresh, cfg.trials)
                .seed(seed)
                .execution(execution)
                .run()
                .expect("valid configuration")
        };
        let via_batched = builder(Execution::Batched { batch_size: cfg.batch });
        let via_parallel = builder(Execution::Parallel { threads: cfg.batch });
        for (legacy, report) in [(&legacy_seq, &via_batched), (&legacy_par, &via_parallel)] {
            assert_eq!(legacy.study.best_point, report.study.best_point, "seed {seed}");
            assert_eq!(legacy.study.convergence, report.study.convergence, "seed {seed}");
            assert_eq!(legacy.study.invalid_trials, report.study.invalid_trials, "seed {seed}");
            assert_eq!(
                legacy.best.as_ref().map(|b| b.objective_value.to_bits()),
                report.best.as_ref().map(|b| b.objective_value.to_bits()),
                "seed {seed}"
            );
        }
    }
}
