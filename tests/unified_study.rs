//! The `Study` builder's acceptance suite: the axes that used to be
//! separate driver functions must stay interchangeable spellings of the
//! same study. Fanning a round across threads (`Execution::Parallel`)
//! is **bit-identical** to scoring it serially (`Execution::Batched`) at
//! the same round size — best point, convergence curve (bitwise, NaN
//! prefixes included), trial sequence, invalid count, and (for Pareto)
//! the frontier. Checkpointed durability resumes a killed study into the
//! same bits as an uninterrupted one, for every objective × execution
//! combination, and `FastStudy` carries the guarantee through the real
//! evaluator pipeline.

use fast::prelude::*;
use fast::search::{LcsSwarm, Optimizer, ParamDomain, ParamSpace, RandomSearch, Tpe};
use proptest::prelude::*;
use std::path::PathBuf;

fn space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.add("x", ParamDomain::Pow2 { min: 1, max: 256 });
    s.add("y", ParamDomain::Categorical { n: 6 });
    s
}

fn make_opt(ix: usize) -> Box<dyn Optimizer> {
    match ix {
        0 => Box::new(RandomSearch::new()),
        1 => Box::new(LcsSwarm::default()),
        _ => Box::new(Tpe::new()),
    }
}

/// Scalar objective with an invalid region (safe-search rejections) so the
/// convergence curve has a NaN prefix on some seeds.
fn scalar_score(p: &[usize]) -> TrialResult {
    if p[1] == 5 {
        TrialResult::Invalid
    } else {
        TrialResult::Valid((p[0] * (p[1] + 2) + 3 * p[1]) as f64)
    }
}

/// Multi-objective score: guide plus two tracked metrics.
fn multi_score(p: &[usize]) -> MultiObjective {
    if p[1] == 5 {
        MultiObjective::Invalid
    } else {
        MultiObjective::valid(
            vec![(p[0] * (p[1] + 1)) as f64, (p[0] + 3 * p[1]) as f64],
            (p[0] * 2 + p[1]) as f64,
        )
    }
}

fn bits(c: &[f64]) -> Vec<u64> {
    c.iter().map(|v| v.to_bits()).collect()
}

fn assert_report_eq(a: &StudyReport, b: &StudyReport) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.best_point, &b.best_point);
    prop_assert_eq!(a.best_objective.map(f64::to_bits), b.best_objective.map(f64::to_bits));
    prop_assert_eq!(bits(&a.convergence), bits(&b.convergence));
    prop_assert_eq!(a.invalid_trials, b.invalid_trials);
    prop_assert_eq!(&a.trials, &b.trials);
    prop_assert_eq!(&a.frontier, &b.frontier);
    Ok(())
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fast-unified-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single + Sequential (the shared-RNG classic loop) is reproducible
    /// per seed, for every optimizer kind.
    #[test]
    fn single_sequential_is_reproducible(seed in 0u64..500, opt_ix in 0usize..3) {
        let s = space();
        let run = || {
            let mut eval = |p: &[usize]| scalar_score(p).into();
            Study::new(&s, 60)
                .seed(seed)
                .run(make_opt(opt_ix).as_mut(), StudyEval::points(&mut eval))
                .expect("valid configuration")
        };
        assert_report_eq(&run(), &run())?;
    }

    /// Single + Parallel == Single + Batched at the same round size:
    /// fanning a round across threads must not change a bit, for every
    /// optimizer kind and round size.
    #[test]
    fn single_parallel_matches_batched(
        seed in 0u64..500,
        batch in 1usize..16,
        opt_ix in 0usize..3,
    ) {
        let s = space();
        let mut eval = |pts: &[Vec<usize>]| {
            pts.iter().map(|p| scalar_score(p).into()).collect::<Vec<_>>()
        };
        let batched = Study::new(&s, 60)
            .seed(seed)
            .execution(Execution::Batched { batch_size: batch })
            .run(make_opt(opt_ix).as_mut(), StudyEval::batch(&mut eval))
            .expect("valid configuration");
        let shared = |p: &[usize]| scalar_score(p).into();
        let parallel = Study::new(&s, 60)
            .seed(seed)
            .execution(Execution::Parallel { threads: batch })
            .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&shared))
            .expect("valid configuration");
        assert_report_eq(&batched, &parallel)?;
    }

    /// Pareto + Parallel == Pareto + Batched at the same round size: the
    /// frontier, guide convergence and trial sequence must not depend on
    /// how a round's points are scored.
    #[test]
    fn pareto_parallel_matches_batched(
        seed in 0u64..500,
        batch in 1usize..16,
        opt_ix in 0usize..3,
    ) {
        let s = space();
        let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
        let eval = |p: &[usize]| multi_score(p);
        let run = |execution: Execution| {
            Study::new(&s, 48)
                .seed(seed)
                .objective(StudyObjective::pareto(&dirs))
                .execution(execution)
                .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval))
                .expect("valid configuration")
        };
        let batched = run(Execution::Batched { batch_size: batch });
        let parallel = run(Execution::Parallel { threads: batch });
        prop_assert!(batched.frontier.is_some(), "a Pareto study reports a frontier");
        assert_report_eq(&batched, &parallel)?;
    }

    /// Checkpointed durability: a builder study killed at a round boundary
    /// and rerun from its directory equals the uninterrupted run, scalar
    /// and Pareto alike.
    #[test]
    fn checkpointed_resumes_bit_identically(seed in 0u64..200, opt_ix in 0usize..3) {
        let s = space();
        let (n_trials, batch, stop) = (40, 8, 24);

        // --- scalar ---
        let mut eval = |pts: &[Vec<usize>]| {
            pts.iter().map(|p| scalar_score(p).into()).collect::<Vec<_>>()
        };
        let straight = Study::new(&s, n_trials)
            .seed(seed)
            .execution(Execution::Batched { batch_size: batch })
            .run(make_opt(opt_ix).as_mut(), StudyEval::batch(&mut eval))
            .expect("valid configuration");
        // Kill at `stop` via a short budget, rerun the full one from disk.
        let dir = scratch_dir(&format!("scalar-{seed}-{opt_ix}"));
        let shared = |p: &[usize]| scalar_score(p).into();
        let run = |trials: usize| {
            Study::new(&s, trials)
                .seed(seed)
                .execution(Execution::Batched { batch_size: batch })
                .durability(Durability::Checkpointed { dir: dir.clone(), every: 1 })
                .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&shared))
                .expect("valid configuration")
        };
        let _ = run(stop);
        let resumed = run(n_trials);
        prop_assert_eq!(resumed.checkpoint.as_ref().unwrap().resumed_trials, stop);
        assert_report_eq(&straight, &resumed)?;

        // --- Pareto ---
        let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
        let p_eval = |p: &[usize]| multi_score(p);
        let straight_p = Study::new(&s, n_trials)
            .seed(seed)
            .objective(StudyObjective::pareto(&dirs))
            .execution(Execution::Batched { batch_size: batch })
            .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&p_eval))
            .expect("valid configuration");
        let p_dir = scratch_dir(&format!("pareto-{seed}-{opt_ix}"));
        let p_run = |trials: usize| {
            Study::new(&s, trials)
                .seed(seed)
                .objective(StudyObjective::pareto(&dirs))
                .execution(Execution::Batched { batch_size: batch })
                .durability(Durability::Checkpointed { dir: p_dir.clone(), every: 1 })
                .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&p_eval))
                .expect("valid configuration")
        };
        let _ = p_run(stop);
        let resumed_p = p_run(n_trials);
        prop_assert!(resumed_p.frontier.is_some(), "a Pareto study reports a frontier");
        assert_report_eq(&straight_p, &resumed_p)?;
    }

    /// Sequential + Checkpointed — a combination the pre-builder API never
    /// had: the shared-RNG loop resumes by replay and still ends
    /// bit-identical to an uninterrupted sequential study.
    #[test]
    fn sequential_checkpointed_resumes_bit_identically(seed in 0u64..200, opt_ix in 0usize..3) {
        let s = space();
        let mut eval = |p: &[usize]| scalar_score(p).into();
        let straight = Study::new(&s, 40)
            .seed(seed)
            .run(make_opt(opt_ix).as_mut(), StudyEval::points(&mut eval))
            .expect("valid configuration");
        let dir = scratch_dir(&format!("seq-{seed}-{opt_ix}"));
        let shared = |p: &[usize]| scalar_score(p).into();
        let run = |trials: usize| {
            Study::new(&s, trials)
                .seed(seed)
                .durability(Durability::Checkpointed { dir: dir.clone(), every: 1 })
                .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&shared))
                .expect("valid configuration")
        };
        let _ = run(17); // any trial count is a boundary for sequential
        let resumed = run(40);
        prop_assert_eq!(resumed.checkpoint.as_ref().unwrap().resumed_trials, 17);
        assert_report_eq(&straight, &resumed)?;
    }
}

/// Core-level equivalence: `FastStudy`'s parallel execution reproduces its
/// batched execution bit for bit against the real evaluator pipeline (a
/// few seeds — each run simulates).
#[test]
fn fast_study_parallel_matches_batched() {
    let evaluator = Evaluator::new(
        vec![Workload::EfficientNet(EfficientNet::B0)],
        Objective::PerfPerTdp,
        Budget::paper_default(),
    );
    for seed in [0u64, 9] {
        let builder = |execution: Execution| {
            let fresh = evaluator.fresh_eval_cache();
            FastStudy::new(&fresh, 24)
                .seed(seed)
                .execution(execution)
                .run()
                .expect("valid configuration")
        };
        let via_batched = builder(Execution::Batched { batch_size: 6 });
        let via_parallel = builder(Execution::Parallel { threads: 6 });
        assert_eq!(via_batched.study.best_point, via_parallel.study.best_point, "seed {seed}");
        assert_eq!(via_batched.study.convergence, via_parallel.study.convergence, "seed {seed}");
        assert_eq!(
            via_batched.study.invalid_trials, via_parallel.study.invalid_trials,
            "seed {seed}"
        );
        assert_eq!(
            via_batched.best.as_ref().map(|b| b.objective_value.to_bits()),
            via_parallel.best.as_ref().map(|b| b.objective_value.to_bits()),
            "seed {seed}"
        );
    }
}
