//! Integration tests for the multi-objective Pareto path and the
//! scenario-sweep engine: parallel evaluation must reproduce the sequential
//! frontier bit for bit, and a sweep's scenarios must share one evaluation
//! cache (re-scoring reuses simulations instead of re-running them).

use fast::core::{BudgetLevel, Objective, OptimizerKind, ScenarioMatrix, SweepConfig, SweepRunner};
use fast::prelude::*;
use fast::search::MultiObjective;
use proptest::prelude::*;
use rayon::prelude::*;

fn directions() -> [MetricDirection; 3] {
    [MetricDirection::Maximize, MetricDirection::Minimize, MetricDirection::Minimize]
}

fn score(evaluator: &Evaluator, space: &FastSpace, p: &[usize]) -> MultiObjective {
    match evaluator.evaluate_point(space, p) {
        Ok(e) => {
            MultiObjective::valid(vec![e.objective_value, e.tdp_w, e.area_mm2], e.objective_value)
        }
        Err(_) => MultiObjective::Invalid,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A Pareto study whose rounds are evaluated across the rayon pool is
    /// bit-identical to the same study evaluated serially — frontier,
    /// guide convergence and invalid count — for every optimizer kind.
    #[test]
    fn pareto_parallel_reproduces_sequential(seed in 0u64..100, kind_ix in 0usize..3) {
        let kind = OptimizerKind::ALL[kind_ix];
        let space = FastSpace::table3();
        let seeds = [
            space.encode(&fast::arch::presets::fast_large(), &SimOptions::default()),
            space.encode(&fast::arch::presets::fast_small(), &SimOptions::default()),
        ];
        let run = |parallel: bool| {
            let evaluator = Evaluator::new(
                vec![Workload::EfficientNet(EfficientNet::B0)],
                Objective::PerfPerTdp,
                Budget::paper_default(),
            );
            // Seed the swarm the way the drivers do: propose known-feasible
            // designs first so short studies leave the all-invalid regime.
            let mut opt = kind.build();
            let queue = seeds.to_vec();
            let mut propose_count = 0usize;
            let mut eval = |points: &[Vec<usize>]| {
                // Replace the first proposals with the seed designs,
                // mirroring SeededOptimizer (private to fast-core).
                let points: Vec<Vec<usize>> = points
                    .iter()
                    .map(|p| {
                        let q = if propose_count < queue.len() {
                            queue[propose_count].clone()
                        } else {
                            p.clone()
                        };
                        propose_count += 1;
                        q
                    })
                    .collect();
                if parallel {
                    points.par_iter().map(|p| score(&evaluator, &space, p)).collect()
                } else {
                    points.iter().map(|p| score(&evaluator, &space, p)).collect()
                }
            };
            Study::new(space.space(), 32)
                .seed(seed)
                .objective(StudyObjective::pareto(&directions()))
                .execution(Execution::Batched { batch_size: 8 })
                .run(opt.as_mut(), StudyEval::batch(&mut eval))
                .expect("valid study configuration")
                .into_pareto_result()
        };
        let seq = run(false);
        let par = run(true);
        prop_assert_eq!(&seq.frontier, &par.frontier, "frontier must not depend on parallelism");
        let bits = |c: &[f64]| c.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&seq.guide_convergence), bits(&par.guide_convergence));
        prop_assert_eq!(seq.invalid_trials, par.invalid_trials);
    }
}

/// The ISSUE's acceptance scenario: one `SweepRunner` call over 3 area/TDP
/// budgets × 2 objectives × 2 workload domains emits a non-dominated
/// frontier per scenario, and the shared cache reports a >50 % hit rate on
/// every scenario after the first (re-scoring reuses simulations).
#[test]
fn sweep_matrix_shares_cache_and_emits_frontiers() {
    let matrix = ScenarioMatrix {
        // Loosest budget first so tighter budgets re-score cached designs.
        budgets: vec![BudgetLevel::scaled(1.0), BudgetLevel::scaled(0.8), BudgetLevel::scaled(0.6)],
        objectives: vec![Objective::Qps, Objective::PerfPerTdp],
        // The per-model domain is a subset of the multi-model domain, so its
        // simulations are already cached when its scenarios run.
        domains: vec![
            WorkloadDomain::multi_model(
                "B0+B1",
                vec![
                    Workload::EfficientNet(EfficientNet::B0),
                    Workload::EfficientNet(EfficientNet::B1),
                ],
            ),
            WorkloadDomain::per_model(Workload::EfficientNet(EfficientNet::B0)),
        ],
    };
    let config = SweepConfig { trials: 24, batch: 8, seed: 5, ..SweepConfig::default() };
    let result = SweepRunner::new(matrix, config).run();

    assert_eq!(result.scenarios.len(), 12, "3 budgets x 2 objectives x 2 domains");
    for (i, s) in result.scenarios.iter().enumerate() {
        // Every scenario yields a non-empty, mutually non-dominated frontier
        // (the seed designs guarantee valid trials at every budget level).
        assert!(!s.frontier.is_empty(), "{}: empty frontier", s.scenario.name);
        for (ai, a) in s.frontier.iter().enumerate() {
            for (bi, b) in s.frontier.iter().enumerate() {
                if ai == bi {
                    continue;
                }
                let dominates = a.objective_value >= b.objective_value
                    && a.tdp_w <= b.tdp_w
                    && a.area_mm2 <= b.area_mm2
                    && (a.objective_value > b.objective_value
                        || a.tdp_w < b.tdp_w
                        || a.area_mm2 < b.area_mm2);
                assert!(!dominates, "{}: frontier point dominated", s.scenario.name);
            }
        }
        // Frontier designs respect the scenario budget.
        for d in &s.frontier {
            assert!(
                s.scenario.budget.admits(&d.config),
                "{}: frontier design over budget",
                s.scenario.name
            );
        }
        if i > 0 {
            assert!(
                s.cache_hit_rate() > 0.5,
                "{}: hit rate {:.2} ({:?}) — re-scoring must reuse simulations",
                s.scenario.name,
                s.cache_hit_rate(),
                s.cache
            );
        }
    }
    // Tighter budgets can only shrink the feasible set, never improve the
    // best objective, within a (domain, objective) column.
    for domain in ["B0+B1", "EfficientNet-B0"] {
        for objective in ["Qps", "PerfPerTdp"] {
            let bests: Vec<f64> = result
                .scenarios
                .iter()
                .filter(|s| {
                    s.scenario.domain.name == domain
                        && format!("{:?}", s.scenario.objective) == objective
                })
                .map(|s| s.best_objective.expect("seeded scenarios always have a best"))
                .collect();
            assert_eq!(bests.len(), 3);
            assert!(
                bests[0] >= bests[1] && bests[1] >= bests[2],
                "{domain}/{objective}: best objectives {bests:?} not monotone in budget"
            );
        }
    }
}
