//! Cross-crate integration tests asserting the paper's headline *shapes*:
//! who wins, by roughly what factor, and where the crossovers fall.
//! Exact measured values are archived in EXPERIMENTS.md.

use fast::prelude::*;
use fast::sim::engine::ScheduleQuality;
use fast::sim::mapper::DataflowSet;

fn b7() -> Workload {
    Workload::EfficientNet(EfficientNet::B7)
}

/// §4.1: TPU-v3's compute/bandwidth ridgepoint is 137 FLOPS/B, and
/// EfficientNet sits far below it while batched ResNet-50 clears it.
#[test]
fn ridgepoints_and_intensities() {
    let tpu = presets::tpu_v3();
    assert!((tpu.ridgepoint() - 137.0).abs() < 2.0);

    let b0 = EfficientNet::B0.build(1).unwrap();
    let eff = fast::ir::operational_intensity(&b0, FusionStrategy::XlaDefault);
    assert!(eff.intensity < 137.0, "B0 XLA intensity {}", eff.intensity);

    let rn = Workload::ResNet50.build(128).unwrap();
    let rn_xla = fast::ir::operational_intensity(&rn, FusionStrategy::XlaDefault);
    assert!(rn_xla.intensity > 100.0, "batched ResNet intensity {}", rn_xla.intensity);
    // With block-level fusion batched ResNet clears the TPU ridgepoint.
    let rn_blk = fast::ir::operational_intensity(&rn, FusionStrategy::BlockTemplate);
    assert!(rn_blk.intensity > 137.0, "block-fused ResNet intensity {}", rn_blk.intensity);
}

/// Figure 3's batching crossover: batching helps ResNet-50 and BERT-128 but
/// barely moves EfficientNet or BERT-1024.
#[test]
fn batching_crossover() {
    let gain = |w: Workload| {
        let g1 = w.build(1).unwrap();
        let g128 = w.build(128).unwrap();
        let i1 = fast::ir::operational_intensity(&g1, FusionStrategy::XlaDefault).intensity;
        let i128 = fast::ir::operational_intensity(&g128, FusionStrategy::XlaDefault).intensity;
        i128 / i1
    };
    let resnet = gain(Workload::ResNet50);
    let bert128 = gain(Workload::Bert { seq_len: 128 });
    let b7 = gain(Workload::EfficientNet(EfficientNet::B7));
    let bert1024 = gain(Workload::Bert { seq_len: 1024 });
    assert!(resnet > 1.4, "resnet batching gain {resnet}");
    assert!(bert128 > 1.3, "bert-128 batching gain {bert128}");
    assert!(b7 < 1.2, "B7 batching gain {b7} should be near 1");
    assert!(b7 < resnet - 0.3, "B7 gain {b7} far below resnet {resnet}");
    assert!(bert1024 < bert128, "bert-1024 {bert1024} below bert-128 {bert128}");
}

/// Table 2's shape: depthwise convs are ~5 % of B7 FLOPs but the majority of
/// TPU-v3 runtime.
#[test]
fn depthwise_dominates_tpu_runtime() {
    let g = EfficientNet::B7.build(64).unwrap();
    let perf = simulate(&g, &presets::tpu_v3(), &SimOptions::tpu_baseline()).unwrap();
    let rows = perf.time_by(|n| n.class.clone());
    let total: f64 = rows.iter().map(|r| r.1).sum();
    let dw = rows.iter().find(|r| r.0 == "DepthwiseConv2dNative").unwrap();
    assert!(dw.1 / total > 0.5, "dw runtime share {}", dw.1 / total);
    assert!((dw.2 as f64 / g.total_flops() as f64) < 0.1);
}

/// The full-stack pipeline end to end: FAST-Large on B7 must land in the
/// paper's regime vs the TPU-v3 baseline (Table 5 / Table 6 row 1).
#[test]
fn fast_large_b7_headline() {
    let budget = Budget::paper_default();
    let rel =
        relative_to_tpu(&presets::fast_large(), &SimOptions::default(), b7(), &budget).unwrap();
    assert!((2.5..9.0).contains(&rel.perf_per_tdp), "B7 Perf/TDP vs TPU {}", rel.perf_per_tdp);
    assert!(rel.speedup > 2.5, "B7 speedup {}", rel.speedup);
}

/// Ordering across workloads (Figures 9/10): EfficientNet gains most; the
/// TPU-friendly OCR workloads gain least.
#[test]
fn workload_gain_ordering() {
    let budget = Budget::paper_default();
    let gain = |w: Workload| {
        relative_to_tpu(&presets::fast_large(), &SimOptions::default(), w, &budget)
            .unwrap()
            .perf_per_tdp
    };
    let eff = gain(b7());
    let resnet = gain(Workload::ResNet50);
    let rpn = gain(Workload::OcrRpn);
    assert!(eff > resnet, "EfficientNet {eff} must beat ResNet {resnet}");
    assert!(eff > 2.0 * rpn, "EfficientNet {eff} must dwarf OCR-RPN {rpn}");
}

/// Figure 9's first bar: FAST scheduling + fusion on the *unchanged* TPU-v3
/// datapath is worth a substantial speedup (paper: 1.7x).
#[test]
fn scheduling_and_fusion_alone_help_tpu() {
    let budget = Budget::paper_default();
    let sim = SimOptions {
        dataflows: DataflowSet::All,
        schedule_quality: ScheduleQuality::Searched,
        ..SimOptions::tpu_baseline()
    };
    let rel = relative_to_tpu(&presets::tpu_v3(), &sim, Workload::ResNet50, &budget).unwrap();
    assert!((1.2..3.0).contains(&rel.speedup), "sched/fusion-only speedup {}", rel.speedup);
}

/// Fusion is the load-bearing component (Figure 15 / Table 6): removing it
/// costs more than removing anything else on B7.
#[test]
fn fusion_is_the_biggest_component() {
    let rows = ablation_study().unwrap();
    let rel_of = |label: &str| {
        rows.iter().find(|r| r.label.contains(label)).map(|r| r.per_workload[0].2).unwrap()
    };
    let no_fusion = rel_of("Without FAST Fusion");
    let small_l1 = rel_of("32KB L1");
    assert!(no_fusion < 0.6, "no-fusion relative {no_fusion}");
    assert!(no_fusion < small_l1, "fusion must matter more than L1 sizing");
}

/// The search improves on its seeds and respects the budget (Eq. 4).
#[test]
fn search_respects_budget_and_improves() {
    let budget = Budget::paper_default();
    let evaluator = Evaluator::new(
        vec![Workload::EfficientNet(EfficientNet::B2)],
        Objective::PerfPerTdp,
        budget,
    );
    let seed_obj =
        evaluator.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap().objective_value;
    let outcome = FastStudy::new(&evaluator, 150).seed(3).run().expect("valid configuration");
    let best = outcome.best.unwrap();
    assert!(best.objective_value >= seed_obj);
    assert!(budget.admits(&best.config));
    best.config.validate().unwrap();
}

/// Two-pass softmax wins exactly when bandwidth is scarce relative to VPU
/// throughput (§5.6).
#[test]
fn two_pass_softmax_tradeoff() {
    let mut starved = presets::fast_large();
    starved.dram_channels = 1;
    starved.global_memory_mib = 1;
    let g = BertConfig::base().build(8, 2048).unwrap();
    let step = |mode| {
        let sim = SimOptions { softmax: mode, ..SimOptions::default() };
        simulate(&g, &starved, &sim).unwrap().prefusion_seconds
    };
    assert!(
        step(SoftmaxMode::TwoPass) < step(SoftmaxMode::ThreePass),
        "two-pass must win on a bandwidth-starved design"
    );

    // On the bandwidth-rich TPU it must NOT win (extra exponentials).
    let tpu = presets::tpu_v3();
    let step_tpu = |mode| {
        let sim = SimOptions { softmax: mode, ..SimOptions::tpu_baseline() };
        simulate(&g, &tpu, &sim).unwrap().prefusion_seconds
    };
    assert!(step_tpu(SoftmaxMode::TwoPass) >= step_tpu(SoftmaxMode::ThreePass));
}

/// ROI model matches Table 4 on its self-consistent rows.
#[test]
fn roi_matches_table4() {
    let m = RoiModel::paper_default();
    let v = m.volume_for_roi(3.91, 1.0).unwrap();
    assert!((v - 2164.0).abs() / 2164.0 < 0.01, "break-even volume {v}");
}
