//! Integration tests for the parallel, memoized search-evaluation engine:
//! the evaluation cache must be invisible (bit-identical results) and a
//! parallel study must reproduce the sequential study trial for trial.

use fast::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluator(w: Workload) -> Evaluator {
    Evaluator::new(vec![w], Objective::PerfPerTdp, Budget::paper_default())
}

/// One FastStudy run with the execution axis as the only variable.
fn run_search(e: &Evaluator, seed: u64, execution: Execution) -> SearchReport {
    FastStudy::new(e, 24).seed(seed).execution(execution).run().expect("valid configuration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Over random valid designs, a cache hit returns results bit-identical
    /// to a fresh uncached evaluation AND to the raw simulate→fuse pipeline
    /// run by hand.
    #[test]
    fn cached_results_bit_identical_to_fresh_runs(seed in 0u64..400, wix in 0u8..3) {
        let w = match wix {
            0 => Workload::EfficientNet(EfficientNet::B0),
            1 => Workload::ResNet50,
            _ => Workload::Bert { seq_len: 128 },
        };
        let space = FastSpace::table3();
        let mut rng = StdRng::seed_from_u64(seed);
        let e = evaluator(w);

        // Find one evaluable random design (skip the draw if none shows up —
        // most of the 1e13-point space is invalid, that's expected).
        let mut found = None;
        for _ in 0..60 {
            let p = space.space().sample(&mut rng);
            let (cfg, sim) = space.decode(&p);
            if cfg.total_macs() > 1 << 20 || cfg.native_batch > 16 {
                continue;
            }
            if e.evaluate(&cfg, &sim).is_ok() {
                found = Some((cfg, sim));
                break;
            }
        }
        let Some((cfg, sim)) = found else { return Ok(()) };

        // Second evaluation: answered from the cache.
        let before = e.cache_stats();
        let cached = e.evaluate(&cfg, &sim).expect("just evaluated fine");
        prop_assert!(e.cache_stats().hits > before.hits, "second run must hit the cache");

        // Fresh evaluator: same pipeline, empty cache.
        let fresh = e.fresh_eval_cache().evaluate(&cfg, &sim).expect("deterministic");
        prop_assert_eq!(cached.workloads.len(), fresh.workloads.len());
        for (c, f) in cached.workloads.iter().zip(&fresh.workloads) {
            prop_assert_eq!(c.step_seconds.to_bits(), f.step_seconds.to_bits());
            prop_assert_eq!(c.qps.to_bits(), f.qps.to_bits());
            prop_assert_eq!(c.utilization.to_bits(), f.utilization.to_bits());
            prop_assert_eq!(c.op_intensity_post.to_bits(), f.op_intensity_post.to_bits());
            prop_assert_eq!(c.pinned_weight_bytes, f.pinned_weight_bytes);
        }
        prop_assert_eq!(cached.objective_value.to_bits(), fresh.objective_value.to_bits());

        // And both match the raw pipeline composed by hand.
        let graph = w.build(cfg.native_batch).expect("zoo builds");
        let perf = simulate(&graph, &cfg, &sim).expect("deterministic");
        let fused = fuse_workload(&perf, &cfg, &FusionOptions::heuristic_only());
        prop_assert_eq!(cached.workloads[0].step_seconds.to_bits(), fused.total_seconds.to_bits());
        let qps = (perf.batch_per_core * perf.cores) as f64 / fused.total_seconds;
        prop_assert_eq!(cached.workloads[0].qps.to_bits(), qps.to_bits());
    }

    /// A parallel study with seed `s` reproduces the sequential study's
    /// trial sequence exactly, for any seed.
    #[test]
    fn parallel_study_reproduces_sequential_trials(s in 0u64..200) {
        let e = evaluator(Workload::EfficientNet(EfficientNet::B0));
        let seq = run_search(&e.fresh_eval_cache(), s, Execution::Batched { batch_size: 6 });
        let par = run_search(&e.fresh_eval_cache(), s, Execution::Parallel { threads: 6 });

        prop_assert_eq!(seq.study.trials.len(), par.study.trials.len());
        for (i, (a, b)) in seq.study.trials.iter().zip(&par.study.trials).enumerate() {
            prop_assert_eq!(&a.point, &b.point, "trial {} proposed different points", i);
            let guide = |r: &MultiObjective| match r {
                MultiObjective::Valid { guide, .. } => Some(guide.to_bits()),
                MultiObjective::Invalid | MultiObjective::Surrogate { .. } => None,
            };
            prop_assert_eq!(
                guide(&a.result),
                guide(&b.result),
                "trial {} scored differently", i
            );
        }
        prop_assert_eq!(seq.study.best_point, par.study.best_point);
        prop_assert_eq!(
            seq.study.best_objective.map(f64::to_bits),
            par.study.best_objective.map(f64::to_bits)
        );
    }
}

/// The cache makes re-running the same study nearly free: every trial of the
/// second run is a hit.
#[test]
fn second_study_runs_entirely_from_cache() {
    let e = evaluator(Workload::EfficientNet(EfficientNet::B0)).fresh_eval_cache();
    let run = || {
        FastStudy::new(&e, 30)
            .seed(4)
            .execution(Execution::Parallel { threads: 8 })
            .run()
            .expect("valid configuration")
    };
    let first = run();
    let misses_after_first = e.cache_stats().misses;
    let second = run();
    assert_eq!(
        e.cache_stats().misses,
        misses_after_first,
        "identical study must not re-run the simulator"
    );
    assert_eq!(
        first.study.best_objective.map(f64::to_bits),
        second.study.best_objective.map(f64::to_bits)
    );
}
