//! The staged-pipeline determinism contract, end to end: the staged
//! evaluation pipeline (per-op mapper cache → per-workload assembly →
//! keyed fusion) must be **bit-identical** to the monolithic simulate→fuse
//! reference path for every optimizer × execution combination, for whole
//! studies and for Pareto frontiers — the refactor is an optimization, not
//! a semantics change.

use fast::core::{BudgetLevel, ScenarioMatrix, SweepConfig, SweepRunner};
use fast::prelude::*;
use proptest::prelude::*;

fn evaluator() -> Evaluator {
    Evaluator::new(
        vec![Workload::EfficientNet(EfficientNet::B0)],
        Objective::PerfPerTdp,
        Budget::paper_default(),
    )
}

fn run_study(e: &Evaluator, kind: OptimizerKind, execution: Execution, seed: u64) -> SearchReport {
    FastStudy::new(e, 24)
        .optimizer(kind)
        .seed(seed)
        .execution(execution)
        .run()
        .expect("valid study configuration")
}

/// Every optimizer × execution combination: trial-for-trial, bit-for-bit
/// equality of the staged and monolithic studies, decoded best design
/// included.
#[test]
fn staged_studies_match_monolithic_for_every_optimizer_and_execution() {
    let executions = [
        Execution::Sequential,
        Execution::Batched { batch_size: 1 },
        Execution::Batched { batch_size: 8 },
        Execution::Parallel { threads: 8 },
    ];
    for kind in OptimizerKind::ALL {
        for execution in executions {
            let staged = run_study(&evaluator(), kind, execution, 9);
            let mono = run_study(&evaluator().monolithic(), kind, execution, 9);
            let label = format!("{kind:?} / {execution:?}");

            assert_eq!(staged.study.trials.len(), mono.study.trials.len(), "{label}");
            for (a, b) in staged.study.trials.iter().zip(&mono.study.trials) {
                assert_eq!(a, b, "{label}: trial diverged");
            }
            assert_eq!(
                staged.study.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                mono.study.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{label}"
            );
            assert_eq!(staged.study.best_point, mono.study.best_point, "{label}");
            assert_eq!(staged.study.invalid_trials, mono.study.invalid_trials, "{label}");
            let (a, b) = (staged.best.expect("seeded"), mono.best.expect("seeded"));
            assert_eq!(a.objective_value.to_bits(), b.objective_value.to_bits(), "{label}");
            assert_eq!(a.geomean_qps.to_bits(), b.geomean_qps.to_bits(), "{label}");
            assert_eq!(a.tdp_w.to_bits(), b.tdp_w.to_bits(), "{label}");
            assert_eq!(a.area_mm2.to_bits(), b.area_mm2.to_bits(), "{label}");
            for (x, y) in a.workloads.iter().zip(&b.workloads) {
                assert_eq!(x.step_seconds.to_bits(), y.step_seconds.to_bits(), "{label}");
                assert_eq!(x.qps.to_bits(), y.qps.to_bits(), "{label}");
                assert_eq!(x.utilization.to_bits(), y.utilization.to_bits(), "{label}");
                assert_eq!(x.postfusion_stall.to_bits(), y.postfusion_stall.to_bits(), "{label}");
                assert_eq!(x.op_intensity_post.to_bits(), y.op_intensity_post.to_bits(), "{label}");
                assert_eq!(x.pinned_weight_bytes, y.pinned_weight_bytes, "{label}");
            }
        }
    }
}

/// The sweep engine (Pareto studies over the shared cache) reproduces the
/// monolithic frontiers exactly — and since `SweepRunner` always runs the
/// staged pipeline, the check drives it against per-point monolithic
/// re-evaluation of every frontier design.
#[test]
fn staged_sweep_frontiers_match_monolithic_reevaluation() {
    let matrix = ScenarioMatrix {
        budgets: vec![BudgetLevel::scaled(1.0), BudgetLevel::scaled(0.7)],
        objectives: vec![Objective::Qps, Objective::PerfPerTdp],
        domains: vec![WorkloadDomain::per_model(Workload::EfficientNet(EfficientNet::B0))],
    };
    let config = SweepConfig { trials: 24, batch: 8, ..SweepConfig::default() };
    let result = SweepRunner::new(matrix, config).run();
    let space = fast::core::FastSpace::table3();
    for s in &result.scenarios {
        assert!(!s.frontier.is_empty(), "{}", s.scenario.name);
        // Per-stage stats are surfaced per scenario and account for the
        // fuse-tier traffic the `cache` field reports.
        assert_eq!(s.staged.fuse, s.cache, "{}", s.scenario.name);
        assert!(
            s.staged.op.hits + s.staged.op.misses > 0 || s.cache.misses == 0,
            "{}: scenarios that simulate must touch the mapper",
            s.scenario.name
        );
        let mono = Evaluator::new(
            s.scenario.domain.workloads.clone(),
            s.scenario.objective,
            s.scenario.budget,
        )
        .monolithic();
        for design in &s.frontier {
            let eval = mono.evaluate_point(&space, &design.point).expect("frontier point valid");
            assert_eq!(
                eval.objective_value.to_bits(),
                design.objective_value.to_bits(),
                "{}: staged frontier diverged from monolithic",
                s.scenario.name
            );
            assert_eq!(eval.geomean_qps.to_bits(), design.geomean_qps.to_bits());
            assert_eq!(eval.tdp_w.to_bits(), design.tdp_w.to_bits());
            assert_eq!(eval.area_mm2.to_bits(), design.area_mm2.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random designs, random workloads: staged == monolithic on the raw
    /// evaluator, successes and failures alike (the cached failure must
    /// carry the same op name and structured cause as a fresh one).
    #[test]
    fn staged_point_evaluations_match_monolithic(seed in 0u64..300, wix in 0u8..3) {
        use rand::SeedableRng as _;
        let w = match wix {
            0 => Workload::EfficientNet(EfficientNet::B0),
            1 => Workload::ResNet50,
            _ => Workload::Bert { seq_len: 128 },
        };
        let space = fast::core::FastSpace::table3();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let staged = Evaluator::new(vec![w], Objective::Qps, Budget::paper_default());
        let mono = staged.clone().monolithic();
        let mut checked = 0;
        for _ in 0..40 {
            let p = space.space().sample(&mut rng);
            let (cfg, sim) = space.decode(&p);
            if cfg.total_macs() > 1 << 20 || cfg.native_batch > 16 {
                continue;
            }
            // Evaluate through the staged path twice (cold, then cached) and
            // through the monolithic path; all three must agree bitwise.
            let a = staged.evaluate(&cfg, &sim);
            let b = staged.evaluate(&cfg, &sim);
            let c = mono.evaluate(&cfg, &sim);
            match (a, b, c) {
                (Ok(a), Ok(b), Ok(c)) => {
                    prop_assert_eq!(a.objective_value.to_bits(), c.objective_value.to_bits());
                    prop_assert_eq!(b.objective_value.to_bits(), c.objective_value.to_bits());
                    prop_assert_eq!(
                        a.workloads[0].step_seconds.to_bits(),
                        c.workloads[0].step_seconds.to_bits()
                    );
                    prop_assert_eq!(
                        a.workloads[0].utilization.to_bits(),
                        c.workloads[0].utilization.to_bits()
                    );
                    checked += 1;
                }
                (Err(a), Err(b), Err(c)) => {
                    prop_assert_eq!(&a, &c, "cold staged failure must equal monolithic");
                    prop_assert_eq!(&b, &c, "cached staged failure must equal monolithic");
                    checked += 1;
                }
                (a, b, c) => {
                    return Err(TestCaseError(format!(
                        "staged and monolithic disagreed on validity: {a:?} / {b:?} / {c:?}"
                    )));
                }
            }
            if checked >= 6 {
                break;
            }
        }
    }
}
