//! Offline shim for `rayon`.
//!
//! Implements the parallel-iterator subset the FAST driver uses
//! (`par_iter`/`into_par_iter` → `map` → `collect`, plus `with_min_len` as a
//! no-op) on OS threads via `std::thread::scope`. `map` executes eagerly over
//! an index-claiming work queue, so uneven per-item costs (cheap cache hits
//! next to full simulations) still load-balance across cores. Thread count
//! honours `RAYON_NUM_THREADS`, defaulting to available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! The glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads used for parallel execution.
#[must_use]
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Runs `f` over every item on a pool of scoped threads, preserving order.
fn par_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let n_items = items.len();
    let threads = current_num_threads().min(n_items.max(1));
    if threads <= 1 || n_items <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand out item slots by atomic index-claim: cheap, contention-free for
    // coarse work, and naturally load-balancing for uneven item costs.
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|t| std::sync::Mutex::new(Some(t))).collect();
    let results: Vec<std::sync::Mutex<Option<R>>> =
        (0..n_items).map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_items {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot claimed once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });

    results.into_iter().map(|m| m.into_inner().unwrap().expect("all slots computed")).collect()
}

/// An eager "parallel iterator": adapters run immediately on the pool.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Types convertible into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Types whose references yield a [`ParIter`] of `&Item`.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// The adapter/consumer surface (a small but faithful `ParallelIterator`).
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Consumes into the underlying ordered items.
    fn into_items(self) -> Vec<Self::Item>;

    /// Parallel map (eager: executes on the pool immediately).
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> ParIter<R> {
        ParIter { items: par_map_vec(self.into_items(), f) }
    }

    /// Compatibility no-op (the shim does not split ranges).
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Collects results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_items().into_iter().collect()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(v.len(), 4); // still usable
    }

    #[test]
    fn actually_uses_threads() {
        let ids: Vec<std::thread::ThreadId> = (0..64usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                std::thread::current().id()
            })
            .collect();
        if super::current_num_threads() > 1 {
            let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
            assert!(distinct.len() > 1, "expected multiple worker threads");
        }
    }
}
