//! Offline shim for `criterion`.
//!
//! Implements the harness subset the FAST benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `BenchmarkId` and `Bencher::iter`. Timing is a straightforward
//! warmup-then-sample wall-clock mean with min/max, printed per benchmark —
//! no statistics engine, plots, or saved baselines.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the measured closure and accumulates timings.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over warmup plus `samples` measured runs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup: one run, plus enough to estimate cost.
        black_box(f());
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.timings.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.timings.is_empty() {
            println!("{name:<40} (no measurements)");
            return;
        }
        let total: Duration = self.timings.iter().sum();
        let mean = total / self.timings.len() as u32;
        let min = self.timings.iter().min().copied().unwrap_or_default();
        let max = self.timings.iter().max().copied().unwrap_or_default();
        let mut line = String::new();
        let _ = write!(
            line,
            "{name:<44} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets measured runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, timings: Vec::new() };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, timings: Vec::new() };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (printing is immediate; this is for API parity).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// CLI-argument configuration (accepted and ignored by the shim).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 { 30 } else { self.default_sample_size };
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: 30, timings: Vec::new() };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Declares a group-runner function invoking each benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(count >= 4); // warmup + 3 samples
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
