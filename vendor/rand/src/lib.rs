//! Offline shim for `rand` 0.8.
//!
//! Provides the exact surface the FAST crates use — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}` — on
//! top of a xoshiro256++ generator. Streams differ from upstream `rand`
//! (reproducibility is guaranteed *within* this workspace, which is all the
//! study-seed contract requires), but the API is call-compatible so swapping
//! back to the registry crate is a one-line manifest change.

use std::ops::{Range, RangeInclusive};

/// Core random source: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable random source (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, mixing the seed so nearby
    /// seeds produce unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 holds every value of every supported type, so the
                // span is exact even for signed ranges spanning zero.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                if span > u64::MAX as i128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

/// Unbiased uniform draw in `[0, span)` via rejection sampling (`span > 0`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience methods over any [`RngCore`] (the `rand::Rng` subset in use).
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type (`f64` in `[0,1)`, `bool`,
    /// full-width integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generators (only [`StdRng`] is provided).
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(0..=8);
            assert!(w <= 8);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
