//! Offline shim for `proptest`.
//!
//! Re-implements the subset the FAST test suites use: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), integer-range, tuple and
//! `prop::collection::vec` strategies, and `prop_assert!`/`prop_assert_eq!`.
//! Cases are generated from a fixed seed so failures reproduce; shrinking is
//! not implemented — a failing case reports its inputs via the panic message
//! (each generated binding is `Debug`-printed on failure).

use rand::rngs::StdRng;

/// Internal: builds the deterministic per-case RNG (used by `proptest!` so
/// dependent crates need not declare `rand` themselves).
#[doc(hidden)]
#[must_use]
pub fn __seeded_rng(seed: u64) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (message carries the assertion text and inputs).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Outcome of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. Strategies are sampled, not shrunk, in this shim.
pub trait Strategy {
    /// Generated value type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: f64 = rand::Rng::gen(rng);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range_strategies!(f32, f64);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies!((A, B), (A, B, C), (A, B, C, D));

/// A strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (`vec` only).
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };

    pub mod prop {
        //! `prop::` namespace (collections only).
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the generated inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                // Fixed base seed: deterministic runs; vary per test name so
                // sibling properties explore different streams.
                let test_seed = {
                    let name = concat!(module_path!(), "::", stringify!($name));
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    h
                };
                for case in 0..config.cases {
                    let mut rng = $crate::__seeded_rng(
                        test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = ($strategy).sample(&mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, e.0, inputs
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u32..=8) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 8);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in &v {
                prop_assert!(*e < 10);
            }
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
