//! A compact, versioned binary codec — the functional half of the shim.
//!
//! The marker traits in the crate root keep `#[derive(Serialize,
//! Deserialize)]` compiling; this module is what the workspace's durable
//! state (checkpoints, evaluation-cache snapshots) actually serializes
//! through. It is deliberately tiny and fully explicit:
//!
//! * [`Encode`] / [`Decode`] — hand-implemented (the no-op derives cannot
//!   generate code), little-endian, fixed layout per type;
//! * [`Writer`] / [`Reader`] — bounds-checked byte cursors;
//! * [`write_envelope`] / [`read_envelope`] — a magic + version + length +
//!   FNV-1a-checksum container, so corrupt, truncated, foreign-endian or
//!   version-skewed files are *detected* and rejected as a whole rather
//!   than decoded into garbage.
//!
//! Floats are encoded via [`f64::to_bits`], so round-trips are
//! bit-identical — the property the resume-equals-uninterrupted contract
//! of the checkpoint subsystem rests on.
//!
//! ```
//! use serde::bin::{Decode, Encode, Reader, Writer};
//!
//! let mut w = Writer::new();
//! (vec![1u64, 2, 3], Some("frontier".to_string())).encode(&mut w);
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! let back: (Vec<u64>, Option<String>) = Decode::decode(&mut r).unwrap();
//! assert_eq!(back.0, [1, 2, 3]);
//! assert_eq!(back.1.as_deref(), Some("frontier"));
//! ```

use std::fmt;

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset the failure was detected at (0 for envelope-level
    /// failures).
    pub offset: usize,
    /// Human-readable cause.
    pub what: String,
}

impl DecodeError {
    fn new(offset: usize, what: impl Into<String>) -> Self {
        DecodeError { offset, what: what.into() }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for DecodeError {}

/// An append-only byte sink all encodes go through.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.put_bytes(v.as_bytes());
    }
}

/// A bounds-checked read cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new(
                self.pos,
                format!("wanted {n} bytes, {} remain", self.remaining()),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Fails when the buffer is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Fails when fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// Fails when fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    /// Fails when fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Fails on exhaustion, an over-long claimed length, or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_len()?;
        let start = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| DecodeError::new(start, format!("invalid utf-8: {e}")))
    }

    /// Reads a `u64` length prefix, rejecting claims larger than the bytes
    /// that actually remain — the guard that keeps corrupt input from
    /// triggering huge allocations.
    ///
    /// # Errors
    /// Fails on exhaustion or an impossible length claim.
    pub fn get_len(&mut self) -> Result<usize, DecodeError> {
        let at = self.pos;
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(DecodeError::new(
                at,
                format!("length {len} exceeds {} remaining bytes", self.remaining()),
            ));
        }
        Ok(len as usize)
    }
}

/// A value with a defined binary layout.
pub trait Encode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// A value reconstructible from its [`Encode`] layout.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    /// Fails on exhausted input, unknown enum tags, or any structural
    /// mismatch — decoders never guess.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes a value that must span exactly `bytes`.
    ///
    /// # Errors
    /// Fails if decoding fails or trailing bytes remain.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_done() {
            return Err(DecodeError::new(r.pos, format!("{} trailing bytes", r.remaining())));
        }
        Ok(v)
    }
}

macro_rules! impl_codec_uint {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, w: &mut Writer) {
                w.put_u64(u64::from(*self));
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let at = r.pos;
                let v = r.get_u64()?;
                <$t>::try_from(v).map_err(|_| {
                    DecodeError::new(at, format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_codec_uint!(u8, u16, u32, u64);

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let at = r.pos;
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| DecodeError::new(at, format!("{v} out of usize range")))
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let at = r.pos;
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::new(at, format!("invalid bool byte {b}"))),
        }
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.get_f64()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.get_str()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let at = r.pos;
        let len = r.get_u64()?;
        // Every element occupies at least one byte, so a claimed count above
        // the remaining byte count is corruption, not data.
        if len > r.remaining() as u64 {
            return Err(DecodeError::new(
                at,
                format!("vec length {len} exceeds {} remaining bytes", r.remaining()),
            ));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let at = r.pos;
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(DecodeError::new(at, format!("invalid option tag {b}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: Encode, E: Encode> Encode for Result<T, E> {
    fn encode(&self, w: &mut Writer) {
        match self {
            Ok(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            Err(e) => {
                w.put_u8(1);
                e.encode(w);
            }
        }
    }
}

impl<T: Decode, E: Decode> Decode for Result<T, E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let at = r.pos;
        match r.get_u8()? {
            0 => Ok(Ok(T::decode(r)?)),
            1 => Ok(Err(E::decode(r)?)),
            b => Err(DecodeError::new(at, format!("invalid result tag {b}"))),
        }
    }
}

/// FNV-1a over `bytes` — the envelope checksum. Not cryptographic; it
/// detects truncation, bit rot and byte-order damage, which is the threat
/// model of a local snapshot file.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Byte length of the envelope header preceding the payload.
pub const ENVELOPE_HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Wraps `payload` in the on-disk container: an 8-byte magic, a `u32`
/// format version, the payload length, the payload's FNV-1a checksum, then
/// the payload itself (everything little-endian).
#[must_use]
pub fn write_envelope(magic: [u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_bytes(&magic);
    w.put_u32(version);
    w.put_u64(payload.len() as u64);
    w.put_u64(fnv1a(payload));
    w.put_bytes(payload);
    w.into_bytes()
}

/// Validates an envelope and returns its payload slice.
///
/// Rejects — with a descriptive error, never a partial payload — files that
/// are too short, carry the wrong magic, a different format version, an
/// inconsistent length (truncation or trailing garbage), or a checksum
/// mismatch (bit rot, endian-swapped writes).
///
/// # Errors
/// See above; callers are expected to treat any error as "no snapshot".
pub fn read_envelope(magic: [u8; 8], version: u32, bytes: &[u8]) -> Result<&[u8], DecodeError> {
    if bytes.len() < ENVELOPE_HEADER_LEN {
        return Err(DecodeError::new(
            0,
            format!("file too short for header: {} bytes", bytes.len()),
        ));
    }
    let mut r = Reader::new(bytes);
    let got_magic = r.take(8).expect("checked above");
    if got_magic != magic {
        return Err(DecodeError::new(0, format!("bad magic {got_magic:02x?}")));
    }
    let got_version = r.get_u32().expect("checked above");
    if got_version != version {
        return Err(DecodeError::new(
            8,
            format!("format version {got_version}, expected {version}"),
        ));
    }
    let len = r.get_u64().expect("checked above");
    let sum = r.get_u64().expect("checked above");
    let payload = &bytes[ENVELOPE_HEADER_LEN..];
    if len != payload.len() as u64 {
        return Err(DecodeError::new(
            12,
            format!("payload length {len} but {} bytes follow the header", payload.len()),
        ));
    }
    let computed = fnv1a(payload);
    if computed != sum {
        // Name the exact byte range the checksum covers (file offsets) and
        // both sums, so a damaged snapshot in a merge pipeline is
        // attributable to a specific region of a specific file instead of
        // surfacing as an anonymous "cold cache".
        return Err(DecodeError::new(
            ENVELOPE_HEADER_LEN,
            format!(
                "checksum mismatch over payload bytes {}..{} (stored {sum:#018x}, computed \
                 {computed:#018x})",
                ENVELOPE_HEADER_LEN,
                bytes.len(),
            ),
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        42u8.encode(&mut w);
        7u32.encode(&mut w);
        u64::MAX.encode(&mut w);
        123usize.encode(&mut w);
        true.encode(&mut w);
        (-0.0f64).encode(&mut w);
        f64::NAN.encode(&mut w);
        "héllo".to_string().encode(&mut w);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 42);
        assert_eq!(u32::decode(&mut r).unwrap(), 7);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(usize::decode(&mut r).unwrap(), 123);
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(f64::decode(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(f64::decode(&mut r).unwrap().is_nan());
        assert_eq!(String::decode(&mut r).unwrap(), "héllo");
        assert!(r.is_done());
    }

    #[test]
    fn containers_round_trip() {
        let v =
            (vec![vec![1usize, 2], vec![]], Some((3u64, "x".to_string())), Ok::<f64, String>(2.5));
        let bytes = v.to_bytes();
        let back =
            <(Vec<Vec<usize>>, Option<(u64, String)>, Result<f64, String>)>::from_bytes(&bytes)
                .unwrap();
        assert_eq!(back.0, v.0);
        assert_eq!(back.1, v.1);
        assert_eq!(back.2, v.2);
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let bytes = vec![vec![1u64; 10]; 3].to_bytes();
        for cut in 0..bytes.len() {
            let _ = <Vec<Vec<u64>>>::from_bytes(&bytes[..cut]).unwrap_err();
        }
    }

    #[test]
    fn hostile_length_claims_are_rejected() {
        // A vec claiming u64::MAX elements must not allocate.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let err = <Vec<u8>>::from_bytes(&w.into_bytes()).unwrap_err();
        assert!(err.what.contains("exceeds"), "{err}");
    }

    #[test]
    fn invalid_tags_are_rejected() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(<Option<u8>>::from_bytes(&[9]).is_err());
        assert!(<Result<u8, u8>>::from_bytes(&[7]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected_by_from_bytes() {
        let mut bytes = 1u64.to_bytes();
        bytes.push(0);
        assert!(u64::from_bytes(&bytes).is_err());
    }

    #[test]
    fn envelope_round_trips_and_detects_damage() {
        const MAGIC: [u8; 8] = *b"FASTTEST";
        let payload = b"hello snapshot".to_vec();
        let file = write_envelope(MAGIC, 3, &payload);
        assert_eq!(read_envelope(MAGIC, 3, &file).unwrap(), &payload[..]);

        // Wrong magic.
        assert!(read_envelope(*b"XXXXXXXX", 3, &file).is_err());
        // Version skew.
        assert!(read_envelope(MAGIC, 4, &file).is_err());
        // Truncation — every prefix must fail.
        for cut in 0..file.len() {
            assert!(read_envelope(MAGIC, 3, &file[..cut]).is_err(), "cut {cut}");
        }
        // Flipped payload bit: checksum catches it, and the error names the
        // covered byte range plus both sums (debuggable snapshot damage).
        let mut flipped = file.clone();
        *flipped.last_mut().unwrap() ^= 0x01;
        let err = read_envelope(MAGIC, 3, &flipped).unwrap_err();
        assert_eq!(err.offset, ENVELOPE_HEADER_LEN);
        assert!(
            err.what.contains(&format!(
                "checksum mismatch over payload bytes {ENVELOPE_HEADER_LEN}..{}",
                flipped.len()
            )),
            "{err}"
        );
        assert!(err.what.contains("stored 0x") && err.what.contains("computed 0x"), "{err}");
        // Foreign-endian damage: byte-swapping the whole file breaks the
        // magic; byte-swapping just the payload breaks the checksum.
        let mut swapped = file.clone();
        swapped[ENVELOPE_HEADER_LEN..].reverse();
        assert!(read_envelope(MAGIC, 3, &swapped).is_err());
    }

    #[test]
    fn fnv1a_reference_values() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
