//! Offline shim for `serde`.
//!
//! The repo only uses serde as `#[derive(Serialize, Deserialize)]` markers —
//! nothing actually serializes (there is no `serde_json` in the tree). The
//! shim therefore exposes the two trait names with blanket impls plus no-op
//! derive macros, which is the entire surface the codebase touches. Swap the
//! `[workspace.dependencies]` path entries for registry versions to restore
//! real serialization.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
