//! Offline shim for `serde`.
//!
//! Two halves:
//!
//! * **Marker traits** ([`Serialize`] / [`Deserialize`]) with blanket impls
//!   plus no-op derive macros — the surface the `#[derive(Serialize,
//!   Deserialize)]` attributes across the workspace touch. Swap the
//!   `[workspace.dependencies]` path entries for registry versions to
//!   restore real serde-data-model serialization for those types.
//! * **The [`bin`] module** — a real (if minimal) binary codec with
//!   versioned, checksummed envelopes. Because the derives above generate
//!   no code, every durable artifact in the workspace (checkpoints, the
//!   evaluation-cache snapshot) implements [`bin::Encode`] /
//!   [`bin::Decode`] by hand; the explicit field-by-field impls double as
//!   the format specification.

pub mod bin;

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
