//! Offline shim for `serde_derive`.
//!
//! The workspace's `serde` shim gives `Serialize`/`Deserialize` blanket
//! impls, so the derives have nothing to generate: they accept the item and
//! emit no code. This keeps every `#[derive(Serialize, Deserialize)]` in the
//! tree compiling without the real (network-fetched) serde stack.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
