//! Golden op-for-op identity tests for the model zoo.
//!
//! The fingerprints below were captured from the hand-coded graph
//! construction that predates `fast_ir::builder`. The builder-based rewrite
//! must reproduce every graph bit-for-bit — same node names, ops, geometry,
//! groups and outputs (`structural_fingerprint`) and the same `LoopNest`
//! stream presented to the mapper (`loop_nest_fingerprint`) — so existing
//! evaluation-cache snapshots replay warm: `OpKey`s derive from the loop
//! nests, not from how the construction code happens to be factored.

use fast_models::Workload;

/// `(workload name, batch, structural fingerprint, loop-nest fingerprint)`
/// captured from the pre-builder hand-coded constructors.
const GOLDEN: &[(&str, u64, u64, u64)] = &[
    ("EfficientNet-B0", 1, 0x737c_dae5_921b_e68b, 0x0ba9_dc48_e6fa_d25d),
    ("EfficientNet-B0", 4, 0x112b_940b_3bca_6e80, 0xa8b0_e9da_3082_ad63),
    ("EfficientNet-B1", 1, 0x9530_905a_e7bf_e764, 0xd003_a61d_2a8a_a4e4),
    ("EfficientNet-B1", 4, 0xbef5_ff47_6b2b_68b6, 0x3822_73db_f0a5_421e),
    ("EfficientNet-B2", 1, 0x12d1_2020_0d63_de89, 0x94f6_3f3a_9432_8372),
    ("EfficientNet-B2", 4, 0x9fba_4d14_e878_36b3, 0x2263_acc2_3dd7_a6fc),
    ("EfficientNet-B3", 1, 0x1221_62b5_c5ad_4628, 0xf331_a737_6b15_f1e7),
    ("EfficientNet-B3", 4, 0x45c2_7fc1_96a3_3665, 0xeb64_8580_bea9_a416),
    ("EfficientNet-B4", 1, 0x9a7c_acb6_72ba_4c3a, 0x0183_cc75_85a9_4b1f),
    ("EfficientNet-B4", 4, 0xfb45_7d28_997c_9509, 0x19e7_9ef9_a02c_6bb2),
    ("EfficientNet-B5", 1, 0x052a_44fb_dcb5_d184, 0xab01_124e_d72c_dfef),
    ("EfficientNet-B5", 4, 0xe500_8b01_9a42_f7d8, 0x13f4_6378_4fd8_b6fe),
    ("EfficientNet-B6", 1, 0x41b1_ca9f_805d_d95e, 0x0827_15cb_167b_befc),
    ("EfficientNet-B6", 4, 0x055e_486c_34b4_d07c, 0x5d46_4fd9_a888_c2d1),
    ("EfficientNet-B7", 1, 0xf730_7caf_ce0e_5378, 0x0d81_730e_f95d_e320),
    ("EfficientNet-B7", 4, 0xc0c6_9386_dc92_36a6, 0x05ab_1bae_15f8_5d3e),
    ("ResNet50v2", 1, 0x0ae5_cb59_ba9e_a250, 0x29a4_4894_5246_62c2),
    ("ResNet50v2", 4, 0xef21_5c3c_3b65_f5a0, 0x1de6_39fd_3253_d6a8),
    ("OCR-RPN", 1, 0x8cbe_3675_8ded_9b97, 0x5db4_658e_49ce_e131),
    ("OCR-RPN", 4, 0x80ec_9d0c_9ede_30e0, 0x2cad_2215_87ae_2efd),
    ("OCR-Recognizer", 1, 0xd652_bf22_d09c_8aa6, 0x7afc_28bd_3f47_b360),
    ("OCR-Recognizer", 4, 0x8161_55c4_a383_ca0a, 0xa73e_7100_82ef_57e9),
    ("BERT-128", 1, 0x13bf_b7e0_1de4_c34f, 0x87b9_fe9f_5e98_1115),
    ("BERT-128", 4, 0x42f2_38f9_69fb_dd61, 0x9252_bb3f_04ec_0fc5),
    ("BERT-1024", 1, 0xd940_6bb0_5847_abc1, 0x098b_7a69_e607_0515),
    ("BERT-1024", 4, 0x95bf_f999_cc6e_a7a3, 0x16fc_1bbd_0b7f_f935),
];

fn workload_by_name(name: &str) -> Workload {
    Workload::suite()
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("unknown golden workload {name}"))
}

/// Every rebuilt graph matches its pre-refactor fingerprint exactly.
#[test]
fn rebuilt_graphs_match_hand_coded_fingerprints() {
    for &(name, batch, structural, nests) in GOLDEN {
        let g = workload_by_name(name).build(batch).unwrap();
        assert_eq!(
            g.structural_fingerprint(),
            structural,
            "{name} (batch {batch}): node stream diverged from the hand-coded graph",
        );
        assert_eq!(
            g.loop_nest_fingerprint(),
            nests,
            "{name} (batch {batch}): LoopNest stream diverged — OpKeys would go cold",
        );
    }
}

/// The golden table covers the whole 13-workload suite at both batches.
#[test]
fn golden_table_covers_the_suite() {
    for w in Workload::suite() {
        for batch in [1, 4] {
            assert!(
                GOLDEN.iter().any(|&(n, b, _, _)| n == w.name() && b == batch),
                "no golden fingerprint for {} at batch {batch}",
                w.name(),
            );
        }
    }
}
