//! # fast-models — the FAST paper's workload zoo
//!
//! Builds the inference graphs the paper evaluates (§6.1 "Workloads"):
//!
//! * the full EfficientNet family B0–B7 ([`EfficientNet`]),
//! * BERT-Base at short (128) and long (1024) sequence lengths
//!   ([`BertConfig`]), plus arbitrary lengths for the Figure-5 sweep,
//! * ResNet-50v2 ([`resnet::build_resnet50v2`]),
//! * two synthetic stand-ins for the production OCR pipeline
//!   ([`ocr::build_ocr_rpn`], [`ocr::build_ocr_recognizer`]) — see the module
//!   docs for the substitution rationale,
//! * four modern serving families beyond the paper's suite: LLM prefill and
//!   decode ([`LlmConfig`]), DLRM-style recommendation ([`DlrmConfig`]) and
//!   a latent-diffusion UNet block ([`diffusion::build_unet_block`]).
//!
//! All graphs are constructed through [`fast_ir::GraphBuilder`]; adding a
//! workload is a page of fluent layer calls (see the `custom_workload`
//! example at the repo root).
//!
//! [`Workload`] is the uniform handle the search framework consumes: it can
//! build a graph at any batch size and names itself consistently across
//! reports. [`WorkloadDomain`] groups workloads into the named per-model and
//! multi-model search domains (§6.2) the scenario-sweep engine crosses with
//! budgets and objectives.
//!
//! ```
//! use fast_models::Workload;
//!
//! let g = Workload::EfficientNet(fast_models::EfficientNet::B0).build(1)?;
//! assert!(g.total_flops() > 500_000_000);
//! # Ok::<(), fast_ir::IrError>(())
//! ```

pub mod bert;
pub mod diffusion;
pub mod dlrm;
pub mod efficientnet;
pub mod llm;
pub mod ocr;
mod persist;
pub mod resnet;

pub use bert::{BertComponent, BertConfig};
pub use dlrm::DlrmConfig;
pub use efficientnet::EfficientNet;
pub use llm::LlmConfig;

use fast_ir::{Graph, IrError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A benchmark workload identity: knows its name and how to build its graph
/// at any batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// One of the EfficientNet variants.
    EfficientNet(EfficientNet),
    /// BERT-Base at a given sequence length.
    Bert {
        /// Input sequence length in tokens.
        seq_len: u64,
    },
    /// ResNet-50v2 at 224×224.
    ResNet50,
    /// Synthetic Mask R-CNN RPN stage of the OCR pipeline.
    OcrRpn,
    /// Synthetic LSTM-based OCR line recognizer.
    OcrRecognizer,
    /// LLM prompt-processing phase at a given prompt length
    /// ([`LlmConfig::prefill`]).
    LlmPrefill {
        /// Prompt length in tokens.
        seq_len: u64,
    },
    /// LLM token-generation phase against a KV cache of a given length
    /// ([`LlmConfig::decode`]).
    LlmDecode {
        /// KV-cache context length in tokens.
        context: u64,
    },
    /// DLRM-style recommendation model ([`DlrmConfig::build`]).
    Dlrm,
    /// Latent-diffusion UNet block ([`diffusion::build_unet_block`]).
    DiffusionUNet,
}

impl Workload {
    /// The full 13-workload benchmark suite of Figures 9/10: EfficientNet
    /// B0–B7, ResNet-50, OCR-RPN, OCR-Recognizer, BERT-128 and BERT-1024.
    #[must_use]
    pub fn suite() -> Vec<Workload> {
        let mut v: Vec<Workload> =
            EfficientNet::ALL.iter().map(|&e| Workload::EfficientNet(e)).collect();
        v.extend([
            Workload::ResNet50,
            Workload::OcrRpn,
            Workload::OcrRecognizer,
            Workload::Bert { seq_len: 128 },
            Workload::Bert { seq_len: 1024 },
        ]);
        v
    }

    /// The reduced 5-workload suite used for the multi-workload search
    /// ("GeoMean-5" in Figure 9): EfficientNet-B7, ResNet-50, OCR-RPN,
    /// OCR-Recognizer, BERT-1024.
    #[must_use]
    pub fn suite5() -> Vec<Workload> {
        vec![
            Workload::EfficientNet(EfficientNet::B7),
            Workload::ResNet50,
            Workload::OcrRpn,
            Workload::OcrRecognizer,
            Workload::Bert { seq_len: 1024 },
        ]
    }

    /// The four modern serving families added on top of the paper's suite:
    /// LLM prefill (512-token prompt), LLM decode (2048-token KV cache),
    /// DLRM and a diffusion-UNet block.
    #[must_use]
    pub fn serving_suite() -> Vec<Workload> {
        vec![
            Workload::LlmPrefill { seq_len: 512 },
            Workload::LlmDecode { context: 2048 },
            Workload::Dlrm,
            Workload::DiffusionUNet,
        ]
    }

    /// Workload display name matching the paper's figures.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Workload::EfficientNet(v) => v.name().to_string(),
            Workload::Bert { seq_len } => format!("BERT-{seq_len}"),
            Workload::ResNet50 => "ResNet50v2".to_string(),
            Workload::OcrRpn => "OCR-RPN".to_string(),
            Workload::OcrRecognizer => "OCR-Recognizer".to_string(),
            Workload::LlmPrefill { seq_len } => format!("LLM-prefill-{seq_len}"),
            Workload::LlmDecode { context } => format!("LLM-decode-{context}"),
            Workload::Dlrm => "DLRM".to_string(),
            Workload::DiffusionUNet => "Diffusion-UNet".to_string(),
        }
    }

    /// Builds the workload graph at `batch`.
    ///
    /// # Errors
    /// Propagates IR construction errors (none occur for in-tree workloads).
    pub fn build(&self, batch: u64) -> Result<Graph, IrError> {
        match self {
            Workload::EfficientNet(v) => v.build(batch),
            Workload::Bert { seq_len } => BertConfig::base().build(batch, *seq_len),
            Workload::ResNet50 => resnet::build_resnet50v2(batch, 224),
            Workload::OcrRpn => ocr::build_ocr_rpn(batch),
            Workload::OcrRecognizer => ocr::build_ocr_recognizer(batch),
            Workload::LlmPrefill { seq_len } => LlmConfig::serving().prefill(batch, *seq_len),
            Workload::LlmDecode { context } => LlmConfig::serving().decode(batch, *context),
            Workload::Dlrm => DlrmConfig::serving().build(batch),
            Workload::DiffusionUNet => diffusion::build_unet_block(batch),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A named set of workloads searched *together* — the unit the paper calls a
/// domain (§6.2): a per-model domain holds one workload (Figures 9/10's
/// per-model columns), a multi-model domain holds several and is scored by
/// geomean ("GeoMean-5", "GeoMean-13").
///
/// The scenario-sweep engine (`fast-core`) crosses domains with budgets and
/// objectives; keeping the definition here lets every layer name domains
/// consistently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadDomain {
    /// Display name ("EfficientNet-B7", "GeoMean-5", …).
    pub name: String,
    /// The workloads scored together (geomean across them).
    pub workloads: Vec<Workload>,
}

impl WorkloadDomain {
    /// A per-model domain: one workload, named after it.
    #[must_use]
    pub fn per_model(workload: Workload) -> Self {
        WorkloadDomain { name: workload.name(), workloads: vec![workload] }
    }

    /// A multi-model domain with an explicit name.
    ///
    /// # Panics
    /// Panics if `workloads` is empty — a domain must score something.
    #[must_use]
    pub fn multi_model(name: impl Into<String>, workloads: Vec<Workload>) -> Self {
        assert!(!workloads.is_empty(), "a workload domain cannot be empty");
        WorkloadDomain { name: name.into(), workloads }
    }

    /// The 13 per-model domains of the full benchmark suite.
    #[must_use]
    pub fn per_model_suite() -> Vec<WorkloadDomain> {
        Workload::suite().into_iter().map(WorkloadDomain::per_model).collect()
    }

    /// The paper's reduced multi-model search domain ("GeoMean-5").
    #[must_use]
    pub fn geomean5() -> Self {
        WorkloadDomain::multi_model("GeoMean-5", Workload::suite5())
    }

    /// The full 13-workload multi-model domain ("GeoMean-13").
    #[must_use]
    pub fn geomean13() -> Self {
        WorkloadDomain::multi_model("GeoMean-13", Workload::suite())
    }

    /// The modern-serving multi-model domain ("Serving-4"): LLM prefill,
    /// LLM decode, DLRM and the diffusion-UNet block searched together.
    #[must_use]
    pub fn serving4() -> Self {
        WorkloadDomain::multi_model("Serving-4", Workload::serving_suite())
    }

    /// Every named domain the stack knows: the 13 paper per-model domains,
    /// the 4 serving per-model domains, and the three multi-model domains
    /// ("GeoMean-5", "GeoMean-13", "Serving-4").
    #[must_use]
    pub fn registry() -> Vec<WorkloadDomain> {
        let mut v = WorkloadDomain::per_model_suite();
        v.extend(Workload::serving_suite().into_iter().map(WorkloadDomain::per_model));
        v.push(WorkloadDomain::geomean5());
        v.push(WorkloadDomain::geomean13());
        v.push(WorkloadDomain::serving4());
        v
    }

    /// Looks up a domain from [`WorkloadDomain::registry`] by display name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<WorkloadDomain> {
        WorkloadDomain::registry().into_iter().find(|d| d.name == name)
    }
}

impl fmt::Display for WorkloadDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::GraphStats;

    #[test]
    fn suite_has_thirteen_workloads() {
        let s = Workload::suite();
        assert_eq!(s.len(), 13);
    }

    #[test]
    fn suite5_matches_paper() {
        let s = Workload::suite5();
        assert_eq!(s.len(), 5);
        assert!(s.contains(&Workload::EfficientNet(EfficientNet::B7)));
        assert!(s.contains(&Workload::Bert { seq_len: 1024 }));
    }

    #[test]
    fn all_suite_workloads_build_and_validate() {
        for w in Workload::suite().into_iter().chain(Workload::serving_suite()) {
            let g = w.build(1).unwrap_or_else(|e| panic!("{w}: {e}"));
            g.validate().unwrap_or_else(|e| panic!("{w}: {e}"));
            let stats = GraphStats::of(&g);
            assert!(stats.flops > 0, "{w} has zero flops");
            assert!(stats.matrix_ops > 0, "{w} has no matrix ops");
        }
    }

    #[test]
    fn serving_suite_and_registry_cover_new_families() {
        let s = Workload::serving_suite();
        assert_eq!(s.len(), 4);
        assert_eq!(WorkloadDomain::serving4().workloads, s);

        let reg = WorkloadDomain::registry();
        assert_eq!(reg.len(), 13 + 4 + 3);
        let names: Vec<&str> = reg.iter().map(|d| d.name.as_str()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "registry names must be unique");

        assert_eq!(WorkloadDomain::by_name("Serving-4").unwrap(), WorkloadDomain::serving4());
        assert_eq!(WorkloadDomain::by_name("DLRM").unwrap().workloads, vec![Workload::Dlrm]);
        assert!(WorkloadDomain::by_name("nope").is_none());
    }

    #[test]
    fn domains_cover_suite_shapes() {
        assert_eq!(WorkloadDomain::per_model_suite().len(), 13);
        assert!(WorkloadDomain::per_model_suite()
            .iter()
            .all(|d| d.workloads.len() == 1 && d.name == d.workloads[0].name()));
        assert_eq!(WorkloadDomain::geomean5().workloads, Workload::suite5());
        assert_eq!(WorkloadDomain::geomean13().workloads, Workload::suite());
        assert_eq!(WorkloadDomain::geomean5().to_string(), "GeoMean-5");
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_multi_model_domain_panics() {
        let _ = WorkloadDomain::multi_model("empty", vec![]);
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = Workload::suite().iter().map(Workload::name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
