//! Latent-diffusion UNet block workload (Rombach et al., 2022 style).
//!
//! Image-generation serving is dominated by repeated UNet evaluations over
//! a latent grid. This workload models one down/up round trip of a small
//! latent UNet: two time-conditioned residual conv blocks around a
//! self-attention stage at the full latent resolution, a strided-conv
//! downsample, and a pixel-shuffle upsample with a UNet skip connection.
//!
//! The mix is what makes it interesting for domain search: large
//! square-ish convolutions (systolic-friendly), a 1024-token attention
//! block (the BERT pattern, via [`GraphBuilder::attention_block`]), and
//! per-channel time-embedding broadcasts (`[B,C]` against `[B,H,W,C]`) —
//! all in one graph.

use fast_ir::{DType, EwKind, Graph, GraphBuilder, IrError, Tensor};

/// Latent channels throughout the block.
pub const CHANNELS: u64 = 256;
/// Latent spatial resolution (`RES × RES`).
pub const RES: u64 = 32;
/// Timestep-embedding input width.
pub const TIME_DIM: u64 = 1024;
/// Attention heads at the full-resolution stage.
pub const HEADS: u64 = 8;

/// Builds the UNet block at `batch` latents.
///
/// # Errors
/// Propagates IR construction errors.
pub fn build_unet_block(batch: u64) -> Result<Graph, IrError> {
    let mut b = GraphBuilder::new("Diffusion-UNet", DType::Bf16);
    let latent = b.input("latent", [batch, RES, RES, CHANNELS]);

    // Timestep embedding MLP, shared by both residual blocks.
    let t_in = b.input("timestep", [batch, TIME_DIM]);
    let t_fc1 = b.linear("time.fc1", t_in, TIME_DIM);
    let t_act = b.swish("time.swish", t_fc1);
    let temb = b.linear("time.fc2", t_act, CHANNELS);

    // Residual block at full resolution, then self-attention over the grid.
    b.begin_group("res1".to_string());
    let r1 = res_block(&mut b, "res1", latent, temb);
    b.end_group();

    b.begin_group("attn".to_string());
    let tokens = b.reshape("attn.flatten", r1, [batch, RES * RES, CHANNELS]);
    let attended = b.attention_block("mid", tokens, HEADS);
    let a1 = b.reshape("attn.unflatten", attended, [batch, RES, RES, CHANNELS]);
    b.end_group();

    // Down: strided conv halves the grid; second residual block; up:
    // 1×1 conv to 4C then pixel-shuffle back to full resolution.
    b.begin_group("down".to_string());
    let down = b.conv2d("down.conv", a1, CHANNELS, 3, 2);
    b.end_group();

    b.begin_group("res2".to_string());
    let r2 = res_block(&mut b, "res2", down, temb);
    b.end_group();

    b.begin_group("up".to_string());
    let wide = b.conv2d("up.conv", r2, 4 * CHANNELS, 1, 1);
    let up = b.reshape("up.shuffle", wide, [batch, RES, RES, CHANNELS]);
    let skip = b.residual("up.skip", up, a1);
    b.end_group();

    // Output head.
    b.begin_group("out".to_string());
    let on = b.layer_norm("out.norm", skip);
    let oa = b.swish("out.swish", on);
    let out = b.conv2d("out.conv", oa, CHANNELS, 3, 1);
    b.end_group();
    b.output(out);
    b.finish()
}

/// One time-conditioned residual block: norm → swish → 3×3 conv →
/// `+time` → norm → swish → 3×3 conv → `+input`.
fn res_block(b: &mut GraphBuilder, name: &str, x: Tensor, temb: Tensor) -> Tensor {
    let ch = b.dim(x, 3);
    let n1 = b.layer_norm(format!("{name}.norm1"), x);
    let a1 = b.swish(format!("{name}.swish1"), n1);
    let c1 = b.conv2d(format!("{name}.conv1"), a1, ch, 3, 1);
    // Per-channel conditioning: [B,C] broadcast against [B,H,W,C].
    let t = b.binary(format!("{name}.temb"), EwKind::Add, c1, temb);
    let n2 = b.layer_norm(format!("{name}.norm2"), t);
    let a2 = b.swish(format!("{name}.swish2"), n2);
    let c2 = b.conv2d(format!("{name}.conv2"), a2, ch, 3, 1);
    b.residual(format!("{name}.add"), c2, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::GraphStats;

    #[test]
    fn unet_block_builds_and_mixes_op_classes() {
        let g = build_unet_block(1).unwrap();
        g.validate().unwrap();
        let s = GraphStats::of(&g);
        // Convs dominate but attention is a real fraction of the work.
        let conv = s.flop_fraction("Conv2D");
        let bmm = s.flop_fraction("BatchMatMul");
        let mm = s.flop_fraction("MatMul");
        assert!(conv > 0.4, "conv fraction {conv}");
        assert!(bmm + mm > 0.1, "attention fraction {}", bmm + mm);
    }

    #[test]
    fn attention_runs_over_the_full_grid() {
        let g = build_unet_block(2).unwrap();
        let qk = g.nodes().find(|n| n.name() == "mid.attn.qk").unwrap();
        assert_eq!(qk.shape().dims(), &[2 * HEADS, RES * RES, RES * RES]);
    }

    #[test]
    fn pixel_shuffle_restores_resolution_for_the_skip() {
        let g = build_unet_block(1).unwrap();
        let down = g.nodes().find(|n| n.name() == "down.conv").unwrap();
        assert_eq!(down.shape().dims(), &[1, RES / 2, RES / 2, CHANNELS]);
        let skip = g.nodes().find(|n| n.name() == "up.skip").unwrap();
        assert_eq!(skip.shape().dims(), &[1, RES, RES, CHANNELS]);
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let f1 = build_unet_block(1).unwrap().total_flops();
        let f3 = build_unet_block(3).unwrap().total_flops();
        assert_eq!(f3, 3 * f1);
    }
}
