//! ResNet-50v2 graph builder (He et al., 2016 — pre-activation variant).
//!
//! ResNet-50 uses standard `Conv2D` bottleneck blocks and maps well onto
//! large systolic arrays; the paper uses it as the "already efficient" CNN
//! baseline. Batch-norm parameters are folded into the convolutions
//! (inference-time standard), and the v2 pre-activation ReLUs are kept as
//! explicit element-wise ops.

use fast_ir::{Conv2dGeom, DType, Graph, IrError, MatMulGeom, NodeId, PoolGeom, PoolKind};

/// Stage configuration: `(bottleneck width, blocks, first-block stride)`.
const STAGES: [(u64, u64, u64); 4] = [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)];

/// Builds ResNet-50v2 at `batch` for `resolution`×`resolution` inputs
/// (ImageNet standard is 224).
///
/// # Errors
/// Propagates IR construction errors.
pub fn build_resnet50v2(batch: u64, resolution: u64) -> Result<Graph, IrError> {
    let mut g = Graph::new("ResNet50v2", DType::Bf16);
    let x = g.input("images", [batch, resolution, resolution, 3]);

    // Stem: 7x7/2 conv + 3x3/2 max pool.
    let mut h = resolution.div_ceil(2);
    let mut w = h;
    let stem = g.conv2d("stem.conv", x, Conv2dGeom::same(resolution, resolution, 3, 64, 7, 2))?;
    let stem_relu = g.relu("stem.relu", stem)?;
    let pool = g.pool(
        "stem.pool",
        stem_relu,
        PoolGeom { kind: PoolKind::Max, in_h: h, in_w: w, channels: 64, k: 3, stride: 2 },
    )?;
    h = h.div_ceil(2);
    w = w.div_ceil(2);

    let mut cur = pool;
    let mut in_ch = 64;
    for (stage, &(width, blocks, stride)) in STAGES.iter().enumerate() {
        let out_ch = width * 4;
        for b in 0..blocks {
            let s = if b == 0 { stride } else { 1 };
            let name = format!("s{stage}b{b}");
            g.begin_group(name.clone());
            let (next, nh, nw) = bottleneck_v2(&mut g, &name, cur, h, w, in_ch, width, out_ch, s)?;
            g.end_group();
            cur = next;
            h = nh;
            w = nw;
            in_ch = out_ch;
        }
    }

    let final_relu = g.relu("post.relu", cur)?;
    let gap = g.global_avg_pool("post.gap", final_relu)?;
    let flat = g.reshape("post.flat", gap, [batch, in_ch])?;
    let logits = g.matmul("post.fc", flat, MatMulGeom { k: in_ch, n: 1000 })?;
    g.mark_output(logits);
    Ok(g)
}

/// Pre-activation bottleneck: relu → 1×1 reduce → relu → 3×3 → relu →
/// 1×1 expand, plus identity or 1×1-projection shortcut.
#[allow(clippy::too_many_arguments)]
fn bottleneck_v2(
    g: &mut Graph,
    name: &str,
    input: NodeId,
    h: u64,
    w: u64,
    in_ch: u64,
    width: u64,
    out_ch: u64,
    stride: u64,
) -> Result<(NodeId, u64, u64), IrError> {
    let pre = g.relu(format!("{name}.preact"), input)?;
    let c1 = g.conv2d(format!("{name}.conv1"), pre, Conv2dGeom::same(h, w, in_ch, width, 1, 1))?;
    let r1 = g.relu(format!("{name}.relu1"), c1)?;
    let c2 =
        g.conv2d(format!("{name}.conv2"), r1, Conv2dGeom::same(h, w, width, width, 3, stride))?;
    let oh = h.div_ceil(stride);
    let ow = w.div_ceil(stride);
    let r2 = g.relu(format!("{name}.relu2"), c2)?;
    let c3 =
        g.conv2d(format!("{name}.conv3"), r2, Conv2dGeom::same(oh, ow, width, out_ch, 1, 1))?;

    let shortcut = if stride != 1 || in_ch != out_ch {
        g.conv2d(format!("{name}.shortcut"), pre, Conv2dGeom::same(h, w, in_ch, out_ch, 1, stride))?
    } else {
        input
    };
    let out = g.residual_add(format!("{name}.add"), c3, shortcut)?;
    Ok((out, oh, ow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::GraphStats;

    #[test]
    fn resnet50_structure() {
        let g = build_resnet50v2(1, 224).unwrap();
        g.validate().unwrap();
        assert_eq!(g.group_names().len(), 16); // 3+4+6+3 blocks
                                               // ≈ 25.5 M parameters.
        let params = g.total_weight_bytes() as f64 / 2.0 / 1e6;
        assert!((23.0..28.0).contains(&params), "params {params}M");
        // ≈ 4.1 GMACs -> 8.2 GFLOPs.
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((7.0..10.0).contains(&gflops), "flops {gflops}");
    }

    #[test]
    fn no_depthwise_ops() {
        let g = build_resnet50v2(1, 224).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.flop_fraction("DepthwiseConv2dNative"), 0.0);
        assert!(s.flop_fraction("Conv2D") > 0.95);
    }

    #[test]
    fn batch_linearity() {
        let f1 = build_resnet50v2(1, 224).unwrap().total_flops();
        let f4 = build_resnet50v2(4, 224).unwrap().total_flops();
        assert_eq!(f4, 4 * f1);
    }
}
