//! ResNet-50v2 graph builder (He et al., 2016 — pre-activation variant).
//!
//! ResNet-50 uses standard `Conv2D` bottleneck blocks and maps well onto
//! large systolic arrays; the paper uses it as the "already efficient" CNN
//! baseline. Batch-norm parameters are folded into the convolutions
//! (inference-time standard), and the v2 pre-activation ReLUs are kept as
//! explicit element-wise ops.

use fast_ir::{DType, Graph, GraphBuilder, IrError, Tensor};

/// Stage configuration: `(bottleneck width, blocks, first-block stride)`.
const STAGES: [(u64, u64, u64); 4] = [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)];

/// Builds ResNet-50v2 at `batch` for `resolution`×`resolution` inputs
/// (ImageNet standard is 224).
///
/// # Errors
/// Propagates IR construction errors.
pub fn build_resnet50v2(batch: u64, resolution: u64) -> Result<Graph, IrError> {
    let mut b = GraphBuilder::new("ResNet50v2", DType::Bf16);
    let x = b.input("images", [batch, resolution, resolution, 3]);

    // Stem: 7x7/2 conv + 3x3/2 max pool.
    let stem = b.conv2d("stem.conv", x, 64, 7, 2);
    let stem_relu = b.relu("stem.relu", stem);
    let mut cur = b.max_pool("stem.pool", stem_relu, 3, 2);

    for (stage, &(width, blocks, stride)) in STAGES.iter().enumerate() {
        for blk in 0..blocks {
            let s = if blk == 0 { stride } else { 1 };
            let name = format!("s{stage}b{blk}");
            b.begin_group(name.clone());
            cur = bottleneck_v2(&mut b, &name, cur, width, width * 4, s);
            b.end_group();
        }
    }

    let final_relu = b.relu("post.relu", cur);
    let gap = b.global_avg_pool("post.gap", final_relu);
    let channels = b.dim(gap, 3);
    let flat = b.reshape("post.flat", gap, [batch, channels]);
    let logits = b.linear("post.fc", flat, 1000);
    b.output(logits);
    b.finish()
}

/// Pre-activation bottleneck: relu → 1×1 reduce → relu → 3×3 → relu →
/// 1×1 expand, plus identity or 1×1-projection shortcut.
fn bottleneck_v2(
    b: &mut GraphBuilder,
    name: &str,
    input: Tensor,
    width: u64,
    out_ch: u64,
    stride: u64,
) -> Tensor {
    let in_ch = b.dim(input, 3);
    let pre = b.relu(format!("{name}.preact"), input);
    let c1 = b.conv2d(format!("{name}.conv1"), pre, width, 1, 1);
    let r1 = b.relu(format!("{name}.relu1"), c1);
    let c2 = b.conv2d(format!("{name}.conv2"), r1, width, 3, stride);
    let r2 = b.relu(format!("{name}.relu2"), c2);
    let c3 = b.conv2d(format!("{name}.conv3"), r2, out_ch, 1, 1);

    let shortcut = if stride != 1 || in_ch != out_ch {
        b.conv2d(format!("{name}.shortcut"), pre, out_ch, 1, stride)
    } else {
        input
    };
    b.residual(format!("{name}.add"), c3, shortcut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::GraphStats;

    #[test]
    fn resnet50_structure() {
        let g = build_resnet50v2(1, 224).unwrap();
        g.validate().unwrap();
        assert_eq!(g.group_names().len(), 16); // 3+4+6+3 blocks
                                               // ≈ 25.5 M parameters.
        let params = g.total_weight_bytes() as f64 / 2.0 / 1e6;
        assert!((23.0..28.0).contains(&params), "params {params}M");
        // ≈ 4.1 GMACs -> 8.2 GFLOPs.
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((7.0..10.0).contains(&gflops), "flops {gflops}");
    }

    #[test]
    fn no_depthwise_ops() {
        let g = build_resnet50v2(1, 224).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.flop_fraction("DepthwiseConv2dNative"), 0.0);
        assert!(s.flop_fraction("Conv2D") > 0.95);
    }

    #[test]
    fn batch_linearity() {
        let f1 = build_resnet50v2(1, 224).unwrap().total_flops();
        let f4 = build_resnet50v2(4, 224).unwrap().total_flops();
        assert_eq!(f4, 4 * f1);
    }
}
