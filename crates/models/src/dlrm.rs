//! DLRM-style recommendation workload (Naumov et al., 2019).
//!
//! Recommendation serving is the canonical *embedding-bound* datacenter
//! workload: almost all parameter bytes live in sparse embedding tables
//! that are gathered (not multiplied), the dense compute is a pair of
//! small MLPs, and the characteristic op in between is the pairwise
//! feature-interaction einsum. FLOP-wise the model is tiny; byte-wise it is
//! enormous — the opposite corner of the roofline from the CNN zoo, which
//! is exactly why the domain-search literature includes it.
//!
//! Structure (one serving pass):
//! dense features → bottom MLP → `[B,D]`; per-table id gathers → `[B,D]`
//! each; all `F+1` feature vectors stack to `[B,F+1,D]` and interact as
//! `X·Xᵀ` (a batched matmul), the upper triangle flattens, concatenates
//! with the bottom-MLP output and feeds the top MLP ending in a sigmoid
//! CTR prediction.

use fast_ir::{DType, Graph, GraphBuilder, IrError};
use serde::{Deserialize, Serialize};

/// DLRM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Number of sparse embedding tables.
    pub tables: u64,
    /// Rows per embedding table.
    pub vocab: u64,
    /// Embedding (and bottom-MLP output) width.
    pub dim: u64,
    /// Dense input feature count.
    pub dense_features: u64,
}

impl DlrmConfig {
    /// The serving-benchmark configuration: 8 tables × 1 M rows × 64 wide
    /// (≈1 GB of embeddings in bf16) with the Criteo-style 13 dense features.
    #[must_use]
    pub const fn serving() -> Self {
        DlrmConfig { tables: 8, vocab: 1_000_000, dim: 64, dense_features: 13 }
    }

    /// Builds the serving graph at `batch`.
    ///
    /// # Errors
    /// Propagates IR construction errors.
    pub fn build(&self, batch: u64) -> Result<Graph, IrError> {
        let mut b = GraphBuilder::new("DLRM", DType::Bf16);

        // Bottom MLP over the dense features, ending at the embedding width.
        let dense = b.input("dense", [batch, self.dense_features]);
        b.begin_group("bottom_mlp".to_string());
        let fc0 = b.linear("bot.fc0", dense, 512);
        let r0 = b.relu("bot.relu0", fc0);
        let fc1 = b.linear("bot.fc1", r0, 256);
        let r1 = b.relu("bot.relu1", fc1);
        let fc2 = b.linear("bot.fc2", r1, self.dim);
        let bot = b.relu("bot.relu2", fc2);
        b.end_group();

        // Sparse features: one id gather per table.
        let mut features = vec![bot];
        for t in 0..self.tables {
            let ids = b.input(format!("emb{t}.ids"), [batch]);
            features.push(b.embedding_lookup(format!("emb{t}.lookup"), ids, self.vocab, self.dim));
        }

        // Pairwise interaction: stack to [B,F+1,D], dot every pair (X·Xᵀ).
        b.begin_group("interaction".to_string());
        let n_feat = self.tables + 1;
        let stacked = b.concat("interact.concat", &features);
        let lhs = b.reshape("interact.lhs", stacked, [batch, n_feat, self.dim]);
        let rhs = b.reshape("interact.rhs", stacked, [batch, self.dim, n_feat]);
        let dots = b.batch_matmul("interact.dots", lhs, rhs);
        let flat = b.reshape("interact.flat", dots, [batch, n_feat * n_feat]);
        b.end_group();

        // Top MLP over interactions + dense representation, sigmoid CTR head.
        b.begin_group("top_mlp".to_string());
        let cat = b.concat("top.concat", &[flat, bot]);
        let t0 = b.linear("top.fc0", cat, 256);
        let tr0 = b.relu("top.relu0", t0);
        let t1 = b.linear("top.fc1", tr0, 128);
        let tr1 = b.relu("top.relu1", t1);
        let t2 = b.linear("top.fc2", tr1, 1);
        let ctr = b.sigmoid("top.ctr", t2);
        b.end_group();
        b.output(ctr);
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::GraphStats;

    #[test]
    fn dlrm_is_embedding_byte_dominated() {
        let c = DlrmConfig::serving();
        let g = c.build(4).unwrap();
        g.validate().unwrap();
        let s = GraphStats::of(&g);
        // ≈1 GB of embedding tables dwarfs the ~200 KB of MLP weights.
        let emb_bytes = 2 * c.tables * c.vocab * c.dim;
        assert!(s.weight_bytes >= emb_bytes);
        assert!(s.weight_bytes < emb_bytes + emb_bytes / 10);
        // FLOP-wise it is tiny: well under a GFLOP at batch 4.
        assert!(s.flops < 1_000_000_000, "flops {}", s.flops);
    }

    #[test]
    fn interaction_is_pairwise() {
        let c = DlrmConfig::serving();
        let g = c.build(2).unwrap();
        let dots = g.nodes().find(|n| n.name() == "interact.dots").unwrap();
        let f = c.tables + 1;
        assert_eq!(dots.shape().dims(), &[2, f, f]);
    }

    #[test]
    fn one_gather_per_table_and_flops_scale_with_batch() {
        let c = DlrmConfig::serving();
        let g = c.build(1).unwrap();
        let gathers = g.nodes().filter(|n| n.name().ends_with(".lookup")).count();
        assert_eq!(gathers, c.tables as usize);
        let f1 = g.total_flops();
        let f8 = c.build(8).unwrap().total_flops();
        assert_eq!(f8, 8 * f1);
    }
}
