//! Synthetic OCR pipeline workloads.
//!
//! The paper evaluates two components of a **production** OCR pipeline
//! (Qin et al., ICCV 2019) that are not publicly available:
//!
//! * **OCR-RPN** — the region-proposal stage of a standard Mask R-CNN text
//!   spotter. We synthesize it faithfully from the public Mask R-CNN recipe:
//!   a ResNet-50 backbone over a large page image, an FPN neck (lateral 1×1
//!   plus 3×3 smoothing convs; the cheap top-down element-wise merges are
//!   omitted), and the shared 3×3 + dual 1×1 RPN head at five pyramid levels.
//! * **OCR-Recognizer** — an LSTM-based line recognizer. We synthesize a
//!   CRNN-style model: a convolutional feature extractor over a text-line
//!   crop followed by stacked bidirectional LSTM layers (each step decomposed
//!   into activation × weight matmuls and element-wise gate math) and a
//!   CTC-style output projection.
//!
//! Both are deliberately TPU-friendly (standard convs, weight matmuls):
//! the paper positions them as the *worst case for FAST* — models that
//! already run efficiently on the baseline gain the least. The substitution
//! is recorded in `DESIGN.md` §3.

use fast_ir::{Conv2dGeom, DType, EwKind, Graph, IrError, MatMulGeom, NodeId, PoolGeom, PoolKind};

/// Builds the OCR-RPN workload: ResNet-50 backbone + FPN + RPN heads over a
/// `1024×1024` page image.
///
/// # Errors
/// Propagates IR construction errors.
pub fn build_ocr_rpn(batch: u64) -> Result<Graph, IrError> {
    let mut g = Graph::new("OCR-RPN", DType::Bf16);
    let res = 1024u64;
    let x = g.input("page", [batch, res, res, 3]);

    // --- ResNet-50 backbone (BN folded), capturing C2..C5. ---
    let mut h = res / 2;
    let stem = g.conv2d("stem.conv", x, Conv2dGeom::same(res, res, 3, 64, 7, 2))?;
    let stem_r = g.relu("stem.relu", stem)?;
    let pool = g.pool(
        "stem.pool",
        stem_r,
        PoolGeom { kind: PoolKind::Max, in_h: h, in_w: h, channels: 64, k: 3, stride: 2 },
    )?;
    h /= 2;

    let stages: [(u64, u64, u64); 4] = [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)];
    let mut cur = pool;
    let mut in_ch = 64u64;
    let mut c_feats: Vec<(NodeId, u64, u64)> = Vec::new(); // (node, spatial, channels)
    for (stage, &(width, blocks, stride)) in stages.iter().enumerate() {
        let out_ch = width * 4;
        for b in 0..blocks {
            let s = if b == 0 { stride } else { 1 };
            let name = format!("c{}b{b}", stage + 2);
            g.begin_group(name.clone());
            let pre = g.relu(format!("{name}.pre"), cur)?;
            let c1 =
                g.conv2d(format!("{name}.conv1"), pre, Conv2dGeom::same(h, h, in_ch, width, 1, 1))?;
            let r1 = g.relu(format!("{name}.relu1"), c1)?;
            let c2 =
                g.conv2d(format!("{name}.conv2"), r1, Conv2dGeom::same(h, h, width, width, 3, s))?;
            let oh = h.div_ceil(s);
            let r2 = g.relu(format!("{name}.relu2"), c2)?;
            let c3 = g.conv2d(
                format!("{name}.conv3"),
                r2,
                Conv2dGeom::same(oh, oh, width, out_ch, 1, 1),
            )?;
            let shortcut = if s != 1 || in_ch != out_ch {
                g.conv2d(
                    format!("{name}.shortcut"),
                    pre,
                    Conv2dGeom::same(h, h, in_ch, out_ch, 1, s),
                )?
            } else {
                cur
            };
            cur = g.residual_add(format!("{name}.add"), c3, shortcut)?;
            g.end_group();
            h = oh;
            in_ch = out_ch;
        }
        c_feats.push((cur, h, in_ch));
    }

    // --- FPN neck: 1x1 lateral + 3x3 smoothing at P2..P5, plus pooled P6. ---
    let fpn_ch = 256u64;
    let mut pyramid: Vec<(NodeId, u64)> = Vec::new();
    for (level, &(feat, s, ch)) in c_feats.iter().enumerate() {
        let name = format!("fpn.p{}", level + 2);
        let lat =
            g.conv2d(format!("{name}.lateral"), feat, Conv2dGeom::same(s, s, ch, fpn_ch, 1, 1))?;
        let smooth =
            g.conv2d(format!("{name}.smooth"), lat, Conv2dGeom::same(s, s, fpn_ch, fpn_ch, 3, 1))?;
        pyramid.push((smooth, s));
    }
    let &(p5, s5) = pyramid.last().expect("pyramid nonempty");
    let p6 = g.pool(
        "fpn.p6",
        p5,
        PoolGeom { kind: PoolKind::Max, in_h: s5, in_w: s5, channels: fpn_ch, k: 1, stride: 2 },
    )?;
    pyramid.push((p6, s5.div_ceil(2)));

    // --- RPN head shared across levels: 3x3 conv + objectness/bbox 1x1s. ---
    let anchors = 3u64;
    let mut outputs = Vec::new();
    for (i, &(feat, s)) in pyramid.iter().enumerate() {
        let name = format!("rpn.l{i}");
        let t =
            g.conv2d(format!("{name}.conv"), feat, Conv2dGeom::same(s, s, fpn_ch, fpn_ch, 3, 1))?;
        let tr = g.relu(format!("{name}.relu"), t)?;
        let obj = g.conv2d(
            format!("{name}.objectness"),
            tr,
            Conv2dGeom::same(s, s, fpn_ch, anchors, 1, 1),
        )?;
        let bbox = g.conv2d(
            format!("{name}.bbox"),
            tr,
            Conv2dGeom::same(s, s, fpn_ch, anchors * 4, 1, 1),
        )?;
        outputs.push(obj);
        outputs.push(bbox);
    }
    for o in outputs {
        g.mark_output(o);
    }
    Ok(g)
}

/// LSTM hidden width used by the synthetic recognizer.
pub const LSTM_HIDDEN: u64 = 512;
/// Sequence length after the convolutional encoder (feature columns).
pub const SEQ_STEPS: u64 = 40;
/// Character-set size for the CTC projection.
pub const CHARSET: u64 = 256;

/// Builds the OCR-Recognizer workload: CRNN conv encoder + 2 bidirectional
/// LSTM layers + CTC projection over a `32×320` text-line crop.
///
/// Input projections of each LSTM layer are batched across time (one big
/// matmul, the standard serving optimization); the recurrent projections are
/// per-step `[B,512]×[512,2048]` matmuls whose tiny streaming dimension makes
/// them latch-bound on big systolic arrays — faithful to LSTM serving
/// behaviour.
///
/// # Errors
/// Propagates IR construction errors.
pub fn build_ocr_recognizer(batch: u64) -> Result<Graph, IrError> {
    let mut g = Graph::new("OCR-Recognizer", DType::Bf16);
    let (ih, iw) = (32u64, 320u64);
    let x = g.input("line", [batch, ih, iw, 3]);

    // Conv encoder: VGG-ish stack pooling height 32 -> 1 and width 320 -> 40.
    // Pool pattern: (2,2), (2,2), (2,2), (2,1), (2,1) across five pool sites.
    let chans = [64u64, 128, 256, 256, 512, 512];
    let pools: [(u64, u64); 6] = [(1, 1), (2, 2), (2, 2), (2, 2), (2, 1), (2, 1)];
    let mut cur = x;
    let (mut h, mut w, mut c) = (ih, iw, 3u64);
    for (i, (&oc, &(ph, pw))) in chans.iter().zip(pools.iter()).enumerate() {
        let name = format!("enc{i}");
        let conv = g.conv2d(format!("{name}.conv"), cur, Conv2dGeom::same(h, w, c, oc, 3, 1))?;
        let r = g.relu(format!("{name}.relu"), conv)?;
        cur = if ph > 1 && pw > 1 {
            let pooled = g.pool(
                format!("{name}.pool"),
                r,
                PoolGeom { kind: PoolKind::Max, in_h: h, in_w: w, channels: oc, k: 2, stride: 2 },
            )?;
            h = h.div_ceil(2);
            w = w.div_ceil(2);
            pooled
        } else if ph > 1 {
            // Height-only downsample: fold two rows into channels, then a 1×1
            // conv projects back (a learned pooling — common in CRNNs).
            let folded = g.reshape(format!("{name}.fold"), r, [batch, h / 2, w, oc * 2])?;
            h /= 2;
            g.conv2d(format!("{name}.proj"), folded, Conv2dGeom::same(h, w, oc * 2, oc, 1, 1))?
        } else {
            r
        };
        c = oc;
    }
    // After pools: h = 1? Compute: 32 -> /2/2/2/2/2 = 1; w = 320 -> /2/2/2 = 40.
    debug_assert_eq!((h, w), (1, SEQ_STEPS));

    // Collapse to sequence: [B, steps, feat].
    let feat = h * c;
    let seq = g.reshape("to_sequence", cur, [batch, w, feat])?;

    // Two stacked bidirectional LSTM layers.
    let mut layer_in = seq;
    let mut in_width = feat;
    for layer in 0..2u64 {
        let fwd = lstm_direction(&mut g, layer, "fwd", layer_in, batch, in_width)?;
        let bwd = lstm_direction(&mut g, layer, "bwd", layer_in, batch, in_width)?;
        let cat = g.concat(format!("lstm{layer}.concat"), &[fwd, bwd])?;
        layer_in = cat;
        in_width = 2 * LSTM_HIDDEN;
    }

    // CTC-style per-step character projection.
    let logits = g.matmul("ctc.project", layer_in, MatMulGeom { k: in_width, n: CHARSET })?;
    g.mark_output(logits);
    Ok(g)
}

/// One direction of one LSTM layer. Returns `[B, SEQ_STEPS, LSTM_HIDDEN]`.
///
/// Gate algebra is modeled with cost-equivalent ops: the `[B,4H]` gate
/// pre-activations pass through transcendental activations, combine down to
/// `[B,H]` via an average-pool reduction (same arithmetic volume as
/// `i⊙g + f⊙c`), then produce `h_t` with an element-wise product and tanh.
fn lstm_direction(
    g: &mut Graph,
    layer: u64,
    dir: &str,
    input: NodeId,
    batch: u64,
    in_width: u64,
) -> Result<NodeId, IrError> {
    let p = |s: &str| format!("lstm{layer}.{dir}.{s}");
    let gates = 4 * LSTM_HIDDEN;

    // Input projection batched over time: [B*T, in] × [in, 4H]. Its output is
    // consumed elementwise by the per-step gate math; we model that as one
    // activation over the whole tensor (cost-equivalent to 40 per-step adds).
    let xs = g.reshape(p("x_flat"), input, [batch * SEQ_STEPS, in_width])?;
    let xproj = g.matmul(p("x_proj"), xs, MatMulGeom { k: in_width, n: gates })?;
    let _xconsumed = g.unary(p("x_gate_bias"), EwKind::Sigmoid, xproj)?;

    let mut hidden = g.input(p("h0"), [batch, LSTM_HIDDEN]);
    let mut step_outputs = Vec::with_capacity(SEQ_STEPS as usize);
    for t in 0..SEQ_STEPS {
        let sp = |s: &str| format!("lstm{layer}.{dir}.t{t}.{s}");
        // Recurrent projection [B,H] × [H,4H].
        let hproj = g.matmul(sp("h_proj"), hidden, MatMulGeom { k: LSTM_HIDDEN, n: gates })?;
        // Gate activations.
        let act = g.unary(sp("gate_act"), EwKind::Sigmoid, hproj)?;
        // Combine the four gates down to [B,H] (cost ≈ i⊙g + f⊙c).
        let grid = g.reshape(sp("gate_grid"), act, [batch, 2, 2, LSTM_HIDDEN])?;
        let combined = g.pool(
            sp("gate_combine"),
            grid,
            PoolGeom {
                kind: PoolKind::GlobalAvg,
                in_h: 2,
                in_w: 2,
                channels: LSTM_HIDDEN,
                k: 0,
                stride: 0,
            },
        )?;
        let cell = g.reshape(sp("cell"), combined, [batch, LSTM_HIDDEN])?;
        let mixed = g.binary(sp("cell_mix"), EwKind::Mul, cell, hidden)?;
        let h_t = g.unary(sp("h"), EwKind::Tanh, mixed)?;
        hidden = h_t;
        step_outputs.push(hidden);
    }
    let cat = g.concat(p("stack"), &step_outputs)?;
    g.reshape(p("seq_out"), cat, [batch, SEQ_STEPS, LSTM_HIDDEN])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::GraphStats;

    #[test]
    fn rpn_builds_and_is_conv_dominated() {
        let g = build_ocr_rpn(1).unwrap();
        g.validate().unwrap();
        let s = GraphStats::of(&g);
        assert!(s.flop_fraction("Conv2D") > 0.95, "conv-dominated");
        // Large-input detection model: hundreds of GFLOPs.
        assert!(s.flops > 100e9 as u64);
        assert!(!g.outputs().is_empty());
    }

    #[test]
    fn recognizer_builds_with_lstm_steps() {
        let g = build_ocr_recognizer(1).unwrap();
        g.validate().unwrap();
        // 2 layers × 2 directions × 40 steps of recurrent matmuls.
        let recurrent = g.nodes().filter(|n| n.name().contains(".h_proj")).count();
        assert_eq!(recurrent, 2 * 2 * 40);
    }

    #[test]
    fn recognizer_batch_scales() {
        let f1 = build_ocr_recognizer(1).unwrap().total_flops();
        let f2 = build_ocr_recognizer(2).unwrap().total_flops();
        assert!(f2 > f1);
    }

    #[test]
    fn rpn_has_five_pyramid_levels() {
        let g = build_ocr_rpn(1).unwrap();
        let heads = g.nodes().filter(|n| n.name().ends_with(".objectness")).count();
        assert_eq!(heads, 5);
    }
}
