//! Synthetic OCR pipeline workloads.
//!
//! The paper evaluates two components of a **production** OCR pipeline
//! (Qin et al., ICCV 2019) that are not publicly available:
//!
//! * **OCR-RPN** — the region-proposal stage of a standard Mask R-CNN text
//!   spotter. We synthesize it faithfully from the public Mask R-CNN recipe:
//!   a ResNet-50 backbone over a large page image, an FPN neck (lateral 1×1
//!   plus 3×3 smoothing convs; the cheap top-down element-wise merges are
//!   omitted), and the shared 3×3 + dual 1×1 RPN head at five pyramid levels.
//! * **OCR-Recognizer** — an LSTM-based line recognizer. We synthesize a
//!   CRNN-style model: a convolutional feature extractor over a text-line
//!   crop followed by stacked bidirectional LSTM layers (each step decomposed
//!   into activation × weight matmuls and element-wise gate math) and a
//!   CTC-style output projection.
//!
//! Both are deliberately TPU-friendly (standard convs, weight matmuls):
//! the paper positions them as the *worst case for FAST* — models that
//! already run efficiently on the baseline gain the least. The substitution
//! is recorded in `DESIGN.md` §3.

use fast_ir::{DType, EwKind, Graph, GraphBuilder, IrError, Tensor};

/// Builds the OCR-RPN workload: ResNet-50 backbone + FPN + RPN heads over a
/// `1024×1024` page image.
///
/// # Errors
/// Propagates IR construction errors.
pub fn build_ocr_rpn(batch: u64) -> Result<Graph, IrError> {
    let mut b = GraphBuilder::new("OCR-RPN", DType::Bf16);
    let res = 1024u64;
    let x = b.input("page", [batch, res, res, 3]);

    // --- ResNet-50 backbone (BN folded), capturing C2..C5. ---
    let stem = b.conv2d("stem.conv", x, 64, 7, 2);
    let stem_r = b.relu("stem.relu", stem);
    let mut cur = b.max_pool("stem.pool", stem_r, 3, 2);

    let stages: [(u64, u64, u64); 4] = [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)];
    let mut c_feats: Vec<Tensor> = Vec::new();
    for (stage, &(width, blocks, stride)) in stages.iter().enumerate() {
        let out_ch = width * 4;
        for blk in 0..blocks {
            let s = if blk == 0 { stride } else { 1 };
            let in_ch = b.dim(cur, 3);
            let name = format!("c{}b{blk}", stage + 2);
            b.begin_group(name.clone());
            let pre = b.relu(format!("{name}.pre"), cur);
            let c1 = b.conv2d(format!("{name}.conv1"), pre, width, 1, 1);
            let r1 = b.relu(format!("{name}.relu1"), c1);
            let c2 = b.conv2d(format!("{name}.conv2"), r1, width, 3, s);
            let r2 = b.relu(format!("{name}.relu2"), c2);
            let c3 = b.conv2d(format!("{name}.conv3"), r2, out_ch, 1, 1);
            let shortcut = if s != 1 || in_ch != out_ch {
                b.conv2d(format!("{name}.shortcut"), pre, out_ch, 1, s)
            } else {
                cur
            };
            cur = b.residual(format!("{name}.add"), c3, shortcut);
            b.end_group();
        }
        c_feats.push(cur);
    }

    // --- FPN neck: 1x1 lateral + 3x3 smoothing at P2..P5, plus pooled P6. ---
    let fpn_ch = 256u64;
    let mut pyramid: Vec<Tensor> = Vec::new();
    for (level, &feat) in c_feats.iter().enumerate() {
        let name = format!("fpn.p{}", level + 2);
        let lat = b.conv2d(format!("{name}.lateral"), feat, fpn_ch, 1, 1);
        let smooth = b.conv2d(format!("{name}.smooth"), lat, fpn_ch, 3, 1);
        pyramid.push(smooth);
    }
    let &p5 = pyramid.last().expect("pyramid nonempty");
    let p6 = b.max_pool("fpn.p6", p5, 1, 2);
    pyramid.push(p6);

    // --- RPN head shared across levels: 3x3 conv + objectness/bbox 1x1s. ---
    let anchors = 3u64;
    for (i, &feat) in pyramid.iter().enumerate() {
        let name = format!("rpn.l{i}");
        let t = b.conv2d(format!("{name}.conv"), feat, fpn_ch, 3, 1);
        let tr = b.relu(format!("{name}.relu"), t);
        let obj = b.conv2d(format!("{name}.objectness"), tr, anchors, 1, 1);
        let bbox = b.conv2d(format!("{name}.bbox"), tr, anchors * 4, 1, 1);
        b.output(obj);
        b.output(bbox);
    }
    b.finish()
}

/// LSTM hidden width used by the synthetic recognizer.
pub const LSTM_HIDDEN: u64 = 512;
/// Sequence length after the convolutional encoder (feature columns).
pub const SEQ_STEPS: u64 = 40;
/// Character-set size for the CTC projection.
pub const CHARSET: u64 = 256;

/// Builds the OCR-Recognizer workload: CRNN conv encoder + 2 bidirectional
/// LSTM layers + CTC projection over a `32×320` text-line crop.
///
/// Input projections of each LSTM layer are batched across time (one big
/// matmul, the standard serving optimization); the recurrent projections are
/// per-step `[B,512]×[512,2048]` matmuls whose tiny streaming dimension makes
/// them latch-bound on big systolic arrays — faithful to LSTM serving
/// behaviour.
///
/// # Errors
/// Propagates IR construction errors.
pub fn build_ocr_recognizer(batch: u64) -> Result<Graph, IrError> {
    let mut b = GraphBuilder::new("OCR-Recognizer", DType::Bf16);
    let (ih, iw) = (32u64, 320u64);
    let x = b.input("line", [batch, ih, iw, 3]);

    // Conv encoder: VGG-ish stack pooling height 32 -> 1 and width 320 -> 40.
    // Pool pattern: (2,2), (2,2), (2,2), (2,1), (2,1) across five pool sites.
    let chans = [64u64, 128, 256, 256, 512, 512];
    let pools: [(u64, u64); 6] = [(1, 1), (2, 2), (2, 2), (2, 2), (2, 1), (2, 1)];
    let mut cur = x;
    for (i, (&oc, &(ph, pw))) in chans.iter().zip(pools.iter()).enumerate() {
        let name = format!("enc{i}");
        let conv = b.conv2d(format!("{name}.conv"), cur, oc, 3, 1);
        let r = b.relu(format!("{name}.relu"), conv);
        cur = if ph > 1 && pw > 1 {
            b.max_pool(format!("{name}.pool"), r, 2, 2)
        } else if ph > 1 {
            // Height-only downsample: fold two rows into channels, then a 1×1
            // conv projects back (a learned pooling — common in CRNNs).
            let (h, w) = (b.dim(r, 1), b.dim(r, 2));
            let folded = b.reshape(format!("{name}.fold"), r, [batch, h / 2, w, oc * 2]);
            b.conv2d(format!("{name}.proj"), folded, oc, 1, 1)
        } else {
            r
        };
    }
    // After pools: h = 32 / 2/2/2/2/2 = 1; w = 320 / 2/2/2 = 40.
    debug_assert_eq!((b.dim(cur, 1), b.dim(cur, 2)), (1, SEQ_STEPS));

    // Collapse to sequence: [B, steps, feat].
    let (w, feat) = (b.dim(cur, 2), b.dim(cur, 1) * b.dim(cur, 3));
    let seq = b.reshape("to_sequence", cur, [batch, w, feat]);

    // Two stacked bidirectional LSTM layers.
    let mut layer_in = seq;
    for layer in 0..2u64 {
        let fwd = lstm_direction(&mut b, layer, "fwd", layer_in, batch);
        let bwd = lstm_direction(&mut b, layer, "bwd", layer_in, batch);
        layer_in = b.concat(format!("lstm{layer}.concat"), &[fwd, bwd]);
    }

    // CTC-style per-step character projection.
    let logits = b.linear("ctc.project", layer_in, CHARSET);
    b.output(logits);
    b.finish()
}

/// One direction of one LSTM layer. Returns `[B, SEQ_STEPS, LSTM_HIDDEN]`.
///
/// Gate algebra is modeled with cost-equivalent ops: the `[B,4H]` gate
/// pre-activations pass through transcendental activations, combine down to
/// `[B,H]` via an average-pool reduction (same arithmetic volume as
/// `i⊙g + f⊙c`), then produce `h_t` with an element-wise product and tanh.
fn lstm_direction(
    b: &mut GraphBuilder,
    layer: u64,
    dir: &str,
    input: Tensor,
    batch: u64,
) -> Tensor {
    let p = |s: &str| format!("lstm{layer}.{dir}.{s}");
    let in_width = b.dim(input, 2);
    let gates = 4 * LSTM_HIDDEN;

    // Input projection batched over time: [B*T, in] × [in, 4H]. Its output is
    // consumed elementwise by the per-step gate math; we model that as one
    // activation over the whole tensor (cost-equivalent to 40 per-step adds)
    // feeding nothing downstream — a declared cost-model sink.
    let xs = b.reshape(p("x_flat"), input, [batch * SEQ_STEPS, in_width]);
    let xproj = b.linear(p("x_proj"), xs, gates);
    let xconsumed = b.sigmoid(p("x_gate_bias"), xproj);
    b.sink(xconsumed);

    let mut hidden = b.input(p("h0"), [batch, LSTM_HIDDEN]);
    let mut step_outputs = Vec::with_capacity(SEQ_STEPS as usize);
    for t in 0..SEQ_STEPS {
        let sp = |s: &str| format!("lstm{layer}.{dir}.t{t}.{s}");
        // Recurrent projection [B,H] × [H,4H].
        let hproj = b.linear(sp("h_proj"), hidden, gates);
        // Gate activations.
        let act = b.sigmoid(sp("gate_act"), hproj);
        // Combine the four gates down to [B,H] (cost ≈ i⊙g + f⊙c).
        let grid = b.reshape(sp("gate_grid"), act, [batch, 2, 2, LSTM_HIDDEN]);
        let combined = b.global_avg_pool(sp("gate_combine"), grid);
        let cell = b.reshape(sp("cell"), combined, [batch, LSTM_HIDDEN]);
        let mixed = b.binary(sp("cell_mix"), EwKind::Mul, cell, hidden);
        hidden = b.tanh(sp("h"), mixed);
        step_outputs.push(hidden);
    }
    let cat = b.concat(p("stack"), &step_outputs);
    b.reshape(p("seq_out"), cat, [batch, SEQ_STEPS, LSTM_HIDDEN])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::GraphStats;

    #[test]
    fn rpn_builds_and_is_conv_dominated() {
        let g = build_ocr_rpn(1).unwrap();
        g.validate().unwrap();
        let s = GraphStats::of(&g);
        assert!(s.flop_fraction("Conv2D") > 0.95, "conv-dominated");
        // Large-input detection model: hundreds of GFLOPs.
        assert!(s.flops > 100e9 as u64);
        assert!(!g.outputs().is_empty());
    }

    #[test]
    fn recognizer_builds_with_lstm_steps() {
        let g = build_ocr_recognizer(1).unwrap();
        g.validate().unwrap();
        // 2 layers × 2 directions × 40 steps of recurrent matmuls.
        let recurrent = g.nodes().filter(|n| n.name().contains(".h_proj")).count();
        assert_eq!(recurrent, 2 * 2 * 40);
    }

    #[test]
    fn recognizer_batch_scales() {
        let f1 = build_ocr_recognizer(1).unwrap().total_flops();
        let f2 = build_ocr_recognizer(2).unwrap().total_flops();
        assert!(f2 > f1);
    }

    #[test]
    fn rpn_has_five_pyramid_levels() {
        let g = build_ocr_rpn(1).unwrap();
        let heads = g.nodes().filter(|n| n.name().ends_with(".objectness")).count();
        assert_eq!(heads, 5);
    }
}
