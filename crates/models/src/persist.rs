//! Binary-codec impls for workload identities — the part of the
//! evaluation-cache key and sweep checkpoints this crate owns. Hand-written
//! because the vendored serde derives generate no code.

use crate::efficientnet::EfficientNet;
use crate::{Workload, WorkloadDomain};
use serde::bin::{Decode, DecodeError, Encode, Reader, Writer};

impl Encode for EfficientNet {
    fn encode(&self, w: &mut Writer) {
        let idx =
            EfficientNet::ALL.iter().position(|v| v == self).expect("ALL covers every variant");
        w.put_u8(idx as u8);
    }
}

impl Decode for EfficientNet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let idx = r.get_u8()? as usize;
        EfficientNet::ALL.get(idx).copied().ok_or_else(|| DecodeError {
            offset: 0,
            what: format!("invalid EfficientNet index {idx}"),
        })
    }
}

impl Encode for Workload {
    fn encode(&self, w: &mut Writer) {
        match self {
            Workload::EfficientNet(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            Workload::Bert { seq_len } => {
                w.put_u8(1);
                seq_len.encode(w);
            }
            Workload::ResNet50 => w.put_u8(2),
            Workload::OcrRpn => w.put_u8(3),
            Workload::OcrRecognizer => w.put_u8(4),
            Workload::LlmPrefill { seq_len } => {
                w.put_u8(5);
                seq_len.encode(w);
            }
            Workload::LlmDecode { context } => {
                w.put_u8(6);
                context.encode(w);
            }
            Workload::Dlrm => w.put_u8(7),
            Workload::DiffusionUNet => w.put_u8(8),
        }
    }
}

impl Decode for Workload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(Workload::EfficientNet(Decode::decode(r)?)),
            1 => Ok(Workload::Bert { seq_len: Decode::decode(r)? }),
            2 => Ok(Workload::ResNet50),
            3 => Ok(Workload::OcrRpn),
            4 => Ok(Workload::OcrRecognizer),
            5 => Ok(Workload::LlmPrefill { seq_len: Decode::decode(r)? }),
            6 => Ok(Workload::LlmDecode { context: Decode::decode(r)? }),
            7 => Ok(Workload::Dlrm),
            8 => Ok(Workload::DiffusionUNet),
            t => Err(DecodeError { offset: 0, what: format!("invalid Workload tag {t}") }),
        }
    }
}

impl Encode for WorkloadDomain {
    fn encode(&self, w: &mut Writer) {
        let WorkloadDomain { name, workloads } = self;
        name.encode(w);
        workloads.encode(w);
    }
}

impl Decode for WorkloadDomain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let name: String = Decode::decode(r)?;
        let workloads: Vec<Workload> = Decode::decode(r)?;
        if workloads.is_empty() {
            return Err(DecodeError {
                offset: 0,
                what: format!("domain {name:?} decodes to no workloads"),
            });
        }
        Ok(WorkloadDomain { name, workloads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_workload_round_trips() {
        for w in Workload::suite().into_iter().chain(Workload::serving_suite()) {
            assert_eq!(Workload::from_bytes(&w.to_bytes()).unwrap(), w);
        }
    }

    #[test]
    fn domains_round_trip() {
        for d in [WorkloadDomain::geomean5(), WorkloadDomain::per_model(Workload::ResNet50)] {
            let back = WorkloadDomain::from_bytes(&d.to_bytes()).unwrap();
            assert_eq!(back, d);
        }
    }

    #[test]
    fn garbage_tags_are_rejected() {
        assert!(Workload::from_bytes(&[9]).is_err());
        assert!(EfficientNet::from_bytes(&[8]).is_err());
    }

    #[test]
    fn serving_tags_are_stable() {
        // Checkpoints persist these tags; renumbering breaks resume.
        assert_eq!(Workload::Dlrm.to_bytes()[0], 7);
        assert_eq!(Workload::DiffusionUNet.to_bytes()[0], 8);
        assert_eq!(Workload::LlmPrefill { seq_len: 512 }.to_bytes()[0], 5);
        assert_eq!(Workload::LlmDecode { context: 2048 }.to_bytes()[0], 6);
    }
}
