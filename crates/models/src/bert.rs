//! BERT-Base encoder graph builder (Devlin et al., 2019).
//!
//! Each encoder layer is: Q/K/V projection, scaled-dot-product attention
//! (`QKᵀ` einsum → softmax → `AV` einsum), output projection, residual +
//! layernorm, feed-forward (768 → 3072 → 768 with GELU), residual +
//! layernorm. QKV projection and feed-forward scale linearly with sequence
//! length while softmax and self-attention scale quadratically — the §4.3
//! bottleneck FAST targets.

use fast_ir::{DType, EwKind, Graph, GraphBuilder, IrError};
use serde::{Deserialize, Serialize};

/// BERT model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BertConfig {
    /// Encoder layer count.
    pub layers: u64,
    /// Hidden width.
    pub hidden: u64,
    /// Attention head count.
    pub heads: u64,
    /// Feed-forward inner width.
    pub ff: u64,
    /// WordPiece vocabulary size.
    pub vocab: u64,
}

impl BertConfig {
    /// BERT-Base: 12 layers, hidden 768, 12 heads, FF 3072.
    #[must_use]
    pub const fn base() -> Self {
        BertConfig { layers: 12, hidden: 768, heads: 12, ff: 3072, vocab: 30522 }
    }

    /// BERT-Large: 24 layers, hidden 1024, 16 heads, FF 4096.
    #[must_use]
    pub const fn large() -> Self {
        BertConfig { layers: 24, hidden: 1024, heads: 16, ff: 4096, vocab: 30522 }
    }

    /// Per-head width.
    #[must_use]
    pub const fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }

    /// Builds the encoder inference graph at `batch` × `seq_len`.
    ///
    /// Each encoder layer is one [`GraphBuilder::attention_block`] (Q/K/V
    /// projection, QKᵀ/AV einsums, softmax, output projection, residual +
    /// layernorm) followed by one GELU [`GraphBuilder::ffn_block`], grouped
    /// as `encoder{layer}`.
    ///
    /// # Errors
    /// Propagates IR construction errors.
    pub fn build(&self, batch: u64, seq_len: u64) -> Result<Graph, IrError> {
        let mut b = GraphBuilder::new(format!("BERT-seq{seq_len}"), DType::Bf16);
        let ids = b.input("token_ids", [batch, seq_len]);
        let mut cur = b.embedding_lookup("embed", ids, self.vocab, self.hidden);
        for layer in 0..self.layers {
            b.begin_group(format!("encoder{layer}"));
            let attn = b.attention_block(format!("l{layer}"), cur, self.heads);
            cur = b.ffn_block(format!("l{layer}.ff"), attn, self.ff, EwKind::Gelu);
            b.end_group();
        }
        b.output(cur);
        b.finish()
    }
}

/// Functional component of a BERT node, for the Figure-5 runtime breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BertComponent {
    /// Q/K/V matrix projections.
    QkvProjection,
    /// Softmax over attention scores.
    Softmax,
    /// Self-attention einsums (QKᵀ and AV) and the output projection.
    SelfAttention,
    /// Feed-forward matmuls and activation.
    FeedForward,
    /// Everything else (embeddings, layernorm, residuals, reshapes).
    Other,
}

impl BertComponent {
    /// All components in Figure-5 order.
    pub const ALL: [BertComponent; 5] = [
        BertComponent::QkvProjection,
        BertComponent::Softmax,
        BertComponent::SelfAttention,
        BertComponent::FeedForward,
        BertComponent::Other,
    ];

    /// Display label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            BertComponent::QkvProjection => "QKV projection",
            BertComponent::Softmax => "softmax",
            BertComponent::SelfAttention => "self-attention",
            BertComponent::FeedForward => "feed-forward",
            BertComponent::Other => "other",
        }
    }

    /// Classifies a node by the naming convention of [`BertConfig::build`].
    #[must_use]
    pub fn of_node_name(name: &str) -> Self {
        let Some((_, rest)) = name.split_once('.') else {
            return BertComponent::Other;
        };
        if rest.starts_with("qkv.") {
            BertComponent::QkvProjection
        } else if rest == "softmax" {
            BertComponent::Softmax
        } else if rest.starts_with("attn.qk") || rest.starts_with("attn.av") || rest == "attn.out" {
            BertComponent::SelfAttention
        } else if rest.starts_with("ff.fc") || rest == "ff.gelu" {
            BertComponent::FeedForward
        } else {
            BertComponent::Other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::OpKind;

    #[test]
    fn base_config_dims() {
        let c = BertConfig::base();
        assert_eq!(c.head_dim(), 64);
        assert_eq!(BertConfig::large().head_dim(), 64);
    }

    #[test]
    fn graph_builds_and_validates() {
        let g = BertConfig::base().build(4, 128).unwrap();
        g.validate().unwrap();
        assert_eq!(g.group_names().len(), 12);
        // ≈ 110 M parameters in BERT-Base (embedding + encoder).
        let params = g.total_weight_bytes() as f64 / 2.0 / 1e6;
        assert!((95.0..120.0).contains(&params), "params {params}M");
    }

    #[test]
    fn attention_flops_scale_quadratically() {
        let c = BertConfig::base();
        let flops_at = |s: u64| {
            let g = c.build(1, s).unwrap();
            let mut attn = 0u64;
            let mut ff = 0u64;
            for n in g.nodes() {
                match BertComponent::of_node_name(n.name()) {
                    BertComponent::SelfAttention | BertComponent::Softmax => {
                        attn += g.node_flops(n.id());
                    }
                    BertComponent::FeedForward | BertComponent::QkvProjection => {
                        ff += g.node_flops(n.id());
                    }
                    BertComponent::Other => {}
                }
            }
            (attn, ff)
        };
        let (a128, f128) = flops_at(128);
        let (a1024, f1024) = flops_at(1024);
        // Feed-forward/QKV are linear in seq; attention grows much faster
        // (quadratic einsums + linear out-projection).
        assert_eq!(f1024, 8 * f128);
        assert!(a1024 > 5 * 8 * a128 / 4, "attention must grow superlinearly");
    }

    #[test]
    fn einsums_are_activation_activation() {
        let g = BertConfig::base().build(1, 128).unwrap();
        let qk = g.nodes().find(|n| n.name() == "l0.attn.qk").unwrap();
        assert!(matches!(qk.kind(), OpKind::BatchMatMul(_)));
        let nest = g.loop_nest(qk.id()).unwrap();
        assert!(nest.stationary_is_activation);
        assert_eq!(nest.weight_latches, 12);
    }

    #[test]
    fn component_classification() {
        assert_eq!(BertComponent::of_node_name("l3.qkv.q"), BertComponent::QkvProjection);
        assert_eq!(BertComponent::of_node_name("l0.softmax"), BertComponent::Softmax);
        assert_eq!(BertComponent::of_node_name("l11.attn.av"), BertComponent::SelfAttention);
        assert_eq!(BertComponent::of_node_name("l2.ff.gelu"), BertComponent::FeedForward);
        assert_eq!(BertComponent::of_node_name("l2.ff.ln"), BertComponent::Other);
        assert_eq!(BertComponent::of_node_name("embed"), BertComponent::Other);
    }
}
