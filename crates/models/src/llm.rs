//! Decoder-only LLM serving workloads (prefill and decode phases).
//!
//! Modern LLM serving splits into two phases with opposite hardware
//! behaviour, and the domain-search literature treats them as distinct
//! workloads:
//!
//! * **Prefill** processes the whole prompt at once — seq-len-`N`
//!   attention + MLP stacks that look like BERT and saturate the systolic
//!   array with large matmuls.
//! * **Decode** generates one token per step against a KV cache — every
//!   matmul has a streaming dimension of 1, so the phase is bound by
//!   weight/KV-cache bandwidth, not FLOPs. The attention einsums latch a
//!   new stationary operand per batched head ([`fast_ir::LoopNest`]
//!   `weight_latches`), exactly the latch-bound shape the OCR recognizer's
//!   LSTM steps exhibit, at much larger widths.
//!
//! Both phases are built on [`GraphBuilder`] composites: prefill reuses
//! [`GraphBuilder::attention_block`] / [`GraphBuilder::ffn_block`]
//! unchanged; decode hand-wires the attention einsums against KV-cache
//! graph inputs and emits the per-layer `k`/`v` projections of the new
//! token as graph outputs (the serving runtime appends them to the cache).

use fast_ir::{DType, EwKind, Graph, GraphBuilder, IrError};
use serde::{Deserialize, Serialize};

/// Decoder-only transformer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LlmConfig {
    /// Decoder layer count.
    pub layers: u64,
    /// Hidden width.
    pub hidden: u64,
    /// Attention head count.
    pub heads: u64,
    /// MLP inner width.
    pub ff: u64,
    /// Tokenizer vocabulary size.
    pub vocab: u64,
}

impl LlmConfig {
    /// The serving-benchmark configuration: a 16-layer, 2048-wide decoder
    /// (≈1 B parameters) — large enough to exhibit LLM serving behaviour,
    /// small enough to sweep.
    #[must_use]
    pub const fn serving() -> Self {
        LlmConfig { layers: 16, hidden: 2048, heads: 16, ff: 8192, vocab: 32000 }
    }

    /// Per-head width.
    #[must_use]
    pub const fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }

    /// Builds the prefill-phase graph: the full `seq_len`-token prompt in
    /// one pass through every decoder layer (attention + swish MLP).
    ///
    /// # Errors
    /// Propagates IR construction errors.
    pub fn prefill(&self, batch: u64, seq_len: u64) -> Result<Graph, IrError> {
        let mut b = GraphBuilder::new(format!("LLM-prefill-{seq_len}"), DType::Bf16);
        let ids = b.input("token_ids", [batch, seq_len]);
        let mut cur = b.embedding_lookup("embed", ids, self.vocab, self.hidden);
        for layer in 0..self.layers {
            b.begin_group(format!("block{layer}"));
            let attn = b.attention_block(format!("l{layer}"), cur, self.heads);
            cur = b.ffn_block(format!("l{layer}.mlp"), attn, self.ff, EwKind::Swish);
            b.end_group();
        }
        b.output(cur);
        b.finish()
    }

    /// Builds the decode-phase graph: one new token attended against a
    /// `context`-token KV cache.
    ///
    /// Per layer, the cached keys `[B·heads, d, context]` and values
    /// `[B·heads, context, d]` enter as graph inputs; the new token's
    /// `k`/`v` projections leave as graph outputs for the runtime to append.
    /// Ends with the `lm_head` vocabulary projection of the single position.
    ///
    /// # Errors
    /// Propagates IR construction errors.
    pub fn decode(&self, batch: u64, context: u64) -> Result<Graph, IrError> {
        let (h, heads, hd) = (self.hidden, self.heads, self.head_dim());
        let mut b = GraphBuilder::new(format!("LLM-decode-{context}"), DType::Bf16);
        let ids = b.input("token_ids", [batch, 1]);
        let mut cur = b.embedding_lookup("embed", ids, self.vocab, self.hidden);
        for layer in 0..self.layers {
            b.begin_group(format!("block{layer}"));
            let p = |s: &str| format!("l{layer}.{s}");

            // New-token Q/K/V; K and V also leave the graph (cache append).
            let q = b.linear(p("qkv.q"), cur, h);
            let k_new = b.linear(p("qkv.k"), cur, h);
            let v_new = b.linear(p("qkv.v"), cur, h);
            b.output(k_new);
            b.output(v_new);

            // Attention of the single query against the cached context.
            let qh = b.reshape(p("attn.q_heads"), q, [batch * heads, 1, hd]);
            let k_cache = b.input(p("kv.k_cache"), [batch * heads, hd, context]);
            let v_cache = b.input(p("kv.v_cache"), [batch * heads, context, hd]);
            let scores = b.batch_matmul(p("attn.qk"), qh, k_cache);
            let probs = b.softmax(p("softmax"), scores);
            let ctx = b.batch_matmul(p("attn.av"), probs, v_cache);
            let merged = b.reshape(p("attn.merge"), ctx, [batch, 1, h]);
            let proj = b.linear(p("attn.out"), merged, h);
            let res = b.residual(p("attn.residual"), proj, cur);
            let ln = b.layer_norm(p("attn.ln"), res);

            cur = b.ffn_block(p("mlp"), ln, self.ff, EwKind::Swish);
            b.end_group();
        }
        let logits = b.linear("lm_head", cur, self.vocab);
        b.output(logits);
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::OpKind;

    #[test]
    fn prefill_matches_transformer_shapes() {
        let c = LlmConfig::serving();
        let g = c.prefill(1, 512).unwrap();
        g.validate().unwrap();
        assert_eq!(g.group_names().len(), c.layers as usize);
        let qk = g.nodes().find(|n| n.name() == "l0.attn.qk").unwrap();
        assert_eq!(qk.shape().dims(), &[c.heads, 512, 512]);
        // ≈ 2 * params * tokens FLOPs for the matmul-dominated stack.
        let params = g.total_weight_bytes() / 2;
        let flops = g.total_flops();
        assert!(flops > 2 * params * 512 / 2, "prefill should be FLOP-heavy");
    }

    #[test]
    fn prefill_attention_is_quadratic_in_seq() {
        let c = LlmConfig::serving();
        let attn_flops = |s: u64| {
            let g = c.prefill(1, s).unwrap();
            g.nodes()
                .filter(|n| n.name().ends_with("attn.qk") || n.name().ends_with("attn.av"))
                .map(|n| g.node_flops(n.id()))
                .sum::<u64>()
        };
        assert_eq!(attn_flops(1024), 4 * attn_flops(512));
    }

    #[test]
    fn decode_is_latch_bound_against_the_cache() {
        let c = LlmConfig::serving();
        let g = c.decode(1, 2048).unwrap();
        g.validate().unwrap();
        let qk = g.nodes().find(|n| n.name() == "l0.attn.qk").unwrap();
        assert!(matches!(qk.kind(), OpKind::BatchMatMul(_)));
        let nest = g.loop_nest(qk.id()).unwrap();
        // One query row, a stationary latch per batched head: bandwidth-bound.
        assert_eq!(nest.b, 1);
        assert_eq!(nest.weight_latches, c.heads);
        assert!(nest.stationary_is_activation);
    }

    #[test]
    fn decode_emits_cache_appends_as_outputs() {
        let c = LlmConfig::serving();
        let g = c.decode(4, 1024).unwrap();
        // Per layer: k_new + v_new, plus the final logits.
        assert_eq!(g.outputs().len(), 2 * c.layers as usize + 1);
        let logits = g.node(*g.outputs().last().unwrap());
        assert_eq!(logits.shape().dims(), &[4, 1, c.vocab]);
    }

    #[test]
    fn decode_flops_scale_with_batch_not_context_mlp() {
        let c = LlmConfig::serving();
        let f1 = c.decode(1, 1024).unwrap().total_flops();
        let f4 = c.decode(4, 1024).unwrap().total_flops();
        assert_eq!(f4, 4 * f1);
    }
}
