//! EfficientNet B0–B7 graph builders (Tan & Le, ICML 2019).
//!
//! EfficientNet scales a baseline network (B0) with compound coefficients for
//! width, depth and input resolution. Its MBConv blocks are built from
//! depthwise-separable convolutions plus squeeze-and-excitation, which is
//! precisely the low-operational-intensity structure §3.2/§4.2 of the FAST
//! paper analyses.

use fast_ir::{DType, EwKind, Graph, GraphBuilder, IrError, Tensor};
use serde::{Deserialize, Serialize};

/// An EfficientNet model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EfficientNet {
    /// EfficientNet-B0 (224×224).
    B0,
    /// EfficientNet-B1 (240×240).
    B1,
    /// EfficientNet-B2 (260×260).
    B2,
    /// EfficientNet-B3 (300×300).
    B3,
    /// EfficientNet-B4 (380×380).
    B4,
    /// EfficientNet-B5 (456×456).
    B5,
    /// EfficientNet-B6 (528×528).
    B6,
    /// EfficientNet-B7 (600×600).
    B7,
}

impl EfficientNet {
    /// All variants, B0..B7.
    pub const ALL: [EfficientNet; 8] = [
        EfficientNet::B0,
        EfficientNet::B1,
        EfficientNet::B2,
        EfficientNet::B3,
        EfficientNet::B4,
        EfficientNet::B5,
        EfficientNet::B6,
        EfficientNet::B7,
    ];

    /// `(width_coefficient, depth_coefficient, resolution)`.
    #[must_use]
    pub const fn scaling(self) -> (f64, f64, u64) {
        match self {
            EfficientNet::B0 => (1.0, 1.0, 224),
            EfficientNet::B1 => (1.0, 1.1, 240),
            EfficientNet::B2 => (1.1, 1.2, 260),
            EfficientNet::B3 => (1.2, 1.4, 300),
            EfficientNet::B4 => (1.4, 1.8, 380),
            EfficientNet::B5 => (1.6, 2.2, 456),
            EfficientNet::B6 => (1.8, 2.6, 528),
            EfficientNet::B7 => (2.0, 3.1, 600),
        }
    }

    /// Published ImageNet top-1 accuracy (%) — used verbatim for Figure 2
    /// (FAST does not change model accuracy).
    #[must_use]
    pub const fn imagenet_top1(self) -> f64 {
        match self {
            EfficientNet::B0 => 77.1,
            EfficientNet::B1 => 79.1,
            EfficientNet::B2 => 80.1,
            EfficientNet::B3 => 81.6,
            EfficientNet::B4 => 82.9,
            EfficientNet::B5 => 83.6,
            EfficientNet::B6 => 84.0,
            EfficientNet::B7 => 84.3,
        }
    }

    /// Variant name, e.g. `"EfficientNet-B3"`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            EfficientNet::B0 => "EfficientNet-B0",
            EfficientNet::B1 => "EfficientNet-B1",
            EfficientNet::B2 => "EfficientNet-B2",
            EfficientNet::B3 => "EfficientNet-B3",
            EfficientNet::B4 => "EfficientNet-B4",
            EfficientNet::B5 => "EfficientNet-B5",
            EfficientNet::B6 => "EfficientNet-B6",
            EfficientNet::B7 => "EfficientNet-B7",
        }
    }

    /// Builds the inference graph at `batch`.
    ///
    /// # Errors
    /// Propagates IR construction errors (none occur for valid variants; the
    /// `Result` exists because the builders are fallible by contract).
    pub fn build(self, batch: u64) -> Result<Graph, IrError> {
        build_efficientnet(self, batch)
    }
}

/// Baseline (B0) stage configuration:
/// `(expand_ratio, channels, repeats, stride, kernel)`.
const B0_STAGES: [(u64, u64, u64, u64, u64); 7] = [
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
];

/// Stem / head baseline channel counts.
const STEM_CHANNELS: u64 = 32;
const HEAD_CHANNELS: u64 = 1280;
const NUM_CLASSES: u64 = 1000;
const SE_RATIO: f64 = 0.25;

/// Rounds a channel count scaled by `width` to the nearest multiple of 8,
/// never dropping below 90 % of the unrounded value (reference TF logic).
#[must_use]
pub fn round_channels(channels: u64, width: f64) -> u64 {
    let scaled = channels as f64 * width;
    let divisor = 8.0;
    let mut new = ((scaled + divisor / 2.0) / divisor).floor() * divisor;
    if new < 0.9 * scaled {
        new += divisor;
    }
    (new as u64).max(8)
}

/// Rounds a repeat count scaled by `depth` (ceil, reference TF logic).
#[must_use]
pub fn round_repeats(repeats: u64, depth: f64) -> u64 {
    (repeats as f64 * depth).ceil() as u64
}

fn build_efficientnet(variant: EfficientNet, batch: u64) -> Result<Graph, IrError> {
    let (width, depth, res) = variant.scaling();
    let mut b = GraphBuilder::new(variant.name(), DType::Bf16);
    let x = b.input("images", [batch, res, res, 3]);

    // Stem: 3x3 stride-2 conv + swish.
    let stem_ch = round_channels(STEM_CHANNELS, width);
    let c = b.conv2d("stem.conv", x, stem_ch, 3, 2);
    let mut cur = b.swish("stem.swish", c);

    let mut block_idx = 0u64;
    for (stage, &(expand, channels, repeats, stride, kernel)) in B0_STAGES.iter().enumerate() {
        let out_ch = round_channels(channels, width);
        let reps = round_repeats(repeats, depth);
        for rep in 0..reps {
            let s = if rep == 0 { stride } else { 1 };
            let name = format!("s{stage}b{rep}");
            b.begin_group(format!("mbconv{block_idx}"));
            cur = mbconv_block(&mut b, &name, cur, out_ch, expand, kernel, s);
            b.end_group();
            block_idx += 1;
        }
    }

    // Head: 1x1 conv to wide features, swish, global pool, classifier.
    let head_ch = round_channels(HEAD_CHANNELS, width);
    let hc = b.conv2d("head.conv", cur, head_ch, 1, 1);
    let hs = b.swish("head.swish", hc);
    let gap = b.global_avg_pool("head.gap", hs);
    let flat = b.reshape("head.flat", gap, [batch, head_ch]);
    let logits = b.linear("head.fc", flat, NUM_CLASSES);
    b.output(logits);
    b.finish()
}

/// Builds one MBConv (inverted-residual) block.
fn mbconv_block(
    b: &mut GraphBuilder,
    name: &str,
    input: Tensor,
    out_ch: u64,
    expand: u64,
    kernel: u64,
    stride: u64,
) -> Tensor {
    let batch = b.dim(input, 0);
    let in_ch = b.dim(input, 3);
    let mid_ch = in_ch * expand;

    // Expansion (skipped when expand ratio is 1, as in stage 0).
    let expanded = if expand != 1 {
        let e = b.conv2d(format!("{name}.expand"), input, mid_ch, 1, 1);
        b.swish(format!("{name}.expand_swish"), e)
    } else {
        input
    };

    // Depthwise conv.
    let dw = b.depthwise_conv2d(format!("{name}.dwconv"), expanded, kernel, stride);
    let dws = b.swish(format!("{name}.dw_swish"), dw);

    // Squeeze-and-excitation: pool -> reduce FC -> swish -> expand FC ->
    // sigmoid -> channel-wise scale. Reduction width derives from the block
    // *input* channels (reference implementation). The scale is the model
    // zoo's divisibility-broadcast case: a [B,C] gate against [B,H,W,C].
    let se_ch = ((in_ch as f64 * SE_RATIO) as u64).max(1);
    let pooled = b.global_avg_pool(format!("{name}.se_pool"), dws);
    let squeezed = b.reshape(format!("{name}.se_flat"), pooled, [batch, mid_ch]);
    let fc1 = b.linear(format!("{name}.se_fc1"), squeezed, se_ch);
    let fc1a = b.swish(format!("{name}.se_swish"), fc1);
    let fc2 = b.linear(format!("{name}.se_fc2"), fc1a, mid_ch);
    let gate = b.sigmoid(format!("{name}.se_sigmoid"), fc2);
    let scaled = b.binary(format!("{name}.se_scale"), EwKind::Mul, dws, gate);

    // Projection back to out_ch (linear — no activation).
    let proj = b.conv2d(format!("{name}.project"), scaled, out_ch, 1, 1);

    // Residual connection when shapes allow.
    if stride == 1 && in_ch == out_ch {
        b.residual(format!("{name}.add"), proj, input)
    } else {
        proj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_ir::GraphStats;

    #[test]
    fn rounding_rules_match_reference() {
        assert_eq!(round_channels(32, 1.0), 32);
        // 35.2 rounds down to 32, which is above 0.9*35.2 = 31.7, so it stays.
        assert_eq!(round_channels(32, 1.1), 32);
        // Reference values: width 1.1 of 16 = 17.6 -> 16; 0.9*17.6 = 15.84 <= 16 so 16.
        assert_eq!(round_channels(16, 1.1), 16);
        // width 2.0 doubles cleanly.
        assert_eq!(round_channels(320, 2.0), 640);
        assert_eq!(round_repeats(1, 3.1), 4);
        assert_eq!(round_repeats(4, 3.1), 13);
        assert_eq!(round_repeats(2, 1.0), 2);
    }

    #[test]
    fn b0_structure() {
        let g = EfficientNet::B0.build(1).unwrap();
        g.validate().unwrap();
        // 16 MBConv blocks in B0.
        assert_eq!(g.group_names().len(), 16);
        // B0 ≈ 0.39 GFLOPs-MACs*2 at 224x224 (reference: 0.39 GMACs).
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((0.6..1.0).contains(&gflops), "B0 flops {gflops}");
        // ≈ 5.3 M parameters.
        let params = g.total_weight_bytes() as f64 / 2.0 / 1e6;
        assert!((4.5..6.5).contains(&params), "B0 params {params}M");
    }

    #[test]
    fn b7_structure() {
        let g = EfficientNet::B7.build(1).unwrap();
        g.validate().unwrap();
        assert_eq!(g.group_names().len(), 55);
        // ≈ 66 M parameters.
        let params = g.total_weight_bytes() as f64 / 2.0 / 1e6;
        assert!((58.0..75.0).contains(&params), "B7 params {params}M");
        // ≈ 37 GMACs -> 74 GFLOPs at 600x600.
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((60.0..90.0).contains(&gflops), "B7 flops {gflops}");
    }

    #[test]
    fn working_sets_grow_with_variant() {
        let b0 = GraphStats::of(&EfficientNet::B0.build(1).unwrap());
        let b4 = GraphStats::of(&EfficientNet::B4.build(1).unwrap());
        let b7 = GraphStats::of(&EfficientNet::B7.build(1).unwrap());
        assert!(b0.max_working_set_bytes < b4.max_working_set_bytes);
        assert!(b4.max_working_set_bytes < b7.max_working_set_bytes);
        assert!(b0.weight_bytes < b4.weight_bytes);
        assert!(b4.weight_bytes < b7.weight_bytes);
    }

    #[test]
    fn batch_scales_flops_linearly() {
        let b1 = EfficientNet::B0.build(1).unwrap().total_flops();
        let b8 = EfficientNet::B0.build(8).unwrap().total_flops();
        assert_eq!(b8, 8 * b1);
    }

    #[test]
    fn depthwise_flops_are_small_fraction() {
        // Table 2: depthwise convs are ~5 % of FLOPs in B7.
        let g = EfficientNet::B7.build(1).unwrap();
        let s = GraphStats::of(&g);
        let dw = s.flop_fraction("DepthwiseConv2dNative");
        assert!((0.01..0.12).contains(&dw), "depthwise fraction {dw}");
        let conv = s.flop_fraction("Conv2D");
        assert!(conv > 0.8, "conv fraction {conv}");
    }

    #[test]
    fn accuracies_monotone() {
        let mut last = 0.0;
        for v in EfficientNet::ALL {
            assert!(v.imagenet_top1() > last);
            last = v.imagenet_top1();
        }
    }
}
