//! Root presolve for the 0/1 branch-and-bound: bound-implied binary
//! fixing plus coefficient tightening.
//!
//! Both reductions are *exact* on the integer feasible set — they never cut
//! off a feasible 0/1 assignment and never admit an infeasible one — so the
//! solver's answers are bit-identical with or without presolve; only the LP
//! relaxation gets tighter and the tree smaller.
//!
//! * **Binary fixing.** For each row read in `≤` form, let `m_j` be the
//!   minimum activity of the row over the current bounds *excluding*
//!   variable `j`. If `m_j + a_j > b` then `x_j = 1` is impossible in every
//!   completion, so `x_j` is fixed to 0; if `m_j > b` then `x_j = 0` is
//!   impossible and `x_j` is fixed to 1. Singleton rows (`a·x ≤ b`) are the
//!   degenerate case `m_j = 0`. Equality rows are processed in both
//!   directions.
//! * **Coefficient tightening** (Savelsbergh-style). For a `≤` row with a
//!   binary `x_j`, `a_j > 0`, and finite maximum activity `M` of the other
//!   terms: when `M ≤ b` and `M > b − a_j`, replacing `(a_j, b)` with
//!   `(M − b + a_j, M)` keeps both 0/1 completions of the row exactly as
//!   feasible as before while shrinking the fractional region. Rows with
//!   unbounded activity (e.g. the fusion time rows over free `T_i`) are
//!   skipped.

use crate::problem::{Problem, Sense, VarKind};
use crate::simplex::Bounds;

const TOL: f64 = 1e-9;

/// Outcome of [`presolve`].
pub(crate) struct PresolveResult {
    /// Root bounds with presolve-fixed binaries (`lo == hi`).
    pub bounds: Bounds,
    /// A copy of the problem with tightened rows; variables and objective
    /// are untouched, so assignments and objective values are directly
    /// comparable with the original.
    pub problem: Problem,
    /// The bounds alone prove the integer problem infeasible.
    pub infeasible: bool,
    /// Binaries fixed by bound implication (diagnostics/tests only).
    #[allow(dead_code)]
    pub fixed_binaries: usize,
    /// Coefficients tightened (diagnostics/tests only).
    #[allow(dead_code)]
    pub tightened: usize,
}

/// One row viewed in `≤` form: `sign · (terms) ≤ sign · rhs` with
/// `sign ∈ {+1, −1}` (−1 reads a `≥` row as `≤`).
struct LeView {
    sign: f64,
}

impl LeView {
    fn coef(&self, a: f64) -> f64 {
        self.sign * a
    }
}

/// Minimum/maximum of `a · x` over `x ∈ [lo, hi]` (infinity-aware).
fn term_range(a: f64, lo: f64, hi: f64) -> (f64, f64) {
    let p = a * lo;
    let q = a * hi;
    if p <= q {
        (p, q)
    } else {
        (q, p)
    }
}

/// Runs bound-implied binary fixing and coefficient tightening to a
/// fixpoint (bounded rounds). See the module docs for the exact rules.
pub(crate) fn presolve(problem: &Problem, root: &Bounds) -> PresolveResult {
    let mut bounds = root.clone();
    let mut tightened_problem = problem.clone();
    let mut infeasible = false;
    let mut fixed_binaries = 0usize;
    let mut tightened = 0usize;

    let is_binary: Vec<bool> =
        problem.variables().iter().map(|v| matches!(v.kind, VarKind::Binary)).collect();

    'rounds: for _ in 0..4 {
        let mut changed = false;
        for row_idx in 0..tightened_problem.num_constraints() {
            let (sense, rhs) = {
                let c = &tightened_problem.constraints()[row_idx];
                (c.sense, c.rhs)
            };
            // Rows with duplicate variables are left alone (none of our
            // model builders emit them; correctness first).
            let has_dup = {
                let terms = &tightened_problem.constraints()[row_idx].terms;
                let mut seen: Vec<u32> = terms.iter().map(|&(v, _)| v.index() as u32).collect();
                seen.sort_unstable();
                seen.windows(2).any(|w| w[0] == w[1])
            };
            if has_dup {
                continue;
            }

            let views: &[LeView] = match sense {
                Sense::Le => &[LeView { sign: 1.0 }],
                Sense::Ge => &[LeView { sign: -1.0 }],
                Sense::Eq => &[LeView { sign: 1.0 }, LeView { sign: -1.0 }],
            };
            for view in views {
                let b = view.sign * rhs;
                // Activity range over the current bounds.
                let mut min_act = 0.0f64;
                let mut max_act = 0.0f64;
                for &(v, a) in &tightened_problem.constraints()[row_idx].terms {
                    let (lo, hi) = (bounds.lo[v.index()], bounds.hi[v.index()]);
                    let (mn, mx) = term_range(view.coef(a), lo, hi);
                    min_act += mn;
                    max_act += mx;
                }
                if min_act > b + TOL {
                    infeasible = true;
                    break 'rounds;
                }

                // Binary fixing.
                let terms: Vec<(usize, f64)> = tightened_problem.constraints()[row_idx]
                    .terms
                    .iter()
                    .map(|&(v, a)| (v.index(), view.coef(a)))
                    .collect();
                for &(j, a) in &terms {
                    if !is_binary[j] || bounds.hi[j] - bounds.lo[j] < 0.5 {
                        continue;
                    }
                    let (mn_j, _) = term_range(a, bounds.lo[j], bounds.hi[j]);
                    let m = min_act - mn_j;
                    if m + a > b + TOL {
                        // x_j = 1 violates even the best completion.
                        bounds.hi[j] = 0.0;
                        fixed_binaries += 1;
                        changed = true;
                    } else if m > b + TOL {
                        // x_j = 0 violates even the best completion.
                        bounds.lo[j] = 1.0;
                        fixed_binaries += 1;
                        changed = true;
                    }
                    if bounds.lo[j] > bounds.hi[j] + TOL {
                        infeasible = true;
                        break 'rounds;
                    }
                }

                // Coefficient tightening (inequality rows only).
                if sense == Sense::Eq {
                    continue;
                }
                for (pos, &(j, a)) in terms.iter().enumerate() {
                    if !is_binary[j] || a <= TOL || bounds.hi[j] - bounds.lo[j] < 0.5 {
                        continue;
                    }
                    let (_, mx_j) = term_range(a, bounds.lo[j], bounds.hi[j]);
                    let m = max_act - mx_j;
                    if !m.is_finite() {
                        continue;
                    }
                    if m <= b + TOL && m > b - a + TOL {
                        let new_a = m - b + a;
                        let c = &mut tightened_problem.constraints_mut()[row_idx];
                        c.terms[pos].1 = view.coef(new_a);
                        c.rhs = view.sign * m;
                        tightened += 1;
                        changed = true;
                        // Row changed: move on; the next round revisits it.
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    PresolveResult { bounds, problem: tightened_problem, infeasible, fixed_binaries, tightened }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Sense;

    #[test]
    fn fixes_binary_that_cannot_fit() {
        // 10 a + b <= 5: a can never be 1.
        let mut p = Problem::new("t");
        let a = p.add_binary("a", -1.0);
        let b = p.add_binary("b", -1.0);
        p.add_constraint("cap", vec![(a, 10.0), (b, 1.0)], Sense::Le, 5.0);
        let pre = presolve(&p, &Bounds::of(&p));
        assert!(!pre.infeasible);
        assert_eq!(pre.fixed_binaries, 1);
        assert_eq!(pre.bounds.hi[0], 0.0);
        assert_eq!(pre.bounds.hi[1], 1.0);
    }

    #[test]
    fn fixes_binary_forced_on_by_ge_row() {
        // a + b >= 2 over binaries: both must be 1.
        let mut p = Problem::new("t");
        let a = p.add_binary("a", 1.0);
        let b = p.add_binary("b", 1.0);
        p.add_constraint("need", vec![(a, 1.0), (b, 1.0)], Sense::Ge, 2.0);
        let pre = presolve(&p, &Bounds::of(&p));
        assert!(!pre.infeasible);
        assert_eq!(pre.fixed_binaries, 2);
        assert_eq!(pre.bounds.lo[0], 1.0);
        assert_eq!(pre.bounds.lo[1], 1.0);
    }

    #[test]
    fn detects_infeasible_from_bounds_alone() {
        let mut p = Problem::new("t");
        let a = p.add_binary("a", 1.0);
        let b = p.add_binary("b", 1.0);
        p.add_constraint("need", vec![(a, 1.0), (b, 1.0)], Sense::Ge, 3.0);
        let pre = presolve(&p, &Bounds::of(&p));
        assert!(pre.infeasible);
    }

    #[test]
    fn tightens_knapsack_coefficient() {
        // 3a + 3b <= 5: with b at most 1, M = 3 for each var; M <= 5 and
        // M > 5 - 3 = 2, so a's coefficient tightens to 3 - 5 + 3 = 1 with
        // rhs 3 (and then the row is re-tightened symmetrically). The 0/1
        // feasible set ({a+b <= 1... actually both can't be 1: 6 > 5}) is
        // exactly preserved.
        let mut p = Problem::new("t");
        let a = p.add_binary("a", -1.0);
        let b = p.add_binary("b", -1.0);
        p.add_constraint("cap", vec![(a, 3.0), (b, 3.0)], Sense::Le, 5.0);
        let pre = presolve(&p, &Bounds::of(&p));
        assert!(pre.tightened >= 1, "expected at least one tightening");
        // Exactness: every 0/1 point keeps its feasibility classification.
        for (x, y) in [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)] {
            assert_eq!(
                p.is_feasible(&[x, y], 1e-9),
                pre.problem.is_feasible(&[x, y], 1e-9),
                "({x},{y}) classification changed"
            );
        }
    }

    #[test]
    fn skips_rows_with_unbounded_activity() {
        // T free above: tightening must not touch the row.
        let mut p = Problem::new("t");
        let t = p.add_continuous("T", 0.0, f64::INFINITY, 1.0);
        let a = p.add_binary("a", 0.0);
        p.add_constraint("time", vec![(t, 1.0), (a, 2.0)], Sense::Ge, 3.0);
        let before = p.constraints()[0].terms.clone();
        let pre = presolve(&p, &Bounds::of(&p));
        assert_eq!(pre.tightened, 0);
        assert_eq!(pre.problem.constraints()[0].terms, before);
    }
}
