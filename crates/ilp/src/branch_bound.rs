//! LP-based branch and bound for 0/1 MILPs.
//!
//! Matches the contract FAST relies on from SCIP (§6.1): solve to optimality
//! when the budget allows, otherwise return the **best incumbent** found
//! within the node limit.
//!
//! [`solve_milp`] is a best-bound search: open nodes live in a priority
//! queue ordered by their parent's LP bound (ties broken by creation order,
//! so exploration is fully deterministic), which closes the optimality gap
//! with far fewer nodes than the depth-first baseline. Three further
//! reductions ride on top, all exact — they never change the answer, only
//! the work:
//!
//! * a presolve pass fixes binaries implied by row
//!   bounds and tightens coefficients before the tree starts;
//! * branching is pseudocost-driven: per-variable objective degradations
//!   observed in child LPs pick the next branch variable, seeded from
//!   objective coefficients while unobserved (lowest index on ties);
//! * child LPs crash-start from the parent's optimal basis
//!   ([`crate::simplex::solve_lp_warm`]), so each child typically needs a
//!   handful of pivots instead of a full two-phase solve.
//!
//! Termination is governed by the deterministic `max_nodes` budget; the
//! wall-clock limit is an opt-in escape hatch (`time_limit: Some(..)`) and
//! deliberately off by default, because a clock-based stop can flip
//! `proven`/incumbents between runs on a loaded machine.
//!
//! The pre-optimization solver is kept as [`solve_milp_reference`] — a
//! comparison oracle for the `ilp_solve` bench, which asserts the new
//! search returns identical decisions with a fraction of the nodes.

use crate::presolve::presolve;
use crate::problem::Problem;
use crate::simplex::{solve_lp, solve_lp_warm, Bounds, LpStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Integrality tolerance for branching decisions.
const INT_TOL: f64 = 1e-6;

/// Solver limits and warm start.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Deterministic node budget — the primary stop. Exploration halts after
    /// this many LP-solved nodes and the best incumbent is returned.
    pub max_nodes: usize,
    /// Opt-in wall-clock escape hatch. `None` (the default) keeps the solve
    /// fully deterministic; `Some(limit)` additionally stops the search when
    /// the clock runs out, which may flip `proven` between runs.
    pub time_limit: Option<Duration>,
    /// Relative optimality gap used for pruning.
    pub gap_tol: f64,
    /// Optional warm-start assignment; adopted as the initial incumbent when
    /// feasible (checked against the problem), silently ignored otherwise.
    pub warm_start: Option<Vec<f64>>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { max_nodes: 10_000, time_limit: None, gap_tol: 1e-6, warm_start: None }
    }
}

/// Termination status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal.
    Optimal,
    /// A feasible incumbent is returned but limits stopped the proof.
    Incumbent,
    /// Proven infeasible.
    Infeasible,
    /// Limits hit before any feasible point was found.
    Unknown,
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Termination status.
    pub status: MilpStatus,
    /// Objective of `values` (`f64::INFINITY` when none found).
    pub objective: f64,
    /// Best assignment found.
    pub values: Vec<f64>,
    /// Branch-and-bound nodes whose LP relaxation was solved.
    pub nodes_explored: usize,
    /// Total simplex pivots across all node LPs (crash + both phases).
    pub lp_pivots: u64,
}

/// Pruning cutoff for a given incumbent objective.
fn cutoff(best_obj: f64, gap_tol: f64) -> f64 {
    best_obj - gap_tol * best_obj.abs().max(1.0)
}

/// An open node: bounds plus the parent's LP bound and optimal basis.
struct Node {
    /// Valid lower bound on every integer point in this subtree (the
    /// parent's LP objective; `-inf` for the root).
    bound: f64,
    /// Creation order; deterministic tie-break for equal bounds.
    id: u64,
    bounds: Bounds,
    /// Parent's optimal basis (structural columns), shared by siblings.
    basis: Option<Rc<Vec<usize>>>,
    /// Branch that created this node: `(var, went_up, parent_obj, parent_frac)`.
    branch: Option<(usize, bool, f64, f64)>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (bound, id) pops.
        other.bound.total_cmp(&self.bound).then_with(|| other.id.cmp(&self.id))
    }
}

/// Per-variable pseudocost state: observed objective degradation per unit
/// of fractionality, in each branch direction.
#[derive(Clone, Copy, Default)]
struct Pseudocost {
    down_sum: f64,
    down_n: u32,
    up_sum: f64,
    up_n: u32,
}

impl Pseudocost {
    fn down(&self, seed: f64) -> f64 {
        if self.down_n == 0 {
            seed
        } else {
            self.down_sum / f64::from(self.down_n)
        }
    }
    fn up(&self, seed: f64) -> f64 {
        if self.up_n == 0 {
            seed
        } else {
            self.up_sum / f64::from(self.up_n)
        }
    }
}

/// Solves a 0/1 MILP by presolved, warm-started, best-bound branch and
/// bound. See the module docs for the search design; answers are a
/// deterministic function of `(problem, options)` unless `time_limit` is
/// set.
#[must_use]
pub fn solve_milp(problem: &Problem, options: &SolveOptions) -> MilpSolution {
    let start = options.time_limit.map(|limit| (Instant::now(), limit));
    let num_vars = problem.num_vars();
    let binaries = problem.binary_vars();

    let mut best_x: Option<Vec<f64>> = None;
    let mut best_obj = f64::INFINITY;
    if let Some(ws) = &options.warm_start {
        if problem.is_feasible(ws, 1e-6) {
            best_obj = problem.objective_value(ws);
            best_x = Some(ws.clone());
        }
    }

    let pre = presolve(problem, &Bounds::of(problem));
    if pre.infeasible {
        // Presolve's proof stands only when no incumbent contradicts it; a
        // feasible warm start (tolerances can disagree at the margin) is
        // still returned, conservatively unproven.
        return match best_x {
            Some(x) => MilpSolution {
                status: MilpStatus::Incumbent,
                objective: best_obj,
                values: x,
                nodes_explored: 0,
                lp_pivots: 0,
            },
            None => MilpSolution {
                status: MilpStatus::Infeasible,
                objective: f64::INFINITY,
                values: vec![0.0; num_vars],
                nodes_explored: 0,
                lp_pivots: 0,
            },
        };
    }
    let tightened = &pre.problem;

    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    heap.push(Node {
        bound: f64::NEG_INFINITY,
        id: 0,
        bounds: pre.bounds,
        basis: None,
        branch: None,
    });
    let mut next_id: u64 = 1;

    let mut pseudo: Vec<Pseudocost> = vec![Pseudocost::default(); num_vars];
    let seeds: Vec<f64> = problem.variables().iter().map(|v| v.objective.abs() + 1e-6).collect();

    let mut nodes_explored = 0usize;
    let mut lp_pivots = 0u64;
    let mut proven = true;
    let mut closed = false;

    while let Some(node) = heap.pop() {
        // With best-bound order, the popped node has the least bound of all
        // open nodes: once it clears the cutoff the whole tree is pruned.
        if node.bound >= cutoff(best_obj, options.gap_tol) {
            closed = true;
            break;
        }
        if nodes_explored >= options.max_nodes {
            proven = false;
            break;
        }
        if let Some((t0, limit)) = start {
            if t0.elapsed() > limit {
                proven = false;
                break;
            }
        }
        nodes_explored += 1;

        let lp = solve_lp_warm(tightened, &node.bounds, node.basis.as_deref().map(Vec::as_slice));
        lp_pivots += lp.pivots;
        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                proven = false;
                continue;
            }
            LpStatus::IterLimit => {
                // The point may be suboptimal: its objective is not a valid
                // bound, so don't prune on it — but still branch below.
                proven = false;
            }
            LpStatus::Optimal => {
                if let Some((var, up, parent_obj, frac)) = node.branch {
                    if parent_obj.is_finite() {
                        let gain = (lp.objective - parent_obj).max(0.0);
                        let pc = &mut pseudo[var];
                        if up {
                            pc.up_sum += gain / (1.0 - frac).max(INT_TOL);
                            pc.up_n += 1;
                        } else {
                            pc.down_sum += gain / frac.max(INT_TOL);
                            pc.down_n += 1;
                        }
                    }
                }
                if lp.objective >= cutoff(best_obj, options.gap_tol) {
                    continue;
                }
            }
        }
        let trusted = lp.status == LpStatus::Optimal;

        // Branch-variable selection: pseudocost product score over the
        // fractional binaries (lowest index wins ties via strict `>`).
        let mut best_var: Option<usize> = None;
        let mut best_score = f64::NEG_INFINITY;
        let mut best_val = 0.0;
        for v in &binaries {
            let i = v.index();
            let val = lp.values[i];
            let frac = (val - val.round()).abs();
            if frac > INT_TOL {
                let pc = &pseudo[i];
                let seed = seeds[i];
                let score =
                    (pc.down(seed) * frac).max(1e-12) * (pc.up(seed) * (1.0 - frac)).max(1e-12);
                if score > best_score {
                    best_score = score;
                    best_var = Some(i);
                    best_val = val;
                }
            }
        }

        let Some(branch_var) = best_var else {
            // Integral on all binaries: candidate incumbent.
            let mut x = lp.values.clone();
            for v in &binaries {
                x[v.index()] = x[v.index()].round();
            }
            if problem.is_feasible(&x, 1e-6) {
                let obj = problem.objective_value(&x);
                if obj < best_obj {
                    best_obj = obj;
                    best_x = Some(x);
                }
            }
            continue;
        };

        // Cheap rounding heuristic while we have no incumbent at all.
        if best_x.is_none() {
            let mut x = lp.values.clone();
            for v in &binaries {
                x[v.index()] = x[v.index()].round();
            }
            if problem.is_feasible(&x, 1e-6) {
                let obj = problem.objective_value(&x);
                if obj < best_obj {
                    best_obj = obj;
                    best_x = Some(x);
                }
            }
        }

        // Branch. Children inherit the tightest trusted bound on the path
        // and the parent's optimal basis as a crash hint; the side the
        // fraction leans toward gets the lower id (explored first on ties).
        let child_bound = if trusted { lp.objective } else { node.bound };
        let basis = if trusted { Some(Rc::new(lp.basic_structurals)) } else { node.basis.clone() };
        let parent_obj = if trusted { lp.objective } else { f64::INFINITY };
        let frac_part = (best_val - best_val.round()).abs();
        let order: [bool; 2] = if best_val >= 0.5 { [true, false] } else { [false, true] };
        for up in order {
            let mut child = node.bounds.clone();
            let v = if up { 1.0 } else { 0.0 };
            child.lo[branch_var] = v;
            child.hi[branch_var] = v;
            heap.push(Node {
                bound: child_bound,
                id: next_id,
                bounds: child,
                basis: basis.clone(),
                branch: Some((branch_var, up, parent_obj, frac_part)),
            });
            next_id += 1;
        }
    }
    if heap.is_empty() {
        closed = true;
    }

    let optimal = proven && closed;
    match best_x {
        Some(x) => MilpSolution {
            status: if optimal { MilpStatus::Optimal } else { MilpStatus::Incumbent },
            objective: best_obj,
            values: x,
            nodes_explored,
            lp_pivots,
        },
        None => MilpSolution {
            status: if optimal { MilpStatus::Infeasible } else { MilpStatus::Unknown },
            objective: f64::INFINITY,
            values: vec![0.0; num_vars],
            nodes_explored,
            lp_pivots,
        },
    }
}

/// The pre-optimization branch and bound: depth-first search with
/// most-fractional branching, no presolve, no basis reuse.
///
/// Kept as a comparison oracle so the `ilp_solve` bench can assert that
/// [`solve_milp`] returns identical decisions while exploring several times
/// fewer nodes. Not used on any production path.
#[must_use]
pub fn solve_milp_reference(problem: &Problem, options: &SolveOptions) -> MilpSolution {
    let start = options.time_limit.map(|limit| (Instant::now(), limit));
    let num_vars = problem.num_vars();
    let binaries = problem.binary_vars();

    let mut best_x: Option<Vec<f64>> = None;
    let mut best_obj = f64::INFINITY;
    if let Some(ws) = &options.warm_start {
        if problem.is_feasible(ws, 1e-6) {
            best_obj = problem.objective_value(ws);
            best_x = Some(ws.clone());
        }
    }

    let mut stack: Vec<Bounds> = vec![Bounds::of(problem)];
    let mut nodes_explored = 0usize;
    let mut lp_pivots = 0u64;
    let mut proven = true;

    while let Some(bounds) = stack.pop() {
        if nodes_explored >= options.max_nodes
            || start.is_some_and(|(t0, limit)| t0.elapsed() > limit)
        {
            proven = false;
            break;
        }
        nodes_explored += 1;

        let lp = solve_lp(problem, &bounds);
        lp_pivots += lp.pivots;
        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                proven = false;
                continue;
            }
            LpStatus::IterLimit => {
                proven = false;
            }
            LpStatus::Optimal => {}
        }
        if lp.status == LpStatus::Optimal
            && lp.objective >= best_obj - options.gap_tol * best_obj.abs().max(1.0)
        {
            continue;
        }

        // Most fractional binary.
        let mut branch_var: Option<usize> = None;
        let mut branch_frac = 0.0;
        for v in &binaries {
            let val = lp.values[v.index()];
            let frac = (val - val.round()).abs();
            if frac > INT_TOL && frac > branch_frac {
                branch_frac = frac;
                branch_var = Some(v.index());
            }
        }

        let Some(branch_var) = branch_var else {
            let mut x = lp.values.clone();
            for v in &binaries {
                x[v.index()] = x[v.index()].round();
            }
            if problem.is_feasible(&x, 1e-6) {
                let obj = problem.objective_value(&x);
                if obj < best_obj {
                    best_obj = obj;
                    best_x = Some(x);
                }
            }
            continue;
        };

        if best_x.is_none() {
            let mut x = lp.values.clone();
            for v in &binaries {
                x[v.index()] = x[v.index()].round();
            }
            if problem.is_feasible(&x, 1e-6) {
                let obj = problem.objective_value(&x);
                if obj < best_obj {
                    best_obj = obj;
                    best_x = Some(x);
                }
            }
        }

        let frac = lp.values[branch_var];
        let (near, far) = if frac >= 0.5 { (1.0, 0.0) } else { (0.0, 1.0) };
        let mut far_bounds = bounds.clone();
        far_bounds.lo[branch_var] = far;
        far_bounds.hi[branch_var] = far;
        stack.push(far_bounds);
        let mut near_bounds = bounds;
        near_bounds.lo[branch_var] = near;
        near_bounds.hi[branch_var] = near;
        stack.push(near_bounds);
    }

    let optimal = proven && stack.is_empty();
    match best_x {
        Some(x) => MilpSolution {
            status: if optimal { MilpStatus::Optimal } else { MilpStatus::Incumbent },
            objective: best_obj,
            values: x,
            nodes_explored,
            lp_pivots,
        },
        None => MilpSolution {
            status: if optimal { MilpStatus::Infeasible } else { MilpStatus::Unknown },
            objective: f64::INFINITY,
            values: vec![0.0; num_vars],
            nodes_explored,
            lp_pivots,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Sense;

    fn knapsack() -> Problem {
        // max 3a + 4b + 2c s.t. 2a + 3b + c <= 4  == min -(...)
        let mut p = Problem::new("knap");
        let a = p.add_binary("a", -3.0);
        let b = p.add_binary("b", -4.0);
        let c = p.add_binary("c", -2.0);
        p.add_constraint("cap", vec![(a, 2.0), (b, 3.0), (c, 1.0)], Sense::Le, 4.0);
        p
    }

    #[test]
    fn knapsack_exact() {
        let p = knapsack();
        let s = solve_milp(&p, &SolveOptions::default());
        assert_eq!(s.status, MilpStatus::Optimal);
        // Best: b + c = 4 + 2 = 6 (weight 4). a + c = 5 (weight 3). a+b over.
        assert!((s.objective - (-6.0)).abs() < 1e-6, "{}", s.objective);
        assert_eq!(s.values[0].round() as i64, 0);
        assert_eq!(s.values[1].round() as i64, 1);
        assert_eq!(s.values[2].round() as i64, 1);
        assert!(s.lp_pivots > 0);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -2a - y s.t. a + y <= 1.5, y in [0, 1], a binary.
        let mut p = Problem::new("mix");
        let a = p.add_binary("a", -2.0);
        let y = p.add_continuous("y", 0.0, 1.0, -1.0);
        p.add_constraint("c", vec![(a, 1.0), (y, 1.0)], Sense::Le, 1.5);
        let s = solve_milp(&p, &SolveOptions::default());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - (-2.5)).abs() < 1e-6);
        assert!((s.values[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_milp() {
        let mut p = Problem::new("inf");
        let a = p.add_binary("a", 1.0);
        let b = p.add_binary("b", 1.0);
        p.add_constraint("c", vec![(a, 1.0), (b, 1.0)], Sense::Ge, 3.0);
        let s = solve_milp(&p, &SolveOptions::default());
        assert_eq!(s.status, MilpStatus::Infeasible);
    }

    #[test]
    fn warm_start_used_as_incumbent() {
        let p = knapsack();
        // Feasible but suboptimal: a only.
        let ws = vec![1.0, 0.0, 0.0];
        let s = solve_milp(
            &p,
            &SolveOptions { max_nodes: 0, warm_start: Some(ws), ..Default::default() },
        );
        assert_eq!(s.status, MilpStatus::Incumbent);
        assert!((s.objective - (-3.0)).abs() < 1e-6);
    }

    #[test]
    fn infeasible_warm_start_is_ignored() {
        let p = knapsack();
        let ws = vec![1.0, 1.0, 1.0]; // weight 6 > 4
        let s = solve_milp(&p, &SolveOptions { warm_start: Some(ws), ..Default::default() });
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - (-6.0)).abs() < 1e-6);
    }

    #[test]
    fn node_limit_returns_incumbent_not_panic() {
        let mut p = Problem::new("big");
        let vars: Vec<_> =
            (0..12).map(|i| p.add_binary(format!("x{i}"), -(1.0 + i as f64))).collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint("cap", terms, Sense::Le, 6.0);
        let s = solve_milp(&p, &SolveOptions { max_nodes: 5, ..Default::default() });
        assert!(matches!(s.status, MilpStatus::Incumbent | MilpStatus::Optimal));
        assert!(s.nodes_explored <= 5);
    }

    #[test]
    fn budget_limited_solve_is_bit_identical_across_runs() {
        // Satellite regression: with the wall clock demoted to an opt-in
        // escape hatch, a budget-limited solve must be a pure function of
        // (problem, options) — identical bits on every run.
        let mut p = Problem::new("repeat");
        let vars: Vec<_> =
            (0..14).map(|i| p.add_binary(format!("x{i}"), -((i % 5) as f64) - 0.5)).collect();
        let terms: Vec<_> =
            vars.iter().enumerate().map(|(i, &v)| (v, 1.0 + (i % 3) as f64)).collect();
        p.add_constraint("cap", terms, Sense::Le, 9.5);
        let opts = SolveOptions { max_nodes: 7, ..Default::default() };
        let first = solve_milp(&p, &opts);
        for _ in 0..5 {
            let again = solve_milp(&p, &opts);
            assert_eq!(again.status, first.status);
            assert_eq!(again.objective.to_bits(), first.objective.to_bits());
            assert_eq!(again.nodes_explored, first.nodes_explored);
            assert_eq!(again.lp_pivots, first.lp_pivots);
            let a: Vec<u64> = again.values.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = first.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn matches_brute_force_on_small_problems() {
        for seed in 0..30u64 {
            let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64) / ((1u64 << 31) as f64)
            };
            let n = 4;
            let mut p = Problem::new("rand");
            let vars: Vec<_> =
                (0..n).map(|i| p.add_binary(format!("x{i}"), next() * 10.0 - 5.0)).collect();
            let terms: Vec<_> = vars.iter().map(|&v| (v, next() * 4.0)).collect();
            let rhs = next() * 8.0;
            p.add_constraint("cap", terms, Sense::Le, rhs);

            let sol = solve_milp(&p, &SolveOptions::default());

            // Brute force.
            let mut best = f64::INFINITY;
            for mask in 0..(1u32 << n) {
                let x: Vec<f64> =
                    (0..n).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
                if p.is_feasible(&x, 1e-9) {
                    best = best.min(p.objective_value(&x));
                }
            }
            assert_eq!(sol.status, MilpStatus::Optimal, "seed {seed}");
            assert!(
                (sol.objective - best).abs() < 1e-6,
                "seed {seed}: {} vs {best}",
                sol.objective
            );
        }
    }

    #[test]
    fn reference_solver_agrees_on_status_and_objective() {
        for seed in 0..20u64 {
            let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let mut next = || {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((s >> 33) as f64) / ((1u64 << 31) as f64)
            };
            let n = 8;
            let mut p = Problem::new("pair");
            let vars: Vec<_> =
                (0..n).map(|i| p.add_binary(format!("x{i}"), -next() * 10.0)).collect();
            let terms: Vec<_> = vars.iter().map(|&v| (v, 0.5 + next() * 4.0)).collect();
            p.add_constraint("cap", terms, Sense::Le, 6.0);
            let terms2: Vec<_> = vars.iter().map(|&v| (v, 0.5 + next() * 2.0)).collect();
            p.add_constraint("cap2", terms2, Sense::Le, 5.0);

            let fast = solve_milp(&p, &SolveOptions::default());
            let slow = solve_milp_reference(&p, &SolveOptions::default());
            assert_eq!(fast.status, MilpStatus::Optimal, "seed {seed}");
            assert_eq!(slow.status, MilpStatus::Optimal, "seed {seed}");
            assert!(
                (fast.objective - slow.objective).abs() < 1e-6,
                "seed {seed}: {} vs {}",
                fast.objective,
                slow.objective
            );
        }
    }

    #[test]
    fn time_limit_escape_hatch_still_works() {
        let p = knapsack();
        let s = solve_milp(
            &p,
            &SolveOptions { time_limit: Some(Duration::from_secs(30)), ..Default::default() },
        );
        assert_eq!(s.status, MilpStatus::Optimal);
    }
}
