//! Branch-and-bound driver for 0/1 MILPs on top of the LP relaxation.
//!
//! Matches the contract FAST relies on from SCIP (§6.1): solve to optimality
//! when the budget allows, otherwise return the **best incumbent** found
//! within the node/time limit.

use crate::problem::Problem;
use crate::simplex::{solve_lp, Bounds, LpStatus};
use std::time::{Duration, Instant};

/// Termination status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal.
    Optimal,
    /// A feasible incumbent is returned but limits stopped the proof.
    Incumbent,
    /// Proven infeasible.
    Infeasible,
    /// Limits hit before any feasible point was found.
    Unknown,
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Termination status.
    pub status: MilpStatus,
    /// Objective of `values` (`f64::INFINITY` when none found).
    pub objective: f64,
    /// Best assignment found.
    pub values: Vec<f64>,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
}

/// Solver limits and warm start.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Wall-clock limit.
    pub time_limit: Duration,
    /// Relative optimality gap at which to stop.
    pub gap_tol: f64,
    /// Optional feasible warm-start assignment (used as initial incumbent).
    pub warm_start: Option<Vec<f64>>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_nodes: 10_000,
            time_limit: Duration::from_secs(20),
            gap_tol: 1e-6,
            warm_start: None,
        }
    }
}

const INT_TOL: f64 = 1e-6;

/// Solves a 0/1 MILP by LP-based branch and bound.
#[must_use]
pub fn solve_milp(problem: &Problem, options: &SolveOptions) -> MilpSolution {
    let start = Instant::now();
    let binaries = problem.binary_vars();
    let root_bounds = Bounds::of(problem);

    let mut best_obj = f64::INFINITY;
    let mut best_x: Option<Vec<f64>> = None;
    if let Some(ws) = &options.warm_start {
        if problem.is_feasible(ws, 1e-6) {
            best_obj = problem.objective_value(ws);
            best_x = Some(ws.clone());
        }
    }

    let mut nodes_explored = 0usize;
    let mut proven = true;
    // DFS stack of bound sets.
    let mut stack: Vec<Bounds> = vec![root_bounds];

    while let Some(bounds) = stack.pop() {
        if nodes_explored >= options.max_nodes || start.elapsed() > options.time_limit {
            proven = false;
            break;
        }
        nodes_explored += 1;

        let lp = solve_lp(problem, &bounds);
        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // A relaxation unbounded at the root means the MILP is
                // unbounded or the model is broken; treat as no-prune.
                proven = false;
                continue;
            }
            LpStatus::IterLimit => {
                proven = false;
                // Cannot trust the bound; fall through and try branching on
                // the (possibly suboptimal) point.
            }
            LpStatus::Optimal => {}
        }
        // Bound-based pruning (only sound for Optimal relaxations).
        if lp.status == LpStatus::Optimal
            && lp.objective >= best_obj - options.gap_tol * best_obj.abs().max(1.0)
        {
            continue;
        }

        // Find most fractional binary.
        let mut branch_var = None;
        let mut most_frac = INT_TOL;
        for &b in &binaries {
            let v = lp.values[b.index()];
            let frac = (v - v.round()).abs();
            if frac > most_frac {
                most_frac = frac;
                branch_var = Some(b);
            }
        }

        match branch_var {
            None => {
                // Integral: candidate incumbent (round exactly to be safe).
                let mut x = lp.values.clone();
                for &b in &binaries {
                    x[b.index()] = x[b.index()].round();
                }
                if problem.is_feasible(&x, 1e-6) {
                    let obj = problem.objective_value(&x);
                    if obj < best_obj {
                        best_obj = obj;
                        best_x = Some(x);
                    }
                }
            }
            Some(b) => {
                // Rounding heuristic to seed incumbents early.
                if best_x.is_none() {
                    let mut x = lp.values.clone();
                    for &bv in &binaries {
                        x[bv.index()] = x[bv.index()].round();
                    }
                    if problem.is_feasible(&x, 1e-6) {
                        let obj = problem.objective_value(&x);
                        if obj < best_obj {
                            best_obj = obj;
                            best_x = Some(x);
                        }
                    }
                }
                let frac = lp.values[b.index()];
                // Explore the nearer side first (DFS pops last push).
                let (first, second) = if frac >= 0.5 { (0.0, 1.0) } else { (1.0, 0.0) };
                for fix in [first, second] {
                    let mut child = bounds.clone();
                    child.lo[b.index()] = fix;
                    child.hi[b.index()] = fix;
                    stack.push(child);
                }
            }
        }
    }

    match best_x {
        Some(values) => MilpSolution {
            status: if proven && stack.is_empty() {
                MilpStatus::Optimal
            } else {
                MilpStatus::Incumbent
            },
            objective: best_obj,
            values,
            nodes_explored,
        },
        None => MilpSolution {
            status: if proven && stack.is_empty() {
                MilpStatus::Infeasible
            } else {
                MilpStatus::Unknown
            },
            objective: f64::INFINITY,
            values: vec![0.0; problem.num_vars()],
            nodes_explored,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Sense;

    /// 0/1 knapsack with known optimum.
    #[test]
    fn knapsack_exact() {
        // values [6,10,12], weights [1,2,3], cap 5 -> take items 2+3 = 22.
        let mut p = Problem::new("ks");
        let a = p.add_binary("a", -6.0);
        let b = p.add_binary("b", -10.0);
        let c = p.add_binary("c", -12.0);
        p.add_constraint("cap", vec![(a, 1.0), (b, 2.0), (c, 3.0)], Sense::Le, 5.0);
        let s = solve_milp(&p, &SolveOptions::default());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective + 22.0).abs() < 1e-6, "{}", s.objective);
        assert_eq!(s.values[1].round() as i64, 1);
        assert_eq!(s.values[2].round() as i64, 1);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -y - 5 b  s.t. y <= 3 + 2b, y <= 4, b binary.
        // b=1: y=4 (cap by y<=4): obj -9. b=0: y=3: obj -3. Optimum -9.
        let mut p = Problem::new("mix");
        let y = p.add_continuous("y", 0.0, 4.0, -1.0);
        let b = p.add_binary("b", -5.0);
        p.add_constraint("link", vec![(y, 1.0), (b, -2.0)], Sense::Le, 3.0);
        let s = solve_milp(&p, &SolveOptions::default());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective + 9.0).abs() < 1e-6, "{}", s.objective);
    }

    #[test]
    fn infeasible_milp() {
        let mut p = Problem::new("inf");
        let a = p.add_binary("a", 1.0);
        let b = p.add_binary("b", 1.0);
        p.add_constraint("c1", vec![(a, 1.0), (b, 1.0)], Sense::Ge, 3.0);
        let s = solve_milp(&p, &SolveOptions::default());
        assert_eq!(s.status, MilpStatus::Infeasible);
    }

    #[test]
    fn warm_start_used_as_incumbent() {
        let mut p = Problem::new("ws");
        let a = p.add_binary("a", -1.0);
        p.add_constraint("c", vec![(a, 1.0)], Sense::Le, 1.0);
        let opts = SolveOptions {
            max_nodes: 0, // no exploration: incumbent must come from warm start
            warm_start: Some(vec![1.0]),
            ..SolveOptions::default()
        };
        let s = solve_milp(&p, &opts);
        assert_eq!(s.status, MilpStatus::Incumbent);
        assert!((s.objective + 1.0).abs() < 1e-9);
    }

    #[test]
    fn node_limit_returns_incumbent_not_panic() {
        // 12-item knapsack, tiny node budget.
        let mut p = Problem::new("big");
        let mut terms = Vec::new();
        for i in 0..12 {
            let v = p.add_binary(format!("x{i}"), -((i % 5 + 1) as f64));
            terms.push((v, (i % 3 + 1) as f64));
        }
        p.add_constraint("cap", terms, Sense::Le, 7.0);
        let opts = SolveOptions { max_nodes: 5, ..SolveOptions::default() };
        let s = solve_milp(&p, &opts);
        assert!(matches!(
            s.status,
            MilpStatus::Incumbent | MilpStatus::Unknown | MilpStatus::Optimal
        ));
        if s.status != MilpStatus::Unknown {
            assert!(p.is_feasible(&s.values, 1e-6));
        }
    }

    /// Exhaustive cross-check on all 2^n assignments for small random-ish
    /// problems.
    #[test]
    fn matches_brute_force_on_small_problems() {
        let cases: Vec<(Vec<f64>, Vec<f64>, f64)> = vec![
            (vec![-3.0, -1.0, -4.0, -1.5], vec![2.0, 1.0, 3.0, 2.0], 4.0),
            (vec![-1.0, -2.0, -3.0, -4.0], vec![1.0, 1.0, 1.0, 1.0], 2.0),
            (vec![-5.0, -4.0, -3.0, -2.0], vec![4.0, 3.0, 2.0, 1.0], 6.0),
        ];
        for (values, weights, cap) in cases {
            let mut p = Problem::new("bf");
            let vars: Vec<_> =
                values.iter().enumerate().map(|(i, &v)| p.add_binary(format!("x{i}"), v)).collect();
            let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
            p.add_constraint("cap", terms, Sense::Le, cap);
            let s = solve_milp(&p, &SolveOptions::default());
            assert_eq!(s.status, MilpStatus::Optimal);
            // Brute force.
            let n = values.len();
            let mut best = f64::INFINITY;
            for mask in 0..(1u32 << n) {
                let x: Vec<f64> =
                    (0..n).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
                let w: f64 = x.iter().zip(&weights).map(|(a, b)| a * b).sum();
                if w <= cap {
                    let obj: f64 = x.iter().zip(&values).map(|(a, b)| a * b).sum();
                    best = best.min(obj);
                }
            }
            assert!((s.objective - best).abs() < 1e-6, "got {} want {best}", s.objective);
        }
    }
}
