//! Mixed 0/1 integer linear program representation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a decision variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Variable domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VarKind {
    /// Continuous within `[lower, upper]`.
    Continuous {
        /// Lower bound (≥ 0 after standardization; negative bounds are shifted).
        lower: f64,
        /// Upper bound; `f64::INFINITY` allowed.
        upper: f64,
    },
    /// Binary `{0, 1}`.
    Binary,
}

/// A decision variable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Variable {
    /// Display name.
    pub name: String,
    /// Domain.
    pub kind: VarKind,
    /// Objective coefficient (problems are minimized).
    pub objective: f64,
}

/// Row sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// `Σ a_j x_j ≤ rhs`.
    Le,
    /// `Σ a_j x_j ≥ rhs`.
    Ge,
    /// `Σ a_j x_j = rhs`.
    Eq,
}

/// A linear constraint (sparse row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constraint {
    /// Display name.
    pub name: String,
    /// `(variable, coefficient)` terms; duplicate variables are summed.
    pub terms: Vec<(VarId, f64)>,
    /// Row sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization MILP: `min cᵀx` subject to linear rows and variable domains.
///
/// ```
/// use fast_ilp::{Problem, Sense};
///
/// // Knapsack: maximize 3a + 4b with a + 2b <= 2  ==  minimize -(3a + 4b).
/// let mut p = Problem::new("knapsack");
/// let a = p.add_binary("a", -3.0);
/// let b = p.add_binary("b", -4.0);
/// p.add_constraint("cap", vec![(a, 1.0), (b, 2.0)], Sense::Le, 2.0);
/// assert_eq!(p.num_vars(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Problem {
    name: String,
    vars: Vec<Variable>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Problem { name: name.into(), vars: Vec::new(), constraints: Vec::new() }
    }

    /// Problem name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a binary variable with objective coefficient `objective`.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.vars.push(Variable { name: name.into(), kind: VarKind::Binary, objective });
        VarId((self.vars.len() - 1) as u32)
    }

    /// Adds a continuous variable on `[lower, upper]`.
    ///
    /// # Panics
    /// Panics if `lower > upper` or `lower` is not finite.
    pub fn add_continuous(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        assert!(lower.is_finite(), "lower bound must be finite");
        assert!(lower <= upper, "lower must not exceed upper");
        self.vars.push(Variable {
            name: name.into(),
            kind: VarKind::Continuous { lower, upper },
            objective,
        });
        VarId((self.vars.len() - 1) as u32)
    }

    /// Adds a constraint row.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<(VarId, f64)>,
        sense: Sense,
        rhs: f64,
    ) {
        self.constraints.push(Constraint { name: name.into(), terms, sense, rhs });
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    #[must_use]
    pub fn variables(&self) -> &[Variable] {
        &self.vars
    }

    /// Constraint rows.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Mutable constraint rows (presolve rewrites coefficients in place).
    pub(crate) fn constraints_mut(&mut self) -> &mut Vec<Constraint> {
        &mut self.constraints
    }

    /// Indices of the binary variables.
    #[must_use]
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Binary))
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// Objective value of an assignment.
    ///
    /// # Panics
    /// Panics if `x.len() != num_vars()`.
    #[must_use]
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars.iter().zip(x).map(|(v, &xi)| v.objective * xi).sum()
    }

    /// Checks feasibility of an assignment within `tol`.
    #[must_use]
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            match v.kind {
                VarKind::Binary => {
                    if !(xi > -tol && xi < 1.0 + tol) || (xi - xi.round()).abs() > tol {
                        return false;
                    }
                }
                VarKind::Continuous { lower, upper } => {
                    if xi < lower - tol || xi > upper + tol {
                        return false;
                    }
                }
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.index()]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MILP `{}`: {} vars ({} binary), {} rows",
            self.name,
            self.num_vars(),
            self.binary_vars().len(),
            self.num_constraints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut p = Problem::new("t");
        let a = p.add_binary("a", -3.0);
        let b = p.add_continuous("b", 0.0, 5.0, 2.0);
        p.add_constraint("c1", vec![(a, 1.0), (b, 1.0)], Sense::Le, 4.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.objective_value(&[1.0, 2.0]), -3.0 + 4.0);
        assert!(p.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[1.0, 4.0], 1e-9)); // violates c1
        assert!(!p.is_feasible(&[0.5, 0.0], 1e-9)); // fractional binary
        assert!(!p.is_feasible(&[0.0, 6.0], 1e-9)); // above upper bound
    }

    #[test]
    fn display_mentions_sizes() {
        let mut p = Problem::new("x");
        p.add_binary("a", 0.0);
        let s = p.to_string();
        assert!(s.contains("1 vars"));
    }

    #[test]
    #[should_panic(expected = "lower must not exceed upper")]
    fn bad_bounds_panic() {
        let mut p = Problem::new("t");
        let _ = p.add_continuous("b", 2.0, 1.0, 0.0);
    }
}
