//! # fast-ilp — a self-contained 0/1 MILP solver
//!
//! The FAST paper solves its fusion ILP (Figure 8) with SCIP v7, configured
//! with a 20-minute timeout after which the best incumbent is taken (§6.1).
//! SCIP is not available to this reproduction, so this crate provides the
//! substrate from scratch:
//!
//! * a [`Problem`] builder for sparse mixed 0/1 linear programs,
//! * a dense two-phase primal [`simplex`] solver for LP relaxations,
//! * an LP-based [`branch_bound`] driver with node/time limits that returns
//!   the best incumbent on limit — the same contract FAST relies on.
//!
//! ```
//! use fast_ilp::{Problem, Sense, SolveOptions, solve_milp, MilpStatus};
//!
//! // max 6a + 10b + 12c  s.t.  a + 2b + 3c <= 5   (classic knapsack)
//! let mut p = Problem::new("knapsack");
//! let a = p.add_binary("a", -6.0);
//! let b = p.add_binary("b", -10.0);
//! let c = p.add_binary("c", -12.0);
//! p.add_constraint("cap", vec![(a, 1.0), (b, 2.0), (c, 3.0)], Sense::Le, 5.0);
//! let sol = solve_milp(&p, &SolveOptions::default());
//! assert_eq!(sol.status, MilpStatus::Optimal);
//! assert_eq!(sol.objective, -22.0);
//! ```

pub mod branch_bound;
pub mod problem;
pub mod simplex;

pub use branch_bound::{solve_milp, MilpSolution, MilpStatus, SolveOptions};
pub use problem::{Constraint, Problem, Sense, VarId, VarKind, Variable};
pub use simplex::{solve_lp, Bounds, LpSolution, LpStatus};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force(values: &[f64], weights: &[Vec<f64>], caps: &[f64]) -> f64 {
        let n = values.len();
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << n) {
            let x: Vec<f64> =
                (0..n).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
            let feasible = weights.iter().zip(caps).all(|(row, &cap)| {
                row.iter().zip(&x).map(|(a, b)| a * b).sum::<f64>() <= cap + 1e-9
            });
            if feasible {
                let obj: f64 = x.iter().zip(values).map(|(a, b)| a * b).sum();
                best = best.min(obj);
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Branch-and-bound matches brute force on random multi-constraint
        /// binary problems (n <= 8, 2 rows).
        #[test]
        fn bb_matches_brute_force(
            values in prop::collection::vec(-9i32..=9, 2..=8),
            w1 in prop::collection::vec(0i32..=5, 8),
            w2 in prop::collection::vec(0i32..=5, 8),
            c1 in 0i32..=12,
            c2 in 0i32..=12,
        ) {
            let n = values.len();
            let values: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let rows: Vec<Vec<f64>> = vec![
                w1[..n].iter().map(|&v| v as f64).collect(),
                w2[..n].iter().map(|&v| v as f64).collect(),
            ];
            let caps = [c1 as f64, c2 as f64];

            let mut p = Problem::new("prop");
            let vars: Vec<VarId> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| p.add_binary(format!("x{i}"), v))
                .collect();
            for (r, row) in rows.iter().enumerate() {
                let terms: Vec<(VarId, f64)> =
                    vars.iter().zip(row).map(|(&v, &w)| (v, w)).collect();
                p.add_constraint(format!("r{r}"), terms, Sense::Le, caps[r]);
            }
            let sol = solve_milp(&p, &SolveOptions::default());
            prop_assert_eq!(sol.status, MilpStatus::Optimal);
            let expect = brute_force(&values, &rows, &caps);
            prop_assert!((sol.objective - expect).abs() < 1e-6,
                "solver {} vs brute force {}", sol.objective, expect);
        }

        /// Every returned incumbent is feasible.
        #[test]
        fn incumbents_are_feasible(
            values in prop::collection::vec(-9i32..=0, 3..=10),
            weights in prop::collection::vec(1i32..=4, 10),
            cap in 1i32..=10,
        ) {
            let n = values.len();
            let mut p = Problem::new("prop2");
            let vars: Vec<VarId> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| p.add_binary(format!("x{i}"), v as f64))
                .collect();
            let terms: Vec<(VarId, f64)> = vars
                .iter()
                .zip(&weights[..n])
                .map(|(&v, &w)| (v, w as f64))
                .collect();
            p.add_constraint("cap", terms, Sense::Le, cap as f64);
            let sol = solve_milp(&p, &SolveOptions { max_nodes: 12, ..Default::default() });
            if sol.status != MilpStatus::Unknown && sol.status != MilpStatus::Infeasible {
                prop_assert!(p.is_feasible(&sol.values, 1e-6));
            }
        }

        /// LP relaxation is a valid lower bound for the MILP optimum.
        #[test]
        fn lp_bounds_milp(
            values in prop::collection::vec(-9i32..=9, 2..=7),
            weights in prop::collection::vec(0i32..=5, 7),
            cap in 0i32..=10,
        ) {
            let n = values.len();
            let mut p = Problem::new("prop3");
            let vars: Vec<VarId> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| p.add_binary(format!("x{i}"), v as f64))
                .collect();
            let terms: Vec<(VarId, f64)> = vars
                .iter()
                .zip(&weights[..n])
                .map(|(&v, &w)| (v, w as f64))
                .collect();
            p.add_constraint("cap", terms, Sense::Le, cap as f64);
            let lp = solve_lp(&p, &Bounds::of(&p));
            let milp = solve_milp(&p, &SolveOptions::default());
            prop_assert_eq!(lp.status, LpStatus::Optimal);
            prop_assert_eq!(milp.status, MilpStatus::Optimal);
            prop_assert!(lp.objective <= milp.objective + 1e-6,
                "lp {} should lower-bound milp {}", lp.objective, milp.objective);
        }
    }
}
