//! # fast-ilp — a self-contained 0/1 MILP solver
//!
//! The FAST paper solves its fusion ILP (Figure 8) with SCIP v7, configured
//! with a 20-minute timeout after which the best incumbent is taken (§6.1).
//! SCIP is not available to this reproduction, so this crate provides the
//! substrate from scratch:
//!
//! * a [`Problem`] builder for sparse mixed 0/1 linear programs,
//! * a dense two-phase primal [`simplex`] solver for LP relaxations, with
//!   crash warm-starting from a related basis and an anti-cycling guard,
//! * a `presolve` pass (binary fixing, coefficient tightening) that
//!   shrinks the search without changing any answer,
//! * an LP-based [`branch_bound`] driver — best-bound node selection with
//!   pseudocost branching — with a deterministic node budget that returns
//!   the best incumbent on limit, the same contract FAST relies on.
//!   The pre-optimization depth-first solver survives as
//!   [`solve_milp_reference`], the oracle used by the `ilp_solve` bench.
//!
//! ```
//! use fast_ilp::{Problem, Sense, SolveOptions, solve_milp, MilpStatus};
//!
//! // max 6a + 10b + 12c  s.t.  a + 2b + 3c <= 5   (classic knapsack)
//! let mut p = Problem::new("knapsack");
//! let a = p.add_binary("a", -6.0);
//! let b = p.add_binary("b", -10.0);
//! let c = p.add_binary("c", -12.0);
//! p.add_constraint("cap", vec![(a, 1.0), (b, 2.0), (c, 3.0)], Sense::Le, 5.0);
//! let sol = solve_milp(&p, &SolveOptions::default());
//! assert_eq!(sol.status, MilpStatus::Optimal);
//! assert_eq!(sol.objective, -22.0);
//! ```

pub mod branch_bound;
pub(crate) mod presolve;
pub mod problem;
pub mod simplex;

pub use branch_bound::{solve_milp, solve_milp_reference, MilpSolution, MilpStatus, SolveOptions};
pub use problem::{Constraint, Problem, Sense, VarId, VarKind, Variable};
pub use simplex::{solve_lp, solve_lp_warm, Bounds, LpSolution, LpStatus};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force(values: &[f64], weights: &[Vec<f64>], caps: &[f64]) -> f64 {
        let n = values.len();
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << n) {
            let x: Vec<f64> =
                (0..n).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
            let feasible = weights.iter().zip(caps).all(|(row, &cap)| {
                row.iter().zip(&x).map(|(a, b)| a * b).sum::<f64>() <= cap + 1e-9
            });
            if feasible {
                let obj: f64 = x.iter().zip(values).map(|(a, b)| a * b).sum();
                best = best.min(obj);
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Branch-and-bound matches brute force on random multi-constraint
        /// binary problems (n <= 8, 2 rows).
        #[test]
        fn bb_matches_brute_force(
            values in prop::collection::vec(-9i32..=9, 2..=8),
            w1 in prop::collection::vec(0i32..=5, 8),
            w2 in prop::collection::vec(0i32..=5, 8),
            c1 in 0i32..=12,
            c2 in 0i32..=12,
        ) {
            let n = values.len();
            let values: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let rows: Vec<Vec<f64>> = vec![
                w1[..n].iter().map(|&v| v as f64).collect(),
                w2[..n].iter().map(|&v| v as f64).collect(),
            ];
            let caps = [c1 as f64, c2 as f64];

            let mut p = Problem::new("prop");
            let vars: Vec<VarId> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| p.add_binary(format!("x{i}"), v))
                .collect();
            for (r, row) in rows.iter().enumerate() {
                let terms: Vec<(VarId, f64)> =
                    vars.iter().zip(row).map(|(&v, &w)| (v, w)).collect();
                p.add_constraint(format!("r{r}"), terms, Sense::Le, caps[r]);
            }
            let sol = solve_milp(&p, &SolveOptions::default());
            prop_assert_eq!(sol.status, MilpStatus::Optimal);
            let expect = brute_force(&values, &rows, &caps);
            prop_assert!((sol.objective - expect).abs() < 1e-6,
                "solver {} vs brute force {}", sol.objective, expect);
        }

        /// Every returned incumbent is feasible.
        #[test]
        fn incumbents_are_feasible(
            values in prop::collection::vec(-9i32..=0, 3..=10),
            weights in prop::collection::vec(1i32..=4, 10),
            cap in 1i32..=10,
        ) {
            let n = values.len();
            let mut p = Problem::new("prop2");
            let vars: Vec<VarId> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| p.add_binary(format!("x{i}"), v as f64))
                .collect();
            let terms: Vec<(VarId, f64)> = vars
                .iter()
                .zip(&weights[..n])
                .map(|(&v, &w)| (v, w as f64))
                .collect();
            p.add_constraint("cap", terms, Sense::Le, cap as f64);
            let sol = solve_milp(&p, &SolveOptions { max_nodes: 12, ..Default::default() });
            if sol.status != MilpStatus::Unknown && sol.status != MilpStatus::Infeasible {
                prop_assert!(p.is_feasible(&sol.values, 1e-6));
            }
        }

        /// Warm-start soundness: for random problems and random *feasible*
        /// warm starts, the solve returns the same status and objective as
        /// the cold solve — warm starts may change node counts, never
        /// answers.
        #[test]
        fn feasible_warm_starts_never_change_answers(
            values in prop::collection::vec(-9i32..=0, 3..=9),
            weights in prop::collection::vec(1i32..=4, 9),
            cap in 1i32..=12,
            picks in prop::collection::vec(0i32..=1, 9),
        ) {
            let n = values.len();
            let mut p = Problem::new("warm");
            let vars: Vec<VarId> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| p.add_binary(format!("x{i}"), v as f64))
                .collect();
            let terms: Vec<(VarId, f64)> = vars
                .iter()
                .zip(&weights[..n])
                .map(|(&v, &w)| (v, w as f64))
                .collect();
            p.add_constraint("cap", terms, Sense::Le, cap as f64);

            // Build a random feasible 0/1 point: greedily keep picked items
            // that still fit under the capacity.
            let mut ws = vec![0.0f64; n];
            let mut used = 0i32;
            for i in 0..n {
                if picks[i] == 1 && used + weights[i] <= cap {
                    ws[i] = 1.0;
                    used += weights[i];
                }
            }
            // Feasible by construction (positive weights, greedy fit).
            prop_assert!(p.is_feasible(&ws, 1e-9));

            let cold = solve_milp(&p, &SolveOptions::default());
            let warm = solve_milp(
                &p,
                &SolveOptions { warm_start: Some(ws), ..Default::default() },
            );
            prop_assert_eq!(warm.status, cold.status);
            prop_assert!((warm.objective - cold.objective).abs() < 1e-6,
                "warm {} vs cold {}", warm.objective, cold.objective);
        }

        /// LP relaxation is a valid lower bound for the MILP optimum.
        #[test]
        fn lp_bounds_milp(
            values in prop::collection::vec(-9i32..=9, 2..=7),
            weights in prop::collection::vec(0i32..=5, 7),
            cap in 0i32..=10,
        ) {
            let n = values.len();
            let mut p = Problem::new("prop3");
            let vars: Vec<VarId> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| p.add_binary(format!("x{i}"), v as f64))
                .collect();
            let terms: Vec<(VarId, f64)> = vars
                .iter()
                .zip(&weights[..n])
                .map(|(&v, &w)| (v, w as f64))
                .collect();
            p.add_constraint("cap", terms, Sense::Le, cap as f64);
            let lp = solve_lp(&p, &Bounds::of(&p));
            let milp = solve_milp(&p, &SolveOptions::default());
            prop_assert_eq!(lp.status, LpStatus::Optimal);
            prop_assert_eq!(milp.status, MilpStatus::Optimal);
            prop_assert!(lp.objective <= milp.objective + 1e-6,
                "lp {} should lower-bound milp {}", lp.objective, milp.objective);
        }
    }
}
