//! Dense two-phase primal simplex for the LP relaxations.
//!
//! Engineering notes:
//! * Variables are shifted to nonnegative form; finite upper bounds become
//!   explicit slack rows (simple and adequate for the fusion-ILP sizes this
//!   solver targets).
//! * Dantzig pricing with an anti-cycling guard: after
//!   `DEGEN_PIVOT_LIMIT` consecutive degenerate pivots the pricing falls
//!   back to Bland's rule (which provably cannot cycle) until a pivot makes
//!   objective progress again.
//! * Phase 1 minimizes artificial infeasibility; redundant rows whose
//!   artificial cannot be pivoted out are left basic at zero.
//! * [`solve_lp_warm`] accepts a *crash basis* — the structural variables
//!   basic at a related solve's optimum. They are pivoted in before phase 1
//!   using min-ratio rows (feasibility-preserving), which typically leaves
//!   both phases only a few pivots of work on branch-and-bound child nodes.

use crate::problem::{Problem, Sense, VarKind};

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal basic solution found.
    Optimal,
    /// No feasible point exists (within tolerance).
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// Iteration limit hit; the returned point may be suboptimal.
    IterLimit,
}

/// Result of an LP solve, in the original variable space.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value at `values` (meaningful for `Optimal` / `IterLimit`).
    pub objective: f64,
    /// Variable assignment, indexed by [`crate::VarId`].
    pub values: Vec<f64>,
    /// Simplex pivots performed (crash + phase 1 + phase 2).
    pub pivots: u64,
    /// Structural variables basic at termination (sorted ascending). Feed
    /// these to [`solve_lp_warm`] to crash-start a related solve.
    pub basic_structurals: Vec<usize>,
}

/// Per-variable effective bounds used by branch-and-bound to fix binaries
/// without rebuilding the problem.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Lower bounds, indexed by variable.
    pub lo: Vec<f64>,
    /// Upper bounds, indexed by variable.
    pub hi: Vec<f64>,
}

impl Bounds {
    /// Natural bounds of the problem's variable domains (binaries relaxed to
    /// `[0,1]`).
    #[must_use]
    pub fn of(problem: &Problem) -> Self {
        let mut lo = Vec::with_capacity(problem.num_vars());
        let mut hi = Vec::with_capacity(problem.num_vars());
        for v in problem.variables() {
            match v.kind {
                VarKind::Binary => {
                    lo.push(0.0);
                    hi.push(1.0);
                }
                VarKind::Continuous { lower, upper } => {
                    lo.push(lower);
                    hi.push(upper);
                }
            }
        }
        Bounds { lo, hi }
    }
}

const EPS: f64 = 1e-9;

/// Consecutive degenerate pivots tolerated before pricing falls back to
/// Bland's rule (see [`Tableau::iterate`]).
const DEGEN_PIVOT_LIMIT: usize = 12;

/// Solves the LP relaxation of `problem` under `bounds`.
#[must_use]
pub fn solve_lp(problem: &Problem, bounds: &Bounds) -> LpSolution {
    solve_lp_warm(problem, bounds, None)
}

/// Solves the LP relaxation with an optional crash basis: structural
/// variable indices that were basic at a related solve's optimum (e.g. the
/// branch-and-bound parent node). They are pivoted in up front with
/// feasibility-preserving min-ratio pivots, which usually shortens both
/// simplex phases. The returned solution is unaffected by the hint.
#[must_use]
pub fn solve_lp_warm(problem: &Problem, bounds: &Bounds, crash: Option<&[usize]>) -> LpSolution {
    Tableau::build(problem, bounds).map_or(
        LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            values: vec![0.0; problem.num_vars()],
            pivots: 0,
            basic_structurals: Vec::new(),
        },
        |mut t| {
            if let Some(hint) = crash {
                t.crash_basis(hint, bounds);
            }
            t.solve(problem)
        },
    )
}

struct Tableau {
    /// `rows × (cols + 1)`; last column is the RHS.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Basic variable (column index) per row.
    basis: Vec<usize>,
    /// Column index where artificial columns start (none may enter in phase 2).
    artificial_start: usize,
    /// Number of original (shifted) structural variables.
    n_struct: usize,
    /// Per-variable shift: x_original = x_shifted + shift.
    shifts: Vec<f64>,
    /// Objective row (length cols + 1; last entry is -objective value).
    cost: Vec<f64>,
    /// Pivots performed so far (crash + phase 1 + phase 2).
    pivots: u64,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * (self.cols + 1) + c] = v;
    }

    /// Builds the phase-1 tableau. Returns `None` when a variable's bounds
    /// are contradictory (lo > hi), which means trivially infeasible.
    fn build(problem: &Problem, bounds: &Bounds) -> Option<Tableau> {
        let n = problem.num_vars();
        for i in 0..n {
            if bounds.lo[i] > bounds.hi[i] + EPS {
                return None;
            }
        }
        let shifts: Vec<f64> = bounds.lo.clone();

        // Row descriptors: (dense coefficients over structural vars, sense, rhs).
        let mut rows: Vec<(Vec<f64>, Sense, f64)> = Vec::new();
        for c in problem.constraints() {
            let mut coef = vec![0.0; n];
            let mut rhs = c.rhs;
            for &(v, a) in &c.terms {
                coef[v.index()] += a;
                rhs -= a * shifts[v.index()];
            }
            rows.push((coef, c.sense, rhs));
        }
        // Upper-bound rows for finite ranges (after shifting: x' <= hi - lo).
        // A zero range pins the variable at its shift (rhs 0 row).
        for i in 0..n {
            let range = bounds.hi[i] - bounds.lo[i];
            if range.is_finite() {
                let mut coef = vec![0.0; n];
                coef[i] = 1.0;
                rows.push((coef, Sense::Le, range.max(0.0)));
            }
        }

        let m = rows.len();
        // Count slacks and artificials.
        let mut n_slack = 0;
        let mut n_art = 0;
        for (_, sense, rhs) in &rows {
            let flipped = *rhs < 0.0;
            let eff = match (sense, flipped) {
                (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
                (Sense::Le, true) | (Sense::Ge, false) => Sense::Ge,
                (Sense::Eq, _) => Sense::Eq,
            };
            match eff {
                Sense::Le => n_slack += 1,
                Sense::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Sense::Eq => n_art += 1,
            }
        }
        let cols = n + n_slack + n_art;
        let mut t = Tableau {
            a: vec![0.0; m * (cols + 1)],
            rows: m,
            cols,
            basis: vec![0; m],
            artificial_start: n + n_slack,
            n_struct: n,
            shifts,
            cost: vec![0.0; cols + 1],
            pivots: 0,
        };

        let mut slack_idx = n;
        let mut art_idx = n + n_slack;
        for (r, (coef, sense, rhs)) in rows.into_iter().enumerate() {
            let flip = rhs < 0.0;
            let sgn = if flip { -1.0 } else { 1.0 };
            for (j, &c) in coef.iter().enumerate() {
                if c != 0.0 {
                    t.set(r, j, sgn * c);
                }
            }
            t.set(r, cols, sgn * rhs);
            let eff = match (sense, flip) {
                (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
                (Sense::Le, true) | (Sense::Ge, false) => Sense::Ge,
                (Sense::Eq, _) => Sense::Eq,
            };
            match eff {
                Sense::Le => {
                    t.set(r, slack_idx, 1.0);
                    t.basis[r] = slack_idx;
                    slack_idx += 1;
                }
                Sense::Ge => {
                    t.set(r, slack_idx, -1.0);
                    slack_idx += 1;
                    t.set(r, art_idx, 1.0);
                    t.basis[r] = art_idx;
                    art_idx += 1;
                }
                Sense::Eq => {
                    t.set(r, art_idx, 1.0);
                    t.basis[r] = art_idx;
                    art_idx += 1;
                }
            }
        }
        Some(t)
    }

    /// Rebuilds the cost row for the given per-column objective, reduced
    /// against the current basis.
    fn load_costs(&mut self, col_cost: &[f64]) {
        self.cost[..self.cols].copy_from_slice(col_cost);
        self.cost[self.cols] = 0.0;
        for r in 0..self.rows {
            let cb = col_cost[self.basis[r]];
            if cb != 0.0 {
                for c in 0..=self.cols {
                    let v = self.at(r, c);
                    if v != 0.0 {
                        self.cost[c] -= cb * v;
                    }
                }
            }
        }
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let w = self.cols + 1;
        let piv = self.at(pr, pc);
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for c in 0..w {
            let v = self.a[pr * w + c] * inv;
            self.a[pr * w + c] = v;
        }
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() > 1e-13 {
                for c in 0..w {
                    let v = self.a[r * w + c] - factor * self.a[pr * w + c];
                    self.a[r * w + c] = v;
                }
                self.a[r * w + pc] = 0.0;
            }
        }
        let factor = self.cost[pc];
        if factor.abs() > 1e-13 {
            for c in 0..w {
                self.cost[c] -= factor * self.a[pr * w + c];
            }
            self.cost[pc] = 0.0;
        }
        self.basis[pr] = pc;
        self.pivots += 1;
    }

    /// Crash-pivots the hinted structural columns into the basis before any
    /// simplex phase runs. Each pivot uses the global minimum-ratio row
    /// (preserving the nonnegative RHS the phases rely on), with ties broken
    /// toward rows whose basic variable is a slack/artificial; a column is
    /// skipped when its min-ratio row holds another structural variable
    /// (never evict crashed work), when its pivot element is numerically
    /// risky, or when the variable is fixed in this node's bounds.
    fn crash_basis(&mut self, hint: &[usize], bounds: &Bounds) {
        for &j in hint {
            if j >= self.n_struct || bounds.hi[j] - bounds.lo[j] <= EPS || self.basis.contains(&j) {
                continue;
            }
            let mut pr: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.at(r, j);
                if a > EPS {
                    let ratio = self.at(r, self.cols) / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && pr.is_some_and(|p| {
                                let (br, bp) = (self.basis[r], self.basis[p]);
                                let (r_aux, p_aux) = (br >= self.n_struct, bp >= self.n_struct);
                                (r_aux && !p_aux) || (r_aux == p_aux && br < bp)
                            }));
                    if better {
                        best_ratio = ratio;
                        pr = Some(r);
                    }
                }
            }
            let Some(pr) = pr else { continue };
            if self.basis[pr] < self.n_struct || self.at(pr, j) < 1e-7 {
                continue;
            }
            self.pivot(pr, j);
        }
    }

    /// Runs simplex iterations until optimality/unboundedness/limit.
    /// `allow_artificial` permits artificial columns to enter (phase 1 only).
    fn iterate(&mut self, allow_artificial: bool, max_iters: usize) -> LpStatus {
        let mut iters = 0;
        // Anti-cycling guard: Dantzig pricing can cycle on degenerate
        // vertices. After DEGEN_PIVOT_LIMIT consecutive zero-progress
        // pivots, switch to Bland's rule (provably cycle-free) until a
        // pivot moves the objective again.
        let mut degenerate_run = 0usize;
        loop {
            if iters >= max_iters {
                return LpStatus::IterLimit;
            }
            iters += 1;
            // Entering column.
            let use_bland = degenerate_run >= DEGEN_PIVOT_LIMIT;
            let mut pc: Option<usize> = None;
            let mut best = -EPS;
            let limit = if allow_artificial { self.cols } else { self.artificial_start };
            for c in 0..limit {
                let rc = self.cost[c];
                if rc < -EPS {
                    if use_bland {
                        pc = Some(c);
                        break;
                    }
                    if rc < best {
                        best = rc;
                        pc = Some(c);
                    }
                }
            }
            let Some(pc) = pc else { return LpStatus::Optimal };
            // Ratio test.
            let mut pr: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.at(r, pc);
                if a > EPS {
                    let ratio = self.at(r, self.cols) / a;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && pr.is_some_and(|p| self.basis[r] < self.basis[p]))
                    {
                        best_ratio = ratio;
                        pr = Some(r);
                    }
                }
            }
            let Some(pr) = pr else { return LpStatus::Unbounded };
            if best_ratio <= EPS {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }
            self.pivot(pr, pc);
        }
    }

    fn solve(&mut self, problem: &Problem) -> LpSolution {
        let max_iters = 50 * (self.rows + self.cols) + 2000;

        // Phase 1: drive artificials to zero.
        if self.artificial_start < self.cols {
            let mut phase1 = vec![0.0; self.cols];
            for cost in &mut phase1[self.artificial_start..] {
                *cost = 1.0;
            }
            self.load_costs(&phase1);
            let st = self.iterate(true, max_iters);
            let infeas = -self.cost[self.cols];
            if st == LpStatus::Unbounded || infeas > 1e-6 {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    objective: f64::INFINITY,
                    values: vec![0.0; problem.num_vars()],
                    pivots: self.pivots,
                    basic_structurals: Vec::new(),
                };
            }
            // Pivot out any artificial still basic (at zero).
            for r in 0..self.rows {
                if self.basis[r] >= self.artificial_start {
                    let pc = (0..self.artificial_start).find(|&c| self.at(r, c).abs() > 1e-7);
                    if let Some(pc) = pc {
                        self.pivot(r, pc);
                    }
                }
            }
        }

        // Phase 2: original objective over structural columns.
        let mut phase2 = vec![0.0; self.cols];
        for (i, v) in problem.variables().iter().enumerate() {
            phase2[i] = v.objective;
        }
        self.load_costs(&phase2);
        let status = self.iterate(false, max_iters);
        if status == LpStatus::Unbounded {
            return LpSolution {
                status,
                objective: f64::NEG_INFINITY,
                values: vec![0.0; problem.num_vars()],
                pivots: self.pivots,
                basic_structurals: Vec::new(),
            };
        }

        // Extract solution.
        let mut x = vec![0.0; self.n_struct];
        let mut basic_structurals = Vec::new();
        for r in 0..self.rows {
            let b = self.basis[r];
            if b < self.n_struct {
                x[b] = self.at(r, self.cols);
                basic_structurals.push(b);
            }
        }
        basic_structurals.sort_unstable();
        for (i, xi) in x.iter_mut().enumerate() {
            *xi += self.shifts[i];
        }
        let objective = problem.objective_value(&x);
        LpSolution {
            status: if status == LpStatus::IterLimit {
                LpStatus::IterLimit
            } else {
                LpStatus::Optimal
            },
            objective,
            values: x,
            pivots: self.pivots,
            basic_structurals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn solve(p: &Problem) -> LpSolution {
        solve_lp(p, &Bounds::of(p))
    }

    #[test]
    fn simple_le_lp() {
        // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  -> x=3 (wait y=2, x=2)
        // Optimum: y=2, x=2, obj = -6.
        let mut p = Problem::new("t");
        let x = p.add_continuous("x", 0.0, 3.0, -1.0);
        let y = p.add_continuous("y", 0.0, 2.0, -2.0);
        p.add_constraint("cap", vec![(x, 1.0), (y, 1.0)], crate::Sense::Le, 4.0);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-6.0)).abs() < 1e-6, "{}", s.objective);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ge_and_eq_rows() {
        // min x + y s.t. x + y >= 2, x - y = 0 -> x=y=1, obj 2.
        let mut p = Problem::new("t");
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], crate::Sense::Ge, 2.0);
        p.add_constraint("c2", vec![(x, 1.0), (y, -1.0)], crate::Sense::Eq, 0.0);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new("t");
        let x = p.add_continuous("x", 0.0, 1.0, 1.0);
        p.add_constraint("c", vec![(x, 1.0)], crate::Sense::Ge, 2.0);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new("t");
        let x = p.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        p.add_constraint("c", vec![(x, -1.0)], crate::Sense::Le, 0.0);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x with x >= 5 via bounds.
        let mut p = Problem::new("t");
        let x = p.add_continuous("x", 5.0, 10.0, 1.0);
        p.add_constraint("c", vec![(x, 1.0)], crate::Sense::Le, 9.0);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.values[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows() {
        // min y s.t. -x - y <= -3 (i.e. x + y >= 3), x <= 2 -> y = 1.
        let mut p = Problem::new("t");
        let x = p.add_continuous("x", 0.0, 2.0, 0.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("c", vec![(x, -1.0), (y, -1.0)], crate::Sense::Le, -3.0);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-6, "{}", s.objective);
    }

    #[test]
    fn binary_relaxation_is_fractional() {
        // min -x1 - x2 s.t. x1 + x2 <= 1.5 over binaries -> LP gives 1.5.
        let mut p = Problem::new("t");
        let a = p.add_binary("a", -1.0);
        let b = p.add_binary("b", -1.0);
        p.add_constraint("c", vec![(a, 1.0), (b, 1.0)], crate::Sense::Le, 1.5);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 1.5).abs() < 1e-6);
    }

    #[test]
    fn fixed_variable_via_bounds() {
        let mut p = Problem::new("t");
        let a = p.add_binary("a", -1.0);
        let b = p.add_binary("b", -1.0);
        p.add_constraint("c", vec![(a, 1.0), (b, 1.0)], crate::Sense::Le, 2.0);
        let mut bounds = Bounds::of(&p);
        bounds.lo[0] = 0.0;
        bounds.hi[0] = 0.0; // fix a = 0
        let s = solve_lp(&p, &bounds);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.values[0]).abs() < 1e-9);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn contradictory_bounds_infeasible() {
        let mut p = Problem::new("t");
        let _a = p.add_binary("a", -1.0);
        let mut bounds = Bounds::of(&p);
        bounds.lo[0] = 1.0;
        bounds.hi[0] = 0.0;
        let s = solve_lp(&p, &bounds);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn beale_cycling_lp_terminates_quickly() {
        // Beale's classic example: Dantzig pricing with naive tie-breaking
        // cycles forever at the degenerate origin vertex. The degenerate-run
        // counter must hand pricing to Bland's rule long before the
        // iteration limit, so the solve both finishes and stays cheap.
        let mut p = Problem::new("beale");
        let x1 = p.add_continuous("x1", 0.0, f64::INFINITY, -0.75);
        let x2 = p.add_continuous("x2", 0.0, f64::INFINITY, 150.0);
        let x3 = p.add_continuous("x3", 0.0, f64::INFINITY, -0.02);
        let x4 = p.add_continuous("x4", 0.0, f64::INFINITY, 6.0);
        p.add_constraint(
            "r1",
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            crate::Sense::Le,
            0.0,
        );
        p.add_constraint(
            "r2",
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            crate::Sense::Le,
            0.0,
        );
        p.add_constraint("r3", vec![(x3, 1.0)], crate::Sense::Le, 1.0);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-0.05)).abs() < 1e-9, "{}", s.objective);
        assert!(s.pivots < 200, "anti-cycling guard did not engage: {} pivots", s.pivots);
    }

    #[test]
    fn crash_basis_preserves_answer() {
        let mut p = Problem::new("t");
        let x = p.add_continuous("x", 0.0, 3.0, -1.0);
        let y = p.add_continuous("y", 0.0, 2.0, -2.0);
        p.add_constraint("cap", vec![(x, 1.0), (y, 1.0)], crate::Sense::Le, 4.0);
        let cold = solve_lp(&p, &Bounds::of(&p));
        assert_eq!(cold.status, LpStatus::Optimal);
        assert!(cold.pivots > 0);
        assert_eq!(cold.basic_structurals, vec![0, 1]);
        let warm = solve_lp_warm(&p, &Bounds::of(&p), Some(&cold.basic_structurals));
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert!((warm.values[0] - cold.values[0]).abs() < 1e-9);
        assert!((warm.values[1] - cold.values[1]).abs() < 1e-9);
    }

    #[test]
    fn crash_basis_skips_fixed_and_out_of_range_hints() {
        let mut p = Problem::new("t");
        let a = p.add_binary("a", -1.0);
        let b = p.add_binary("b", -1.0);
        p.add_constraint("c", vec![(a, 1.0), (b, 1.0)], crate::Sense::Le, 2.0);
        let mut bounds = Bounds::of(&p);
        bounds.lo[0] = 0.0;
        bounds.hi[0] = 0.0; // fixed: the hint for column 0 must be ignored
        let s = solve_lp_warm(&p, &bounds, Some(&[0, 1, 99]));
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.values[0].abs() < 1e-9);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant rows through the origin.
        let mut p = Problem::new("t");
        let x = p.add_continuous("x", 0.0, 10.0, -1.0);
        let y = p.add_continuous("y", 0.0, 10.0, -1.0);
        for i in 0..20 {
            let a = 1.0 + (i as f64) * 0.01;
            p.add_constraint(format!("c{i}"), vec![(x, a), (y, 1.0)], crate::Sense::Le, 10.0);
        }
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.objective < -9.0);
    }
}
