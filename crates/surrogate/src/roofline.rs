//! Tier **S0**: the analytical roofline estimator.
//!
//! For a candidate datapath the roofline tier bounds every workload's step
//! time from below by the classic two-term model
//!
//! ```text
//! step >= max(FLOPs / peak_FLOPs_per_core, DRAM_bytes / DRAM_bw_per_core)
//! ```
//!
//! with traffic accounted under [`FusionStrategy::XlaDefault`] — the
//! "partially fused" graph every FAST candidate at least achieves. The
//! per-workload QPS upper bounds are geomeaned (matching the simulator's
//! objective assembly) and optionally divided by the TDP model for a
//! Perf/TDP-style guide. No mapper, no ILP: scoring a point costs a handful
//! of float ops once the graph aggregates are cached.

use fast_arch::{cost, DatapathConfig};
use fast_ir::{dram_traffic, op_class_profile, FusionStrategy, Graph, OpClassProfile};

/// Which study guide the surrogate mimics. Mirrors the simulator's
/// objective axis without depending on `fast-core` (which depends on us).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GuideMetric {
    /// Geomean queries/second across workloads.
    Qps,
    /// Geomean QPS divided by modeled TDP (the paper's headline metric).
    #[default]
    PerfPerTdp,
}

/// Immutable per-`(workload, batch)` aggregates the surrogate tiers consume.
///
/// Everything a score needs from the IR is folded into these few floats, so
/// graph construction and traversal happen once per batch size, not once
/// per candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphLoad {
    /// Batch size the graph was built at.
    pub batch: u64,
    /// Total FLOPs of one step.
    pub flops: f64,
    /// DRAM bytes of one step under XLA-default fusion.
    pub dram_bytes: f64,
    /// Per-op-class FLOP/byte split (unfused accounting) for S1 features.
    pub profile: OpClassProfile,
}

impl GraphLoad {
    /// Aggregate a built workload graph, recording the batch it was built at.
    #[must_use]
    pub fn at_batch(graph: &Graph, batch: u64) -> Self {
        GraphLoad {
            batch,
            flops: graph.total_flops() as f64,
            dram_bytes: dram_traffic(graph, FusionStrategy::XlaDefault) as f64,
            profile: op_class_profile(graph),
        }
    }
}

/// Roofline lower bound on one core's step time (seconds) for `load`.
#[must_use]
pub fn step_seconds_bound(cfg: &DatapathConfig, load: &GraphLoad) -> f64 {
    let compute = load.flops / (cfg.peak_flops() / cfg.cores as f64);
    let memory = load.dram_bytes / cfg.dram_bytes_per_sec_per_core();
    compute.max(memory)
}

/// Roofline upper bound on chip QPS for `load` (all cores serve disjoint
/// batches, as in the simulator).
#[must_use]
pub fn qps_bound(cfg: &DatapathConfig, load: &GraphLoad) -> f64 {
    (load.batch * cfg.cores) as f64 / step_seconds_bound(cfg, load)
}

/// The S0 guide: geomean of per-workload QPS bounds, divided by modeled TDP
/// for [`GuideMetric::PerfPerTdp`]. An optimistic but rank-preserving proxy
/// for the simulator's objective value.
#[must_use]
pub fn roofline_guide(cfg: &DatapathConfig, loads: &[GraphLoad], metric: GuideMetric) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = loads.iter().map(|l| qps_bound(cfg, l).ln()).sum();
    let geomean = (log_sum / loads.len() as f64).exp();
    match metric {
        GuideMetric::Qps => geomean,
        GuideMetric::PerfPerTdp => geomean / cost::tdp(cfg).total_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_models::Workload;

    fn load(w: Workload, batch: u64) -> GraphLoad {
        GraphLoad::at_batch(&w.build(batch).expect("in-tree workloads build"), batch)
    }

    #[test]
    fn graph_load_aggregates_are_consistent() {
        let l = load(Workload::Bert { seq_len: 128 }, 8);
        assert_eq!(l.batch, 8);
        assert!(l.flops > 0.0);
        assert!(l.dram_bytes > 0.0);
        // The op-class partition covers the whole graph.
        assert!((l.profile.total_flops() as f64 - l.flops).abs() < 1e-6);
    }

    #[test]
    fn doubling_compute_and_bandwidth_never_hurts_the_bound() {
        let small = fast_arch::presets::tpu_v3();
        let mut big = small;
        big.pes_x *= 2;
        big.dram_channels *= 2;
        let workloads = [
            Workload::EfficientNet(fast_models::EfficientNet::B0),
            Workload::Bert { seq_len: 128 },
            Workload::ResNet50,
        ];
        for w in workloads {
            let l = load(w, small.native_batch);
            assert!(
                qps_bound(&big, &l) >= qps_bound(&small, &l),
                "{w:?}: bigger datapath must not lower the roofline bound"
            );
        }
    }

    #[test]
    fn guide_metrics_diverge_by_exactly_tdp() {
        let cfg = fast_arch::presets::tpu_v3();
        let loads = [
            load(Workload::Bert { seq_len: 128 }, cfg.native_batch),
            load(Workload::ResNet50, cfg.native_batch),
        ];
        let qps = roofline_guide(&cfg, &loads, GuideMetric::Qps);
        let ppt = roofline_guide(&cfg, &loads, GuideMetric::PerfPerTdp);
        assert!(qps > 0.0 && ppt > 0.0);
        let tdp = cost::tdp(&cfg).total_w;
        assert!((qps / ppt - tdp).abs() / tdp < 1e-9);
    }

    #[test]
    fn empty_workload_set_scores_zero() {
        let cfg = fast_arch::presets::tpu_v3();
        assert_eq!(roofline_guide(&cfg, &[], GuideMetric::Qps), 0.0);
    }
}
