//! The [`Screener`] implementation wiring both surrogate tiers to a study.
//!
//! A [`SurrogateScreener`] owns the workload set and a *decode* closure
//! mapping a search point to its [`DatapathConfig`] (returning `None` for
//! points the caller can already reject — malformed configs, over-budget
//! designs). Tier S0 scores with [`roofline_guide`] alone; tier S1 layers an
//! online [`Ridge`] model over roofline-derived log features, falling back
//! to the S0 bound until the model has warmed up.
//!
//! Both tiers report [`Screener::ready`] only after a full-fidelity warm-up
//! window ([`S0_BURN_IN`] / [`DEFAULT_WARMUP`] observation attempts): S1
//! spends it earning a training set, S0 spends it seeding the Pareto
//! archive across the design range before thinning begins.

use crate::ridge::Ridge;
use crate::roofline::{roofline_guide, GraphLoad, GuideMetric};
use fast_arch::{cost, DatapathConfig};
use fast_models::Workload;
use fast_search::{Screener, SurrogateTier};
use serde::bin::{Reader, Writer};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Number of features the S1 ridge model consumes (the private
/// `SurrogateScreener::features` vector: an intercept, the log S0
/// roofline guide, log peak-FLOPs / DRAM bandwidth / TDP / area / SRAM
/// / batch, and the log per-class roofline times).
pub const FEATURE_DIM: usize = 12;

/// Default observation *attempts* before tier S1 reports itself ready.
///
/// Attempts — not absorbed samples — so the warm-up window is "the first N
/// trials run at full fidelity", bounded even in heavily constrained spaces
/// where most candidates are invalid or over budget and contribute no
/// training pair. An S1 model fitted from only the valid minority of its
/// warm-up window degrades gracefully: until the ridge solves, its score
/// falls back to the log-roofline feature, i.e. tier-S0 ranking.
pub const DEFAULT_WARMUP: u64 = 16;

/// Default burn-in attempts for tier S0.
///
/// S0 fits no model, but screening from the very first round starves the
/// Pareto archive: a scalar-guide ranking keeps only high-objective
/// candidates, and the frontier's low-power / low-area corner is never
/// simulated. A short full-fidelity burn-in seeds the archive across the
/// whole design range before thinning begins — measured on the Table-3
/// smoke it is the difference between retaining ~20% and ~100% of the
/// exact frontier's hypervolume.
pub const S0_BURN_IN: u64 = 8;

const RIDGE_LAMBDA: f64 = 1e-3;
/// Floor added before logs so empty op classes stay finite.
const TIME_FLOOR: f64 = 1e-12;
/// State-blob tags (first byte of [`Screener::save_state`]).
const STATE_S0: u8 = 0;
const STATE_S1: u8 = 1;

/// Decodes a search point to its datapath, or `None` for points that are
/// invalid or over budget (scored [`f64::NEG_INFINITY`] without touching
/// either tier).
pub type DecodeFn = dyn Fn(&[usize]) -> Option<DatapathConfig> + Send + Sync;

/// Both surrogate tiers behind the [`Screener`] trait.
pub struct SurrogateScreener {
    tier: SurrogateTier,
    metric: GuideMetric,
    warmup: u64,
    workloads: Vec<Workload>,
    decode: Box<DecodeFn>,
    /// `(workload, batch)` graph aggregates, built once per batch size.
    loads: Mutex<HashMap<u64, Arc<Vec<GraphLoad>>>>,
    /// The S1 model (present but unused for tier S0).
    ridge: Ridge,
    /// Observation *attempts* (valid or not) — what warm-up counts.
    attempts: u64,
}

impl fmt::Debug for SurrogateScreener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SurrogateScreener")
            .field("tier", &self.tier)
            .field("metric", &self.metric)
            .field("warmup", &self.warmup)
            .field("workloads", &self.workloads)
            .field("samples", &self.ridge.samples())
            .field("attempts", &self.attempts)
            .finish_non_exhaustive()
    }
}

impl SurrogateScreener {
    /// A screener for `tier` mimicking `metric` over `workloads`, decoding
    /// points with `decode`.
    #[must_use]
    pub fn new(
        tier: SurrogateTier,
        metric: GuideMetric,
        workloads: Vec<Workload>,
        decode: Box<DecodeFn>,
    ) -> Self {
        assert!(!workloads.is_empty(), "surrogate wants at least one workload");
        SurrogateScreener {
            tier,
            metric,
            warmup: match tier {
                SurrogateTier::S0 => S0_BURN_IN,
                SurrogateTier::S1 => DEFAULT_WARMUP,
            },
            workloads,
            decode,
            loads: Mutex::new(HashMap::new()),
            ridge: Ridge::new(FEATURE_DIM, RIDGE_LAMBDA),
            attempts: 0,
        }
    }

    /// Override the warm-up attempt count — S1's training window, S0's
    /// full-fidelity burn-in. Zero screens from the first round.
    #[must_use]
    pub fn warmup(mut self, observations: u64) -> Self {
        self.warmup = observations;
        self
    }

    /// The tier this screener ranks with.
    #[must_use]
    pub fn tier(&self) -> SurrogateTier {
        self.tier
    }

    /// True observations absorbed by the S1 model so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.ridge.samples()
    }

    fn loads_for(&self, batch: u64) -> Arc<Vec<GraphLoad>> {
        let mut cache = self.loads.lock().expect("graph-load cache poisoned");
        Arc::clone(cache.entry(batch).or_insert_with(|| {
            Arc::new(
                self.workloads
                    .iter()
                    .map(|w| {
                        let graph = w.build(batch).expect("in-tree workloads always build");
                        GraphLoad::at_batch(&graph, batch)
                    })
                    .collect(),
            )
        }))
    }

    /// The S1 feature vector of a decoded candidate: log-domain datapath
    /// scalars plus per-op-class roofline times aggregated over workloads.
    fn features(&self, cfg: &DatapathConfig, loads: &[GraphLoad]) -> [f64; FEATURE_DIM] {
        let peak_per_core = cfg.peak_flops() / cfg.cores as f64;
        let bw_per_core = cfg.dram_bytes_per_sec_per_core();
        let (mut matrix_t, mut depthwise_t, mut vector_t, mut memory_t) = (0.0, 0.0, 0.0, 0.0);
        for load in loads {
            matrix_t += load.profile.matrix.flops as f64 / peak_per_core;
            depthwise_t += load.profile.depthwise.flops as f64 / peak_per_core;
            vector_t += load.profile.vector.flops as f64 / peak_per_core;
            memory_t += load.dram_bytes / bw_per_core;
        }
        let s0 = roofline_guide(cfg, loads, self.metric);
        [
            1.0,
            (s0 + TIME_FLOOR).ln(),
            cfg.peak_flops().ln(),
            cfg.dram_bytes_per_sec().ln(),
            cost::tdp(cfg).total_w.ln(),
            cost::area(cfg).total_mm2.ln(),
            cfg.total_sram_mib().ln(),
            (cfg.native_batch as f64).ln(),
            (matrix_t + TIME_FLOOR).ln(),
            (depthwise_t + TIME_FLOOR).ln(),
            (vector_t + TIME_FLOOR).ln(),
            (memory_t + TIME_FLOOR).ln(),
        ]
    }
}

impl Screener for SurrogateScreener {
    fn ready(&self) -> bool {
        self.attempts >= self.warmup
    }

    fn score(&self, point: &[usize]) -> f64 {
        let Some(cfg) = (self.decode)(point) else {
            return f64::NEG_INFINITY;
        };
        let loads = self.loads_for(cfg.native_batch);
        match self.tier {
            SurrogateTier::S0 => roofline_guide(&cfg, &loads, self.metric),
            SurrogateTier::S1 => {
                let x = self.features(&cfg, &loads);
                // The fallback is the ln-guide feature itself, so a round
                // scored before the first solve still ranks consistently.
                self.ridge.predict(&x).unwrap_or(x[1])
            }
        }
    }

    fn observe(&mut self, point: &[usize], guide: Option<f64>) {
        // Every attempt counts toward warm-up — including invalid trials,
        // which carry no training pair. See [`DEFAULT_WARMUP`].
        self.attempts += 1;
        if self.tier != SurrogateTier::S1 {
            return;
        }
        let (Some(guide), Some(cfg)) = (guide, (self.decode)(point)) else {
            return;
        };
        // NaN-rejecting: ln() needs a strictly positive guide, and a NaN
        // guide must not poison the sufficient statistics.
        if guide.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        let loads = self.loads_for(cfg.native_batch);
        let x = self.features(&cfg, &loads);
        self.ridge.observe(&x, guide.ln());
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self.tier {
            SurrogateTier::S0 => {
                w.put_u8(STATE_S0);
                w.put_u64(self.warmup);
                w.put_u64(self.attempts);
            }
            SurrogateTier::S1 => {
                w.put_u8(STATE_S1);
                w.put_u64(self.warmup);
                w.put_u64(self.attempts);
                self.ridge.encode(&mut w);
            }
        }
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = Reader::new(bytes);
        let Ok(tag) = r.get_u8() else { return false };
        let expect = match self.tier {
            SurrogateTier::S0 => STATE_S0,
            SurrogateTier::S1 => STATE_S1,
        };
        if tag != expect {
            return false;
        }
        let Ok(warmup) = r.get_u64() else { return false };
        if warmup != self.warmup {
            return false;
        }
        let Ok(attempts) = r.get_u64() else { return false };
        let model = match self.tier {
            // Burn-in progress is all the state an analytical tier has.
            SurrogateTier::S0 => None,
            SurrogateTier::S1 => match Ridge::decode(&mut r, FEATURE_DIM) {
                Some(model) => Some(model),
                None => return false,
            },
        };
        if !r.is_done() {
            return false;
        }
        if let Some(model) = model {
            self.ridge = model;
        }
        self.attempts = attempts;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_search::{
        Execution, Fidelity, ParamDomain, ParamSpace, RandomSearch, Study, StudyEval, TrialResult,
    };

    /// One-axis toy space: the point scales compute and bandwidth together,
    /// so the roofline guide is strictly increasing whichever term binds.
    fn toy_space() -> ParamSpace {
        let mut space = ParamSpace::new();
        space.add("scale", ParamDomain::Pow2 { min: 1, max: 8 });
        space
    }

    fn toy_decode(space: ParamSpace) -> Box<DecodeFn> {
        Box::new(move |point| {
            let scale = space.value(point, 0);
            let mut cfg = fast_arch::presets::tpu_v3();
            cfg.pes_x = 2 * scale;
            cfg.dram_channels = scale;
            Some(cfg)
        })
    }

    fn s0_screener() -> SurrogateScreener {
        SurrogateScreener::new(
            SurrogateTier::S0,
            GuideMetric::Qps,
            vec![Workload::Bert { seq_len: 128 }, Workload::ResNet50],
            toy_decode(toy_space()),
        )
    }

    #[test]
    fn s0_burns_in_then_screens_and_rejects_undecodable_points() {
        let mut sc = s0_screener();
        // S0 fits nothing, but it still holds the first S0_BURN_IN trials
        // at full fidelity to seed the Pareto archive.
        assert!(!sc.ready());
        for i in 0..S0_BURN_IN {
            sc.observe(&[(i % 4) as usize], None);
        }
        assert!(sc.ready());
        assert_eq!(sc.observations(), 0, "S0 trains no model");
        assert!(sc.score(&[0]).is_finite());
        let zero_burn_in = s0_screener().warmup(0);
        assert!(zero_burn_in.ready(), "warmup(0) screens from the first round");
        let rejecting = SurrogateScreener::new(
            SurrogateTier::S0,
            GuideMetric::Qps,
            vec![Workload::Bert { seq_len: 128 }],
            Box::new(|_| None),
        );
        assert_eq!(rejecting.score(&[0]), f64::NEG_INFINITY);
    }

    #[test]
    fn s0_scores_are_deterministic_and_monotone_in_compute() {
        let sc = s0_screener();
        let scores: Vec<f64> = (0..4).map(|i| sc.score(&[i])).collect();
        for pair in scores.windows(2) {
            assert!(pair[1] > pair[0], "a uniformly bigger datapath must score higher: {scores:?}");
        }
        let again: Vec<f64> = (0..4).map(|i| sc.score(&[i])).collect();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&scores), bits(&again));
    }

    #[test]
    fn s1_warms_up_then_tracks_the_true_guide() {
        let space = toy_space();
        let truth = s0_screener();
        let mut sc = SurrogateScreener::new(
            SurrogateTier::S1,
            GuideMetric::Qps,
            vec![Workload::Bert { seq_len: 128 }, Workload::ResNet50],
            toy_decode(space.clone()),
        )
        .warmup(4);
        assert!(!sc.ready());
        // Feed the S0 guide as ground truth. An invalid observation adds no
        // training pair but still counts toward warm-up — the window is
        // "first N trials", not "first N valid trials".
        sc.observe(&[0], None);
        assert_eq!(sc.observations(), 0);
        assert!(!sc.ready());
        for i in 0..4usize {
            sc.observe(&[i % 4], Some(truth.score(&[i % 4])));
        }
        assert_eq!(sc.observations(), 4);
        assert!(sc.ready());
        // Rank agreement with the truth on the full axis.
        let predicted: Vec<f64> = (0..4).map(|i| sc.score(&[i])).collect();
        let actual: Vec<f64> = (0..4).map(|i| truth.score(&[i])).collect();
        let rho = fast_search::spearman_rank(&predicted, &actual).expect("4 distinct pairs");
        assert!(rho > 0.9, "S1 should track a guide it was trained on, rho = {rho}");
    }

    #[test]
    fn state_round_trips_bit_identically_and_rejects_foreign_blobs() {
        let mut trained = SurrogateScreener::new(
            SurrogateTier::S1,
            GuideMetric::PerfPerTdp,
            vec![Workload::Bert { seq_len: 128 }],
            toy_decode(toy_space()),
        )
        .warmup(2);
        let truth = s0_screener();
        for i in 0..6usize {
            trained.observe(&[i % 4], Some(truth.score(&[i % 4]).max(1.0)));
        }
        let state = trained.save_state();

        let mut restored = SurrogateScreener::new(
            SurrogateTier::S1,
            GuideMetric::PerfPerTdp,
            vec![Workload::Bert { seq_len: 128 }],
            toy_decode(toy_space()),
        )
        .warmup(2);
        assert!(restored.load_state(&state));
        assert_eq!(restored.observations(), trained.observations());
        assert_eq!(restored.ready(), trained.ready());
        for i in 0..4usize {
            assert_eq!(restored.score(&[i]).to_bits(), trained.score(&[i]).to_bits());
        }

        // Tier and warmup mismatches are refused, as is truncation.
        let mut s0 = s0_screener();
        assert!(!s0.load_state(&state));
        // S0 state carries its burn-in progress.
        for _ in 0..3 {
            s0.observe(&[0], None);
        }
        let mut s0_restored = s0_screener();
        assert!(s0_restored.load_state(&s0.save_state()));
        assert_eq!(s0_restored.attempts, 3);
        let mut other_warmup = SurrogateScreener::new(
            SurrogateTier::S1,
            GuideMetric::PerfPerTdp,
            vec![Workload::Bert { seq_len: 128 }],
            toy_decode(toy_space()),
        )
        .warmup(3);
        assert!(!other_warmup.load_state(&state));
        assert!(!restored.load_state(&state[..state.len() - 1]));
    }

    #[test]
    fn screened_study_thins_evaluations_with_perfect_rank_agreement() {
        // The evaluator returns exactly the S0 guide, so the surrogate is a
        // perfect oracle: spearman must be 1.0 and the frontier unharmed.
        let space = toy_space();
        let truth = s0_screener();
        let mut sc = s0_screener();
        let mut full = 0usize;
        let mut eval = |p: &[usize]| {
            full += 1;
            TrialResult::Valid(truth.score(p)).into()
        };
        let mut opt = RandomSearch::new();
        let report = Study::new(&space, 32)
            .seed(7)
            .execution(Execution::Batched { batch_size: 8 })
            .fidelity(Fidelity::Screened {
                keep_fraction: 0.25,
                min_full: 2,
                tier: SurrogateTier::S0,
            })
            .run_screened(&mut opt, StudyEval::points(&mut eval), &mut sc)
            .expect("valid configuration");
        let fid = report.fidelity.expect("screened study reports fidelity");
        assert_eq!(fid.full_evals, full);
        assert!(fid.savings_factor() > 2.0, "factor = {}", fid.savings_factor());
        assert_eq!(fid.spearman, Some(1.0));
        assert!(report.best_objective.is_some());
    }
}
