//! # fast-surrogate — cheap predictor tiers for multi-fidelity search
//!
//! FAST's simulator (mapper + fusion ILP) is accurate but costs milliseconds
//! to seconds per candidate; most proposals in a study are discarded
//! immediately. This crate supplies the **surrogate tier** that a screened
//! [`fast_search::Study`] ranks each proposal round with, so only the
//! promising fraction pays for full simulation (the FLASH/multi-fidelity
//! recipe):
//!
//! * **Tier S0** ([`roofline`]) — an analytical roofline estimator: per-op
//!   latency/energy lower bounds from `fast_ir` intensity statistics and the
//!   candidate's peak compute / memory bandwidth. No mapper, no ILP, no
//!   fitting — usable from the very first round.
//! * **Tier S1** ([`ridge`]) — an online ridge regressor fitted from the
//!   accumulated true evaluations, over per-op-class features (FLOPs, bytes,
//!   roofline times, cost-model scalars). Retrained incrementally after each
//!   observation; its sufficient statistics serialize into study
//!   checkpoints so kill/resume replays bit-identically.
//!
//! [`SurrogateScreener`] packages both tiers behind the
//! [`fast_search::Screener`] trait: construct one with the workload set, the
//! guide metric and a point-decoding closure, then hand it to
//! [`fast_search::Study::run_screened`].
//!
//! ```
//! use fast_search::SurrogateTier;
//! use fast_surrogate::{GuideMetric, SurrogateScreener};
//!
//! let screener = SurrogateScreener::new(
//!     SurrogateTier::S0,
//!     GuideMetric::PerfPerTdp,
//!     vec![fast_models::Workload::Bert { seq_len: 128 }],
//!     Box::new(|_point| Some(fast_arch::presets::tpu_v3())),
//! );
//! # let _ = screener;
//! ```

pub mod ridge;
pub mod roofline;
pub mod screener;

pub use ridge::Ridge;
pub use roofline::{qps_bound, roofline_guide, step_seconds_bound, GraphLoad, GuideMetric};
pub use screener::{DecodeFn, SurrogateScreener, DEFAULT_WARMUP, FEATURE_DIM, S0_BURN_IN};
