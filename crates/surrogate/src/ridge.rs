//! Tier **S1**: an online ridge regressor over log-domain features.
//!
//! The model is ordinary ridge regression fitted incrementally: each true
//! evaluation contributes a rank-one update to the normal equations
//! (`XᵀX += x xᵀ`, `Xᵀy += y·x`), and the weights are re-solved by Gaussian
//! elimination after every observation — the feature dimension is tiny
//! (~a dozen), so a full solve is microseconds. Because the sufficient
//! statistics are exact sums, the fitted weights depend only on the
//! *multiset* of observations, never on when checkpoints happened — which
//! is what makes kill/resume bit-identical.

use serde::bin::{Reader, Writer};

/// Incremental ridge regression on fixed-dimension feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Ridge {
    dim: usize,
    lambda: f64,
    samples: u64,
    /// Row-major `dim × dim` Gram matrix XᵀX.
    xtx: Vec<f64>,
    /// Moment vector Xᵀy.
    xty: Vec<f64>,
    /// Cached solution of `(XᵀX + λI) w = Xᵀy`; refreshed on observe.
    weights: Option<Vec<f64>>,
}

impl Ridge {
    /// A fresh model for `dim`-dimensional features with ridge strength
    /// `lambda` (callers include their own bias feature).
    #[must_use]
    pub fn new(dim: usize, lambda: f64) -> Self {
        assert!(dim > 0, "ridge wants at least one feature");
        assert!(lambda > 0.0, "ridge strength must be positive");
        Ridge {
            dim,
            lambda,
            samples: 0,
            xtx: vec![0.0; dim * dim],
            xty: vec![0.0; dim],
            weights: None,
        }
    }

    /// Feature dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of observations absorbed so far.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Absorb one `(features, target)` pair and refresh the weights.
    pub fn observe(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        for (i, &xi) in x.iter().enumerate() {
            for (j, &xj) in x.iter().enumerate() {
                self.xtx[i * self.dim + j] += xi * xj;
            }
            self.xty[i] += y * xi;
        }
        self.samples += 1;
        self.weights = self.solve();
    }

    /// Predict the target for `x`; `None` until at least one observation
    /// has produced a solvable system.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> Option<f64> {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let w = self.weights.as_ref()?;
        Some(x.iter().zip(w).map(|(a, b)| a * b).sum())
    }

    /// Solve `(XᵀX + λI) w = Xᵀy` by Gaussian elimination with partial
    /// pivoting. The λI ridge makes the system well-posed long before the
    /// Gram matrix itself has full rank.
    fn solve(&self) -> Option<Vec<f64>> {
        if self.samples == 0 {
            return None;
        }
        let d = self.dim;
        let mut a = self.xtx.clone();
        for i in 0..d {
            a[i * d + i] += self.lambda;
        }
        let mut b = self.xty.clone();
        for col in 0..d {
            let pivot = (col..d)
                .max_by(|&r, &s| a[r * d + col].abs().total_cmp(&a[s * d + col].abs()))
                .expect("non-empty pivot range");
            if a[pivot * d + col].abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                for j in 0..d {
                    a.swap(col * d + j, pivot * d + j);
                }
                b.swap(col, pivot);
            }
            for row in (col + 1)..d {
                let f = a[row * d + col] / a[col * d + col];
                if f == 0.0 {
                    continue;
                }
                for j in col..d {
                    a[row * d + j] -= f * a[col * d + j];
                }
                b[row] -= f * b[col];
            }
        }
        let mut w = vec![0.0; d];
        for row in (0..d).rev() {
            let mut acc = b[row];
            for j in (row + 1)..d {
                acc -= a[row * d + j] * w[j];
            }
            w[row] = acc / a[row * d + row];
        }
        Some(w)
    }

    /// Serialize the sufficient statistics (not the cached weights — they
    /// are re-derived on load, so save/load is exactly observation-order
    /// independent).
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.dim as u64);
        w.put_f64(self.lambda);
        w.put_u64(self.samples);
        for v in &self.xtx {
            w.put_f64(*v);
        }
        for v in &self.xty {
            w.put_f64(*v);
        }
    }

    /// Restore a model saved by [`Ridge::encode`]. Returns `None` on any
    /// truncation or dimension disagreement with `expect_dim`.
    #[must_use]
    pub fn decode(r: &mut Reader<'_>, expect_dim: usize) -> Option<Self> {
        let dim = usize::try_from(r.get_u64().ok()?).ok()?;
        if dim != expect_dim {
            return None;
        }
        let lambda = r.get_f64().ok()?;
        // NaN-rejecting: anything not strictly positive (including NaN)
        // is a corrupt or foreign blob.
        if lambda.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let samples = r.get_u64().ok()?;
        let mut xtx = Vec::with_capacity(dim * dim);
        for _ in 0..dim * dim {
            xtx.push(r.get_f64().ok()?);
        }
        let mut xty = Vec::with_capacity(dim);
        for _ in 0..dim {
            xty.push(r.get_f64().ok()?);
        }
        let mut model = Ridge { dim, lambda, samples, xtx, xty, weights: None };
        model.weights = model.solve();
        Some(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_linear_function() {
        let mut m = Ridge::new(3, 1e-9);
        // y = 4 + 2*x1 - 3*x2 on a small grid.
        for x1 in 0..6 {
            for x2 in 0..6 {
                let x = [1.0, f64::from(x1), f64::from(x2)];
                m.observe(&x, 4.0 + 2.0 * x[1] - 3.0 * x[2]);
            }
        }
        let p = m.predict(&[1.0, 10.0, -2.0]).expect("fitted");
        assert!((p - 30.0).abs() < 1e-6, "predicted {p}");
    }

    #[test]
    fn unfitted_model_predicts_none() {
        let m = Ridge::new(2, 1e-3);
        assert_eq!(m.predict(&[1.0, 2.0]), None);
        assert_eq!(m.samples(), 0);
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let mut m = Ridge::new(4, 1e-3);
        for i in 0..20 {
            let t = f64::from(i);
            m.observe(&[1.0, t, t * t, (t + 1.0).ln()], 3.0 * t - 1.0);
        }
        let mut w = Writer::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = Ridge::decode(&mut r, 4).expect("decodes");
        assert!(r.is_done());
        assert_eq!(back, m);
        let x = [1.0, 7.5, 56.25, 2.14];
        assert_eq!(
            back.predict(&x).expect("fitted").to_bits(),
            m.predict(&x).expect("fitted").to_bits()
        );
    }

    #[test]
    fn decode_rejects_dimension_mismatch_and_truncation() {
        let mut m = Ridge::new(3, 1e-3);
        m.observe(&[1.0, 2.0, 3.0], 5.0);
        let mut w = Writer::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(Ridge::decode(&mut Reader::new(&bytes), 5).is_none());
        assert!(Ridge::decode(&mut Reader::new(&bytes[..bytes.len() - 3]), 3).is_none());
    }

    #[test]
    fn fit_depends_only_on_the_observation_multiset() {
        let obs: Vec<([f64; 2], f64)> =
            (0..10).map(|i| ([1.0, f64::from(i)], f64::from(i) * 0.5 + 1.0)).collect();
        let mut fwd = Ridge::new(2, 1e-3);
        let mut rev = Ridge::new(2, 1e-3);
        for (x, y) in &obs {
            fwd.observe(x, *y);
        }
        for (x, y) in obs.iter().rev() {
            rev.observe(x, *y);
        }
        let probe = [1.0, 3.25];
        // Sums of the same terms in a different order can differ in the
        // last ulp; the fits must agree to fp tolerance.
        let a = fwd.predict(&probe).unwrap();
        let b = rev.predict(&probe).unwrap();
        assert!((a - b).abs() < 1e-9);
    }
}
