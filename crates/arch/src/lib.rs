//! # fast-arch — the FAST accelerator datapath template
//!
//! Implements §5.4 of the paper: a highly-parameterized ML accelerator
//! template that is an *approximate superset* of popular accelerator
//! families. A [`DatapathConfig`] describes a grid of processing elements
//! (PEs), each containing a systolic array for MAC-heavy ops and a TPU-style
//! vector processing unit (VPU) for everything else, fed by a configurable
//! memory hierarchy (per-PE L1, optional L2, optional shared Global Memory,
//! GDDR6/HBM2 DRAM).
//!
//! Family coverage (paper examples):
//! * **TPU-v3**: large systolic arrays, shared L1, L2 disabled —
//!   [`presets::tpu_v3`].
//! * **Eyeriss-style scalar PEs**: `sa_x = sa_y = 1`, private L1s.
//! * **Simba/EdgeTPU-style vector PEs**: `sa_x = 1`.
//!
//! The crate also carries the analytical area and power-virus TDP models
//! (§6.1) used for the Perf/TDP objective and the area/TDP constraints of
//! Eq. (4), with process constants documented in [`tech`].
//!
//! ```
//! use fast_arch::{presets, cost};
//!
//! let tpu = presets::tpu_v3();
//! assert!((tpu.peak_flops() / 1e12 - 123.0).abs() < 1.0);
//! let budget = cost::Budget::paper_default();
//! assert!(budget.admits(&tpu));
//! ```

pub mod config;
pub mod cost;
mod persist;
pub mod presets;
pub mod tech;

pub use config::{BufferSharing, ConfigError, DatapathConfig, L2Config, MemoryTech};
pub use cost::{area, tdp, AreaBreakdown, Budget, TdpBreakdown};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_work() {
        let c = presets::fast_large();
        let a = area(&c);
        let t = tdp(&c);
        assert!(a.total_mm2 > 100.0);
        assert!(t.total_w > 50.0);
    }

    #[test]
    fn eyeriss_style_config_is_expressible() {
        let mut c = presets::fast_large();
        c.sa_x = 1;
        c.sa_y = 1;
        c.pes_x = 16;
        c.pes_y = 16;
        c.l1_config = BufferSharing::Private;
        c.validate().unwrap();
        assert_eq!(c.macs_per_pe(), 1);
    }

    #[test]
    fn vector_pe_config_is_expressible() {
        let mut c = presets::fast_large();
        c.sa_x = 1;
        c.sa_y = 16;
        c.validate().unwrap();
        assert_eq!(c.macs_per_pe(), 16);
    }
}
