//! Named design points from the paper (Table 5).

use crate::config::{BufferSharing, DatapathConfig, L2Config, MemoryTech};

/// The modeled TPU-v3 baseline, expressed in the FAST datapath template
/// (§5.4): dual-core, two 128×128-systolic-array PEs per core, 512-wide VPU
/// per PE, shared L1, no L2, 16 MiB Global Memory per core, two HBM2 stacks
/// (900 GB/s aggregate), 0.94 GHz ⇒ 123 TFLOPS bf16.
///
/// All experiments compare against this config evaluated by the same
/// simulator and die-shrunk to the same process constants — the paper does
/// the same (§6.1 "we evaluated against a simulated rather than measured
/// TPUv3 baseline").
#[must_use]
pub fn tpu_v3() -> DatapathConfig {
    DatapathConfig {
        pes_x: 2,
        pes_y: 1,
        sa_x: 128,
        sa_y: 128,
        vector_multiplier: 4, // 128 × 4 = 512-wide VPU per PE
        l1_config: BufferSharing::Shared,
        l1_input_kib: 64,
        l1_weight_kib: 32,
        l1_output_kib: 32,
        l2_config: L2Config::Disabled,
        l2_input_mult: 1,
        l2_weight_mult: 1,
        l2_output_mult: 1,
        global_memory_mib: 16,
        dram_channels: 2, // 2 HBM2 stacks ⇒ 900 GB/s
        memory: MemoryTech::Hbm2,
        native_batch: 64, // per core ("2×64" in Table 5)
        clock_ghz: 0.94,
        cores: 2,
    }
}

/// FAST-Large (Table 5): the Perf/TDP-optimized EfficientNet-B7 design that
/// still meets MLPerf latency. 64 PEs of 32×32 systolic arrays (131 TFLOPS at
/// 1 GHz), 32-wide VPUs, 8 KiB shared L1s, no L2, 128 MiB Global Memory,
/// 8 GDDR6 channels (448 GB/s), batch 8.
#[must_use]
pub fn fast_large() -> DatapathConfig {
    DatapathConfig {
        pes_x: 8,
        pes_y: 8,
        sa_x: 32,
        sa_y: 32,
        vector_multiplier: 1,
        l1_config: BufferSharing::Shared,
        l1_input_kib: 4,
        l1_weight_kib: 2,
        l1_output_kib: 2,
        l2_config: L2Config::Disabled,
        l2_input_mult: 1,
        l2_weight_mult: 1,
        l2_output_mult: 1,
        global_memory_mib: 128,
        dram_channels: 8,
        memory: MemoryTech::Gddr6,
        native_batch: 8,
        clock_ghz: 1.0,
        cores: 1,
    }
}

/// FAST-Small (Table 5): the bandwidth-balanced design that avoids fusion.
/// 8 PEs of 64×32 systolic arrays (32 TFLOPS), 64-wide VPUs, 8 KiB L1s,
/// 8 MiB Global Memory, 8 GDDR6 channels, batch 64.
#[must_use]
pub fn fast_small() -> DatapathConfig {
    DatapathConfig {
        pes_x: 8,
        pes_y: 1,
        sa_x: 64,
        sa_y: 32,
        vector_multiplier: 1,
        l1_config: BufferSharing::Shared,
        l1_input_kib: 4,
        l1_weight_kib: 2,
        l1_output_kib: 2,
        l2_config: L2Config::Disabled,
        l2_input_mult: 1,
        l2_weight_mult: 1,
        l2_output_mult: 1,
        global_memory_mib: 8,
        dram_channels: 8,
        memory: MemoryTech::Gddr6,
        native_batch: 64,
        clock_ghz: 1.0,
        cores: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpu_vpu_width() {
        assert_eq!(tpu_v3().vpu_lanes_per_pe(), 512);
        assert_eq!(tpu_v3().total_vpu_lanes(), 2048);
    }

    #[test]
    fn fast_large_l1_is_8kib() {
        assert_eq!(fast_large().l1_bytes_per_pe(), 8 * 1024);
    }

    #[test]
    fn mac_counts() {
        assert_eq!(tpu_v3().total_macs(), 65536);
        assert_eq!(fast_large().total_macs(), 65536);
        assert_eq!(fast_small().total_macs(), 16384);
    }
}
