//! Binary-codec impls for the datapath types that appear in durable
//! snapshots (the evaluation-cache key and sweep checkpoints).
//!
//! Hand-written field-by-field — the vendored serde derives generate no
//! code — so this file *is* the on-disk layout of a [`DatapathConfig`]. The
//! exhaustive destructuring mirrors the cache key's: adding a config field
//! without extending the codec is a compile error, which keeps old
//! snapshots from being silently reinterpreted (the envelope version in
//! the snapshot container must be bumped instead).

use crate::config::{BufferSharing, DatapathConfig, L2Config, MemoryTech};
use crate::cost::Budget;
use serde::bin::{Decode, DecodeError, Encode, Reader, Writer};

impl Encode for BufferSharing {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            BufferSharing::Private => 0,
            BufferSharing::Shared => 1,
        });
    }
}

impl Decode for BufferSharing {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(BufferSharing::Private),
            1 => Ok(BufferSharing::Shared),
            b => Err(DecodeError { offset: 0, what: format!("invalid BufferSharing tag {b}") }),
        }
    }
}

impl Encode for L2Config {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            L2Config::Disabled => 0,
            L2Config::Private => 1,
            L2Config::Shared => 2,
        });
    }
}

impl Decode for L2Config {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(L2Config::Disabled),
            1 => Ok(L2Config::Private),
            2 => Ok(L2Config::Shared),
            b => Err(DecodeError { offset: 0, what: format!("invalid L2Config tag {b}") }),
        }
    }
}

impl Encode for MemoryTech {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            MemoryTech::Gddr6 => 0,
            MemoryTech::Hbm2 => 1,
        });
    }
}

impl Decode for MemoryTech {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(MemoryTech::Gddr6),
            1 => Ok(MemoryTech::Hbm2),
            b => Err(DecodeError { offset: 0, what: format!("invalid MemoryTech tag {b}") }),
        }
    }
}

impl Encode for DatapathConfig {
    fn encode(&self, w: &mut Writer) {
        let DatapathConfig {
            pes_x,
            pes_y,
            sa_x,
            sa_y,
            vector_multiplier,
            l1_config,
            l1_input_kib,
            l1_weight_kib,
            l1_output_kib,
            l2_config,
            l2_input_mult,
            l2_weight_mult,
            l2_output_mult,
            global_memory_mib,
            dram_channels,
            memory,
            native_batch,
            clock_ghz,
            cores,
        } = *self;
        pes_x.encode(w);
        pes_y.encode(w);
        sa_x.encode(w);
        sa_y.encode(w);
        vector_multiplier.encode(w);
        l1_config.encode(w);
        l1_input_kib.encode(w);
        l1_weight_kib.encode(w);
        l1_output_kib.encode(w);
        l2_config.encode(w);
        l2_input_mult.encode(w);
        l2_weight_mult.encode(w);
        l2_output_mult.encode(w);
        global_memory_mib.encode(w);
        dram_channels.encode(w);
        memory.encode(w);
        native_batch.encode(w);
        clock_ghz.encode(w);
        cores.encode(w);
    }
}

impl Decode for DatapathConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(DatapathConfig {
            pes_x: Decode::decode(r)?,
            pes_y: Decode::decode(r)?,
            sa_x: Decode::decode(r)?,
            sa_y: Decode::decode(r)?,
            vector_multiplier: Decode::decode(r)?,
            l1_config: Decode::decode(r)?,
            l1_input_kib: Decode::decode(r)?,
            l1_weight_kib: Decode::decode(r)?,
            l1_output_kib: Decode::decode(r)?,
            l2_config: Decode::decode(r)?,
            l2_input_mult: Decode::decode(r)?,
            l2_weight_mult: Decode::decode(r)?,
            l2_output_mult: Decode::decode(r)?,
            global_memory_mib: Decode::decode(r)?,
            dram_channels: Decode::decode(r)?,
            memory: Decode::decode(r)?,
            native_batch: Decode::decode(r)?,
            clock_ghz: Decode::decode(r)?,
            cores: Decode::decode(r)?,
        })
    }
}

impl Encode for Budget {
    fn encode(&self, w: &mut Writer) {
        let Budget { max_area_mm2, max_tdp_w } = *self;
        max_area_mm2.encode(w);
        max_tdp_w.encode(w);
    }
}

impl Decode for Budget {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Budget { max_area_mm2: Decode::decode(r)?, max_tdp_w: Decode::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;
    use serde::bin::{Decode, Encode};

    #[test]
    fn datapath_config_round_trips_bit_identically() {
        for cfg in [presets::tpu_v3(), presets::fast_large(), presets::fast_small()] {
            let back = crate::DatapathConfig::from_bytes(&cfg.to_bytes()).unwrap();
            assert_eq!(back, cfg);
            assert_eq!(back.clock_ghz.to_bits(), cfg.clock_ghz.to_bits());
        }
    }

    #[test]
    fn budget_round_trips() {
        let b = crate::Budget::paper_default();
        let back = crate::Budget::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(back.max_area_mm2.to_bits(), b.max_area_mm2.to_bits());
        assert_eq!(back.max_tdp_w.to_bits(), b.max_tdp_w.to_bits());
    }

    #[test]
    fn enum_tags_reject_garbage() {
        assert!(crate::MemoryTech::from_bytes(&[9]).is_err());
        assert!(crate::L2Config::from_bytes(&[3]).is_err());
        assert!(crate::BufferSharing::from_bytes(&[2]).is_err());
    }
}
