//! Process-technology constants for the analytical area/energy models.
//!
//! The paper uses "analytical power and area models correlated to production
//! designs on an industry sub-10nm process" (§6.1) whose absolute constants
//! are proprietary. The constants below are plausible sub-10 nm values chosen
//! so the modeled TPU-v3 die-shrink lands at the paper's normalized operating
//! point (Table 5: 0.5× of the TDP budget, 0.6× of the area budget, at
//! 123 TFLOPS bf16 and 900 GB/s). Absolute mm²/W are therefore *ours*; every
//! result in the reproduction is reported as a ratio, exactly as in the
//! paper. See `DESIGN.md` §3(4).

/// Effective silicon area of one bf16 multiply-accumulate unit, including its
/// share of pipeline registers, accumulators and array wiring (mm²).
pub const MAC_AREA_MM2: f64 = 0.004;

/// Energy of one bf16 MAC operation (joules).
pub const MAC_ENERGY_J: f64 = 1.2e-12;

/// Area of one VPU lane (bf16 ALU with transcendental support, register file
/// slice) in mm².
pub const VPU_LANE_AREA_MM2: f64 = 0.015;

/// Energy of one VPU lane-operation (joules). Transcendental ops issue
/// multiple lane-operations (see `fast-sim`).
pub const VPU_LANE_ENERGY_J: f64 = 2.5e-12;

/// SRAM area per MiB (mm²), density-optimized macro including periphery.
pub const SRAM_AREA_MM2_PER_MIB: f64 = 0.35;

/// L1/L2 scratchpad access energy per byte, per KiB of buffer capacity
/// (joules). Linear capacity scaling models the longer bitlines/wires and
/// wider banking needed to sustain full port bandwidth on bigger buffers —
/// this is what makes oversized L1s TDP-expensive (Table 6, last row).
pub const SPAD_ENERGY_J_PER_BYTE_PER_KIB: f64 = 0.10e-12;

/// Floor for scratchpad access energy per byte (joules).
pub const SPAD_ENERGY_FLOOR_J_PER_BYTE: f64 = 0.2e-12;

/// Global-Memory access energy per byte at 1 MiB (joules); scales with
/// sqrt(capacity) like an H-tree-banked large SRAM.
pub const GM_ENERGY_J_PER_BYTE_AT_1MIB: f64 = 0.5e-12;

/// Bytes per cycle of Global-Memory port bandwidth provisioned per PE.
pub const GM_PORT_BYTES_PER_PE: f64 = 16.0;

/// GDDR6 channel: 32-bit @ 14 Gb/s ⇒ 56 GB/s.
pub const GDDR6_GBPS_PER_CHANNEL: f64 = 56.0;

/// HBM2 stack bandwidth (one "channel" in the config = one stack): 450 GB/s.
/// TPU-v3 uses two stacks for its published 900 GB/s.
pub const HBM2_GBPS_PER_CHANNEL: f64 = 450.0;

/// GDDR6 access energy per byte (joules) — ~7.5 pJ/bit.
pub const GDDR6_ENERGY_J_PER_BYTE: f64 = 60.0e-12;

/// HBM2 access energy per byte (joules) — ~3.9 pJ/bit.
pub const HBM2_ENERGY_J_PER_BYTE: f64 = 31.0e-12;

/// GDDR6 PHY + controller area per channel (mm²).
pub const GDDR6_PHY_AREA_MM2: f64 = 5.5;

/// HBM2 PHY + controller area per stack (mm²).
pub const HBM2_PHY_AREA_MM2: f64 = 22.0;

/// Static PHY/controller power per GDDR6 channel (watts).
pub const GDDR6_PHY_STATIC_W: f64 = 1.0;

/// Static PHY/controller power per HBM2 stack (watts).
pub const HBM2_PHY_STATIC_W: f64 = 3.0;

/// Logic leakage per mm² (watts).
pub const LOGIC_LEAKAGE_W_PER_MM2: f64 = 0.02;

/// SRAM leakage per MiB (watts).
pub const SRAM_LEAKAGE_W_PER_MIB: f64 = 0.05;

/// Multiplicative overhead for the on-chip network, clocking and control,
/// applied to both area and power.
pub const NOC_OVERHEAD: f64 = 1.15;

/// Scratchpad access energy per byte for a buffer of `kib` KiB capacity.
#[must_use]
pub fn spad_energy_j_per_byte(kib: f64) -> f64 {
    (SPAD_ENERGY_J_PER_BYTE_PER_KIB * kib).max(SPAD_ENERGY_FLOOR_J_PER_BYTE)
}

/// Global-memory access energy per byte for a buffer of `mib` MiB capacity.
#[must_use]
pub fn gm_energy_j_per_byte(mib: f64) -> f64 {
    GM_ENERGY_J_PER_BYTE_AT_1MIB * mib.max(1.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spad_energy_scales_linearly_with_floor() {
        assert!(spad_energy_j_per_byte(1.0) >= SPAD_ENERGY_FLOOR_J_PER_BYTE);
        let e8 = spad_energy_j_per_byte(8.0);
        let e32 = spad_energy_j_per_byte(32.0);
        assert!((e32 / e8 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn gm_energy_scales_with_sqrt() {
        let e16 = gm_energy_j_per_byte(16.0);
        let e64 = gm_energy_j_per_byte(64.0);
        assert!((e64 / e16 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hbm_cheaper_per_byte_than_gddr() {
        const { assert!(HBM2_ENERGY_J_PER_BYTE < GDDR6_ENERGY_J_PER_BYTE) }
    }
}
