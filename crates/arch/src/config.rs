//! The Table-3 datapath search space.

use crate::tech;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sharing mode of the per-PE L1 scratchpads (Table 3 `L1_buffer_config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferSharing {
    /// Separate input/weight/output partitions per PE (Eyeriss-style).
    Private,
    /// One shared scratchpad per PE holding all tensor types (TPU-style).
    Shared,
}

/// Configuration of the optional L2 level (Table 3 `L2_buffer_config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum L2Config {
    /// No L2 level (TPU-style two-level hierarchy).
    Disabled,
    /// Per-PE L2 partitions.
    Private,
    /// L2 shared by a PE row.
    Shared,
}

/// Off-chip memory technology. The Table-3 space searches GDDR6 channel
/// counts; the TPU-v3 baseline keeps its HBM2 ("Memory technologies besides
/// GDDR6 can easily be modeled").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryTech {
    /// GDDR6: 56 GB/s and a small PHY per channel.
    Gddr6,
    /// HBM2: 450 GB/s and a large PHY per stack.
    Hbm2,
}

impl MemoryTech {
    /// Bandwidth per channel/stack in GB/s.
    #[must_use]
    pub const fn gbps_per_channel(self) -> f64 {
        match self {
            MemoryTech::Gddr6 => tech::GDDR6_GBPS_PER_CHANNEL,
            MemoryTech::Hbm2 => tech::HBM2_GBPS_PER_CHANNEL,
        }
    }
}

/// A point in the Table-3 accelerator datapath search space, plus fixed
/// attributes (clock, core count, memory technology) that the paper holds
/// constant per experiment.
///
/// Size fields follow Table 3's units: L1 buffers in KiB (1 KiB–1 MiB,
/// powers of two), the Global Memory in MiB (0–256, powers of two), L2 sizes
/// as multipliers over the corresponding L1 buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatapathConfig {
    /// PE grid extent in x (1–256, power of two).
    pub pes_x: u64,
    /// PE grid extent in y (1–256, power of two).
    pub pes_y: u64,
    /// Systolic array rows per PE (1–256, power of two).
    pub sa_x: u64,
    /// Systolic array columns per PE (1–256, power of two).
    pub sa_y: u64,
    /// VPU width as a multiple of `sa_x` (1–16, power of two).
    pub vector_multiplier: u64,
    /// L1 sharing mode.
    pub l1_config: BufferSharing,
    /// L1 input-activation buffer per PE, KiB (1–1024, power of two).
    pub l1_input_kib: u64,
    /// L1 weight buffer per PE, KiB (1–1024, power of two).
    pub l1_weight_kib: u64,
    /// L1 output buffer per PE, KiB (1–1024, power of two).
    pub l1_output_kib: u64,
    /// L2 level configuration.
    pub l2_config: L2Config,
    /// L2 input size as a multiple of L1 input (1–128, power of two).
    pub l2_input_mult: u64,
    /// L2 weight size as a multiple of L1 weight (1–128, power of two).
    pub l2_weight_mult: u64,
    /// L2 output size as a multiple of L1 output (1–128, power of two).
    pub l2_output_mult: u64,
    /// Global Memory (L3) size per core, MiB (0–256, power of two).
    pub global_memory_mib: u64,
    /// DRAM channel count (1–8, power of two).
    pub dram_channels: u64,
    /// Off-chip memory technology.
    pub memory: MemoryTech,
    /// Native batch size the design is evaluated at (1–256, power of two).
    pub native_batch: u64,
    /// Core clock in GHz (fixed per experiment, not searched).
    pub clock_ghz: f64,
    /// Number of independent cores (TPU-v3 is dual-core; FAST designs are
    /// single-core). Cores split DRAM bandwidth evenly and serve disjoint
    /// batches.
    pub cores: u64,
}

/// Validation failures for a [`DatapathConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field.
    pub field: &'static str,
    /// Why the value is invalid.
    pub reason: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid datapath config: {} {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

fn pow2_in(field: &'static str, v: u64, lo: u64, hi: u64) -> Result<(), ConfigError> {
    if v < lo || v > hi {
        return Err(ConfigError { field, reason: format!("{v} outside [{lo}, {hi}]") });
    }
    if !v.is_power_of_two() {
        return Err(ConfigError { field, reason: format!("{v} is not a power of two") });
    }
    Ok(())
}

impl DatapathConfig {
    /// Checks every field against its Table-3 range.
    ///
    /// # Errors
    /// Returns the first violated range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        pow2_in("pes_x", self.pes_x, 1, 256)?;
        pow2_in("pes_y", self.pes_y, 1, 256)?;
        pow2_in("sa_x", self.sa_x, 1, 256)?;
        pow2_in("sa_y", self.sa_y, 1, 256)?;
        pow2_in("vector_multiplier", self.vector_multiplier, 1, 16)?;
        pow2_in("l1_input_kib", self.l1_input_kib, 1, 1024)?;
        pow2_in("l1_weight_kib", self.l1_weight_kib, 1, 1024)?;
        pow2_in("l1_output_kib", self.l1_output_kib, 1, 1024)?;
        pow2_in("l2_input_mult", self.l2_input_mult, 1, 128)?;
        pow2_in("l2_weight_mult", self.l2_weight_mult, 1, 128)?;
        pow2_in("l2_output_mult", self.l2_output_mult, 1, 128)?;
        if self.global_memory_mib != 0 {
            pow2_in("global_memory_mib", self.global_memory_mib, 1, 256)?;
        }
        pow2_in("dram_channels", self.dram_channels, 1, 8)?;
        pow2_in("native_batch", self.native_batch, 1, 256)?;
        if !(self.clock_ghz > 0.0 && self.clock_ghz < 4.0) {
            return Err(ConfigError {
                field: "clock_ghz",
                reason: format!("{} outside (0, 4)", self.clock_ghz),
            });
        }
        if self.cores == 0 || self.cores > 4 {
            return Err(ConfigError {
                field: "cores",
                reason: format!("{} outside [1, 4]", self.cores),
            });
        }
        Ok(())
    }

    // -------------------------------------------------------------------
    // Derived quantities
    // -------------------------------------------------------------------

    /// PEs per core.
    #[must_use]
    pub fn pes_per_core(&self) -> u64 {
        self.pes_x * self.pes_y
    }

    /// MAC units per PE.
    #[must_use]
    pub fn macs_per_pe(&self) -> u64 {
        self.sa_x * self.sa_y
    }

    /// Total MAC units across all cores.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.cores * self.pes_per_core() * self.macs_per_pe()
    }

    /// Peak bf16 compute in FLOPS (2 FLOPs per MAC per cycle).
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.total_macs() as f64 * self.clock_ghz * 1e9
    }

    /// VPU lanes per PE (`sa_x × vector_multiplier`).
    #[must_use]
    pub fn vpu_lanes_per_pe(&self) -> u64 {
        self.sa_x * self.vector_multiplier
    }

    /// Total VPU lanes across all cores.
    #[must_use]
    pub fn total_vpu_lanes(&self) -> u64 {
        self.cores * self.pes_per_core() * self.vpu_lanes_per_pe()
    }

    /// Aggregate DRAM bandwidth in bytes/second (whole chip).
    #[must_use]
    pub fn dram_bytes_per_sec(&self) -> f64 {
        self.dram_channels as f64 * self.memory.gbps_per_channel() * 1e9
    }

    /// DRAM bandwidth available to one core, bytes/second.
    #[must_use]
    pub fn dram_bytes_per_sec_per_core(&self) -> f64 {
        self.dram_bytes_per_sec() / self.cores as f64
    }

    /// Total L1 capacity per PE in bytes (all three partitions).
    #[must_use]
    pub fn l1_bytes_per_pe(&self) -> u64 {
        (self.l1_input_kib + self.l1_weight_kib + self.l1_output_kib) * 1024
    }

    /// L2 capacity per PE in bytes; zero when disabled.
    #[must_use]
    pub fn l2_bytes_per_pe(&self) -> u64 {
        match self.l2_config {
            L2Config::Disabled => 0,
            _ => {
                (self.l1_input_kib * self.l2_input_mult
                    + self.l1_weight_kib * self.l2_weight_mult
                    + self.l1_output_kib * self.l2_output_mult)
                    * 1024
            }
        }
    }

    /// Global Memory capacity per core in bytes.
    #[must_use]
    pub fn global_memory_bytes(&self) -> u64 {
        self.global_memory_mib * 1024 * 1024
    }

    /// Total on-chip SRAM in MiB across all cores and levels.
    #[must_use]
    pub fn total_sram_mib(&self) -> f64 {
        let per_core = self.pes_per_core() * (self.l1_bytes_per_pe() + self.l2_bytes_per_pe())
            + self.global_memory_bytes();
        (self.cores * per_core) as f64 / (1024.0 * 1024.0)
    }

    /// Operational-intensity ridgepoint in FLOPs/byte: models below this are
    /// memory-bandwidth-bound (§4.1 — 137 for TPU-v3, 292 for FAST-Large).
    #[must_use]
    pub fn ridgepoint(&self) -> f64 {
        self.peak_flops() / self.dram_bytes_per_sec()
    }

    /// Size of the datapath search space of Table 3 in log10 (≈ 13).
    #[must_use]
    pub fn search_space_log10() -> f64 {
        // 9 pow-2 ranges of 9 choices, vector_multiplier 5, l1 cfg 2, l2 cfg 3,
        // three l2 mults of 8, GM 10, channels 4, batch 9.
        let combos =
            9f64.powi(4) * 5.0 * 2.0 * 9f64.powi(3) * 3.0 * 8f64.powi(3) * 10.0 * 4.0 * 9.0;
        combos.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn presets_validate() {
        presets::tpu_v3().validate().unwrap();
        presets::fast_large().validate().unwrap();
        presets::fast_small().validate().unwrap();
    }

    #[test]
    fn tpu_v3_peak_numbers() {
        let c = presets::tpu_v3();
        // 123 TFLOPS bf16 and 900 GB/s (§4.1).
        assert!((c.peak_flops() / 1e12 - 123.0).abs() < 1.0, "{}", c.peak_flops() / 1e12);
        assert!((c.dram_bytes_per_sec() / 1e9 - 900.0).abs() < 1.0);
        // Ridgepoint ≈ 137 FLOPS/B.
        assert!((c.ridgepoint() - 137.0).abs() < 2.0, "{}", c.ridgepoint());
    }

    #[test]
    fn fast_large_peak_numbers() {
        let c = presets::fast_large();
        // Table 5: 131 TFLOPS, 448 GB/s, ridgepoint 292.
        assert!((c.peak_flops() / 1e12 - 131.0).abs() < 1.0, "{}", c.peak_flops() / 1e12);
        assert!((c.dram_bytes_per_sec() / 1e9 - 448.0).abs() < 1.0);
        assert!((c.ridgepoint() - 292.0).abs() < 3.0, "{}", c.ridgepoint());
    }

    #[test]
    fn fast_small_peak_numbers() {
        let c = presets::fast_small();
        // Table 5: 32 TFLOPS, 448 GB/s, ridgepoint 73.
        assert!((c.peak_flops() / 1e12 - 32.0).abs() < 1.0);
        assert!((c.ridgepoint() - 73.0).abs() < 2.0, "{}", c.ridgepoint());
    }

    #[test]
    fn validation_rejects_non_pow2() {
        let mut c = presets::fast_large();
        c.pes_x = 3;
        assert!(c.validate().is_err());
        let mut c = presets::fast_large();
        c.l1_input_kib = 2048;
        assert!(c.validate().is_err());
    }

    #[test]
    fn gm_zero_allowed() {
        let mut c = presets::fast_large();
        c.global_memory_mib = 0;
        c.validate().unwrap();
        assert_eq!(c.global_memory_bytes(), 0);
    }

    #[test]
    fn search_space_is_about_1e13() {
        let log = DatapathConfig::search_space_log10();
        assert!((12.0..14.5).contains(&log), "{log}");
    }
}
