//! Analytical area and TDP (power-virus) models.
//!
//! TDP is estimated "as power virus power, in which each component is assumed
//! to be accessed at 100 % utilization" (§6.1): every MAC fires every cycle,
//! every buffer port streams at full width, and DRAM runs at peak bandwidth.
//! Average (workload) power is computed separately by `fast-sim` from actual
//! access counts; constraints and Perf/TDP use the virus number, matching the
//! paper.

use crate::config::{DatapathConfig, L2Config, MemoryTech};
use crate::tech;
use serde::{Deserialize, Serialize};

/// Silicon area breakdown in mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Systolic-array MACs.
    pub macs_mm2: f64,
    /// VPU lanes.
    pub vpu_mm2: f64,
    /// L1 scratchpads.
    pub l1_mm2: f64,
    /// L2 scratchpads.
    pub l2_mm2: f64,
    /// Global Memory.
    pub gm_mm2: f64,
    /// DRAM PHYs and controllers.
    pub dram_phy_mm2: f64,
    /// Total including NoC/control overhead.
    pub total_mm2: f64,
}

/// TDP (power-virus) breakdown in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TdpBreakdown {
    /// Systolic-array MACs at 100 % utilization.
    pub macs_w: f64,
    /// VPU lanes at 100 % utilization.
    pub vpu_w: f64,
    /// L1 ports at full streaming width.
    pub l1_w: f64,
    /// L2 ports at full streaming width.
    pub l2_w: f64,
    /// Global Memory ports at full width.
    pub gm_w: f64,
    /// DRAM at peak bandwidth plus PHY static power.
    pub dram_w: f64,
    /// Leakage (logic + SRAM).
    pub leakage_w: f64,
    /// Total including NoC/clock overhead.
    pub total_w: f64,
}

/// Computes the silicon area of `cfg`.
#[must_use]
pub fn area(cfg: &DatapathConfig) -> AreaBreakdown {
    let macs_mm2 = cfg.total_macs() as f64 * tech::MAC_AREA_MM2;
    let vpu_mm2 = cfg.total_vpu_lanes() as f64 * tech::VPU_LANE_AREA_MM2;
    let pes = (cfg.cores * cfg.pes_per_core()) as f64;
    let l1_mib = pes * cfg.l1_bytes_per_pe() as f64 / (1024.0 * 1024.0);
    let l1_mm2 = l1_mib * tech::SRAM_AREA_MM2_PER_MIB;
    let l2_mib = pes * cfg.l2_bytes_per_pe() as f64 / (1024.0 * 1024.0);
    let l2_mm2 = l2_mib * tech::SRAM_AREA_MM2_PER_MIB;
    let gm_mib = (cfg.cores * cfg.global_memory_bytes()) as f64 / (1024.0 * 1024.0);
    let gm_mm2 = gm_mib * tech::SRAM_AREA_MM2_PER_MIB;
    let phy = match cfg.memory {
        MemoryTech::Gddr6 => tech::GDDR6_PHY_AREA_MM2,
        MemoryTech::Hbm2 => tech::HBM2_PHY_AREA_MM2,
    };
    let dram_phy_mm2 = cfg.dram_channels as f64 * phy;
    let total_mm2 =
        (macs_mm2 + vpu_mm2 + l1_mm2 + l2_mm2 + gm_mm2 + dram_phy_mm2) * tech::NOC_OVERHEAD;
    AreaBreakdown { macs_mm2, vpu_mm2, l1_mm2, l2_mm2, gm_mm2, dram_phy_mm2, total_mm2 }
}

/// Bytes per cycle streamed by one PE's L1 under the power virus: one systolic
/// row vector in, one weight column refill, one output column out (2-byte
/// elements).
#[must_use]
pub fn l1_virus_bytes_per_cycle(cfg: &DatapathConfig) -> f64 {
    ((cfg.sa_x + 2 * cfg.sa_y) * 2) as f64
}

/// Computes the power-virus TDP of `cfg`.
#[must_use]
pub fn tdp(cfg: &DatapathConfig) -> TdpBreakdown {
    let f = cfg.clock_ghz * 1e9;
    let macs_w = cfg.total_macs() as f64 * tech::MAC_ENERGY_J * f;
    let vpu_w = cfg.total_vpu_lanes() as f64 * tech::VPU_LANE_ENERGY_J * f;

    let pes = (cfg.cores * cfg.pes_per_core()) as f64;
    let l1_kib = cfg.l1_bytes_per_pe() as f64 / 1024.0;
    let l1_bw = l1_virus_bytes_per_cycle(cfg);
    let l1_w = pes * l1_bw * tech::spad_energy_j_per_byte(l1_kib) * f;

    let l2_w = match cfg.l2_config {
        L2Config::Disabled => 0.0,
        _ => {
            let l2_kib = cfg.l2_bytes_per_pe() as f64 / 1024.0;
            // L2 refills L1: half the L1 streaming width.
            pes * (l1_bw / 2.0) * tech::spad_energy_j_per_byte(l2_kib) * f
        }
    };

    let gm_mib = cfg.global_memory_bytes() as f64 / (1024.0 * 1024.0);
    let gm_w = if cfg.global_memory_mib == 0 {
        0.0
    } else {
        let ports = cfg.pes_per_core() as f64 * tech::GM_PORT_BYTES_PER_PE;
        cfg.cores as f64 * ports * tech::gm_energy_j_per_byte(gm_mib) * f
    };

    let (dram_e, phy_static) = match cfg.memory {
        MemoryTech::Gddr6 => (tech::GDDR6_ENERGY_J_PER_BYTE, tech::GDDR6_PHY_STATIC_W),
        MemoryTech::Hbm2 => (tech::HBM2_ENERGY_J_PER_BYTE, tech::HBM2_PHY_STATIC_W),
    };
    let dram_w = cfg.dram_bytes_per_sec() * dram_e + cfg.dram_channels as f64 * phy_static;

    let a = area(cfg);
    let logic_mm2 = a.macs_mm2 + a.vpu_mm2 + a.dram_phy_mm2;
    let sram_mib = cfg.total_sram_mib();
    let leakage_w =
        logic_mm2 * tech::LOGIC_LEAKAGE_W_PER_MM2 + sram_mib * tech::SRAM_LEAKAGE_W_PER_MIB;

    let total_w = (macs_w + vpu_w + l1_w + l2_w + gm_w + dram_w + leakage_w) * tech::NOC_OVERHEAD;
    TdpBreakdown { macs_w, vpu_w, l1_w, l2_w, gm_w, dram_w, leakage_w, total_w }
}

/// Search budget constraints (Eq. 4): maximum area and TDP.
///
/// The paper gives FAST "a power and area budget similar to the
/// current-generation TPU-v3, but on a new process technology". We define the
/// budget so the modeled TPU-v3 die-shrink sits exactly at Table 5's
/// normalized point: 0.5× of the TDP budget and 0.6× of the area budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum allowed die area (mm²).
    pub max_area_mm2: f64,
    /// Maximum allowed TDP (watts).
    pub max_tdp_w: f64,
}

impl Budget {
    /// The paper's experimental budget, anchored to the TPU-v3 shrink.
    #[must_use]
    pub fn paper_default() -> Self {
        let tpu = crate::presets::tpu_v3();
        Budget { max_area_mm2: area(&tpu).total_mm2 / 0.6, max_tdp_w: tdp(&tpu).total_w / 0.5 }
    }

    /// Whether `cfg` fits the budget.
    #[must_use]
    pub fn admits(&self, cfg: &DatapathConfig) -> bool {
        area(cfg).total_mm2 <= self.max_area_mm2 && tdp(cfg).total_w <= self.max_tdp_w
    }

    /// Normalized area of `cfg` (1.0 = at budget).
    #[must_use]
    pub fn normalized_area(&self, cfg: &DatapathConfig) -> f64 {
        area(cfg).total_mm2 / self.max_area_mm2
    }

    /// Normalized TDP of `cfg` (1.0 = at budget).
    #[must_use]
    pub fn normalized_tdp(&self, cfg: &DatapathConfig) -> f64 {
        tdp(cfg).total_w / self.max_tdp_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn tpu_sits_at_paper_operating_point() {
        let b = Budget::paper_default();
        let tpu = presets::tpu_v3();
        assert!((b.normalized_area(&tpu) - 0.6).abs() < 1e-9);
        assert!((b.normalized_tdp(&tpu) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn presets_fit_budget() {
        let b = Budget::paper_default();
        assert!(b.admits(&presets::tpu_v3()));
        assert!(
            b.admits(&presets::fast_large()),
            "large: area {:.2} tdp {:.2}",
            b.normalized_area(&presets::fast_large()),
            b.normalized_tdp(&presets::fast_large())
        );
        assert!(b.admits(&presets::fast_small()));
    }

    #[test]
    fn fast_small_is_much_smaller() {
        let b = Budget::paper_default();
        let small = presets::fast_small();
        // Table 5: FAST-Small ≈ 0.15× TDP, 0.3× area.
        assert!(b.normalized_tdp(&small) < 0.35, "tdp {}", b.normalized_tdp(&small));
        assert!(b.normalized_area(&small) < 0.45, "area {}", b.normalized_area(&small));
    }

    #[test]
    fn area_components_positive() {
        let a = area(&presets::fast_large());
        assert!(a.macs_mm2 > 0.0 && a.vpu_mm2 > 0.0 && a.gm_mm2 > 0.0);
        assert!(a.total_mm2 > a.macs_mm2 + a.vpu_mm2 + a.gm_mm2);
        assert_eq!(a.l2_mm2, 0.0);
    }

    #[test]
    fn bigger_l1_costs_more_tdp() {
        let mut small = presets::fast_large();
        small.l1_input_kib = 4;
        small.l1_weight_kib = 2;
        small.l1_output_kib = 2;
        let mut big = small;
        big.l1_input_kib = 16;
        big.l1_weight_kib = 8;
        big.l1_output_kib = 8;
        let t_small = tdp(&small).total_w;
        let t_big = tdp(&big).total_w;
        assert!(t_big > t_small * 1.05, "8->32 KiB L1 should raise TDP: {t_small} vs {t_big}");
    }

    #[test]
    fn enabling_l2_raises_tdp() {
        let base = presets::fast_large();
        let mut with_l2 = base;
        with_l2.l2_config = L2Config::Shared;
        with_l2.l2_input_mult = 8;
        with_l2.l2_weight_mult = 8;
        with_l2.l2_output_mult = 8;
        assert!(tdp(&with_l2).total_w > tdp(&base).total_w);
        assert!(area(&with_l2).total_mm2 > area(&base).total_mm2);
    }

    #[test]
    fn tdp_scales_with_clock() {
        let mut c = presets::fast_large();
        let t1 = tdp(&c).total_w;
        c.clock_ghz = 0.5;
        let t2 = tdp(&c).total_w;
        assert!(t2 < t1);
    }
}
