//! # fast-roi — the economics of specialized accelerators (§5.1)
//!
//! Implements the paper's ROI model (Equations 1–2):
//!
//! ```text
//! TCO_old(n) = C_cap(n) + t_D · C_op(n)
//! ROI        = TCO_old · (S − 1) / ((t_design · C_eng + C_mask + C_IP) · S)
//! ```
//!
//! where `S` is the Perf/TCO improvement of the new accelerator over the
//! baseline and `n` the deployment volume. An ROI above 1 is profitable.
//! All constants default to the paper's public sources: the NVIDIA DGX A100
//! 320 GB platform as the baseline ($199k for 8 accelerators), May-2021 US
//! commercial electricity, a 3-year deployment lifetime, Bay-Area median SWE
//! compensation with 65 % overhead, 65 aggregate engineer-years (the
//! Simba/Tesla-FSD average), and sub-10 nm mask/IP NRE extrapolated with the
//! exponential scaling of ASIC Clouds — calibrated against Table 4.
//!
//! ```
//! use fast_roi::RoiModel;
//!
//! let model = RoiModel::paper_default();
//! // A 2x Perf/TCO accelerator pays back at datacenter scale…
//! assert!(model.roi(100_000.0, 2.0) > 1.0);
//! // …but not at a 100-chip deployment (the NRE dominates).
//! assert!(model.roi(100.0, 2.0) < 1.0);
//! // ROI grows monotonically along a frontier of increasing gains.
//! let rois = model.roi_along_frontier(50_000.0, &[1.2, 1.5, 2.0]);
//! assert!(rois[0] < rois[1] && rois[1] < rois[2]);
//! ```

use serde::{Deserialize, Serialize};

/// The ROI model constants (Equations 1–2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoiModel {
    /// Capital cost per deployed accelerator, including its share of host,
    /// networking and rack (USD).
    pub accelerator_price: f64,
    /// Average wall power per accelerator including system share (kW).
    pub accelerator_kw: f64,
    /// Electricity price (USD per kWh).
    pub electricity_per_kwh: f64,
    /// Deployment lifetime `t_D` (years).
    pub lifetime_years: f64,
    /// Aggregate engineering effort `t_design` (engineer-years).
    pub engineer_years: f64,
    /// Fully-loaded cost per engineer-year `C_eng` (USD).
    pub engineer_cost_per_year: f64,
    /// Wafer mask NRE `C_mask` (USD).
    pub mask_cost: f64,
    /// IP licensing NRE `C_IP` (USD), e.g. the DRAM PHY.
    pub ip_cost: f64,
}

impl RoiModel {
    /// The paper's hypothetical datacenter scenario (§5.1 / §6.2.2).
    #[must_use]
    pub fn paper_default() -> Self {
        RoiModel {
            // DGX A100 320GB: $199,000 MSRP for 8 accelerators.
            accelerator_price: 199_000.0 / 8.0,
            // DGX A100 max system power 6.5 kW across 8 accelerators.
            accelerator_kw: 6.5 / 8.0,
            // US commercial average, May 2021 (EIA).
            electricity_per_kwh: 0.1084,
            lifetime_years: 3.0,
            // Average of Simba (12.5) and Tesla FSD (117) engineer-years.
            engineer_years: 65.0,
            // $240k median total compensation × 1.65 overhead.
            engineer_cost_per_year: 240_000.0 * 1.65,
            // Sub-10nm extrapolations (exponential scaling per ASIC Clouds),
            // calibrated to Table 4's break-even volumes.
            mask_cost: 12.0e6,
            ip_cost: 6.0e6,
        }
    }

    /// One-time engineering + manufacturing NRE (denominator of Eq. 2).
    #[must_use]
    pub fn nre(&self) -> f64 {
        self.engineer_years * self.engineer_cost_per_year + self.mask_cost + self.ip_cost
    }

    /// Lifetime TCO of one deployed baseline accelerator (capital plus
    /// `t_D` years of electricity).
    #[must_use]
    pub fn tco_per_accelerator(&self) -> f64 {
        let kwh_per_year = self.accelerator_kw * 24.0 * 365.0;
        self.accelerator_price + self.lifetime_years * kwh_per_year * self.electricity_per_kwh
    }

    /// Baseline fleet TCO for `n` accelerators (Eq. 1).
    #[must_use]
    pub fn tco_old(&self, n: f64) -> f64 {
        n * self.tco_per_accelerator()
    }

    /// ROI of replacing an `n`-accelerator baseline fleet with a design
    /// whose Perf/TCO is `s ×` the baseline (Eq. 2).
    ///
    /// Returns 0 for `s <= 1` (no savings).
    #[must_use]
    pub fn roi(&self, n: f64, s: f64) -> f64 {
        if s <= 1.0 {
            return 0.0;
        }
        self.tco_old(n) * (s - 1.0) / (self.nre() * s)
    }

    /// Deployment volume needed to reach `target_roi` at Perf/TCO gain `s`
    /// (Table 4's columns). Returns `None` when `s <= 1`.
    #[must_use]
    pub fn volume_for_roi(&self, s: f64, target_roi: f64) -> Option<f64> {
        if s <= 1.0 {
            return None;
        }
        Some(target_roi * self.nre() * s / ((s - 1.0) * self.tco_per_accelerator()))
    }

    /// Figure-6 curve: ROI at each volume for a given Perf/TCO gain.
    #[must_use]
    pub fn roi_curve(&self, s: f64, volumes: &[f64]) -> Vec<(f64, f64)> {
        volumes.iter().map(|&n| (n, self.roi(n, s))).collect()
    }

    /// ROI at deployment volume `n` for each Perf/TCO gain along a Pareto
    /// frontier, in frontier order — the economics overlay of the
    /// scenario-sweep engine's budget frontiers. `gains[i]` is the i-th
    /// frontier design's Perf/TCO (Perf/TDP proxy) relative to the
    /// baseline; gains at or below 1 yield 0 (no savings to amortize the
    /// NRE against).
    #[must_use]
    pub fn roi_along_frontier(&self, n: f64, gains: &[f64]) -> Vec<f64> {
        gains.iter().map(|&s| self.roi(n, s)).collect()
    }
}

impl Default for RoiModel {
    fn default() -> Self {
        RoiModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_nre() {
        let m = RoiModel::paper_default();
        // 65 × $396k = $25.74M engineering + $18M mask/IP.
        assert!((m.nre() - 43.74e6).abs() < 1e4, "{}", m.nre());
    }

    #[test]
    fn tco_per_accelerator_matches_hand_calculation() {
        let m = RoiModel::paper_default();
        let expected = 24_875.0 + 3.0 * 0.8125 * 8760.0 * 0.1084;
        assert!((m.tco_per_accelerator() - expected).abs() < 1.0);
    }

    /// Table 4: break-even (1× ROI) volumes per workload Perf/TCO.
    ///
    /// The Multi-Workload row of the paper (2,792 at S = 2.82) is internally
    /// inconsistent with Eq. 2 — the formula that fits the six workload rows
    /// to <0.3 % yields 2,494 for S = 2.82 (2,792 corresponds to S ≈ 2.4,
    /// the multi-workload Perf/TDP geomean from the abstract). We therefore
    /// check the six self-consistent rows; see EXPERIMENTS.md.
    #[test]
    fn table4_breakeven_volumes() {
        let m = RoiModel::paper_default();
        let cases = [
            (3.91, 2_164.0), // EfficientNet-B7
            (2.65, 2_588.0), // ResNet50
            (2.34, 2_810.0), // OCR-RPN
            (2.72, 2_548.0), // OCR-Recognizer
            (1.84, 3_534.0), // BERT-128
            (2.70, 2_558.0), // BERT-1024
        ];
        for (s, paper_volume) in cases {
            let v = m.volume_for_roi(s, 1.0).unwrap();
            let rel = (v - paper_volume).abs() / paper_volume;
            assert!(rel < 0.01, "S={s}: volume {v:.0} vs paper {paper_volume} ({rel:.3})");
        }
    }

    #[test]
    fn roi_scales_linearly_with_volume() {
        let m = RoiModel::paper_default();
        let r1 = m.roi(1_000.0, 2.0);
        let r2 = m.roi(2_000.0, 2.0);
        assert!((r2 / r1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn diminishing_returns_in_s() {
        // Figure 6's second takeaway: 8000 @ 1.5x beats 2000 @ 100x.
        let m = RoiModel::paper_default();
        assert!(m.roi(8_000.0, 1.5) > m.roi(2_000.0, 100.0));
    }

    #[test]
    fn s_below_one_is_unprofitable() {
        let m = RoiModel::paper_default();
        assert_eq!(m.roi(10_000.0, 1.0), 0.0);
        assert_eq!(m.volume_for_roi(0.9, 1.0), None);
    }

    #[test]
    fn roi_curve_shape() {
        let m = RoiModel::paper_default();
        let vols = [1_000.0, 5_000.0, 20_000.0];
        let curve = m.roi_curve(4.0, &vols);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].1 < curve[1].1 && curve[1].1 < curve[2].1);
        // Volume on the x axis passes through unchanged.
        assert_eq!(curve[2].0, 20_000.0);
    }

    #[test]
    fn roi_along_frontier_matches_pointwise_roi() {
        let m = RoiModel::paper_default();
        let gains = [0.8, 1.0, 1.5, 2.82, 3.91];
        let rois = m.roi_along_frontier(4_000.0, &gains);
        assert_eq!(rois.len(), gains.len());
        assert_eq!(rois[0], 0.0, "sub-baseline gain is unprofitable");
        assert_eq!(rois[1], 0.0, "break-even gain is unprofitable");
        for (i, &s) in gains.iter().enumerate() {
            assert_eq!(rois[i], m.roi(4_000.0, s));
        }
        // ROI grows monotonically along an improving frontier.
        assert!(rois[2] < rois[3] && rois[3] < rois[4]);
    }

    #[test]
    fn volume_then_roi_roundtrip() {
        let m = RoiModel::paper_default();
        for s in [1.5, 2.0, 4.0, 10.0] {
            for target in [1.0, 2.0, 8.0] {
                let v = m.volume_for_roi(s, target).unwrap();
                assert!((m.roi(v, s) - target).abs() < 1e-9);
            }
        }
    }
}
