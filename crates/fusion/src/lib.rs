//! # fast-fusion — the FAST fusion pass (§5.5, Figure 8)
//!
//! FAST fusion is a secondary pass over the XLA-partially-fused region graph:
//! it assigns intermediate **activation** tensors and pinnable **weight**
//! tensors from DRAM to leftover Global-Memory capacity so as to directly
//! minimize total execution time as modeled by the simulator — not an
//! indirect proxy like total memory accesses.
//!
//! The optimization problem is the paper's Figure-8 ILP verbatim:
//!
//! * binary `p^k_i` for `k ∈ {I, O, W}` decides whether layer `i`'s tensor of
//!   type `k` lives in Global Memory;
//! * `T_i ≥ T_i^min` and `T_i ≥ T_i^max − Σ_k t^k_i · p^k_i` linearize the
//!   per-layer time as tensors move on-chip;
//! * a Global-Memory capacity row per layer charges resident streaming
//!   buffers `B_i`, this layer's on-chip tensors, and every pinned weight;
//! * producer/consumer linkage plus the adjacency restriction: an input can
//!   only be read from Global Memory when its producer executed *immediately
//!   before* (activations have short lifetimes — multi-fanout regions benefit
//!   at most once).
//!
//! Solving follows the paper's SCIP-with-timeout contract: a greedy
//! benefit-per-byte warm start, then LP-based branch and bound when the
//! problem is small enough, falling back to the incumbent otherwise.
//!
//! ```
//! use fast_fusion::{fuse_workload, FusionOptions};
//! use fast_models::Workload;
//! use fast_sim::{simulate, SimOptions};
//!
//! let cfg = fast_arch::presets::fast_large();
//! let graph = Workload::EfficientNet(fast_models::EfficientNet::B0).build(8).unwrap();
//! let perf = simulate(&graph, &cfg, &SimOptions::default()).unwrap();
//! let fused = fuse_workload(&perf, &cfg, &FusionOptions::default());
//! // Fusion moves tensor traffic on-chip: never slower than pre-fusion,
//! // never faster than pure compute.
//! assert!(fused.total_seconds <= perf.prefusion_seconds * (1.0 + 1e-9));
//! assert!(fused.total_seconds >= perf.compute_seconds * (1.0 - 1e-9));
//! ```

use fast_arch::DatapathConfig;
use fast_ilp::{solve_milp, MilpStatus, Problem, Sense, SolveOptions, VarId};
use fast_sim::{RegionPerf, WorkloadPerf};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A collision-resistant fingerprint of the fusion inputs: everything
/// [`fuse_regions`] reads from the region statistics, canonically encoded
/// and hashed twice (independent FNV-1a streams) together with the encoded
/// length. Two identical fingerprints identify identical fusion problems
/// for all practical purposes (a collision needs two stat blocks agreeing
/// on both 64-bit digests *and* their length).
///
/// This is the `FuseKey` ingredient evaluation caches key Stage C on:
/// datapaths that differ only in mapper-invisible *and* fusion-invisible
/// ways (or distinct workloads with identical region statistics) share one
/// fusion solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatsFingerprint {
    /// FNV-1a over the canonical encoding (standard offset basis).
    pub hash_a: u64,
    /// FNV-1a over the same bytes from an independent seed.
    pub hash_b: u64,
    /// Length of the canonical encoding in bytes.
    pub len: u64,
}

impl serde::bin::Encode for StatsFingerprint {
    fn encode(&self, w: &mut serde::bin::Writer) {
        let StatsFingerprint { hash_a, hash_b, len } = *self;
        hash_a.encode(w);
        hash_b.encode(w);
        len.encode(w);
    }
}

impl serde::bin::Decode for StatsFingerprint {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(StatsFingerprint {
            hash_a: u64::decode(r)?,
            hash_b: u64::decode(r)?,
            len: u64::decode(r)?,
        })
    }
}

/// FNV-1a with a caller-chosen initial state (the second, independent
/// digest of [`StatsFingerprint`]).
fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fingerprints the inputs of [`fuse_regions`] (minus the Global-Memory
/// capacity and the options, which cache keys carry verbatim).
///
/// Every [`RegionPerf`] field the pass reads is encoded — floats as raw
/// bits — via an exhaustive destructure, so adding a field without
/// classifying it here is a compile error. Three fields are deliberately
/// *excluded* as identity/display-only: the region id and the name (node
/// names and graph ids never influence placements — only `primary_input`,
/// the positional linkage the ILP consumes, does) and the group tag.
#[must_use]
pub fn stats_fingerprint(regions: &[RegionPerf], compute_seconds: f64) -> StatsFingerprint {
    use serde::bin::Encode as _;
    let mut w = serde::bin::Writer::new();
    compute_seconds.encode(&mut w);
    (regions.len() as u64).encode(&mut w);
    for r in regions {
        let RegionPerf {
            region: _, // graph id: identity-only, never read by fusion
            name: _,   // display-only
            group: _,  // display-only
            compute_seconds,
            flops,
            in_bytes,
            primary_in_bytes,
            out_bytes,
            weight_bytes,
            weight_store_bytes,
            spill_bytes,
            t_min,
            t_max,
            t_in,
            t_fixed,
            t_out,
            t_weight,
            resident_buffer_bytes,
            primary_input,
            row_streamable,
        } = r;
        compute_seconds.encode(&mut w);
        flops.encode(&mut w);
        in_bytes.encode(&mut w);
        primary_in_bytes.encode(&mut w);
        out_bytes.encode(&mut w);
        weight_bytes.encode(&mut w);
        weight_store_bytes.encode(&mut w);
        spill_bytes.encode(&mut w);
        t_min.encode(&mut w);
        t_max.encode(&mut w);
        t_in.encode(&mut w);
        t_fixed.encode(&mut w);
        t_out.encode(&mut w);
        t_weight.encode(&mut w);
        resident_buffer_bytes.encode(&mut w);
        primary_input.encode(&mut w);
        row_streamable.encode(&mut w);
    }
    let bytes = w.into_bytes();
    StatsFingerprint {
        hash_a: serde::bin::fnv1a(&bytes),
        hash_b: fnv1a_seeded(0x8422_2325_CBF2_9CE4, &bytes),
        len: bytes.len() as u64,
    }
}

/// Per-region tensor placement decided by FAST fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Placement {
    /// Input activation read from Global Memory.
    pub input_gm: bool,
    /// Output activation written to Global Memory.
    pub output_gm: bool,
    /// Weights pinned in Global Memory across inferences.
    pub weight_gm: bool,
}

/// How the fusion ILP was solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FusionSolver {
    /// LP-based branch and bound proved optimality.
    ExactOptimal,
    /// Branch and bound hit a limit; best incumbent returned.
    ExactIncumbent,
    /// Problem exceeded the exact-solver size threshold; greedy incumbent.
    Heuristic,
    /// No Global Memory configured — fusion disabled, all tensors in DRAM.
    Disabled,
}

/// Options for the fusion pass.
///
/// `Eq`/`Hash` let evaluation caches key on the exact fusion configuration
/// (all fields are integral, so float-hashing caveats don't apply).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FusionOptions {
    /// Maximum binary variable count for the exact branch-and-bound path.
    pub exact_binary_limit: usize,
    /// Branch-and-bound node limit.
    pub max_nodes: usize,
    /// Branch-and-bound time limit (the paper uses 20 minutes of SCIP; we
    /// default far smaller since the search loop calls this per trial).
    pub time_limit: Duration,
    /// Maximum execution-order distance between a producer and the consumer
    /// reading its activation from Global Memory; capacity is charged on
    /// every intervening layer row. `1` is the paper's strict Figure-8
    /// adjacency ("executes immediately after"); the default of 8 implements
    /// the generalization the paper defers to future work — without it the
    /// squeeze-and-excite skip inside every MBConv block re-reads its large
    /// tensor from DRAM and fusion cannot reach the reported stall reduction.
    pub residency_window: usize,
    /// Completely disables the pass (ablation rows "Without FAST Fusion").
    pub disabled: bool,
}

impl Default for FusionOptions {
    fn default() -> Self {
        FusionOptions {
            exact_binary_limit: 160,
            max_nodes: 600,
            time_limit: Duration::from_secs(5),
            residency_window: 8,
            disabled: false,
        }
    }
}

impl FusionOptions {
    /// Heuristic-only options (used inside hot search loops).
    #[must_use]
    pub fn heuristic_only() -> Self {
        FusionOptions { exact_binary_limit: 0, ..FusionOptions::default() }
    }

    /// The paper's strict Figure-8 semantics: producer must execute
    /// immediately before the consumer.
    #[must_use]
    pub fn strict_adjacency() -> Self {
        FusionOptions { residency_window: 1, ..FusionOptions::default() }
    }

    /// A disabled pass: every tensor streams from DRAM (ablation baseline).
    #[must_use]
    pub fn disabled() -> Self {
        FusionOptions { disabled: true, ..FusionOptions::default() }
    }
}

// Binary-codec impls (part of the evaluation-cache snapshot key). The
// vendored serde derives generate no code, so the layout is spelled out
// here; the time limit is persisted as whole nanoseconds.
impl serde::bin::Encode for FusionOptions {
    fn encode(&self, w: &mut serde::bin::Writer) {
        let FusionOptions { exact_binary_limit, max_nodes, time_limit, residency_window, disabled } =
            self;
        exact_binary_limit.encode(w);
        max_nodes.encode(w);
        u64::try_from(time_limit.as_nanos()).unwrap_or(u64::MAX).encode(w);
        residency_window.encode(w);
        disabled.encode(w);
    }
}

impl serde::bin::Decode for FusionOptions {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(FusionOptions {
            exact_binary_limit: usize::decode(r)?,
            max_nodes: usize::decode(r)?,
            time_limit: Duration::from_nanos(u64::decode(r)?),
            residency_window: usize::decode(r)?,
            disabled: bool::decode(r)?,
        })
    }
}

/// Result of the fusion pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusionResult {
    /// Placement per compute region, in execution order.
    pub placements: Vec<Placement>,
    /// Post-fusion per-region execution times (seconds): the ILP's `T_i`
    /// (per-region `max(compute, DRAM)` — the quantity Figure 8 minimizes).
    pub region_seconds: Vec<f64>,
    /// Post-fusion step time with cross-region DMA overlap:
    /// `max(Σ compute, Σ post-fusion DRAM)`.
    pub total_seconds: f64,
    /// Σ of the per-region `T_i` (the ILP objective value).
    pub sum_region_seconds: f64,
    /// Bytes of weights pinned across inferences.
    pub pinned_weight_bytes: u64,
    /// Peak Global-Memory usage across layer rows.
    pub peak_gm_bytes: u64,
    /// DRAM traffic per step after fusion.
    pub dram_bytes: u64,
    /// Solver path taken.
    pub solver: FusionSolver,
}

impl FusionResult {
    /// Post-fusion operational intensity.
    #[must_use]
    pub fn op_intensity(&self, total_flops: u64) -> f64 {
        if self.dram_bytes == 0 {
            f64::INFINITY
        } else {
            total_flops as f64 / self.dram_bytes as f64
        }
    }
}

/// Counters describing the exact-solver work behind fusion solves and how
/// much of it the cross-point warm-start tier absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Exact solves that found a usable cross-point incumbent.
    pub warm_hits: u64,
    /// Exact solves with no cross-point incumbent available.
    pub warm_misses: u64,
    /// Branch-and-bound nodes spent in warm-seeded solves.
    pub warm_nodes: u64,
    /// Branch-and-bound nodes spent in cold (greedy-seeded) solves.
    pub cold_nodes: u64,
    /// Total simplex pivots across all exact solves.
    pub lp_pivots: u64,
}

impl SolverStats {
    /// Warm-start hit rate over the exact solves (0 when none ran).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }

    /// Counter deltas accumulated after `before` was sampled.
    #[must_use]
    pub fn since(&self, before: &SolverStats) -> SolverStats {
        SolverStats {
            warm_hits: self.warm_hits.saturating_sub(before.warm_hits),
            warm_misses: self.warm_misses.saturating_sub(before.warm_misses),
            warm_nodes: self.warm_nodes.saturating_sub(before.warm_nodes),
            cold_nodes: self.cold_nodes.saturating_sub(before.cold_nodes),
            lp_pivots: self.lp_pivots.saturating_sub(before.lp_pivots),
        }
    }
}

impl serde::bin::Encode for SolverStats {
    fn encode(&self, w: &mut serde::bin::Writer) {
        let SolverStats { warm_hits, warm_misses, warm_nodes, cold_nodes, lp_pivots } = *self;
        warm_hits.encode(w);
        warm_misses.encode(w);
        warm_nodes.encode(w);
        cold_nodes.encode(w);
        lp_pivots.encode(w);
    }
}

impl serde::bin::Decode for SolverStats {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(SolverStats {
            warm_hits: u64::decode(r)?,
            warm_misses: u64::decode(r)?,
            warm_nodes: u64::decode(r)?,
            cold_nodes: u64::decode(r)?,
            lp_pivots: u64::decode(r)?,
        })
    }
}

/// Datapath-free fingerprint of a workload's fusion *structure*: region
/// count, producer linkage, row-streamability, the eligibility pattern, and
/// the residency window — exactly what determines the ILP's variable layout
/// — and none of the `T_i`/byte magnitudes that vary across datapath search
/// points. Neighboring points that share a key share a 0/1 incumbent shape,
/// which is what makes cross-point warm-starting possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructureKey {
    /// FNV-1a over the canonical structure encoding.
    pub hash_a: u64,
    /// Independent second digest of the same bytes.
    pub hash_b: u64,
    /// Length of the canonical encoding in bytes.
    pub len: u64,
}

impl serde::bin::Encode for StructureKey {
    fn encode(&self, w: &mut serde::bin::Writer) {
        let StructureKey { hash_a, hash_b, len } = *self;
        hash_a.encode(w);
        hash_b.encode(w);
        len.encode(w);
    }
}

impl serde::bin::Decode for StructureKey {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(StructureKey { hash_a: u64::decode(r)?, hash_b: u64::decode(r)?, len: u64::decode(r)? })
    }
}

// Placement rides inside warm-tier snapshot values.
impl serde::bin::Encode for Placement {
    fn encode(&self, w: &mut serde::bin::Writer) {
        let Placement { input_gm, output_gm, weight_gm } = *self;
        input_gm.encode(w);
        output_gm.encode(w);
        weight_gm.encode(w);
    }
}

impl serde::bin::Decode for Placement {
    fn decode(r: &mut serde::bin::Reader<'_>) -> Result<Self, serde::bin::DecodeError> {
        Ok(Placement {
            input_gm: bool::decode(r)?,
            output_gm: bool::decode(r)?,
            weight_gm: bool::decode(r)?,
        })
    }
}

/// Fingerprints the fusion structure of `regions` under `opts` (see
/// [`StructureKey`]).
#[must_use]
pub fn structure_key(regions: &[RegionPerf], opts: &FusionOptions) -> StructureKey {
    let elig = eligibility(regions, opts.residency_window.max(1));
    structure_key_from_elig(regions, opts, &elig)
}

/// [`structure_key`] over a precomputed eligibility vector (the solver
/// already has one in hand).
fn structure_key_from_elig(
    regions: &[RegionPerf],
    opts: &FusionOptions,
    elig: &[Eligibility],
) -> StructureKey {
    use serde::bin::Encode as _;
    let window = opts.residency_window.max(1);
    let mut w = serde::bin::Writer::new();
    (regions.len() as u64).encode(&mut w);
    (window as u64).encode(&mut w);
    for (r, e) in regions.iter().zip(elig) {
        r.primary_input.encode(&mut w);
        r.row_streamable.encode(&mut w);
        e.input.encode(&mut w);
        e.output.encode(&mut w);
        e.weight.encode(&mut w);
    }
    let bytes = w.into_bytes();
    StructureKey {
        hash_a: serde::bin::fnv1a(&bytes),
        hash_b: fnv1a_seeded(0x8422_2325_CBF2_9CE4, &bytes),
        len: bytes.len() as u64,
    }
}

/// Cross-point warm-start tier: remembers, per [`StructureKey`], the 0/1
/// fusion incumbent last proven good at a neighboring search point, plus
/// counters describing how much solver work the reuse saved.
///
/// The tier is strictly a *performance hint* — fusion results are
/// bit-identical with or without it (see [`fuse_regions_warm`]) — so it can
/// be persisted, shared, dropped, or merged freely without affecting any
/// study output.
#[derive(Debug, Default)]
pub struct WarmStartTier {
    entries: std::sync::Mutex<std::collections::HashMap<StructureKey, Vec<Placement>>>,
    warm_hits: std::sync::atomic::AtomicU64,
    warm_misses: std::sync::atomic::AtomicU64,
    warm_nodes: std::sync::atomic::AtomicU64,
    cold_nodes: std::sync::atomic::AtomicU64,
    lp_pivots: std::sync::atomic::AtomicU64,
}

impl WarmStartTier {
    /// Creates an empty tier.
    #[must_use]
    pub fn new() -> Self {
        WarmStartTier::default()
    }

    /// Incumbent recorded for `key`, if any. Counts a warm hit or miss.
    fn lookup(&self, key: &StructureKey) -> Option<Vec<Placement>> {
        use std::sync::atomic::Ordering;
        let got = self.entries.lock().expect("warm tier poisoned").get(key).cloned();
        if got.is_some() {
            self.warm_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.warm_misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Records the incumbent decided for `key`. First write wins (matching
    /// the evaluation tiers' merge semantics).
    fn record(&self, key: StructureKey, placements: &[Placement]) {
        self.entries
            .lock()
            .expect("warm tier poisoned")
            .entry(key)
            .or_insert_with(|| placements.to_vec());
    }

    /// Accumulates one exact solve's work into the counters.
    fn note_solve(&self, warm: bool, nodes: u64, pivots: u64) {
        use std::sync::atomic::Ordering;
        if warm {
            self.warm_nodes.fetch_add(nodes, Ordering::Relaxed);
        } else {
            self.cold_nodes.fetch_add(nodes, Ordering::Relaxed);
        }
        self.lp_pivots.fetch_add(pivots, Ordering::Relaxed);
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        use std::sync::atomic::Ordering;
        SolverStats {
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            warm_misses: self.warm_misses.load(Ordering::Relaxed),
            warm_nodes: self.warm_nodes.load(Ordering::Relaxed),
            cold_nodes: self.cold_nodes.load(Ordering::Relaxed),
            lp_pivots: self.lp_pivots.load(Ordering::Relaxed),
        }
    }

    /// Number of remembered incumbents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("warm tier poisoned").len()
    }

    /// Whether the tier holds no incumbents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries, for persistence.
    #[must_use]
    pub fn export(&self) -> Vec<(StructureKey, Vec<Placement>)> {
        self.entries
            .lock()
            .expect("warm tier poisoned")
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Merges persisted entries; existing entries win.
    pub fn merge(&self, entries: Vec<(StructureKey, Vec<Placement>)>) {
        let mut map = self.entries.lock().expect("warm tier poisoned");
        for (k, v) in entries {
            map.entry(k).or_insert(v);
        }
    }
}

/// Eligibility of each region's three placement decisions, after pruning.
struct Eligibility {
    input: bool,
    output: bool,
    weight: bool,
}

/// Computes which placements can possibly help (the variable pruning pass).
fn eligibility(regions: &[RegionPerf], window: usize) -> Vec<Eligibility> {
    let n = regions.len();
    let mut elig: Vec<Eligibility> =
        (0..n).map(|_| Eligibility { input: false, output: false, weight: false }).collect();
    for (i, r) in regions.iter().enumerate() {
        // Input from GM only if the producer ran within the residency window.
        if let Some(j) = r.primary_input {
            if j < i && i - j <= window && r.primary_in_bytes > 0 {
                elig[i].input = true;
            }
        }
        if r.weight_store_bytes > 0 && r.t_weight > 0.0 {
            elig[i].weight = true;
        }
    }
    // Output to GM only if some in-window successor consumes it.
    for i in 0..n {
        let consumer_ok = (i + 1..n.min(i + window + 1))
            .any(|k| elig[k].input && regions[k].primary_input == Some(i));
        elig[i].output = consumer_ok && regions[i].out_bytes > 0;
    }
    // Inputs whose producer cannot store: disable.
    for i in 0..n {
        if elig[i].input {
            let j = regions[i].primary_input.expect("checked above");
            if !elig[j].output {
                elig[i].input = false;
            }
        }
    }
    elig
}

/// Global-Memory bytes a fused input tensor occupies: whole tensors in
/// general, but adjacent row-streamable chains (attention einsum → softmax →
/// einsum) are inter-op blocked and only hold a streaming tile (§5.5).
fn fused_input_charge(regions: &[RegionPerf], i: usize, gm_bytes: u64) -> u64 {
    let r = &regions[i];
    let blockable = r.row_streamable
        && r.primary_input.is_some_and(|j| j + 1 == i && regions[j].row_streamable);
    if blockable {
        r.primary_in_bytes.min(gm_bytes / 4)
    } else {
        r.primary_in_bytes
    }
}

/// Per-layer Global-Memory usage rows for a placement vector: streaming
/// buffers + pinned weights + every fused activation resident across its
/// producer→consumer span.
fn capacity_rows(regions: &[RegionPerf], gm_bytes: u64, placements: &[Placement]) -> Vec<u64> {
    let pinned: u64 = regions
        .iter()
        .zip(placements)
        .filter(|(_, p)| p.weight_gm)
        .map(|(r, _)| r.weight_store_bytes)
        .sum();
    let mut rows: Vec<u64> = regions.iter().map(|r| r.resident_buffer_bytes + pinned).collect();
    for (i, (r, p)) in regions.iter().zip(placements).enumerate() {
        if p.input_gm {
            if let Some(j) = r.primary_input {
                let charge = fused_input_charge(regions, i, gm_bytes);
                for row in rows.iter_mut().take(i + 1).skip(j) {
                    *row += charge;
                }
            }
        }
    }
    rows
}

/// Evaluation of a placement vector.
struct Evaluation {
    times: Vec<f64>,
    sum_times: f64,
    overlapped_total: f64,
    pinned: u64,
    peak: u64,
    dram: u64,
}

fn evaluate(
    regions: &[RegionPerf],
    compute_seconds: f64,
    gm_bytes: u64,
    placements: &[Placement],
) -> Evaluation {
    let pinned: u64 = regions
        .iter()
        .zip(placements)
        .filter(|(_, p)| p.weight_gm)
        .map(|(r, _)| r.weight_store_bytes)
        .sum();
    let mut times = Vec::with_capacity(regions.len());
    let mut sum_times = 0.0;
    let mut dram = 0u64;
    let mut dram_seconds = 0.0;
    for (r, p) in regions.iter().zip(placements) {
        let t = r.time_with_placements(p.input_gm, p.output_gm, p.weight_gm);
        times.push(t);
        sum_times += t;
        dram += r.dram_bytes_with_placements(p.input_gm, p.output_gm, p.weight_gm);
        let mut d = r.t_fixed;
        if !p.input_gm {
            d += r.t_in;
        }
        if !p.output_gm {
            d += r.t_out;
        }
        if !p.weight_gm {
            d += r.t_weight;
        }
        dram_seconds += d;
    }
    let peak = capacity_rows(regions, gm_bytes, placements).into_iter().max().unwrap_or(0);
    Evaluation {
        times,
        sum_times,
        overlapped_total: compute_seconds.max(dram_seconds),
        pinned,
        peak,
        dram,
    }
}

/// Checks that `placements` respect the per-layer capacity rows.
fn feasible(regions: &[RegionPerf], gm_bytes: u64, placements: &[Placement]) -> bool {
    capacity_rows(regions, gm_bytes, placements).into_iter().all(|row| row <= gm_bytes)
}

/// A greedy candidate in the lazy max-heap: `density` is time saved per
/// Global-Memory byte; `kind` 0 is "pin weights of region `i`", kind 1 is
/// "fuse the primary edge into consumer `i`". Ordering reproduces the
/// historical full-scan argmax exactly: highest density first, ties to the
/// smaller region index, then to the weight move (the scan evaluated
/// candidates in `(i, weight-then-fuse)` order and replaced only on a
/// strict improvement).
#[derive(Debug, PartialEq)]
struct GreedyCand {
    density: f64,
    i: usize,
    kind: u8,
    version: u32,
}

impl Eq for GreedyCand {}

impl PartialOrd for GreedyCand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GreedyCand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.density
            .total_cmp(&other.density)
            .then_with(|| other.i.cmp(&self.i))
            .then_with(|| other.kind.cmp(&self.kind))
    }
}

/// Greedy warm start: repeatedly take the feasible move with the best
/// time-saved per Global-Memory byte.
///
/// Moves are (a) pin one region's weights, (b) fuse one adjacent
/// producer→consumer activation edge. Per-move deltas are computed locally
/// (only the touched regions change time; pinning shrinks every row's
/// slack), and candidates wait in a lazy max-heap: a densities entry is
/// recomputed only when an accepted move touches one of the regions it
/// reads, and feasibility — which is *monotone* (pinned bytes and row
/// residency only grow, so an infeasible move can never become feasible) —
/// is checked at pop time. This makes the pass `O(moves · log n)`-ish
/// instead of a full `O(n)` rescan per accepted move, while selecting the
/// exact same move sequence as the scan did.
fn greedy(regions: &[RegionPerf], gm_bytes: u64, elig: &[Eligibility]) -> Vec<Placement> {
    use std::collections::BinaryHeap;
    let n = regions.len();
    let mut placements = vec![Placement::default(); n];
    let mut pinned: u64 = 0;
    // Row usage excluding the global pinned term, and its running maximum
    // (also monotone: fusing only adds residency).
    let mut row_local: Vec<u64> = regions.iter().map(|r| r.resident_buffer_bytes).collect();
    let mut local_peak = row_local.iter().copied().max().unwrap_or(0);
    // Fuse candidates reading region `j` as their producer.
    let mut consumers_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in elig.iter().enumerate() {
        if e.input {
            consumers_of[regions[i].primary_input.expect("eligible input has producer")].push(i);
        }
    }

    let time_of = |placements: &[Placement], i: usize| {
        regions[i].time_with_placements(
            placements[i].input_gm,
            placements[i].output_gm,
            placements[i].weight_gm,
        )
    };
    // Candidate densities under the *current* placements; `None` when the
    // move is spent, ineligible, or saves nothing (the scan's
    // `saved > 1e-15` gate). Feasibility is deliberately not part of this —
    // it is checked against the monotone capacity state at pop time.
    let weight_density = |placements: &[Placement], i: usize| -> Option<f64> {
        if !elig[i].weight || placements[i].weight_gm {
            return None;
        }
        let r = &regions[i];
        let before = time_of(placements, i);
        let c = placements[i];
        let after = r.time_with_placements(c.input_gm, c.output_gm, true);
        let saved = before - after;
        (saved > 1e-15).then(|| saved / r.weight_store_bytes.max(1) as f64)
    };
    let fuse_density = |placements: &[Placement], i: usize| -> Option<f64> {
        if !elig[i].input || placements[i].input_gm {
            return None;
        }
        let j = regions[i].primary_input.expect("eligible input has producer");
        let bytes = fused_input_charge(regions, i, gm_bytes);
        let mut before = time_of(placements, i);
        let mut cj = placements[j];
        if !cj.output_gm {
            before += time_of(placements, j);
        }
        let ci = placements[i];
        let mut after = regions[i].time_with_placements(true, ci.output_gm, ci.weight_gm);
        if !cj.output_gm {
            cj.output_gm = true;
            after += regions[j].time_with_placements(cj.input_gm, cj.output_gm, cj.weight_gm);
        }
        let saved = before - after;
        (saved > 1e-15).then(|| saved / bytes.max(1) as f64)
    };

    // `versions[2i + kind]` invalidates stale heap entries; `push` snapshots
    // the current version with a freshly computed density.
    let mut versions = vec![0u32; 2 * n];
    let mut heap: BinaryHeap<GreedyCand> = BinaryHeap::with_capacity(2 * n);
    let push = |heap: &mut BinaryHeap<GreedyCand>,
                versions: &[u32],
                placements: &[Placement],
                i: usize,
                kind: u8| {
        let density =
            if kind == 0 { weight_density(placements, i) } else { fuse_density(placements, i) };
        if let Some(density) = density {
            heap.push(GreedyCand { density, i, kind, version: versions[2 * i + kind as usize] });
        }
    };
    for i in 0..n {
        push(&mut heap, &versions, &placements, i, 0);
        push(&mut heap, &versions, &placements, i, 1);
    }

    while let Some(cand) = heap.pop() {
        let GreedyCand { i, kind, version, .. } = cand;
        if version != versions[2 * i + kind as usize] {
            continue; // stale: a fresher entry (or none) superseded it
        }
        if kind == 0 {
            // Pinning must fit under every row (it is globally resident).
            let w = regions[i].weight_store_bytes;
            if pinned + w + local_peak > gm_bytes {
                continue; // monotone: can never fit later either
            }
            placements[i].weight_gm = true;
            pinned += w;
        } else {
            let j = regions[i].primary_input.expect("checked");
            let bytes = fused_input_charge(regions, i, gm_bytes);
            if !(j..=i).all(|k| row_local[k] + bytes + pinned <= gm_bytes) {
                continue; // monotone: rows and pinned bytes only grow
            }
            placements[i].input_gm = true;
            placements[j].output_gm = true;
            for row in row_local.iter_mut().take(i + 1).skip(j) {
                *row += bytes;
                local_peak = local_peak.max(*row);
            }
        }
        // Re-key every candidate whose density reads a changed region: its
        // own moves, and the fuse moves of its consumers. (Feasibility
        // shifts from `pinned`/`row_local` growth need no re-keying — pops
        // recheck them against the live state.)
        let bump_region = |heap: &mut BinaryHeap<GreedyCand>,
                           versions: &mut Vec<u32>,
                           placements: &[Placement],
                           r: usize| {
            for (target, k) in consumers_of[r].iter().map(|&c| (c, 1u8)).chain([(r, 0u8), (r, 1u8)])
            {
                versions[2 * target + k as usize] += 1;
                push(heap, versions, placements, target, k);
            }
        };
        bump_region(&mut heap, &mut versions, &placements, i);
        if kind == 1 {
            let j = regions[i].primary_input.expect("checked");
            bump_region(&mut heap, &mut versions, &placements, j);
        }
    }
    placements
}

/// Variable handles of the Figure-8 ILP.
struct IlpVars {
    p_in: Vec<Option<VarId>>,
    p_out: Vec<Option<VarId>>,
    p_w: Vec<Option<VarId>>,
    t: Vec<VarId>,
}

fn build_ilp(
    regions: &[RegionPerf],
    label: &str,
    gm_bytes: u64,
    elig: &[Eligibility],
) -> (Problem, IlpVars) {
    let n = regions.len();
    let mut prob = Problem::new(format!("fast-fusion:{label}"));
    let mut vars = IlpVars {
        p_in: vec![None; n],
        p_out: vec![None; n],
        p_w: vec![None; n],
        t: Vec::with_capacity(n),
    };

    for (i, e) in elig.iter().enumerate() {
        if e.input {
            vars.p_in[i] = Some(prob.add_binary(format!("pI_{i}"), 0.0));
        }
        if e.output {
            vars.p_out[i] = Some(prob.add_binary(format!("pO_{i}"), 0.0));
        }
        if e.weight {
            vars.p_w[i] = Some(prob.add_binary(format!("pW_{i}"), 0.0));
        }
    }
    // Time variables and rows: T_i >= T_min via bound, plus the Figure-8 row
    // T_i + t^I pI + t^O pO + t^W pW >= T_max.
    for (i, r) in regions.iter().enumerate() {
        let t_min = r.time_with_placements(true, true, true);
        let t = prob.add_continuous(format!("T_{i}"), t_min, f64::INFINITY, 1.0);
        vars.t.push(t);
        let mut terms = vec![(t, 1.0)];
        if let Some(v) = vars.p_in[i] {
            terms.push((v, r.t_in));
        }
        if let Some(v) = vars.p_out[i] {
            terms.push((v, r.t_out));
        }
        if let Some(v) = vars.p_w[i] {
            terms.push((v, r.t_weight));
        }
        prob.add_constraint(format!("time_{i}"), terms, Sense::Ge, r.t_max);
    }
    // Capacity row per layer k: B_k + Σ resident activations + Σ_j W_j pW_j
    // <= C. A fused activation read by layer i from producer j is resident on
    // rows j..=i.
    for (k, rk) in regions.iter().enumerate() {
        let mut terms = Vec::new();
        for (i, r) in regions.iter().enumerate() {
            if let Some(v) = vars.p_in[i] {
                let j = r.primary_input.expect("eligible input has producer");
                if j <= k && k <= i {
                    terms.push((v, fused_input_charge(regions, i, gm_bytes) as f64));
                }
            }
        }
        for rj in regions.iter().zip(&vars.p_w) {
            if let (r, Some(v)) = rj {
                terms.push((*v, r.weight_store_bytes as f64));
            }
        }
        if terms.is_empty() {
            continue;
        }
        prob.add_constraint(
            format!("cap_{k}"),
            terms,
            Sense::Le,
            gm_bytes as f64 - rk.resident_buffer_bytes as f64,
        );
    }
    // Linkage: consumer reads from GM only if producer wrote it, and an
    // output is only stored if its consumer reads it.
    for i in 0..n {
        if let Some(pi) = vars.p_in[i] {
            let j = regions[i].primary_input.expect("eligible input has producer");
            if let Some(po) = vars.p_out[j] {
                prob.add_constraint(
                    format!("link_{j}_{i}"),
                    vec![(po, 1.0), (pi, -1.0)],
                    Sense::Ge,
                    0.0,
                );
            }
        }
        if let Some(po) = vars.p_out[i] {
            // Output useful only if some eligible consumer reads it from GM.
            let readers: Vec<(VarId, f64)> = (i + 1..n)
                .filter(|&k| regions[k].primary_input == Some(i))
                .filter_map(|k| vars.p_in[k].map(|v| (v, 1.0)))
                .collect();
            if !readers.is_empty() {
                let mut terms = readers;
                terms.push((po, -1.0));
                prob.add_constraint(format!("useful_{i}"), terms, Sense::Ge, 0.0);
            }
        }
    }
    (prob, vars)
}

/// Runs FAST fusion on a simulated workload.
///
/// Thin wrapper over [`fuse_regions`] — the keyed, cacheable entry point
/// that takes exactly the inputs the pass reads (region statistics,
/// aggregate compute floor, Global-Memory capacity).
#[must_use]
pub fn fuse_workload(
    perf: &WorkloadPerf,
    cfg: &DatapathConfig,
    opts: &FusionOptions,
) -> FusionResult {
    fuse_regions(
        &perf.regions,
        perf.compute_seconds,
        cfg.global_memory_bytes(),
        opts,
        &perf.workload,
    )
}

/// Runs FAST fusion on raw region statistics — Stage C of the staged
/// evaluation pipeline.
///
/// This is a pure function of `(regions, compute_seconds, gm_bytes, opts)`
/// (given a deterministic solver configuration; see
/// [`FusionOptions::time_limit`]), which is what makes its results
/// cacheable under a [`stats_fingerprint`]-based key: sweeping fusion
/// options, objectives or budgets re-solves the ILP at most, and never
/// re-runs the mapper. `label` names the ILP problem for logs and has no
/// effect on the solution.
#[must_use]
pub fn fuse_regions(
    regions: &[RegionPerf],
    compute_seconds: f64,
    gm_bytes: u64,
    opts: &FusionOptions,
    label: &str,
) -> FusionResult {
    fuse_regions_warm(regions, compute_seconds, gm_bytes, opts, label, None)
}

/// [`fuse_regions`] with an optional cross-point [`WarmStartTier`].
///
/// Results are **bit-identical** to the tier-less path. The tier only
/// supplies a better *incumbent seed* to the branch-and-bound; when the
/// warm-seeded solve proves the optimum lies inside the cold solver's
/// pruning band around the greedy objective, the cold answer is — by the
/// solver's own cutoff rule — the greedy vector, which we return without
/// re-running the cold solve. In every other case (no tier, tier miss,
/// unusable incumbent, optimum strictly better than greedy, budget hit) the
/// exact cold solve runs and its answer is used. The only observable
/// difference is the [`FusionSolver`] tag, which can report `ExactOptimal`
/// where the budget-starved cold solve would have said `ExactIncumbent` —
/// the placements and all derived numbers are the same.
#[must_use]
pub fn fuse_regions_warm(
    regions: &[RegionPerf],
    compute_seconds: f64,
    gm_bytes: u64,
    opts: &FusionOptions,
    label: &str,
    tier: Option<&WarmStartTier>,
) -> FusionResult {
    let n = regions.len();
    if opts.disabled || gm_bytes == 0 || n == 0 {
        let placements = vec![Placement::default(); n];
        let ev = evaluate(regions, compute_seconds, gm_bytes, &placements);
        return FusionResult {
            placements,
            region_seconds: ev.times,
            total_seconds: ev.overlapped_total,
            sum_region_seconds: ev.sum_times,
            pinned_weight_bytes: ev.pinned,
            peak_gm_bytes: ev.peak,
            dram_bytes: ev.dram,
            solver: FusionSolver::Disabled,
        };
    }

    let elig = eligibility(regions, opts.residency_window.max(1));
    let warm = greedy(regions, gm_bytes, &elig);
    let n_binaries: usize = elig
        .iter()
        .map(|e| usize::from(e.input) + usize::from(e.output) + usize::from(e.weight))
        .sum();

    let (placements, solver) = if n_binaries > 0 && n_binaries <= opts.exact_binary_limit {
        solve_exact(regions, label, gm_bytes, opts, &elig, &warm, tier)
    } else {
        (warm, FusionSolver::Heuristic)
    };

    let ev = evaluate(regions, compute_seconds, gm_bytes, &placements);
    FusionResult {
        placements,
        region_seconds: ev.times,
        total_seconds: ev.overlapped_total,
        sum_region_seconds: ev.sum_times,
        pinned_weight_bytes: ev.pinned,
        peak_gm_bytes: ev.peak,
        dram_bytes: ev.dram,
        solver,
    }
}

/// Exact branch of the fusion solve: builds the Figure-8 ILP, seeds it with
/// the best available incumbent (cross-point from `tier` when strictly
/// better than greedy, greedy otherwise), and decodes the answer. See
/// [`fuse_regions_warm`] for the bit-identity argument.
fn solve_exact(
    regions: &[RegionPerf],
    label: &str,
    gm_bytes: u64,
    opts: &FusionOptions,
    elig: &[Eligibility],
    greedy_warm: &[Placement],
    tier: Option<&WarmStartTier>,
) -> (Vec<Placement>, FusionSolver) {
    let n = regions.len();
    let (prob, vars) = build_ilp(regions, label, gm_bytes, elig);

    let ws_of = |placements: &[Placement]| -> Vec<f64> {
        let mut ws = vec![0.0; prob.num_vars()];
        for (i, p) in placements.iter().enumerate() {
            if let Some(v) = vars.p_in[i] {
                ws[v.index()] = f64::from(u8::from(p.input_gm));
            }
            if let Some(v) = vars.p_out[i] {
                ws[v.index()] = f64::from(u8::from(p.output_gm));
            }
            if let Some(v) = vars.p_w[i] {
                ws[v.index()] = f64::from(u8::from(p.weight_gm));
            }
        }
        for (i, r) in regions.iter().enumerate() {
            ws[vars.t[i].index()] = r.time_with_placements(
                placements[i].input_gm,
                placements[i].output_gm,
                placements[i].weight_gm,
            );
        }
        ws
    };
    let solve_opts = |seed: Vec<f64>| SolveOptions {
        max_nodes: opts.max_nodes,
        // Fusion opts in to the wall-clock escape hatch: this mirrors the
        // paper's SCIP-with-timeout contract (§6.1). The deterministic node
        // budget above is the primary limit.
        time_limit: Some(opts.time_limit),
        gap_tol: 1e-6,
        warm_start: Some(seed),
    };
    let decode = |values: &[f64]| -> Vec<Placement> {
        let mut placements = vec![Placement::default(); n];
        for (i, p) in placements.iter_mut().enumerate() {
            if let Some(v) = vars.p_in[i] {
                p.input_gm = values[v.index()] > 0.5;
            }
            if let Some(v) = vars.p_out[i] {
                p.output_gm = values[v.index()] > 0.5;
            }
            if let Some(v) = vars.p_w[i] {
                p.weight_gm = values[v.index()] > 0.5;
            }
        }
        placements
    };

    let greedy_ws = ws_of(greedy_warm);
    let greedy_obj = prob.objective_value(&greedy_ws);
    // The solver prunes every node whose bound clears this line; a cold
    // solve seeded with the greedy incumbent therefore returns the greedy
    // vector itself whenever the true optimum is at or above it.
    let greedy_cutoff = greedy_obj - 1e-6 * greedy_obj.abs().max(1.0);

    // Cross-point incumbent: usable only when it is feasible for *this*
    // point's ILP and strictly better than the greedy seed (otherwise it
    // adds nothing the cold solve doesn't already have).
    let key = tier.map(|_| structure_key_from_elig(regions, opts, elig));
    let cross: Option<Vec<f64>> = match (tier, key) {
        (Some(t), Some(k)) => t
            .lookup(&k)
            .filter(|p| p.len() == n)
            .map(|p| ws_of(&p))
            .filter(|ws| prob.is_feasible(ws, 1e-6) && prob.objective_value(ws) < greedy_cutoff),
        _ => None,
    };

    let mut decided: Option<(Vec<Placement>, FusionSolver)> = None;
    if let (Some(t), Some(ws)) = (tier, cross) {
        let sol = solve_milp(&prob, &solve_opts(ws));
        t.note_solve(true, sol.nodes_explored as u64, sol.lp_pivots);
        // Bit-identity gate: only trust the warm solve when it *proved* the
        // optimum and the optimum is at or above the greedy cutoff — the
        // regime where the cold answer is the greedy vector by the cutoff
        // rule. Anything else (optimum beats greedy, budget hit) falls
        // through to the cold solve so the answer comes from the exact same
        // computation the tier-less path runs.
        if sol.status == MilpStatus::Optimal && sol.objective >= greedy_cutoff {
            decided = Some((greedy_warm.to_vec(), FusionSolver::ExactOptimal));
        }
    }

    let (placements, solver) = decided.unwrap_or_else(|| {
        let sol = solve_milp(&prob, &solve_opts(greedy_ws));
        if let Some(t) = tier {
            t.note_solve(false, sol.nodes_explored as u64, sol.lp_pivots);
        }
        match sol.status {
            MilpStatus::Optimal | MilpStatus::Incumbent => {
                let placements = decode(&sol.values);
                let status = if sol.status == MilpStatus::Optimal {
                    FusionSolver::ExactOptimal
                } else {
                    FusionSolver::ExactIncumbent
                };
                // Guard against solver tolerance artifacts.
                if feasible(regions, gm_bytes, &placements) {
                    (placements, status)
                } else {
                    (greedy_warm.to_vec(), FusionSolver::Heuristic)
                }
            }
            _ => (greedy_warm.to_vec(), FusionSolver::Heuristic),
        }
    });

    if let (Some(t), Some(k)) = (tier, key) {
        t.record(k, &placements);
    }
    (placements, solver)
}

/// Builds the Figure-8 ILP for a workload's region statistics, paired with
/// the greedy warm-start vector the exact path seeds it with.
///
/// This is the benchmarking/diagnostic window into the solver: it exposes
/// the *same* `(Problem, incumbent)` pair [`fuse_regions`] hands to
/// `solve_milp`, so solver comparisons (node counts, pivot counts,
/// objective bit-identity) run against the production ILPs rather than
/// synthetic ones. Returns `None` when the exact path would not run — no
/// eligible binaries, or more than `opts.exact_binary_limit` of them.
#[must_use]
pub fn figure8_problem(
    regions: &[RegionPerf],
    gm_bytes: u64,
    opts: &FusionOptions,
    label: &str,
) -> Option<(Problem, Vec<f64>)> {
    if opts.disabled || gm_bytes == 0 || regions.is_empty() {
        return None;
    }
    let elig = eligibility(regions, opts.residency_window.max(1));
    let n_binaries: usize = elig
        .iter()
        .map(|e| usize::from(e.input) + usize::from(e.output) + usize::from(e.weight))
        .sum();
    if n_binaries == 0 || n_binaries > opts.exact_binary_limit {
        return None;
    }
    let warm = greedy(regions, gm_bytes, &elig);
    let (prob, vars) = build_ilp(regions, label, gm_bytes, &elig);
    let mut ws = vec![0.0; prob.num_vars()];
    for (i, p) in warm.iter().enumerate() {
        if let Some(v) = vars.p_in[i] {
            ws[v.index()] = f64::from(u8::from(p.input_gm));
        }
        if let Some(v) = vars.p_out[i] {
            ws[v.index()] = f64::from(u8::from(p.output_gm));
        }
        if let Some(v) = vars.p_w[i] {
            ws[v.index()] = f64::from(u8::from(p.weight_gm));
        }
    }
    for (i, r) in regions.iter().enumerate() {
        ws[vars.t[i].index()] =
            r.time_with_placements(warm[i].input_gm, warm[i].output_gm, warm[i].weight_gm);
    }
    Some((prob, ws))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_arch::presets;
    use fast_models::{EfficientNet, Workload};
    use fast_sim::{simulate, SimOptions};

    fn perf_of(w: Workload, batch: u64, cfg: &DatapathConfig) -> WorkloadPerf {
        let g = w.build(batch).unwrap();
        simulate(&g, cfg, &SimOptions::default()).unwrap()
    }

    #[test]
    fn fusion_options_round_trip_through_codec() {
        use serde::bin::{Decode as _, Encode as _};
        for opts in [
            FusionOptions::default(),
            FusionOptions::heuristic_only(),
            FusionOptions::strict_adjacency(),
            FusionOptions::disabled(),
        ] {
            assert_eq!(FusionOptions::from_bytes(&opts.to_bytes()).unwrap(), opts);
        }
    }

    #[test]
    fn fusion_never_slower_than_prefusion() {
        let cfg = presets::fast_large();
        for w in [Workload::EfficientNet(EfficientNet::B0), Workload::ResNet50] {
            let perf = perf_of(w, 8, &cfg);
            let fused = fuse_workload(&perf, &cfg, &FusionOptions::default());
            assert!(
                fused.total_seconds <= perf.prefusion_seconds * (1.0 + 1e-9),
                "{w}: fused {} vs prefusion {}",
                fused.total_seconds,
                perf.prefusion_seconds
            );
            assert!(fused.total_seconds >= perf.compute_seconds * (1.0 - 1e-9));
        }
    }

    #[test]
    fn fusion_disabled_without_global_memory() {
        let mut cfg = presets::fast_large();
        cfg.global_memory_mib = 0;
        let perf = perf_of(Workload::EfficientNet(EfficientNet::B0), 8, &cfg);
        let fused = fuse_workload(&perf, &cfg, &FusionOptions::default());
        assert_eq!(fused.solver, FusionSolver::Disabled);
        assert!((fused.total_seconds - perf.prefusion_seconds).abs() < 1e-12);
        assert_eq!(fused.pinned_weight_bytes, 0);
    }

    #[test]
    fn bigger_gm_fuses_more() {
        let mut small = presets::fast_large();
        small.global_memory_mib = 8;
        let mut big = presets::fast_large();
        big.global_memory_mib = 128;
        let w = Workload::EfficientNet(EfficientNet::B4);
        let perf_small = perf_of(w, 8, &small);
        let perf_big = perf_of(w, 8, &big);
        let f_small = fuse_workload(&perf_small, &small, &FusionOptions::heuristic_only());
        let f_big = fuse_workload(&perf_big, &big, &FusionOptions::heuristic_only());
        assert!(
            f_big.dram_bytes <= f_small.dram_bytes,
            "big GM should cut DRAM traffic: {} vs {}",
            f_big.dram_bytes,
            f_small.dram_bytes
        );
        let g = w.build(8).unwrap();
        assert!(f_big.op_intensity(g.total_flops()) >= f_small.op_intensity(g.total_flops()));
    }

    #[test]
    fn placements_respect_capacity() {
        let cfg = presets::fast_large();
        let perf = perf_of(Workload::EfficientNet(EfficientNet::B7), 8, &cfg);
        let fused = fuse_workload(&perf, &cfg, &FusionOptions::default());
        assert!(feasible(&perf.regions, cfg.global_memory_bytes(), &fused.placements));
        assert!(fused.peak_gm_bytes <= cfg.global_memory_bytes());
    }

    #[test]
    fn linkage_inputs_have_producing_outputs() {
        let cfg = presets::fast_large();
        let perf = perf_of(Workload::EfficientNet(EfficientNet::B3), 8, &cfg);
        let fused = fuse_workload(&perf, &cfg, &FusionOptions::default());
        for (i, p) in fused.placements.iter().enumerate() {
            if p.input_gm {
                let j = perf.regions[i].primary_input.expect("input needs producer");
                assert!(fused.placements[j].output_gm, "region {i} reads GM without producer");
                assert!(j < i && i - j <= 8, "residency window violated: {j} -> {i}");
            }
        }
    }

    #[test]
    fn exact_matches_or_beats_heuristic_on_small_model() {
        let cfg = presets::fast_large();
        let perf = perf_of(Workload::EfficientNet(EfficientNet::B0), 1, &cfg);
        let heur = fuse_workload(&perf, &cfg, &FusionOptions::heuristic_only());
        let exact = fuse_workload(
            &perf,
            &cfg,
            &FusionOptions {
                exact_binary_limit: 10_000,
                max_nodes: 4000,
                time_limit: Duration::from_secs(30),
                ..FusionOptions::default()
            },
        );
        assert!(
            exact.total_seconds <= heur.total_seconds * (1.0 + 1e-9),
            "exact {} vs heuristic {}",
            exact.total_seconds,
            heur.total_seconds
        );
    }

    /// The historical full-scan greedy (pre-heap), kept as the reference
    /// implementation: the production heap must select the exact same move
    /// sequence.
    fn greedy_scan_reference(
        regions: &[RegionPerf],
        gm_bytes: u64,
        elig: &[Eligibility],
    ) -> Vec<Placement> {
        let n = regions.len();
        let mut placements = vec![Placement::default(); n];
        let mut pinned: u64 = 0;
        let mut row_local: Vec<u64> = regions.iter().map(|r| r.resident_buffer_bytes).collect();
        let time_of = |placements: &[Placement], i: usize| {
            regions[i].time_with_placements(
                placements[i].input_gm,
                placements[i].output_gm,
                placements[i].weight_gm,
            )
        };
        #[derive(Clone, Copy)]
        enum Move {
            PinWeight(usize),
            FuseEdge(usize),
        }
        loop {
            let mut best: Option<(f64, Move)> = None;
            let local_peak = row_local.iter().copied().max().unwrap_or(0);
            for i in 0..n {
                let r = &regions[i];
                if elig[i].weight && !placements[i].weight_gm {
                    let w = r.weight_store_bytes;
                    if pinned + w + local_peak <= gm_bytes {
                        let before = time_of(&placements, i);
                        let c = placements[i];
                        let after = r.time_with_placements(c.input_gm, c.output_gm, true);
                        let saved = before - after;
                        let density = saved / w.max(1) as f64;
                        if saved > 1e-15 && best.is_none_or(|(b, _)| density > b) {
                            best = Some((density, Move::PinWeight(i)));
                        }
                    }
                }
                if elig[i].input && !placements[i].input_gm {
                    let j = r.primary_input.expect("eligible input has producer");
                    let bytes = fused_input_charge(regions, i, gm_bytes);
                    if (j..=i).all(|k| row_local[k] + bytes + pinned <= gm_bytes) {
                        let mut before = time_of(&placements, i);
                        let mut cj = placements[j];
                        if !cj.output_gm {
                            before += time_of(&placements, j);
                        }
                        let ci = placements[i];
                        let mut after =
                            regions[i].time_with_placements(true, ci.output_gm, ci.weight_gm);
                        if !cj.output_gm {
                            cj.output_gm = true;
                            after += regions[j].time_with_placements(
                                cj.input_gm,
                                cj.output_gm,
                                cj.weight_gm,
                            );
                        }
                        let saved = before - after;
                        let density = saved / bytes.max(1) as f64;
                        if saved > 1e-15 && best.is_none_or(|(b, _)| density > b) {
                            best = Some((density, Move::FuseEdge(i)));
                        }
                    }
                }
            }
            match best {
                Some((_, Move::PinWeight(i))) => {
                    placements[i].weight_gm = true;
                    pinned += regions[i].weight_store_bytes;
                }
                Some((_, Move::FuseEdge(i))) => {
                    let j = regions[i].primary_input.expect("checked");
                    placements[i].input_gm = true;
                    placements[j].output_gm = true;
                    let bytes = fused_input_charge(regions, i, gm_bytes);
                    for row in row_local.iter_mut().take(i + 1).skip(j) {
                        *row += bytes;
                    }
                }
                None => break,
            }
        }
        placements
    }

    /// The lazy-heap greedy must reproduce the historical full-scan greedy
    /// move for move — across the zoo, several Global-Memory capacities
    /// (feasibility pressure) and residency windows (eligibility shape).
    #[test]
    fn heap_greedy_matches_scan_reference_exactly() {
        for w in [
            Workload::EfficientNet(EfficientNet::B0),
            Workload::EfficientNet(EfficientNet::B4),
            Workload::EfficientNet(EfficientNet::B7),
            Workload::ResNet50,
            Workload::Bert { seq_len: 128 },
        ] {
            for gm_mib in [4u64, 16, 128] {
                for window in [1usize, 8] {
                    let mut cfg = presets::fast_large();
                    cfg.global_memory_mib = gm_mib;
                    let perf = perf_of(w, 8, &cfg);
                    let elig = eligibility(&perf.regions, window);
                    let fast = greedy(&perf.regions, cfg.global_memory_bytes(), &elig);
                    let reference =
                        greedy_scan_reference(&perf.regions, cfg.global_memory_bytes(), &elig);
                    assert_eq!(
                        fast, reference,
                        "{w} gm={gm_mib}MiB window={window}: heap greedy diverged from scan"
                    );
                }
            }
        }
    }

    #[test]
    fn keyed_entry_point_is_bit_identical_to_fuse_workload() {
        let cfg = presets::fast_large();
        let perf = perf_of(Workload::EfficientNet(EfficientNet::B2), 8, &cfg);
        for opts in [
            FusionOptions::heuristic_only(),
            FusionOptions::strict_adjacency(),
            FusionOptions::disabled(),
        ] {
            let whole = fuse_workload(&perf, &cfg, &opts);
            let keyed = fuse_regions(
                &perf.regions,
                perf.compute_seconds,
                cfg.global_memory_bytes(),
                &opts,
                "any-label-at-all",
            );
            assert_eq!(whole.placements, keyed.placements);
            assert_eq!(whole.total_seconds.to_bits(), keyed.total_seconds.to_bits());
            assert_eq!(whole.dram_bytes, keyed.dram_bytes);
            assert_eq!(whole.pinned_weight_bytes, keyed.pinned_weight_bytes);
            assert_eq!(whole.solver, keyed.solver);
        }
    }

    #[test]
    fn fingerprint_ignores_names_and_tracks_stats() {
        let cfg = presets::fast_large();
        let perf = perf_of(Workload::EfficientNet(EfficientNet::B0), 8, &cfg);
        let base = stats_fingerprint(&perf.regions, perf.compute_seconds);
        assert_eq!(base, stats_fingerprint(&perf.regions, perf.compute_seconds));

        // Renaming a region (a node-name artifact) must not change the key.
        let mut renamed = perf.regions.clone();
        renamed[0].name = "totally/different/name".to_string();
        renamed[1].group = Some(99);
        assert_eq!(base, stats_fingerprint(&renamed, perf.compute_seconds));

        // Any stat the pass reads must change it.
        let mut bumped = perf.regions.clone();
        bumped[0].t_weight += 1e-9;
        assert_ne!(base, stats_fingerprint(&bumped, perf.compute_seconds));
        let mut linked = perf.regions.clone();
        linked[3].primary_input = None;
        assert_ne!(base, stats_fingerprint(&linked, perf.compute_seconds));
        assert_ne!(base, stats_fingerprint(&perf.regions, perf.compute_seconds * 2.0));

        // And a different workload's stats are (overwhelmingly) distinct.
        let other = perf_of(Workload::ResNet50, 8, &cfg);
        assert_ne!(base, stats_fingerprint(&other.regions, other.compute_seconds));
    }

    /// Exact fusion options sized so the B0/batch-1 problem actually enters
    /// the branch-and-bound (the default path is heuristic-only).
    fn exact_opts() -> FusionOptions {
        FusionOptions {
            exact_binary_limit: 10_000,
            max_nodes: 4000,
            time_limit: Duration::from_secs(30),
            ..FusionOptions::default()
        }
    }

    #[test]
    fn warm_tier_is_bit_identical_to_cold_solve() {
        let opts = exact_opts();
        // Neighboring search points: same workload, clocks apart. Structure
        // (and hence the tier key) is shared; every T_i magnitude differs.
        let mut cfgs = Vec::new();
        for clock in [0.94, 1.2, 1.5] {
            let mut c = presets::fast_large();
            c.clock_ghz = clock;
            cfgs.push(c);
        }
        let perfs: Vec<WorkloadPerf> =
            cfgs.iter().map(|c| perf_of(Workload::EfficientNet(EfficientNet::B0), 1, c)).collect();

        let colds: Vec<FusionResult> =
            perfs.iter().zip(&cfgs).map(|(p, c)| fuse_workload(p, c, &opts)).collect();

        let tier = WarmStartTier::new();
        for round in 0..2 {
            for ((p, c), cold) in perfs.iter().zip(&cfgs).zip(&colds) {
                let warm = fuse_regions_warm(
                    &p.regions,
                    p.compute_seconds,
                    c.global_memory_bytes(),
                    &opts,
                    &p.workload,
                    Some(&tier),
                );
                assert_eq!(warm.placements, cold.placements, "round {round}");
                assert_eq!(
                    warm.total_seconds.to_bits(),
                    cold.total_seconds.to_bits(),
                    "round {round}"
                );
                assert_eq!(warm.pinned_weight_bytes, cold.pinned_weight_bytes);
                assert_eq!(warm.dram_bytes, cold.dram_bytes);
            }
        }
        let stats = tier.stats();
        // First point of round 1 misses; everything after shares its key.
        assert_eq!(stats.warm_hits + stats.warm_misses, 6, "every solve consults the tier");
        assert!(stats.warm_hits >= 1, "neighboring points must hit: {stats:?}");
        assert_eq!(tier.len(), 1, "three clocks share one structure");
    }

    #[test]
    fn structure_key_ignores_datapath_magnitudes() {
        let opts = FusionOptions::default();
        let mut slow = presets::fast_large();
        slow.clock_ghz = 0.5;
        let fast = presets::fast_large();
        let a = perf_of(Workload::EfficientNet(EfficientNet::B0), 8, &fast);
        let b = perf_of(Workload::EfficientNet(EfficientNet::B0), 8, &slow);
        // Same structure, different magnitudes: stats fingerprints diverge,
        // structure keys collide — that collision is the warm-start reuse.
        assert_ne!(
            stats_fingerprint(&a.regions, a.compute_seconds),
            stats_fingerprint(&b.regions, b.compute_seconds)
        );
        assert_eq!(structure_key(&a.regions, &opts), structure_key(&b.regions, &opts));

        // Different workload or residency window: different structure.
        let other = perf_of(Workload::ResNet50, 8, &fast);
        assert_ne!(structure_key(&a.regions, &opts), structure_key(&other.regions, &opts));
        let narrow = FusionOptions { residency_window: 1, ..FusionOptions::default() };
        assert_ne!(structure_key(&a.regions, &opts), structure_key(&a.regions, &narrow));
    }

    #[test]
    fn warm_tier_snapshot_round_trips_and_merges_keep_first() {
        use serde::bin::{Decode as _, Encode as _};
        let opts = exact_opts();
        let cfg = presets::fast_large();
        let perf = perf_of(Workload::EfficientNet(EfficientNet::B0), 1, &cfg);
        let tier = WarmStartTier::new();
        let _ = fuse_regions_warm(
            &perf.regions,
            perf.compute_seconds,
            cfg.global_memory_bytes(),
            &opts,
            &perf.workload,
            Some(&tier),
        );
        assert_eq!(tier.len(), 1);

        // Codec round trip of the exported entries.
        let entries = tier.export();
        let mut w = serde::bin::Writer::new();
        entries.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = serde::bin::Reader::new(&bytes);
        let back: Vec<(StructureKey, Vec<Placement>)> = Vec::decode(&mut r).unwrap();
        assert_eq!(back, entries);

        // Merge into a tier that already has the key: existing entry wins.
        let other = WarmStartTier::new();
        let key = entries[0].0;
        let sentinel = vec![Placement::default(); entries[0].1.len()];
        other.merge(vec![(key, sentinel.clone())]);
        other.merge(entries);
        assert_eq!(other.export(), vec![(key, sentinel)]);

        // Counter deltas.
        let s0 = SolverStats { warm_hits: 1, cold_nodes: 5, ..SolverStats::default() };
        let s1 = SolverStats { warm_hits: 3, cold_nodes: 9, lp_pivots: 7, ..s0 };
        let d = s1.since(&s0);
        assert_eq!(d.warm_hits, 2);
        assert_eq!(d.cold_nodes, 4);
        assert_eq!(d.lp_pivots, 7);
        assert!((s1.hit_rate() - 1.0).abs() < 1e-12);
        assert!(SolverStats::default().hit_rate().abs() < 1e-12);
    }

    #[test]
    fn b7_fusion_removes_most_memory_stall() {
        // Table 5: FAST-Large on B7 — pre-fusion 63% stall, post-fusion ~9%,
        // fusion efficiency 85%.
        let cfg = presets::fast_large();
        let perf = perf_of(Workload::EfficientNet(EfficientNet::B7), 8, &cfg);
        let fused = fuse_workload(&perf, &cfg, &FusionOptions::default());
        let pre_stall = perf.prefusion_memory_stall_fraction();
        let post_stall = (1.0 - perf.compute_seconds / fused.total_seconds).max(0.0);
        assert!(pre_stall > 0.3, "pre stall {pre_stall}");
        assert!(post_stall < pre_stall * 0.6, "post stall {post_stall} vs pre {pre_stall}");
    }
}
