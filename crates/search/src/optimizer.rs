//! Optimizer trait and the trial bookkeeping shared by all algorithms.

use crate::snapshot::OptimizerState;
use crate::space::ParamSpace;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Outcome of evaluating one proposed point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrialResult {
    /// The design was valid; higher objective is better.
    Valid(f64),
    /// The design violated a constraint (schedule failure, over budget) and
    /// was rejected — Vizier's safe-search semantics (§6.1).
    Invalid,
}

impl TrialResult {
    /// The objective value when valid.
    #[must_use]
    pub fn objective(&self) -> Option<f64> {
        match self {
            TrialResult::Valid(v) => Some(*v),
            TrialResult::Invalid => None,
        }
    }
}

/// One completed trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// The proposed point (index encoding).
    pub point: Vec<usize>,
    /// Evaluation outcome.
    pub result: TrialResult,
}

/// A black-box optimizer proposing points over a [`ParamSpace`].
///
/// Implementations are deterministic given the provided RNG, so experiments
/// are reproducible from seeds.
pub trait Optimizer {
    /// Short algorithm name for reports (e.g. `"LCS"`).
    fn name(&self) -> &'static str;

    /// Proposes the next point to evaluate.
    fn propose(&mut self, space: &ParamSpace, rng: &mut StdRng) -> Vec<usize>;

    /// Records the outcome of a proposed point.
    fn observe(&mut self, space: &ParamSpace, trial: &Trial);

    /// Proposes one point per RNG in `rngs`, for batched (possibly parallel)
    /// evaluation. `rngs[i]` is the dedicated generator of the batch's i-th
    /// trial, derived by the study driver from the study seed and the global
    /// trial index — so proposals depend only on (seed, trial index,
    /// observation history), never on evaluation timing.
    ///
    /// The default implementation calls [`Optimizer::propose`] once per RNG,
    /// in order, preserving every existing algorithm's behavior; algorithms
    /// with a smarter batch policy (e.g. diversity-aware swarms) can
    /// override it.
    fn propose_batch(&mut self, space: &ParamSpace, rngs: &mut [StdRng]) -> Vec<Vec<usize>> {
        rngs.iter_mut().map(|rng| self.propose(space, rng)).collect()
    }

    /// Records a batch of completed trials, in proposal order.
    ///
    /// The default implementation forwards to [`Optimizer::observe`] one
    /// trial at a time, so sequential and batched studies feed algorithms
    /// identical observation streams.
    fn observe_batch(&mut self, space: &ParamSpace, trials: &[Trial]) {
        for trial in trials {
            self.observe(space, trial);
        }
    }

    /// Captures this optimizer's internal state for a checkpoint.
    ///
    /// The default returns [`OptimizerState::Opaque`], which the resumable
    /// study drivers handle by replaying the recorded trial stream instead
    /// of restoring directly — still bit-identical, just slower. Built-in
    /// algorithms override this with a full snapshot.
    fn save_state(&self) -> OptimizerState {
        OptimizerState::Opaque
    }

    /// Restores this optimizer from a [`save_state`](Optimizer::save_state)
    /// snapshot. Returns `false` — leaving the optimizer untouched — when
    /// the state does not belong to this algorithm (the resumable drivers
    /// then fall back to replay).
    fn load_state(&mut self, _state: &OptimizerState) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_result_accessors() {
        assert_eq!(TrialResult::Valid(3.0).objective(), Some(3.0));
        assert_eq!(TrialResult::Invalid.objective(), None);
    }
}
