//! Optimizer trait and the trial bookkeeping shared by all algorithms.

use crate::space::ParamSpace;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Outcome of evaluating one proposed point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrialResult {
    /// The design was valid; higher objective is better.
    Valid(f64),
    /// The design violated a constraint (schedule failure, over budget) and
    /// was rejected — Vizier's safe-search semantics (§6.1).
    Invalid,
}

impl TrialResult {
    /// The objective value when valid.
    #[must_use]
    pub fn objective(&self) -> Option<f64> {
        match self {
            TrialResult::Valid(v) => Some(*v),
            TrialResult::Invalid => None,
        }
    }
}

/// One completed trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    /// The proposed point (index encoding).
    pub point: Vec<usize>,
    /// Evaluation outcome.
    pub result: TrialResult,
}

/// A black-box optimizer proposing points over a [`ParamSpace`].
///
/// Implementations are deterministic given the provided RNG, so experiments
/// are reproducible from seeds.
pub trait Optimizer {
    /// Short algorithm name for reports (e.g. `"LCS"`).
    fn name(&self) -> &'static str;

    /// Proposes the next point to evaluate.
    fn propose(&mut self, space: &ParamSpace, rng: &mut StdRng) -> Vec<usize>;

    /// Records the outcome of a proposed point.
    fn observe(&mut self, space: &ParamSpace, trial: &Trial);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_result_accessors() {
        assert_eq!(TrialResult::Valid(3.0).objective(), Some(3.0));
        assert_eq!(TrialResult::Invalid.objective(), None);
    }
}
