//! Rank-correlation statistics for surrogate-vs-true fidelity reporting.
//!
//! A screened study ([`crate::Fidelity::Screened`]) predicts every
//! proposal's objective with a cheap surrogate and fully simulates only the
//! top-ranked fraction. Whether that is safe is a *rank* question — the
//! surrogate need not predict absolute values, only order candidates the
//! way the simulator would — so the study reports Spearman's ρ (and
//! Kendall's τ-b as the tie-robust cross-check) over the (surrogate score,
//! true objective) pairs it accumulated, rather than hand-rolling the
//! statistics inline at each report site.

/// Fractional (average) ranks of `xs`: ties share the mean of the ranks
/// they span, the convention under which Spearman's ρ reduces to Pearson
/// on ranks.
fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]].total_cmp(&xs[order[i]]).is_eq() {
            j += 1;
        }
        // Ranks are 1-based; the tied block [i, j] shares the average.
        let shared = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = shared;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation, `None` when either side has zero variance.
fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        let (dx, dy) = (x - mx, y - my);
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation of two paired samples, with average ranks for
/// ties. Returns `None` when there are fewer than two pairs or either side
/// is constant (the correlation is undefined, not zero).
///
/// # Panics
/// Panics if the slices differ in length — pairing is the caller's
/// contract, not a runtime condition.
#[must_use]
pub fn spearman_rank(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "spearman_rank wants paired samples");
    if xs.len() < 2 {
        return None;
    }
    pearson(&average_ranks(xs), &average_ranks(ys))
}

/// Kendall's τ-b (tie-corrected) of two paired samples. Returns `None`
/// when there are fewer than two pairs or either side is constant.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "kendall_tau wants paired samples");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    // O(n²) concordance count — fidelity reports pair at most one sample
    // per trial, far below where a merge-sort count would matter.
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_x, mut ties_y) = (0i64, 0i64);
    for i in 0..n {
        for j in i + 1..n {
            let cx = xs[i].total_cmp(&xs[j]);
            let cy = ys[i].total_cmp(&ys[j]);
            match (cx.is_eq(), cy.is_eq()) {
                (true, true) => {
                    ties_x += 1;
                    ties_y += 1;
                }
                (true, false) => ties_x += 1,
                (false, true) => ties_y += 1,
                (false, false) => {
                    if cx == cy {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }
    let total = (n * (n - 1) / 2) as i64;
    let (nx, ny) = (total - ties_x, total - ties_y);
    if nx == 0 || ny == 0 {
        return None;
    }
    Some((concordant - discordant) as f64 / ((nx as f64) * (ny as f64)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(spearman_rank(&xs, &ys), Some(1.0));
        assert_eq!(kendall_tau(&xs, &ys), Some(1.0));
        // Any monotone transform preserves the ranks.
        let warped: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert_eq!(spearman_rank(&xs, &warped), Some(1.0));
        assert_eq!(kendall_tau(&xs, &warped), Some(1.0));
    }

    #[test]
    fn reversed_order_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [9.0, 7.0, 5.0, 3.0, 1.0];
        assert_eq!(spearman_rank(&xs, &ys), Some(-1.0));
        assert_eq!(kendall_tau(&xs, &ys), Some(-1.0));
    }

    #[test]
    fn constant_inputs_are_undefined_not_zero() {
        let xs = [2.0, 2.0, 2.0];
        let ys = [1.0, 5.0, 3.0];
        assert_eq!(spearman_rank(&xs, &ys), None);
        assert_eq!(spearman_rank(&ys, &xs), None);
        assert_eq!(kendall_tau(&xs, &ys), None);
        assert_eq!(kendall_tau(&ys, &xs), None);
        assert_eq!(spearman_rank(&[], &[]), None);
        assert_eq!(spearman_rank(&[1.0], &[2.0]), None);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), None);
    }

    #[test]
    fn ties_take_average_ranks() {
        assert_eq!(average_ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        // Tied xs against strictly increasing ys: still positive, below 1.
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let rho = spearman_rank(&xs, &ys).unwrap();
        assert!(rho > 0.9 && rho < 1.0, "rho = {rho}");
        let tau = kendall_tau(&xs, &ys).unwrap();
        assert!(tau > 0.8 && tau < 1.0, "tau = {tau}");
    }

    #[test]
    fn correlations_are_symmetric_and_bounded() {
        let xs = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.0, 6.0];
        let ys = [2.0, 7.0, 1.0, 8.0, 2.5, 0.5, 9.0, 3.0];
        let rho = spearman_rank(&xs, &ys).unwrap();
        let tau = kendall_tau(&xs, &ys).unwrap();
        assert_eq!(spearman_rank(&ys, &xs), Some(rho));
        assert_eq!(kendall_tau(&ys, &xs), Some(tau));
        assert!(rho.abs() <= 1.0 && tau.abs() <= 1.0);
        // Both agree on the sign for this clearly anti-correlated sample.
        assert!(rho < 0.0 && tau < 0.0);
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn mismatched_lengths_panic() {
        let _ = spearman_rank(&[1.0], &[1.0, 2.0]);
    }
}
