//! Serializable search state: optimizer snapshots, study checkpoints, and
//! the binary-codec impls for every search type that appears in them.
//!
//! The durability contract of this module is *bit-identity*: a study that
//! is checkpointed after round `k` and resumed produces exactly the result
//! an uninterrupted study would have — same frontier, same convergence
//! curve, same trial sequence. Two mechanisms cooperate:
//!
//! * [`OptimizerState`] captures a built-in algorithm's internal state
//!   (including [`crate::LcsSwarm`]'s particles and pending proposals)
//!   so resume restores it directly;
//! * when an optimizer cannot restore from a state (a custom
//!   [`crate::Optimizer`] returning the default [`OptimizerState::Opaque`]),
//!   the resumable drivers *replay* the recorded proposal/observation
//!   stream instead — exact by the `trial_rng(seed, index)` determinism
//!   contract, since proposals depend only on (seed, trial index,
//!   observation history).
//!
//! The `trial_rng` cursor itself needs no RNG serialization: per-trial
//! generators are pure functions of `(seed, index)`, so persisting the
//! seed and the number of completed trials *is* the cursor.

use crate::optimizer::{Optimizer, Trial, TrialResult};
use crate::pareto::{FrontierPoint, MetricDirection, MultiObjective, MultiTrial, ParetoArchive};
use crate::screen::{Fidelity, FidelityReport, SurrogateTier};
use crate::space::ParamSpace;
use crate::study::trial_rng;
use rand::rngs::StdRng;
use serde::bin::{Decode, DecodeError, Encode, Reader, Writer};

/// Shared checkpoint validation + optimizer restoration for resumable
/// studies (`Durability::Checkpointed`, scalar and Pareto alike).
///
/// `scalar_trials` is the checkpoint's recorded trial stream in the form
/// the optimizer observed it (Pareto callers map each `MultiTrial`'s guide
/// down to a scalar [`Trial`]); `convergence_len` is the checkpoint's
/// convergence-curve length, which must pair one-to-one with the trials.
///
/// # Panics
/// Panics if the checkpoint disagrees with the study configuration —
/// including a trial count that is neither a round boundary of this study
/// nor a completed study, which would silently break the bit-identity
/// contract by regrouping observations (the rounds of the resumed run
/// must be the rounds the uninterrupted run would have formed).
#[allow(clippy::too_many_arguments)] // one call site per driver; a struct would obscure the contract
pub(crate) fn validate_and_restore(
    space: &ParamSpace,
    optimizer: &mut dyn Optimizer,
    n_trials: usize,
    batch_size: usize,
    seed: u64,
    ck_seed: u64,
    ck_batch_size: usize,
    convergence_len: usize,
    state: &OptimizerState,
    scalar_trials: &[Trial],
) {
    validate_checkpoint_header(
        n_trials,
        batch_size,
        seed,
        ck_seed,
        ck_batch_size,
        convergence_len,
        scalar_trials.len(),
    );
    assert!(
        scalar_trials.len().is_multiple_of(batch_size) || scalar_trials.len() == n_trials,
        "checkpoint at {} trials is not a round boundary of a batch-{batch_size} study \
         over {n_trials} trials: resuming would regroup observations and diverge from an \
         uninterrupted run",
        scalar_trials.len()
    );
    if !optimizer.load_state(state) {
        // Replay the recorded proposal/observation stream — exact by the
        // trial_rng determinism contract.
        let mut start = 0;
        while start < scalar_trials.len() {
            let round = batch_size.min(scalar_trials.len() - start);
            let mut rngs: Vec<StdRng> =
                (start..start + round).map(|i| trial_rng(seed, i)).collect();
            let points = optimizer.propose_batch(space, &mut rngs);
            let recorded = &scalar_trials[start..start + round];
            assert!(points.iter().zip(recorded).all(|(p, t)| *p == t.point), "{REPLAY_DIVERGED}");
            optimizer.observe_batch(space, recorded);
            start += round;
        }
    }
}

/// The header checks shared by every resume path — seed, batch marker,
/// trial budget, convergence/trial pairing. The batched drivers add the
/// round-grid check on top; the sequential path replays per trial, so any
/// count is a boundary for it.
pub(crate) fn validate_checkpoint_header(
    n_trials: usize,
    batch_size: usize,
    seed: u64,
    ck_seed: u64,
    ck_batch_size: usize,
    convergence_len: usize,
    trials_len: usize,
) {
    assert_eq!(ck_seed, seed, "checkpoint seed mismatch");
    assert_eq!(ck_batch_size, batch_size, "checkpoint batch-size mismatch");
    assert!(
        trials_len <= n_trials,
        "checkpoint holds {trials_len} trials but the study budget is {n_trials}"
    );
    assert_eq!(convergence_len, trials_len, "checkpoint convergence/trial length mismatch");
}

/// Panic message of a resume whose replayed proposals do not match the
/// checkpoint's record — shared so the batched and sequential replay paths
/// cannot drift apart.
pub(crate) const REPLAY_DIVERGED: &str =
    "replayed optimizer diverged from the checkpoint's proposal record \
     (was the optimizer configured differently?)";

/// Snapshot of a built-in optimizer's internal state.
///
/// Produced by [`crate::Optimizer::save_state`] and consumed by
/// [`crate::Optimizer::load_state`]. The `Seeded` variant wraps an inner
/// state for seed-injecting adapters (prior injection); `Opaque` is the
/// default for optimizers without snapshot support, which resumable
/// drivers handle by replaying history.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerState {
    /// [`crate::RandomSearch`] — stateless.
    Random,
    /// [`crate::LcsSwarm`] — full particle state.
    Lcs {
        /// Particle count.
        population: usize,
        /// Personal bests per particle.
        personal: Vec<Option<(Vec<usize>, f64)>>,
        /// Global best.
        global: Option<(Vec<usize>, f64)>,
        /// Round-robin cursor.
        next_particle: usize,
        /// Probability of inheriting a dimension from the global best.
        pull_global: f64,
        /// Probability of mutating a dimension.
        mutate: f64,
        /// Proposals awaiting observation, FIFO, as `(particle, point)`.
        pending: Vec<(usize, Vec<usize>)>,
    },
    /// [`crate::Tpe`] — observation history plus hyperparameters.
    Tpe {
        /// `(point, objective)` per observed trial (`None` = invalid).
        history: Vec<(Vec<usize>, Option<f64>)>,
        /// Good-fraction γ.
        gamma: f64,
        /// Candidates scored per proposal.
        candidates: usize,
        /// Uniform-exploration startup trials.
        startup: usize,
    },
    /// A seed-injecting wrapper around an inner optimizer.
    Seeded {
        /// Seed points not yet proposed.
        seeds: Vec<Vec<usize>>,
        /// Index of the next seed to propose.
        next: usize,
        /// Inner optimizer's state.
        inner: Box<OptimizerState>,
    },
    /// An optimizer without snapshot support; resume falls back to replay.
    Opaque,
}

impl Encode for OptimizerState {
    fn encode(&self, w: &mut Writer) {
        match self {
            OptimizerState::Random => w.put_u8(0),
            OptimizerState::Lcs {
                population,
                personal,
                global,
                next_particle,
                pull_global,
                mutate,
                pending,
            } => {
                w.put_u8(1);
                population.encode(w);
                personal.encode(w);
                global.encode(w);
                next_particle.encode(w);
                pull_global.encode(w);
                mutate.encode(w);
                pending.encode(w);
            }
            OptimizerState::Tpe { history, gamma, candidates, startup } => {
                w.put_u8(2);
                history.encode(w);
                gamma.encode(w);
                candidates.encode(w);
                startup.encode(w);
            }
            OptimizerState::Seeded { seeds, next, inner } => {
                w.put_u8(3);
                seeds.encode(w);
                next.encode(w);
                inner.encode(w);
            }
            OptimizerState::Opaque => w.put_u8(4),
        }
    }
}

impl Decode for OptimizerState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(OptimizerState::Random),
            1 => Ok(OptimizerState::Lcs {
                population: Decode::decode(r)?,
                personal: Decode::decode(r)?,
                global: Decode::decode(r)?,
                next_particle: Decode::decode(r)?,
                pull_global: Decode::decode(r)?,
                mutate: Decode::decode(r)?,
                pending: Decode::decode(r)?,
            }),
            2 => Ok(OptimizerState::Tpe {
                history: Decode::decode(r)?,
                gamma: Decode::decode(r)?,
                candidates: Decode::decode(r)?,
                startup: Decode::decode(r)?,
            }),
            3 => Ok(OptimizerState::Seeded {
                seeds: Decode::decode(r)?,
                next: Decode::decode(r)?,
                inner: Box::new(Decode::decode(r)?),
            }),
            4 => Ok(OptimizerState::Opaque),
            t => Err(DecodeError { offset: 0, what: format!("invalid OptimizerState tag {t}") }),
        }
    }
}

impl Encode for TrialResult {
    fn encode(&self, w: &mut Writer) {
        match self {
            TrialResult::Valid(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            TrialResult::Invalid => w.put_u8(1),
        }
    }
}

impl Decode for TrialResult {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(TrialResult::Valid(Decode::decode(r)?)),
            1 => Ok(TrialResult::Invalid),
            t => Err(DecodeError { offset: 0, what: format!("invalid TrialResult tag {t}") }),
        }
    }
}

impl Encode for Trial {
    fn encode(&self, w: &mut Writer) {
        let Trial { point, result } = self;
        point.encode(w);
        result.encode(w);
    }
}

impl Decode for Trial {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Trial { point: Decode::decode(r)?, result: Decode::decode(r)? })
    }
}

impl Encode for MetricDirection {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            MetricDirection::Maximize => 0,
            MetricDirection::Minimize => 1,
        });
    }
}

impl Decode for MetricDirection {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(MetricDirection::Maximize),
            1 => Ok(MetricDirection::Minimize),
            t => Err(DecodeError { offset: 0, what: format!("invalid MetricDirection tag {t}") }),
        }
    }
}

impl Encode for FrontierPoint {
    fn encode(&self, w: &mut Writer) {
        let FrontierPoint { point, metrics } = self;
        point.encode(w);
        metrics.encode(w);
    }
}

impl Decode for FrontierPoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FrontierPoint { point: Decode::decode(r)?, metrics: Decode::decode(r)? })
    }
}

impl Encode for MultiObjective {
    fn encode(&self, w: &mut Writer) {
        match self {
            MultiObjective::Valid { metrics, guide } => {
                w.put_u8(0);
                metrics.encode(w);
                guide.encode(w);
            }
            MultiObjective::Invalid => w.put_u8(1),
            MultiObjective::Surrogate { guide } => {
                w.put_u8(2);
                guide.encode(w);
            }
        }
    }
}

impl Decode for MultiObjective {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => {
                Ok(MultiObjective::Valid { metrics: Decode::decode(r)?, guide: Decode::decode(r)? })
            }
            1 => Ok(MultiObjective::Invalid),
            2 => Ok(MultiObjective::Surrogate { guide: Decode::decode(r)? }),
            t => Err(DecodeError { offset: 0, what: format!("invalid MultiObjective tag {t}") }),
        }
    }
}

impl Encode for SurrogateTier {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            SurrogateTier::S0 => 0,
            SurrogateTier::S1 => 1,
        });
    }
}

impl Decode for SurrogateTier {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(SurrogateTier::S0),
            1 => Ok(SurrogateTier::S1),
            t => Err(DecodeError { offset: 0, what: format!("invalid SurrogateTier tag {t}") }),
        }
    }
}

impl Encode for Fidelity {
    fn encode(&self, w: &mut Writer) {
        match self {
            Fidelity::Exact => w.put_u8(0),
            Fidelity::Screened { keep_fraction, min_full, tier } => {
                w.put_u8(1);
                keep_fraction.encode(w);
                min_full.encode(w);
                tier.encode(w);
            }
        }
    }
}

impl Decode for Fidelity {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(Fidelity::Exact),
            1 => Ok(Fidelity::Screened {
                keep_fraction: Decode::decode(r)?,
                min_full: Decode::decode(r)?,
                tier: Decode::decode(r)?,
            }),
            t => Err(DecodeError { offset: 0, what: format!("invalid Fidelity tag {t}") }),
        }
    }
}

impl Encode for FidelityReport {
    fn encode(&self, w: &mut Writer) {
        let FidelityReport {
            tier,
            keep_fraction,
            min_full,
            full_evals,
            screened_out,
            pairs,
            spearman,
            kendall,
        } = self;
        tier.encode(w);
        keep_fraction.encode(w);
        min_full.encode(w);
        full_evals.encode(w);
        screened_out.encode(w);
        pairs.encode(w);
        spearman.encode(w);
        kendall.encode(w);
    }
}

impl Decode for FidelityReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FidelityReport {
            tier: Decode::decode(r)?,
            keep_fraction: Decode::decode(r)?,
            min_full: Decode::decode(r)?,
            full_evals: Decode::decode(r)?,
            screened_out: Decode::decode(r)?,
            pairs: Decode::decode(r)?,
            spearman: Decode::decode(r)?,
            kendall: Decode::decode(r)?,
        })
    }
}

impl Encode for MultiTrial {
    fn encode(&self, w: &mut Writer) {
        let MultiTrial { point, result } = self;
        point.encode(w);
        result.encode(w);
    }
}

impl Decode for MultiTrial {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MultiTrial { point: Decode::decode(r)?, result: Decode::decode(r)? })
    }
}

impl Encode for ParetoArchive {
    fn encode(&self, w: &mut Writer) {
        self.directions().to_vec().encode(w);
        self.entries().to_vec().encode(w);
    }
}

impl Decode for ParetoArchive {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let directions: Vec<MetricDirection> = Decode::decode(r)?;
        let entries: Vec<FrontierPoint> = Decode::decode(r)?;
        ParetoArchive::from_parts(&directions, entries)
            .map_err(|what| DecodeError { offset: 0, what })
    }
}

/// Screening state at a round boundary — the sidecar a
/// [`crate::Fidelity::Screened`] study adds to its checkpoint so a resumed
/// run screens exactly as the uninterrupted one would have. The screening
/// *RNG* needs no cursor of its own: each round's exploration pick is drawn
/// from a pure function of `(study seed, round start index)`, so the
/// trial count the checkpoint already records is the cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityCheckpoint {
    /// Configured keep fraction (identity-checked on resume).
    pub keep_fraction: f64,
    /// Configured per-round full-evaluation floor.
    pub min_full: usize,
    /// Configured surrogate tier.
    pub tier: SurrogateTier,
    /// Trials that reached the real evaluator so far.
    pub full_evals: usize,
    /// Trials screened out so far.
    pub screened_out: usize,
    /// Accumulated `(surrogate score, true guide)` correlation pairs.
    pub pairs: Vec<(f64, f64)>,
    /// The screener's serialized state ([`crate::Screener::save_state`]).
    pub screener: Vec<u8>,
    /// `(trial index, surrogate score)` of every screened-out trial. Scalar
    /// checkpoints store the lossy stream the optimizer observed (where a
    /// screened-out trial is a plain `Invalid`), so the Surrogate markings
    /// are reconstructed from this list on restore.
    pub screened: Vec<(usize, f64)>,
}

impl Encode for FidelityCheckpoint {
    fn encode(&self, w: &mut Writer) {
        let FidelityCheckpoint {
            keep_fraction,
            min_full,
            tier,
            full_evals,
            screened_out,
            pairs,
            screener,
            screened,
        } = self;
        keep_fraction.encode(w);
        min_full.encode(w);
        tier.encode(w);
        full_evals.encode(w);
        screened_out.encode(w);
        pairs.encode(w);
        screener.encode(w);
        screened.encode(w);
    }
}

impl Decode for FidelityCheckpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FidelityCheckpoint {
            keep_fraction: Decode::decode(r)?,
            min_full: Decode::decode(r)?,
            tier: Decode::decode(r)?,
            full_evals: Decode::decode(r)?,
            screened_out: Decode::decode(r)?,
            pairs: Decode::decode(r)?,
            screener: Decode::decode(r)?,
            screened: Decode::decode(r)?,
        })
    }
}

/// Progress of a scalar batched [`crate::Study`] at a round boundary —
/// everything needed to resume it bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyCheckpoint {
    /// Study seed (with [`StudyCheckpoint::trials_done`], the whole
    /// `trial_rng` cursor).
    pub seed: u64,
    /// Round size the study was launched with.
    pub batch_size: usize,
    /// Incumbent `(point, objective)`.
    pub best: Option<(Vec<usize>, f64)>,
    /// Best-so-far curve over completed trials.
    pub convergence: Vec<f64>,
    /// Safe-search rejections so far.
    pub invalid_trials: usize,
    /// Completed trials, in proposal order.
    pub trials: Vec<Trial>,
    /// Optimizer state at the boundary.
    pub optimizer: OptimizerState,
    /// Screening state — `Some` iff the study ran with
    /// [`crate::Fidelity::Screened`].
    pub fidelity: Option<FidelityCheckpoint>,
}

impl StudyCheckpoint {
    /// Number of completed trials — the `trial_rng(seed, index)` cursor:
    /// resuming continues with index `trials_done()`.
    #[must_use]
    pub fn trials_done(&self) -> usize {
        self.trials.len()
    }
}

impl Encode for StudyCheckpoint {
    fn encode(&self, w: &mut Writer) {
        let StudyCheckpoint {
            seed,
            batch_size,
            best,
            convergence,
            invalid_trials,
            trials,
            optimizer,
            fidelity,
        } = self;
        seed.encode(w);
        batch_size.encode(w);
        best.encode(w);
        convergence.encode(w);
        invalid_trials.encode(w);
        trials.encode(w);
        optimizer.encode(w);
        fidelity.encode(w);
    }
}

impl Decode for StudyCheckpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StudyCheckpoint {
            seed: Decode::decode(r)?,
            batch_size: Decode::decode(r)?,
            best: Decode::decode(r)?,
            convergence: Decode::decode(r)?,
            invalid_trials: Decode::decode(r)?,
            trials: Decode::decode(r)?,
            optimizer: Decode::decode(r)?,
            fidelity: Decode::decode(r)?,
        })
    }
}

/// Progress of a Pareto batched [`crate::Study`] at a round boundary —
/// everything needed to resume it bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoCheckpoint {
    /// Study seed (with [`ParetoCheckpoint::trials_done`], the whole
    /// `trial_rng` cursor).
    pub seed: u64,
    /// Round size the study was launched with.
    pub batch_size: usize,
    /// The non-dominated set so far.
    pub archive: ParetoArchive,
    /// Best guide scalar so far (`NaN` before the first valid trial).
    pub best_guide: f64,
    /// Guide best-so-far curve over completed trials.
    pub guide_convergence: Vec<f64>,
    /// Safe-search rejections so far.
    pub invalid_trials: usize,
    /// Completed trials, in proposal order.
    pub trials: Vec<MultiTrial>,
    /// Optimizer state at the boundary.
    pub optimizer: OptimizerState,
    /// Screening state — `Some` iff the study ran with
    /// [`crate::Fidelity::Screened`].
    pub fidelity: Option<FidelityCheckpoint>,
}

impl ParetoCheckpoint {
    /// Number of completed trials — the `trial_rng(seed, index)` cursor.
    #[must_use]
    pub fn trials_done(&self) -> usize {
        self.trials.len()
    }
}

impl Encode for ParetoCheckpoint {
    fn encode(&self, w: &mut Writer) {
        let ParetoCheckpoint {
            seed,
            batch_size,
            archive,
            best_guide,
            guide_convergence,
            invalid_trials,
            trials,
            optimizer,
            fidelity,
        } = self;
        seed.encode(w);
        batch_size.encode(w);
        archive.encode(w);
        best_guide.encode(w);
        guide_convergence.encode(w);
        invalid_trials.encode(w);
        trials.encode(w);
        optimizer.encode(w);
        fidelity.encode(w);
    }
}

impl Decode for ParetoCheckpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ParetoCheckpoint {
            seed: Decode::decode(r)?,
            batch_size: Decode::decode(r)?,
            archive: Decode::decode(r)?,
            best_guide: Decode::decode(r)?,
            guide_convergence: Decode::decode(r)?,
            invalid_trials: Decode::decode(r)?,
            trials: Decode::decode(r)?,
            optimizer: Decode::decode(r)?,
            fidelity: Decode::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::MetricDirection::{Maximize, Minimize};

    #[test]
    fn optimizer_states_round_trip() {
        let states = [
            OptimizerState::Random,
            OptimizerState::Opaque,
            OptimizerState::Lcs {
                population: 4,
                personal: vec![None, Some((vec![1, 2], 3.0))],
                global: Some((vec![1, 2], 3.0)),
                next_particle: 2,
                pull_global: 0.35,
                mutate: 0.15,
                pending: vec![(0, vec![5, 6])],
            },
            OptimizerState::Tpe {
                history: vec![(vec![1], Some(2.0)), (vec![0], None)],
                gamma: 0.25,
                candidates: 24,
                startup: 16,
            },
            OptimizerState::Seeded {
                seeds: vec![vec![9, 9]],
                next: 1,
                inner: Box::new(OptimizerState::Random),
            },
        ];
        for s in states {
            assert_eq!(OptimizerState::from_bytes(&s.to_bytes()).unwrap(), s);
        }
    }

    #[test]
    fn archive_round_trips_with_internal_order_preserved() {
        let mut a = ParetoArchive::new(&[Maximize, Minimize]);
        a.insert(vec![0], vec![1.0, 5.0]);
        a.insert(vec![1], vec![2.0, 6.0]);
        a.insert(vec![2], vec![0.5, 1.0]);
        let back = ParetoArchive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back.entries(), a.entries(), "internal order must survive");
        assert_eq!(back.frontier(), a.frontier());
        assert_eq!(back.directions(), a.directions());
    }

    #[test]
    fn archive_decode_rejects_dominated_sets() {
        // Hand-craft an encoding whose entries are not mutually
        // non-dominated: decode must refuse rather than resurrect a
        // corrupt archive.
        let mut w = Writer::new();
        vec![Maximize, Minimize].encode(&mut w);
        vec![
            FrontierPoint { point: vec![0], metrics: vec![2.0, 1.0] },
            FrontierPoint { point: vec![1], metrics: vec![1.0, 2.0] }, // dominated
        ]
        .encode(&mut w);
        assert!(ParetoArchive::from_bytes(&w.into_bytes()).is_err());
    }

    #[test]
    fn pareto_checkpoint_round_trips() {
        let mut archive = ParetoArchive::new(&[Maximize, Minimize]);
        archive.insert(vec![3], vec![1.0, 2.0]);
        let ck = ParetoCheckpoint {
            seed: 7,
            batch_size: 8,
            archive,
            best_guide: 0.5,
            guide_convergence: vec![f64::NAN, 0.5],
            invalid_trials: 1,
            trials: vec![
                MultiTrial { point: vec![0], result: MultiObjective::Invalid },
                MultiTrial { point: vec![3], result: MultiObjective::valid(vec![1.0, 2.0], 0.5) },
            ],
            optimizer: OptimizerState::Random,
            fidelity: None,
        };
        let back = ParetoCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.seed, ck.seed);
        assert_eq!(back.trials, ck.trials);
        assert_eq!(back.trials_done(), 2);
        assert_eq!(back.archive.frontier(), ck.archive.frontier());
        // NaN round-trips bit-exactly (PartialEq would reject it).
        assert!(back.guide_convergence[0].is_nan());
        assert_eq!(back.guide_convergence[1].to_bits(), 0.5f64.to_bits());
    }

    #[test]
    fn scalar_checkpoint_round_trips() {
        let ck = StudyCheckpoint {
            seed: 3,
            batch_size: 4,
            best: Some((vec![1, 2], 9.0)),
            convergence: vec![9.0],
            invalid_trials: 0,
            trials: vec![Trial { point: vec![1, 2], result: TrialResult::Valid(9.0) }],
            optimizer: OptimizerState::Tpe {
                history: vec![(vec![1, 2], Some(9.0))],
                gamma: 0.25,
                candidates: 24,
                startup: 16,
            },
            fidelity: None,
        };
        assert_eq!(StudyCheckpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }

    #[test]
    fn fidelity_checkpoint_round_trips_inside_a_scalar_checkpoint() {
        let fid = FidelityCheckpoint {
            keep_fraction: 0.25,
            min_full: 2,
            tier: SurrogateTier::S1,
            full_evals: 6,
            screened_out: 2,
            pairs: vec![(1.5, 2.5), (f64::NEG_INFINITY, 0.0)],
            screener: vec![1, 2, 3],
            screened: vec![(3, 0.75), (5, f64::NEG_INFINITY)],
        };
        let ck = StudyCheckpoint {
            seed: 11,
            batch_size: 4,
            best: Some((vec![0], 1.0)),
            convergence: vec![1.0],
            invalid_trials: 0,
            trials: vec![Trial { point: vec![0], result: TrialResult::Valid(1.0) }],
            optimizer: OptimizerState::Random,
            fidelity: Some(fid),
        };
        assert_eq!(StudyCheckpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }

    #[test]
    fn surrogate_outcomes_and_fidelity_configs_round_trip() {
        for result in [
            MultiObjective::Surrogate { guide: 2.5 },
            MultiObjective::Surrogate { guide: f64::NEG_INFINITY },
        ] {
            let mut w = Writer::new();
            result.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(MultiObjective::decode(&mut r).unwrap(), result);
            assert!(r.is_done());
        }
        for fidelity in [
            Fidelity::Exact,
            Fidelity::Screened { keep_fraction: 0.125, min_full: 2, tier: SurrogateTier::S0 },
            Fidelity::Screened { keep_fraction: 1.0, min_full: 0, tier: SurrogateTier::S1 },
        ] {
            let mut w = Writer::new();
            fidelity.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(Fidelity::decode(&mut r).unwrap(), fidelity);
            assert!(r.is_done());
        }
    }

    #[test]
    fn fidelity_report_round_trips() {
        for report in [
            FidelityReport {
                tier: SurrogateTier::S0,
                keep_fraction: 0.25,
                min_full: 2,
                full_evals: 12,
                screened_out: 36,
                pairs: 12,
                spearman: Some(0.93),
                kendall: Some(0.81),
            },
            FidelityReport {
                tier: SurrogateTier::S1,
                keep_fraction: 1.0,
                min_full: 0,
                full_evals: 48,
                screened_out: 0,
                pairs: 0,
                spearman: None,
                kendall: None,
            },
        ] {
            let mut w = Writer::new();
            report.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(FidelityReport::decode(&mut r).unwrap(), report);
            assert!(r.is_done());
        }
    }
}
