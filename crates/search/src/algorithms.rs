//! The three search heuristics the paper evaluates (Figure 11): random
//! sampling, Linear Combination Swarm (LCS — Vizier's Bayesian-optimized
//! genetic/swarm algorithm), and a Bayesian optimizer (here a Tree-structured
//! Parzen Estimator over the discrete domains, standing in for Vizier's
//! default GP-based algorithm).

use crate::optimizer::{Optimizer, Trial, TrialResult};
use crate::snapshot::OptimizerState;
use crate::space::ParamSpace;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform random sampling.
#[derive(Debug, Default)]
pub struct RandomSearch;

impl RandomSearch {
    /// Creates a random-sampling optimizer.
    #[must_use]
    pub fn new() -> Self {
        RandomSearch
    }
}

impl Optimizer for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&mut self, space: &ParamSpace, rng: &mut StdRng) -> Vec<usize> {
        space.sample(rng)
    }

    fn observe(&mut self, _space: &ParamSpace, _trial: &Trial) {}

    fn save_state(&self) -> OptimizerState {
        OptimizerState::Random
    }

    fn load_state(&mut self, state: &OptimizerState) -> bool {
        matches!(state, OptimizerState::Random)
    }
}

/// Linear Combination Swarm: a population of particles; each proposal is a
/// per-dimension stochastic mix of the global best, a particle's personal
/// best, and mutation (Golovin et al., "Black box optimization via a
/// Bayesian-optimized genetic algorithm").
#[derive(Debug)]
pub struct LcsSwarm {
    population: usize,
    /// Personal bests: `(point, objective)` per particle.
    personal: Vec<Option<(Vec<usize>, f64)>>,
    global: Option<(Vec<usize>, f64)>,
    next_particle: usize,
    /// Probability of inheriting each dimension from the global best.
    pull_global: f64,
    /// Probability of mutating each dimension to a random neighbor.
    mutate: f64,
    pending: Vec<(usize, Vec<usize>)>,
}

impl LcsSwarm {
    /// Creates a swarm with `population` particles.
    #[must_use]
    pub fn new(population: usize) -> Self {
        LcsSwarm {
            population: population.max(2),
            personal: vec![None; population.max(2)],
            global: None,
            next_particle: 0,
            pull_global: 0.35,
            mutate: 0.15,
            pending: Vec::new(),
        }
    }
}

impl Default for LcsSwarm {
    fn default() -> Self {
        LcsSwarm::new(20)
    }
}

impl Optimizer for LcsSwarm {
    fn name(&self) -> &'static str {
        "LCS"
    }

    fn propose(&mut self, space: &ParamSpace, rng: &mut StdRng) -> Vec<usize> {
        let particle = self.next_particle;
        self.next_particle = (self.next_particle + 1) % self.population;

        let point = match (&self.personal[particle], &self.global) {
            (Some((pb, _)), Some((gb, _))) => {
                let mut p = Vec::with_capacity(space.len());
                for d in 0..space.len() {
                    let card = space.cardinality(d);
                    let r: f64 = rng.gen();
                    let idx = if r < self.mutate {
                        // Mutation: a ±1 neighbor step, clamped to the
                        // domain edges (so boundary indices step inward).
                        let step: i64 = if rng.gen() { 1 } else { -1 };
                        let raw = pb[d] as i64 + step;
                        raw.clamp(0, card as i64 - 1) as usize
                    } else if r < self.mutate + self.pull_global {
                        gb[d]
                    } else {
                        pb[d]
                    };
                    p.push(idx);
                }
                p
            }
            // Cold particle: explore uniformly.
            _ => space.sample(rng),
        };
        self.pending.push((particle, point.clone()));
        point
    }

    fn observe(&mut self, _space: &ParamSpace, trial: &Trial) {
        // Results arrive in proposal order (the study drivers' contract), so
        // the *earliest* pending entry with this point value is the proposing
        // particle. `Vec::remove` keeps the queue in FIFO order — a
        // `swap_remove` here would reorder duplicate proposals (common in
        // batched rounds on small domains) and attribute later results to
        // the wrong particle's personal best.
        let Some(pos) = self.pending.iter().position(|(_, p)| p == &trial.point) else {
            // A trial this swarm never proposed — an injected seed design
            // (prior injection). It belongs to no particle, but a valid one
            // still anchors the global best: in mostly-invalid spaces the
            // known-good seeds are the strongest early signal, and dropping
            // them would leave every particle cold-sampling until its own
            // proposals got lucky.
            if let TrialResult::Valid(obj) = trial.result {
                if self.global.as_ref().is_none_or(|(_, b)| obj > *b) {
                    self.global = Some((trial.point.clone(), obj));
                }
            }
            return;
        };
        let (particle, point) = self.pending.remove(pos);
        if let TrialResult::Valid(obj) = trial.result {
            let better_personal = self.personal[particle].as_ref().is_none_or(|(_, b)| obj > *b);
            if better_personal {
                self.personal[particle] = Some((point.clone(), obj));
            }
            let better_global = self.global.as_ref().is_none_or(|(_, b)| obj > *b);
            if better_global {
                self.global = Some((point, obj));
            }
        }
    }

    fn save_state(&self) -> OptimizerState {
        OptimizerState::Lcs {
            population: self.population,
            personal: self.personal.clone(),
            global: self.global.clone(),
            next_particle: self.next_particle,
            pull_global: self.pull_global,
            mutate: self.mutate,
            pending: self.pending.clone(),
        }
    }

    fn load_state(&mut self, state: &OptimizerState) -> bool {
        let OptimizerState::Lcs {
            population,
            personal,
            global,
            next_particle,
            pull_global,
            mutate,
            pending,
        } = state
        else {
            return false;
        };
        // Structural sanity: a state whose particle bookkeeping is
        // internally inconsistent cannot be adopted.
        if *population < 2
            || personal.len() != *population
            || *next_particle >= *population
            || pending.iter().any(|(p, _)| p >= population)
        {
            return false;
        }
        self.population = *population;
        self.personal = personal.clone();
        self.global = global.clone();
        self.next_particle = *next_particle;
        self.pull_global = *pull_global;
        self.mutate = *mutate;
        self.pending = pending.clone();
        true
    }
}

/// Tree-structured Parzen Estimator over discrete domains.
///
/// Valid trials are split into a "good" head (top `gamma` fraction by
/// objective) and a "bad" tail; per dimension, categorical densities with
/// Laplace smoothing model each group, and proposals maximize the density
/// ratio `l_good / l_bad` over a candidate batch. Invalid trials count as
/// bad, implementing safe search's pressure away from infeasible regions.
#[derive(Debug)]
pub struct Tpe {
    history: Vec<(Vec<usize>, Option<f64>)>,
    /// Fraction of valid trials treated as "good".
    gamma: f64,
    /// Number of candidates scored per proposal.
    candidates: usize,
    /// Trials before switching from uniform exploration.
    startup: usize,
}

impl Tpe {
    /// Creates a TPE optimizer with standard settings.
    #[must_use]
    pub fn new() -> Self {
        Tpe { history: Vec::new(), gamma: 0.25, candidates: 24, startup: 16 }
    }
}

impl Default for Tpe {
    fn default() -> Self {
        Tpe::new()
    }
}

impl Tpe {
    /// Per-dimension smoothed densities for a set of points.
    fn densities(points: &[&Vec<usize>], space: &ParamSpace) -> Vec<Vec<f64>> {
        (0..space.len())
            .map(|d| {
                let card = space.cardinality(d);
                let mut counts = vec![1.0f64; card]; // Laplace smoothing
                for p in points {
                    counts[p[d]] += 1.0;
                }
                let total: f64 = counts.iter().sum();
                counts.iter().map(|c| c / total).collect()
            })
            .collect()
    }
}

impl Optimizer for Tpe {
    fn name(&self) -> &'static str {
        "bayesian (TPE)"
    }

    fn propose(&mut self, space: &ParamSpace, rng: &mut StdRng) -> Vec<usize> {
        let valid: Vec<(&Vec<usize>, f64)> =
            self.history.iter().filter_map(|(p, o)| o.map(|o| (p, o))).collect();
        if self.history.len() < self.startup || valid.len() < 4 {
            return space.sample(rng);
        }
        // Split into good / bad.
        let mut sorted = valid;
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
        let n_good = ((sorted.len() as f64 * self.gamma).ceil() as usize).max(2);
        let good: Vec<&Vec<usize>> = sorted[..n_good].iter().map(|(p, _)| *p).collect();
        let mut bad: Vec<&Vec<usize>> = sorted[n_good..].iter().map(|(p, _)| *p).collect();
        // Invalid points join the bad density (safe search).
        bad.extend(self.history.iter().filter(|(_, o)| o.is_none()).map(|(p, _)| p));

        let good_d = Self::densities(&good, space);
        let bad_d = Self::densities(&bad, space);

        let mut best: Option<(f64, Vec<usize>)> = None;
        for _ in 0..self.candidates {
            // Sample a candidate from the good density.
            let mut cand = Vec::with_capacity(space.len());
            for dens in &good_d {
                let mut r: f64 = rng.gen();
                let mut idx = 0;
                for (i, &p) in dens.iter().enumerate() {
                    if r < p {
                        idx = i;
                        break;
                    }
                    r -= p;
                    idx = i;
                }
                cand.push(idx);
            }
            // Score by log density ratio.
            let score: f64 =
                (0..space.len()).map(|d| (good_d[d][cand[d]] / bad_d[d][cand[d]]).ln()).sum();
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, cand));
            }
        }
        best.expect("candidates > 0").1
    }

    fn observe(&mut self, _space: &ParamSpace, trial: &Trial) {
        self.history.push((trial.point.clone(), trial.result.objective()));
    }

    fn save_state(&self) -> OptimizerState {
        OptimizerState::Tpe {
            history: self.history.clone(),
            gamma: self.gamma,
            candidates: self.candidates,
            startup: self.startup,
        }
    }

    fn load_state(&mut self, state: &OptimizerState) -> bool {
        let OptimizerState::Tpe { history, gamma, candidates, startup } = state else {
            return false;
        };
        if *candidates == 0 {
            return false; // propose() requires at least one candidate
        }
        self.history = history.clone();
        self.gamma = *gamma;
        self.candidates = *candidates;
        self.startup = *startup;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A separable test objective: reward large indices on even dims, small
    /// on odd dims; reject a "forbidden" corner to exercise safe search.
    fn toy_objective(space: &ParamSpace, p: &[usize]) -> TrialResult {
        if p[0] == 0 && p[1] == 0 {
            return TrialResult::Invalid;
        }
        let score: f64 = (0..space.len())
            .map(|d| {
                let v = p[d] as f64 / (space.cardinality(d) - 1).max(1) as f64;
                if d % 2 == 0 {
                    v
                } else {
                    1.0 - v
                }
            })
            .sum();
        TrialResult::Valid(score)
    }

    fn toy_space() -> ParamSpace {
        let mut s = ParamSpace::new();
        for i in 0..6 {
            s.add(format!("p{i}"), crate::space::ParamDomain::Pow2 { min: 1, max: 128 });
        }
        s
    }

    fn run(opt: &mut dyn Optimizer, trials: usize, seed: u64) -> f64 {
        let space = toy_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..trials {
            let point = opt.propose(&space, &mut rng);
            let result = toy_objective(&space, &point);
            if let TrialResult::Valid(v) = result {
                best = best.max(v);
            }
            opt.observe(&space, &Trial { point, result });
        }
        best
    }

    #[test]
    fn all_optimizers_improve_over_time() {
        for mk in [
            || Box::new(RandomSearch::new()) as Box<dyn Optimizer>,
            || Box::new(LcsSwarm::default()) as Box<dyn Optimizer>,
            || Box::new(Tpe::new()) as Box<dyn Optimizer>,
        ] {
            let mut short = mk();
            let mut long = mk();
            let b_short = run(short.as_mut(), 20, 3);
            let b_long = run(long.as_mut(), 300, 3);
            assert!(b_long >= b_short, "{}: long {} < short {}", long.name(), b_long, b_short);
            assert!(b_long > 4.0, "{}: best {}", long.name(), b_long);
        }
    }

    #[test]
    fn guided_search_beats_random_on_average() {
        let trials = 150;
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let avg = |mk: &dyn Fn() -> Box<dyn Optimizer>| {
            seeds.iter().map(|&s| run(mk().as_mut(), trials, s)).sum::<f64>() / seeds.len() as f64
        };
        let random = avg(&|| Box::new(RandomSearch::new()));
        let lcs = avg(&|| Box::new(LcsSwarm::default()));
        let tpe = avg(&|| Box::new(Tpe::new()));
        assert!(lcs > random - 0.1, "lcs {lcs} vs random {random}");
        assert!(tpe > random - 0.1, "tpe {tpe} vs random {random}");
    }

    /// Regression: with duplicate proposals pending, results (which arrive
    /// in proposal order) must attribute FIFO to the proposing particles.
    /// The old code matched by point value with `swap_remove`, which
    /// reorders the queue: after observing the duplicate-free trials below,
    /// particle 3 received particle 2's result and vice versa.
    #[test]
    fn duplicate_proposals_attribute_personal_bests_fifo() {
        let mut swarm = LcsSwarm::new(4);
        let space = {
            let mut s = ParamSpace::new();
            s.add("x", crate::space::ParamDomain::Categorical { n: 2 });
            s
        };
        let p = vec![0usize];
        let q = vec![1usize];
        // A batched round in which particles 0, 2 and 3 proposed the same
        // point value (forced duplicates).
        swarm.pending = vec![(0, p.clone()), (1, q.clone()), (2, p.clone()), (3, p.clone())];
        for (point, obj) in [(p.clone(), 1.0), (q.clone(), 5.0), (p.clone(), 2.0), (p.clone(), 3.0)]
        {
            swarm.observe(&space, &Trial { point, result: TrialResult::Valid(obj) });
        }
        assert!(swarm.pending.is_empty());
        let personal: Vec<f64> = swarm.personal.iter().map(|pb| pb.as_ref().unwrap().1).collect();
        assert_eq!(personal, vec![1.0, 5.0, 2.0, 3.0], "FIFO attribution violated");
        assert_eq!(swarm.global.as_ref().unwrap().1, 5.0);
    }

    /// Trials the swarm never proposed (seed-design injections) update the
    /// global best — the prior-injection anchor — but never particle state.
    #[test]
    fn unproposed_trials_anchor_global_but_not_particles() {
        let mut swarm = LcsSwarm::new(2);
        let space = {
            let mut s = ParamSpace::new();
            s.add("x", crate::space::ParamDomain::Categorical { n: 4 });
            s
        };
        swarm.observe(&space, &Trial { point: vec![3], result: TrialResult::Valid(9.0) });
        assert!(swarm.personal.iter().all(Option::is_none));
        assert_eq!(swarm.global, Some((vec![3], 9.0)));
        // Invalid injected trials change nothing.
        swarm.observe(&space, &Trial { point: vec![1], result: TrialResult::Invalid });
        assert_eq!(swarm.global, Some((vec![3], 9.0)));
    }

    /// `save_state` → `load_state` into a fresh instance must transplant
    /// the algorithm exactly: both copies propose identically afterwards.
    #[test]
    fn save_load_state_transplants_each_algorithm() {
        let space = toy_space();
        type MkOpt = fn() -> Box<dyn Optimizer>;
        let makers: [MkOpt; 3] = [
            || Box::new(RandomSearch::new()) as Box<dyn Optimizer>,
            || Box::new(LcsSwarm::new(5)),
            || Box::new(Tpe::new()),
        ];
        for mk in makers {
            let mut original = mk();
            let _ = run(original.as_mut(), 40, 7);

            let mut clone = mk();
            assert!(clone.load_state(&original.save_state()), "{}", original.name());

            // Identical proposal streams from identical RNGs.
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            for _ in 0..20 {
                let pa = original.propose(&space, &mut rng_a);
                let pb = clone.propose(&space, &mut rng_b);
                assert_eq!(pa, pb, "{}", original.name());
                let ra = toy_objective(&space, &pa);
                original.observe(&space, &Trial { point: pa, result: ra });
                clone.observe(&space, &Trial { point: pb, result: ra });
            }
        }
    }

    #[test]
    fn load_state_rejects_foreign_or_inconsistent_states() {
        use crate::snapshot::OptimizerState;
        let mut lcs = LcsSwarm::new(4);
        assert!(!lcs.load_state(&OptimizerState::Random));
        assert!(!lcs.load_state(&OptimizerState::Opaque));
        // Internally inconsistent LCS state: pending references particle 9
        // of a 2-particle swarm.
        assert!(!lcs.load_state(&OptimizerState::Lcs {
            population: 2,
            personal: vec![None, None],
            global: None,
            next_particle: 0,
            pull_global: 0.3,
            mutate: 0.1,
            pending: vec![(9, vec![0])],
        }));
        let mut tpe = Tpe::new();
        assert!(!tpe.load_state(&OptimizerState::Random));
        let mut random = RandomSearch::new();
        assert!(random.load_state(&OptimizerState::Random));
        assert!(!random.load_state(&OptimizerState::Opaque));
    }

    #[test]
    fn proposals_stay_in_space() {
        let space = toy_space();
        let mut rng = StdRng::seed_from_u64(11);
        for mut opt in [
            Box::new(RandomSearch::new()) as Box<dyn Optimizer>,
            Box::new(LcsSwarm::new(5)),
            Box::new(Tpe::new()),
        ] {
            for _ in 0..100 {
                let p = opt.propose(&space, &mut rng);
                assert!(space.contains(&p), "{} out of space", opt.name());
                let result = toy_objective(&space, &p);
                opt.observe(&space, &Trial { point: p, result });
            }
        }
    }
}
