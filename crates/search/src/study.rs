//! The scalar study types: [`StudyResult`], the [`trial_rng`] determinism
//! contract, and convergence-band aggregation (Figure 11).
//!
//! The driver functions that used to live here (`run_study`,
//! `run_study_batched`, `run_study_batched_resumable`) are gone — the
//! unified [`crate::builder::Study`] builder is the one spelling of a
//! study (`Study::new(space, n).seed(s).run(optimizer, eval)`, with
//! [`crate::builder::Execution`] and [`crate::builder::Durability`] as the
//! orthogonal axes).

use crate::optimizer::Trial;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of one study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyResult {
    /// Optimizer name.
    pub optimizer: String,
    /// Best point found (index encoding), if any trial was valid.
    pub best_point: Option<Vec<usize>>,
    /// Best objective found.
    pub best_objective: Option<f64>,
    /// Best-so-far objective after each trial (`NaN` until first valid).
    pub convergence: Vec<f64>,
    /// Number of invalid (rejected) trials.
    pub invalid_trials: usize,
    /// All trials in order.
    pub trials: Vec<Trial>,
}

/// Derives the dedicated RNG of one trial from the study seed and the
/// trial's global index.
///
/// This is the determinism contract of batched/parallel studies: a trial's
/// random stream depends only on `(seed, trial_index)`, never on thread
/// scheduling or batch boundaries, so a parallel run reproduces the serial
/// run trial for trial. SplitMix64 mixing keeps nearby `(seed, index)` pairs
/// statistically unrelated.
#[must_use]
pub fn trial_rng(seed: u64, trial_index: usize) -> StdRng {
    let mut x = seed ^ (trial_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(x ^ (x >> 31))
}

/// Aggregates convergence curves from repeated runs: per-trial mean and a
/// normal-approximation confidence interval (Figure 11 plots mean and the
/// 90 % CI across 5 runs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceBand {
    /// Per-trial mean of best-so-far.
    pub mean: Vec<f64>,
    /// Per-trial lower CI bound.
    pub lo: Vec<f64>,
    /// Per-trial upper CI bound.
    pub hi: Vec<f64>,
}

/// Builds a [`ConvergenceBand`] from several convergence curves.
///
/// `z` is the normal quantile (1.645 for a 90 % interval). Trials where some
/// run has no valid incumbent yet (`NaN`) are averaged over the runs that do.
///
/// Curves may be *ragged* (unequal lengths): the band extends to the longest
/// curve, and position `t` aggregates only the curves that reach `t`. The
/// tail of the band therefore reflects fewer runs than the head — its CI
/// widens accordingly (smaller `n` in the standard error), and the mean can
/// step when a short run drops out. Callers comparing optimizers on equal
/// footing should pass equal-length curves (one per seed at a fixed trial
/// budget, as [`crate::builder::Study`] produces); the ragged behavior
/// exists for aggregating runs truncated by external budgets.
#[must_use]
pub fn convergence_band(curves: &[Vec<f64>], z: f64) -> ConvergenceBand {
    let len = curves.iter().map(Vec::len).max().unwrap_or(0);
    let mut mean = Vec::with_capacity(len);
    let mut lo = Vec::with_capacity(len);
    let mut hi = Vec::with_capacity(len);
    for t in 0..len {
        let vals: Vec<f64> =
            curves.iter().filter_map(|c| c.get(t).copied()).filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            mean.push(f64::NAN);
            lo.push(f64::NAN);
            hi.push(f64::NAN);
            continue;
        }
        let m = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - m).powi(2)).sum::<f64>()
            / (vals.len().saturating_sub(1).max(1)) as f64;
        let se = (var / vals.len() as f64).sqrt();
        mean.push(m);
        lo.push(m - z * se);
        hi.push(m + z * se);
    }
    ConvergenceBand { mean, lo, hi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{LcsSwarm, RandomSearch};
    use crate::builder::{Execution, RoundSnapshot, Study, StudyEval};
    use crate::optimizer::{Optimizer, TrialResult};
    use crate::pareto::MultiObjective;
    use crate::snapshot::StudyCheckpoint;
    use crate::space::{ParamDomain, ParamSpace};

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add("x", ParamDomain::Pow2 { min: 1, max: 1024 });
        s.add("y", ParamDomain::Pow2 { min: 1, max: 1024 });
        s
    }

    /// Sequential scalar study in the one modern spelling.
    fn run_scalar(
        space: &ParamSpace,
        optimizer: &mut dyn Optimizer,
        n_trials: usize,
        seed: u64,
        mut objective: impl FnMut(&[usize]) -> TrialResult,
    ) -> StudyResult {
        let mut eval = |p: &[usize]| MultiObjective::from(objective(p));
        Study::new(space, n_trials)
            .seed(seed)
            .run(optimizer, StudyEval::points(&mut eval))
            .expect("valid study configuration")
            .into_study_result()
    }

    /// Batched scalar study in the one modern spelling.
    fn run_batched(
        space: &ParamSpace,
        optimizer: &mut dyn Optimizer,
        n_trials: usize,
        batch_size: usize,
        seed: u64,
        mut evaluate_batch: impl FnMut(&[Vec<usize>]) -> Vec<TrialResult>,
    ) -> StudyResult {
        let mut eval = |points: &[Vec<usize>]| {
            evaluate_batch(points).into_iter().map(MultiObjective::from).collect::<Vec<_>>()
        };
        Study::new(space, n_trials)
            .seed(seed)
            .execution(Execution::Batched { batch_size })
            .run(optimizer, StudyEval::batch(&mut eval))
            .expect("valid study configuration")
            .into_study_result()
    }

    /// Batched scalar study with programmatic round snapshots — the
    /// in-memory counterpart of `Durability::Checkpointed`.
    #[allow(clippy::too_many_arguments)]
    fn run_resumable(
        space: &ParamSpace,
        optimizer: &mut dyn Optimizer,
        n_trials: usize,
        batch_size: usize,
        seed: u64,
        resume_from: Option<StudyCheckpoint>,
        mut evaluate_batch: impl FnMut(&[Vec<usize>]) -> Vec<TrialResult>,
        mut on_round: impl FnMut(&StudyCheckpoint),
    ) -> StudyResult {
        let mut eval = |points: &[Vec<usize>]| {
            evaluate_batch(points).into_iter().map(MultiObjective::from).collect::<Vec<_>>()
        };
        let mut hook = |_p: &crate::StudyProgress, make: &dyn Fn() -> RoundSnapshot| {
            let RoundSnapshot::Scalar(ck) = make() else {
                unreachable!("a single-objective study emits scalar snapshots")
            };
            on_round(&ck);
        };
        Study::new(space, n_trials)
            .seed(seed)
            .execution(Execution::Batched { batch_size })
            .run_hooked(
                optimizer,
                StudyEval::batch(&mut eval),
                None,
                resume_from.map(RoundSnapshot::Scalar),
                Some(&mut hook),
            )
            .into_study_result()
    }

    #[test]
    fn study_tracks_best_so_far_monotonically() {
        let s = space();
        let mut opt = RandomSearch::new();
        let res = run_scalar(&s, &mut opt, 2000, 42, |p| TrialResult::Valid((p[0] + p[1]) as f64));
        assert_eq!(res.convergence.len(), 2000);
        for w in res.convergence.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(res.best_objective, Some(20.0)); // both at index 10
        assert_eq!(res.invalid_trials, 0);
    }

    #[test]
    fn study_counts_invalid_trials() {
        let s = space();
        let mut opt = RandomSearch::new();
        let res = run_scalar(&s, &mut opt, 100, 1, |p| {
            if p[0] > 5 {
                TrialResult::Invalid
            } else {
                TrialResult::Valid(p[0] as f64)
            }
        });
        assert!(res.invalid_trials > 0);
        assert!(res.best_objective.unwrap() <= 5.0);
    }

    #[test]
    fn reproducible_given_seed() {
        let s = space();
        let run = |seed| {
            let mut opt = LcsSwarm::default();
            run_scalar(&s, &mut opt, 100, seed, |p| TrialResult::Valid(p[0] as f64)).best_objective
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn trial_rng_is_deterministic_and_distinct() {
        use rand::RngCore as _;
        assert_eq!(trial_rng(9, 4).next_u64(), trial_rng(9, 4).next_u64());
        assert_ne!(trial_rng(9, 4).next_u64(), trial_rng(9, 5).next_u64());
        assert_ne!(trial_rng(9, 4).next_u64(), trial_rng(10, 4).next_u64());
    }

    #[test]
    fn batched_study_is_invariant_to_batch_size_for_random_search() {
        // Random search ignores history, so with per-trial RNGs the proposal
        // sequence — and therefore the whole study — must not depend on how
        // trials are grouped into batches.
        let s = space();
        let run = |batch| {
            let mut opt = RandomSearch::new();
            run_batched(&s, &mut opt, 97, batch, 5, |points| {
                points.iter().map(|p| TrialResult::Valid((p[0] * 3 + p[1]) as f64)).collect()
            })
        };
        let a = run(1);
        for batch in [2, 16, 97, 1000] {
            let b = run(batch);
            assert_eq!(a.best_point, b.best_point, "batch {batch}");
            assert_eq!(a.convergence, b.convergence, "batch {batch}");
            assert_eq!(
                a.trials.iter().map(|t| &t.point).collect::<Vec<_>>(),
                b.trials.iter().map(|t| &t.point).collect::<Vec<_>>(),
                "batch {batch}"
            );
        }
    }

    #[test]
    fn batched_study_observes_every_trial() {
        struct Counting {
            observed: usize,
            proposed: usize,
        }
        impl Optimizer for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn propose(&mut self, space: &ParamSpace, rng: &mut StdRng) -> Vec<usize> {
                self.proposed += 1;
                space.sample(rng)
            }
            fn observe(&mut self, _space: &ParamSpace, _trial: &Trial) {
                self.observed += 1;
            }
        }
        let s = space();
        let mut opt = Counting { observed: 0, proposed: 0 };
        let res = run_batched(&s, &mut opt, 23, 4, 0, |points| {
            points.iter().map(|_| TrialResult::Invalid).collect()
        });
        assert_eq!(opt.proposed, 23);
        assert_eq!(opt.observed, 23);
        assert_eq!(res.invalid_trials, 23);
        assert_eq!(res.trials.len(), 23);
        assert!(res.best_point.is_none());
    }

    #[test]
    fn batched_study_matches_lcs_regardless_of_evaluation_order() {
        // For history-driven optimizers the guarantee is: same batch size,
        // same seed => same study, no matter how the evaluator computes a
        // round (the driver may parallelize internally).
        let s = space();
        let run = || {
            let mut opt = LcsSwarm::default();
            run_batched(&s, &mut opt, 80, 8, 11, |points| {
                points.iter().map(|p| TrialResult::Valid((p[0] + p[1]) as f64)).collect()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.convergence, b.convergence);
    }

    /// Scalar counterpart of the Pareto durability contract: checkpoint,
    /// resume with a fresh optimizer, end bit-identical.
    #[test]
    fn scalar_resumed_study_matches_uninterrupted() {
        use crate::snapshot::StudyCheckpoint;
        let s = space();
        let objective = |pts: &[Vec<usize>]| -> Vec<TrialResult> {
            pts.iter()
                .map(|p| {
                    if p[0] > 512 {
                        TrialResult::Invalid
                    } else {
                        TrialResult::Valid((p[0] + 2 * p[1]) as f64)
                    }
                })
                .collect()
        };
        let mut straight_opt = LcsSwarm::default();
        let straight = run_batched(&s, &mut straight_opt, 50, 5, 17, objective);

        let mut checkpoints: Vec<StudyCheckpoint> = Vec::new();
        let mut first = LcsSwarm::default();
        let _ = run_resumable(&s, &mut first, 25, 5, 17, None, objective, |ck| {
            checkpoints.push(ck.clone());
        });
        let ck = checkpoints.last().unwrap().clone();
        assert_eq!(ck.trials_done(), 25);

        let mut resumed_opt = LcsSwarm::default();
        let resumed = run_resumable(&s, &mut resumed_opt, 50, 5, 17, Some(ck), objective, |_| {});
        assert_eq!(resumed.best_point, straight.best_point);
        assert_eq!(resumed.convergence, straight.convergence);
        assert_eq!(resumed.trials, straight.trials);
        assert_eq!(resumed.invalid_trials, straight.invalid_trials);
    }

    /// Extending a study whose final round was partial would regroup the
    /// remaining trials into different rounds than an uninterrupted longer
    /// run — the driver must refuse rather than silently diverge.
    #[test]
    #[should_panic(expected = "not a round boundary")]
    fn resume_rejects_checkpoints_off_the_round_grid() {
        use crate::snapshot::StudyCheckpoint;
        let s = space();
        let objective =
            |pts: &[Vec<usize>]| -> Vec<TrialResult> { vec![TrialResult::Invalid; pts.len()] };
        // 10 trials in rounds of 4: the final checkpoint sits at 10, which
        // is a completed study but not a multiple of 4.
        let mut checkpoints: Vec<StudyCheckpoint> = Vec::new();
        let mut opt = RandomSearch::new();
        let _ = run_resumable(&s, &mut opt, 10, 4, 3, None, objective, |ck| {
            checkpoints.push(ck.clone());
        });
        let ck = checkpoints.pop().unwrap();
        assert_eq!(ck.trials_done(), 10);
        // Extending the budget to 20 from that checkpoint must panic.
        let mut opt2 = RandomSearch::new();
        let _ = run_resumable(&s, &mut opt2, 20, 4, 3, Some(ck), objective, |_| {});
    }

    #[test]
    fn band_statistics() {
        let curves = vec![vec![1.0, 2.0, 3.0], vec![3.0, 4.0, 5.0]];
        let band = convergence_band(&curves, 1.645);
        assert!((band.mean[0] - 2.0).abs() < 1e-12);
        assert!((band.mean[2] - 4.0).abs() < 1e-12);
        assert!(band.lo[0] < band.mean[0] && band.mean[0] < band.hi[0]);
    }

    /// The documented ragged behavior: positions past a short curve's end
    /// aggregate only the longer curves, so the tail mean tracks the
    /// surviving runs (and the single-run tail has a zero-width CI).
    #[test]
    fn band_ragged_curves_average_over_runs_that_reach_t() {
        let curves = vec![vec![1.0, 2.0], vec![3.0, 4.0, 10.0]];
        let band = convergence_band(&curves, 1.645);
        assert_eq!(band.mean.len(), 3, "band extends to the longest curve");
        assert!((band.mean[0] - 2.0).abs() < 1e-12);
        assert!((band.mean[1] - 3.0).abs() < 1e-12);
        // t = 2: only the long run remains.
        assert!((band.mean[2] - 10.0).abs() < 1e-12);
        assert!((band.lo[2] - 10.0).abs() < 1e-12, "single-run tail has zero-width CI");
        assert!((band.hi[2] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn band_handles_nan_prefix() {
        let curves = vec![vec![f64::NAN, 2.0], vec![1.0, 4.0]];
        let band = convergence_band(&curves, 1.0);
        assert!((band.mean[0] - 1.0).abs() < 1e-12);
        assert!((band.mean[1] - 3.0).abs() < 1e-12);
    }
}
