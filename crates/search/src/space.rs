//! Search-space definition: named parameters with discrete domains.
//!
//! All FAST parameters are discrete (Table 3: powers of two, enums, booleans),
//! so points are encoded as dense index vectors — one index per parameter into
//! its ordered domain. This makes every optimizer representation-agnostic.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The domain of one parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamDomain {
    /// Powers of two in `[min, max]` (inclusive), e.g. `1, 2, …, 256`.
    Pow2 {
        /// Smallest admissible value (must itself be a power of two).
        min: u64,
        /// Largest admissible value (must itself be a power of two).
        max: u64,
    },
    /// Zero plus powers of two in `[min, max]` (the Global-Memory size).
    Pow2OrZero {
        /// Smallest nonzero value.
        min: u64,
        /// Largest value.
        max: u64,
    },
    /// A categorical choice with `n` alternatives.
    Categorical {
        /// Number of alternatives.
        n: usize,
    },
    /// A boolean flag.
    Bool,
}

impl ParamDomain {
    /// Checks the domain is well-formed: power-of-two bounds with
    /// `min <= max` for the `Pow2` shapes, at least one alternative for
    /// `Categorical`.
    ///
    /// [`ParamSpace::add`] enforces this at construction time and
    /// [`ParamDomain::cardinality`] re-asserts it at use (closing the
    /// deserialization path around `add`), so an optimizer can never observe
    /// an ill-formed domain; call it directly when constructing domains from
    /// untrusted input. Without the check, `cardinality` would underflow its
    /// `trailing_zeros` subtraction for `min > max` and silently mis-count
    /// for non-power-of-two bounds (`trailing_zeros` only measures the
    /// lowest set bit).
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ParamDomain::Pow2 { min, max } | ParamDomain::Pow2OrZero { min, max } => {
                if !min.is_power_of_two() {
                    return Err(format!("min {min} is not a power of two"));
                }
                if !max.is_power_of_two() {
                    return Err(format!("max {max} is not a power of two"));
                }
                if min > max {
                    return Err(format!("empty domain: min {min} > max {max}"));
                }
                Ok(())
            }
            ParamDomain::Categorical { n } => {
                if *n == 0 {
                    return Err("categorical domain needs at least one alternative".to_string());
                }
                Ok(())
            }
            ParamDomain::Bool => Ok(()),
        }
    }

    /// Number of admissible values.
    ///
    /// # Panics
    /// Panics if the domain fails [`ParamDomain::validate`].
    /// [`ParamSpace::add`] rejects ill-formed domains up front, but a
    /// domain can reach this method without passing through `add` (e.g. a
    /// deserialized space, which bypasses construction-time checks), so the
    /// guard is unconditional — the check is a handful of integer branches
    /// and allocates nothing when the domain is well-formed.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        if let Err(e) = self.validate() {
            panic!("cardinality of invalid domain {self:?}: {e}");
        }
        match self {
            ParamDomain::Pow2 { min, max } => {
                (max.trailing_zeros() - min.trailing_zeros() + 1) as usize
            }
            ParamDomain::Pow2OrZero { min, max } => {
                (max.trailing_zeros() - min.trailing_zeros() + 2) as usize
            }
            ParamDomain::Categorical { n } => *n,
            ParamDomain::Bool => 2,
        }
    }

    /// The numeric value at ordinal `index`.
    ///
    /// For categorical/bool domains this is the index itself.
    ///
    /// # Panics
    /// Panics if `index >= cardinality()`.
    #[must_use]
    pub fn value(&self, index: usize) -> u64 {
        assert!(index < self.cardinality(), "index {index} out of domain");
        match self {
            ParamDomain::Pow2 { min, .. } => min << index,
            ParamDomain::Pow2OrZero { min, .. } => {
                if index == 0 {
                    0
                } else {
                    min << (index - 1)
                }
            }
            ParamDomain::Categorical { .. } | ParamDomain::Bool => index as u64,
        }
    }
}

/// A named parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamDef {
    /// Display name.
    pub name: String,
    /// Domain.
    pub domain: ParamDomain,
}

/// An ordered collection of parameters; points are index vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
}

impl ParamSpace {
    /// Creates an empty space.
    #[must_use]
    pub fn new() -> Self {
        ParamSpace { params: Vec::new() }
    }

    /// Adds a parameter, returning its dimension index.
    ///
    /// # Panics
    /// Panics with a description of the violation if the domain is
    /// ill-formed (see [`ParamDomain::validate`]) — catching, at
    /// construction time, bounds that would otherwise corrupt every
    /// cardinality-dependent computation downstream.
    pub fn add(&mut self, name: impl Into<String>, domain: ParamDomain) -> usize {
        let name = name.into();
        if let Err(e) = domain.validate() {
            panic!("invalid domain for parameter {name:?}: {e}");
        }
        self.params.push(ParamDef { name, domain });
        self.params.len() - 1
    }

    /// The parameter definitions.
    #[must_use]
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Number of dimensions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Cardinality of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim` is out of range.
    #[must_use]
    pub fn cardinality(&self, dim: usize) -> usize {
        self.params[dim].domain.cardinality()
    }

    /// Numeric value of dimension `dim` at a point.
    ///
    /// # Panics
    /// Panics if `dim` or the index is out of range.
    #[must_use]
    pub fn value(&self, point: &[usize], dim: usize) -> u64 {
        self.params[dim].domain.value(point[dim])
    }

    /// log10 of the number of points in the space.
    #[must_use]
    pub fn log10_size(&self) -> f64 {
        self.params.iter().map(|p| (p.domain.cardinality() as f64).log10()).sum()
    }

    /// Samples a uniform random point.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        self.params.iter().map(|p| rng.gen_range(0..p.domain.cardinality())).collect()
    }

    /// Checks that a point is within the space.
    #[must_use]
    pub fn contains(&self, point: &[usize]) -> bool {
        point.len() == self.params.len()
            && point.iter().zip(&self.params).all(|(&i, p)| i < p.domain.cardinality())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pow2_domain() {
        let d = ParamDomain::Pow2 { min: 1, max: 256 };
        assert_eq!(d.cardinality(), 9);
        assert_eq!(d.value(0), 1);
        assert_eq!(d.value(8), 256);
        let d = ParamDomain::Pow2 { min: 4, max: 64 };
        assert_eq!(d.cardinality(), 5);
        assert_eq!(d.value(2), 16);
    }

    #[test]
    fn pow2_or_zero_domain() {
        let d = ParamDomain::Pow2OrZero { min: 1, max: 256 };
        assert_eq!(d.cardinality(), 10);
        assert_eq!(d.value(0), 0);
        assert_eq!(d.value(1), 1);
        assert_eq!(d.value(9), 256);
    }

    #[test]
    fn space_sampling_and_values() {
        let mut s = ParamSpace::new();
        let a = s.add("a", ParamDomain::Pow2 { min: 1, max: 8 });
        let b = s.add("b", ParamDomain::Bool);
        let c = s.add("c", ParamDomain::Categorical { n: 3 });
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let p = s.sample(&mut rng);
            assert!(s.contains(&p));
            assert!(s.value(&p, a) <= 8);
            assert!(s.value(&p, b) <= 1);
            assert!(s.value(&p, c) <= 2);
        }
        assert!((s.log10_size() - (4.0f64 * 2.0 * 3.0).log10()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn value_out_of_range_panics() {
        let d = ParamDomain::Bool;
        let _ = d.value(2);
    }

    #[test]
    fn validate_catches_ill_formed_domains() {
        // min > max: would underflow the trailing_zeros subtraction.
        assert!(ParamDomain::Pow2 { min: 64, max: 8 }.validate().is_err());
        assert!(ParamDomain::Pow2OrZero { min: 512, max: 256 }.validate().is_err());
        // Non-power-of-two bounds: trailing_zeros would silently mis-count
        // (e.g. 12 = 0b1100 has 2 trailing zeros, counting as if it were 4).
        assert!(ParamDomain::Pow2 { min: 1, max: 12 }.validate().is_err());
        assert!(ParamDomain::Pow2 { min: 3, max: 16 }.validate().is_err());
        assert!(ParamDomain::Pow2 { min: 0, max: 16 }.validate().is_err());
        assert!(ParamDomain::Categorical { n: 0 }.validate().is_err());
        // Well-formed shapes pass.
        assert!(ParamDomain::Pow2 { min: 4, max: 4 }.validate().is_ok());
        assert!(ParamDomain::Pow2OrZero { min: 1, max: 256 }.validate().is_ok());
        assert!(ParamDomain::Categorical { n: 1 }.validate().is_ok());
        assert!(ParamDomain::Bool.validate().is_ok());
    }

    /// The use-site guard: a domain that never went through
    /// `ParamSpace::add` (e.g. deserialized) still fails loudly instead of
    /// underflowing.
    #[test]
    #[should_panic(expected = "cardinality of invalid domain")]
    fn cardinality_of_invalid_domain_panics() {
        let _ = ParamDomain::Pow2 { min: 64, max: 8 }.cardinality();
    }

    #[test]
    #[should_panic(expected = "invalid domain for parameter \"bad\": empty domain: min 64 > max 8")]
    fn add_rejects_inverted_bounds() {
        let mut s = ParamSpace::new();
        s.add("bad", ParamDomain::Pow2 { min: 64, max: 8 });
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn add_rejects_non_pow2_bounds() {
        let mut s = ParamSpace::new();
        s.add("bad", ParamDomain::Pow2 { min: 1, max: 100 });
    }
}
