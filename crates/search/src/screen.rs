//! The fidelity axis: multi-fidelity screening of proposal rounds.
//!
//! Cold evaluations pay the full simulation pipeline even for candidates
//! the search will immediately discard. [`Fidelity::Screened`] puts a cheap
//! surrogate in front of the evaluator: every proposal in a round is scored
//! by a [`Screener`], only the top-ranked fraction reaches the real
//! evaluator, and the rest are recorded as
//! [`crate::MultiObjective::Surrogate`] outcomes — counted, observed by the
//! optimizer as rejections, but **never** admitted to the incumbent or the
//! Pareto archive, so every reported frontier point is fully simulated.
//!
//! [`Fidelity::Exact`] (the default) is the bit-identical escape hatch:
//! the study runs exactly as it did before the axis existed.

use crate::stats::{kendall_tau, spearman_rank};
use std::fmt;

/// Which surrogate predictor a screened study ranks proposals with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SurrogateTier {
    /// Analytical roofline bound: per-workload latency lower bounds from
    /// operational-intensity statistics and the candidate's peak compute /
    /// bandwidth. No fitting, usable from the first round.
    S0,
    /// Online predictor fitted from accumulated true evaluations (ridge
    /// regression over roofline-derived features); falls back to the S0
    /// bound until enough observations accumulate.
    S1,
}

impl SurrogateTier {
    /// Display label (`s0` / `s1`, the CLI spelling).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SurrogateTier::S0 => "s0",
            SurrogateTier::S1 => "s1",
        }
    }

    /// The tier named `name` (the lowercase CLI spelling), if any.
    #[must_use]
    pub fn by_name(name: &str) -> Option<SurrogateTier> {
        match name {
            "s0" => Some(SurrogateTier::S0),
            "s1" => Some(SurrogateTier::S1),
            _ => None,
        }
    }
}

impl fmt::Display for SurrogateTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The fidelity axis of a [`crate::Study`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Fidelity {
    /// Every proposal is fully evaluated — bit-identical to a study built
    /// before the fidelity axis existed.
    #[default]
    Exact,
    /// Rank each proposal round with a surrogate and fully evaluate only
    /// the top fraction; the rest are recorded with their surrogate scores
    /// as low-fidelity outcomes.
    Screened {
        /// Fraction of each round that reaches the real evaluator, in
        /// `(0, 1]`. `1.0` degenerates to [`Fidelity::Exact`] trial-for-trial
        /// (every proposal is evaluated; only the fidelity report differs).
        keep_fraction: f64,
        /// Lower bound on fully evaluated proposals per round, whatever the
        /// fraction says (keeps tiny fractions from starving the optimizer
        /// of true observations).
        min_full: usize,
        /// Which surrogate ranks the round.
        tier: SurrogateTier,
    },
}

impl Fidelity {
    /// Fully evaluated proposals of a screened round of `round` candidates:
    /// `max(min_full, ceil(keep_fraction * round))`, clamped to `[1, round]`.
    #[must_use]
    pub(crate) fn keep_of_round(&self, round: usize) -> usize {
        match *self {
            Fidelity::Exact => round,
            Fidelity::Screened { keep_fraction, min_full, .. } => {
                let by_fraction = (keep_fraction * round as f64).ceil() as usize;
                by_fraction.max(min_full).clamp(1, round)
            }
        }
    }
}

/// A surrogate predictor that ranks proposals for a screened study.
///
/// Implementations must be **deterministic**: `score` is a pure function of
/// the point and the observations fed through `observe` so far — the
/// screened trial sequence is part of the study's reproducibility contract
/// (same seed, same screener state ⇒ same kept set).
pub trait Screener {
    /// Whether scores are meaningful yet. Rounds proposed while the
    /// screener is warming up are fully evaluated (and observed), which is
    /// how an online tier accumulates its training set.
    fn ready(&self) -> bool;

    /// Predicted guide objective of `point` — only the induced *ranking*
    /// matters. Return [`f64::NEG_INFINITY`] for points the surrogate can
    /// already tell are infeasible.
    fn score(&self, point: &[usize]) -> f64;

    /// Feeds one fully evaluated outcome back: `Some(guide)` for a valid
    /// trial, `None` for a rejection. Called for every trial that reached
    /// the real evaluator, in proposal order.
    fn observe(&mut self, point: &[usize], guide: Option<f64>);

    /// Serializes the fitted state (checkpoint payload). Stateless
    /// screeners return an empty vector.
    fn save_state(&self) -> Vec<u8>;

    /// Restores state saved by [`Screener::save_state`]. Returns `false` if
    /// the bytes do not belong to this screener configuration — the caller
    /// then rebuilds the state by replaying the recorded trials through
    /// [`Screener::observe`].
    fn load_state(&mut self, bytes: &[u8]) -> bool;
}

/// What screening did during a run — attached to
/// [`crate::StudyReport::fidelity`] for every screened study.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityReport {
    /// The surrogate tier that ranked the rounds.
    pub tier: SurrogateTier,
    /// The configured keep fraction.
    pub keep_fraction: f64,
    /// The configured per-round floor of full evaluations.
    pub min_full: usize,
    /// Trials that reached the real evaluator.
    pub full_evals: usize,
    /// Trials recorded with surrogate scores instead of full evaluations.
    pub screened_out: usize,
    /// Number of (surrogate score, true objective) pairs accumulated —
    /// one per fully evaluated *valid* trial scored while the screener was
    /// ready.
    pub pairs: usize,
    /// Spearman rank correlation of surrogate scores against true
    /// objectives over those pairs (`None` below two pairs or for a
    /// degenerate sample).
    pub spearman: Option<f64>,
    /// Kendall τ-b over the same pairs (tie-robust cross-check).
    pub kendall: Option<f64>,
}

impl FidelityReport {
    /// `full_evals : total trials` expressed as the savings factor — how
    /// many times fewer full simulations ran than an exact study of the
    /// same budget would have paid. `1.0` when nothing was screened.
    #[must_use]
    pub fn savings_factor(&self) -> f64 {
        let total = self.full_evals + self.screened_out;
        if self.full_evals == 0 {
            return 1.0;
        }
        total as f64 / self.full_evals as f64
    }
}

/// The engine-side screening state threaded through a screened run: the
/// screener plus the accumulated counters and correlation pairs. Lives in
/// this module so the checkpoint layer can rebuild it field-for-field.
pub(crate) struct ScreenEngine<'c> {
    pub(crate) screener: &'c mut dyn Screener,
    pub(crate) fidelity: Fidelity,
    pub(crate) full_evals: usize,
    pub(crate) screened_out: usize,
    /// `(surrogate score, true guide)` per fully evaluated valid trial that
    /// was scored while the screener was ready.
    pub(crate) pairs: Vec<(f64, f64)>,
}

impl<'c> ScreenEngine<'c> {
    pub(crate) fn new(screener: &'c mut dyn Screener, fidelity: Fidelity) -> Self {
        ScreenEngine { screener, fidelity, full_evals: 0, screened_out: 0, pairs: Vec::new() }
    }

    /// The report of the accumulated screening activity.
    pub(crate) fn report(&self) -> FidelityReport {
        let Fidelity::Screened { keep_fraction, min_full, tier } = self.fidelity else {
            unreachable!("ScreenEngine only exists for screened studies")
        };
        let (xs, ys): (Vec<f64>, Vec<f64>) = self.pairs.iter().copied().unzip();
        FidelityReport {
            tier,
            keep_fraction,
            min_full,
            full_evals: self.full_evals,
            screened_out: self.screened_out,
            pairs: self.pairs.len(),
            spearman: spearman_rank(&xs, &ys),
            kendall: kendall_tau(&xs, &ys),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_of_round_clamps_and_floors() {
        let screened = |keep_fraction, min_full| Fidelity::Screened {
            keep_fraction,
            min_full,
            tier: SurrogateTier::S0,
        };
        assert_eq!(Fidelity::Exact.keep_of_round(16), 16);
        assert_eq!(screened(0.125, 0).keep_of_round(16), 2);
        assert_eq!(screened(0.125, 4).keep_of_round(16), 4);
        // ceil: 0.1 * 8 = 0.8 -> 1.
        assert_eq!(screened(0.1, 0).keep_of_round(8), 1);
        // The floor never exceeds the round.
        assert_eq!(screened(0.1, 100).keep_of_round(8), 8);
        assert_eq!(screened(1.0, 0).keep_of_round(8), 8);
        // A round of one always keeps its candidate.
        assert_eq!(screened(0.01, 0).keep_of_round(1), 1);
    }

    #[test]
    fn tier_labels_round_trip() {
        for tier in [SurrogateTier::S0, SurrogateTier::S1] {
            assert_eq!(SurrogateTier::by_name(tier.label()), Some(tier));
            assert_eq!(format!("{tier}"), tier.label());
        }
        assert_eq!(SurrogateTier::by_name("s2"), None);
    }

    #[test]
    fn savings_factor_counts_screened_share() {
        let report = FidelityReport {
            tier: SurrogateTier::S0,
            keep_fraction: 0.25,
            min_full: 1,
            full_evals: 10,
            screened_out: 40,
            pairs: 10,
            spearman: Some(0.9),
            kendall: Some(0.8),
        };
        let factor = report.savings_factor();
        assert!((factor - 5.0).abs() < 1e-12, "factor = {factor}");
    }
}
