//! The unified study driver: one builder, one `run`, every axis.
//!
//! The paper's methodology is a single loop — propose, evaluate, observe —
//! parameterized by objective, execution strategy, and durability. Earlier
//! revisions of this crate exposed that loop through a cross-product of free
//! functions (`run_study`, `run_study_batched`, `run_study_pareto_batched`,
//! `run_study_*_resumable`, …) that doubled with every new axis. [`Study`]
//! replaces them with orthogonal, independently-settable axes:
//!
//! * [`Study::objective`] — [`StudyObjective::Single`] (the scalar incumbent
//!   study) or [`StudyObjective::Pareto`] (a [`ParetoArchive`] over ≥ 2
//!   metric directions);
//! * [`Study::execution`] — [`Execution::Sequential`] (one shared RNG, the
//!   classic propose→evaluate→observe loop), [`Execution::Batched`] (rounds
//!   of per-trial [`trial_rng`] proposals) or [`Execution::Parallel`]
//!   (batched rounds evaluated concurrently);
//! * [`Study::durability`] — [`Durability::Ephemeral`] or
//!   [`Durability::Checkpointed`] (a checkpoint file per round interval;
//!   re-running the same study against the same directory resumes it
//!   bit-identically);
//! * [`Study::seed`] — the reproducibility seed.
//!
//! Configurations are validated at [`Study::run`] time with a typed
//! [`StudyConfigError`] instead of scattered panics, and every run returns
//! one [`StudyReport`].
//!
//! ```
//! use fast_search::{Execution, ParamDomain, ParamSpace, RandomSearch};
//! use fast_search::{Study, StudyEval, TrialResult};
//!
//! let mut space = ParamSpace::new();
//! space.add("pe_count", ParamDomain::Pow2 { min: 1, max: 64 });
//! let mut opt = RandomSearch::new();
//! let mut eval = |p: &[usize]| TrialResult::Valid(space.value(p, 0) as f64).into();
//! let report = Study::new(&space, 50)
//!     .execution(Execution::Batched { batch_size: 8 })
//!     .seed(0)
//!     .run(&mut opt, StudyEval::points(&mut eval))
//!     .expect("valid configuration");
//! assert_eq!(report.best_objective, Some(64.0));
//! ```
//!
//! # Determinism
//!
//! [`Execution::Batched`] and [`Execution::Parallel`] derive trial `i`'s
//! randomness from [`trial_rng`]`(seed, i)`, so a study depends only on
//! `(seed, round size, optimizer, objective function)` — never on thread
//! scheduling. `Parallel { threads: n }` is *defined* as `Batched
//! { batch_size: n }` with the round's points scored concurrently, so the
//! two produce bit-identical reports for equal round sizes.
//! [`Execution::Sequential`] instead threads one `StdRng` through every
//! proposal (the historical `run_study` semantics): reproducible per seed,
//! but a different proposal stream than `Batched { batch_size: 1 }`.

use crate::optimizer::{Optimizer, Trial, TrialResult};
use crate::pareto::{
    FrontierPoint, MetricDirection, MultiObjective, MultiTrial, ParetoArchive, ParetoStudyResult,
};
use crate::screen::{Fidelity, FidelityReport, ScreenEngine, Screener};
use crate::snapshot::{
    validate_and_restore, FidelityCheckpoint, OptimizerState, ParetoCheckpoint, StudyCheckpoint,
};
use crate::space::ParamSpace;
use crate::study::{trial_rng, StudyResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::bin::{self, Decode, Encode, Reader, Writer};
use std::fmt;
use std::path::{Path, PathBuf};

/// What the study optimizes: one scalar, or a Pareto frontier over several
/// metrics (the optimizer still climbs each trial's scalar *guide*).
#[derive(Debug, Clone, PartialEq)]
pub enum StudyObjective {
    /// Track a single scalar incumbent (the guide of each valid trial);
    /// metric vectors returned by the evaluator are ignored.
    Single,
    /// Maintain a [`ParetoArchive`] over the given metric directions while
    /// the optimizer maximizes the per-trial guide. Needs ≥ 2 directions.
    Pareto {
        /// One direction per tracked metric, in metric order.
        directions: Vec<MetricDirection>,
    },
}

impl StudyObjective {
    /// Convenience constructor for the Pareto variant.
    #[must_use]
    pub fn pareto(directions: &[MetricDirection]) -> Self {
        StudyObjective::Pareto { directions: directions.to_vec() }
    }
}

/// How trials are grouped and evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// The classic loop: one shared RNG threaded through every proposal,
    /// one evaluation at a time, per-trial observation.
    Sequential,
    /// Rounds of `batch_size` proposals with per-trial [`trial_rng`]
    /// generators; the evaluator scores a whole round before the optimizer
    /// observes it.
    Batched {
        /// Trials proposed and evaluated per round (≥ 1).
        batch_size: usize,
    },
    /// [`Execution::Batched`] with rounds of `threads` points scored
    /// concurrently across the rayon pool. Requires a thread-safe
    /// [`StudyEval::shared`] evaluator (or [`StudyEval::batch`], which owns
    /// its parallelism). Bit-identical to `Batched { batch_size: threads }`.
    Parallel {
        /// Round size == maximum evaluations in flight (≥ 1).
        threads: usize,
    },
}

/// Whether (and where) the study persists round checkpoints.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Durability {
    /// Nothing is persisted; an interrupted study starts over.
    #[default]
    Ephemeral,
    /// Write a checkpoint file (`study.bin` under `dir`) every `every`
    /// rounds (and at study completion). Running the same configuration
    /// against the same directory resumes from the file bit-identically;
    /// a missing, damaged, or differently-configured file — including one
    /// written by a different optimizer — degrades to a cold start with a
    /// logged warning, never a wrong result. (Custom optimizers without
    /// snapshot support all save [`OptimizerState::Opaque`] and so cannot
    /// be told apart: resuming one with a differently-configured optimizer
    /// panics when its replayed proposals diverge from the record.)
    Checkpointed {
        /// Checkpoint directory (created if absent; must be writable).
        dir: PathBuf,
        /// Rounds between saves (≥ 1). `1` saves every round.
        every: usize,
    },
}

/// A [`Study`] configuration rejected at [`Study::run`] time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyConfigError {
    /// `Batched { batch_size: 0 }`.
    EmptyBatch,
    /// `Parallel { threads: 0 }`.
    NoThreads,
    /// A Pareto objective with fewer than two metric directions.
    TooFewMetrics {
        /// Number of directions supplied.
        got: usize,
    },
    /// `Checkpointed { every: 0, .. }`.
    ZeroCheckpointInterval,
    /// The checkpoint directory cannot be created or written.
    CheckpointDirUnwritable {
        /// The offending directory.
        dir: PathBuf,
        /// The underlying I/O error.
        reason: String,
    },
    /// [`Execution::Parallel`] with a serial-only [`StudyEval::points`]
    /// evaluator.
    SerialEvalUnderParallelExecution,
    /// [`Fidelity::Screened`] with a `keep_fraction` outside `(0, 1]`.
    KeepFractionOutOfRange,
    /// [`Fidelity::Screened`] passed to [`Study::run`] /
    /// [`Study::run_observed`], which have no screener to rank rounds with
    /// — use [`Study::run_screened`].
    ScreenedWithoutScreener,
    /// [`Fidelity::Screened`] under [`Execution::Sequential`]: rounds of
    /// one always keep their single candidate, so screening cannot apply.
    ScreenedSequentialExecution,
}

impl fmt::Display for StudyConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyConfigError::EmptyBatch => {
                write!(f, "Batched execution needs batch_size >= 1")
            }
            StudyConfigError::NoThreads => write!(f, "Parallel execution needs threads >= 1"),
            StudyConfigError::TooFewMetrics { got } => {
                write!(f, "a Pareto objective needs >= 2 metric directions, got {got}")
            }
            StudyConfigError::ZeroCheckpointInterval => {
                write!(f, "Checkpointed durability needs every >= 1 (rounds between saves)")
            }
            StudyConfigError::CheckpointDirUnwritable { dir, reason } => {
                write!(f, "checkpoint directory {} is not writable: {reason}", dir.display())
            }
            StudyConfigError::SerialEvalUnderParallelExecution => write!(
                f,
                "Parallel execution needs StudyEval::shared (scored across threads) or \
                 StudyEval::batch (the closure owns its parallelism); StudyEval::points \
                 is serial-only"
            ),
            StudyConfigError::KeepFractionOutOfRange => {
                write!(f, "Screened fidelity needs keep_fraction in (0, 1]")
            }
            StudyConfigError::ScreenedWithoutScreener => {
                write!(f, "Screened fidelity needs a screener; use Study::run_screened")
            }
            StudyConfigError::ScreenedSequentialExecution => write!(
                f,
                "Screened fidelity needs Batched or Parallel execution (sequential \
                 rounds of one trial always keep their candidate)"
            ),
        }
    }
}

impl std::error::Error for StudyConfigError {}

/// The evaluation function handed to [`Study::run`] — one design point in,
/// one [`MultiObjective`] out. Three shapes cover every caller:
///
/// * [`StudyEval::points`] — a per-point `FnMut` closure (may capture
///   mutable state); scored one point at a time on the calling thread.
/// * [`StudyEval::batch`] — a whole-round `FnMut` closure; the study hands
///   it each round and trusts it to return one result per point *in
///   proposal order* (it may parallelize internally).
/// * [`StudyEval::shared`] — a thread-safe per-point `Fn`; the only shape
///   [`Execution::Parallel`] can fan out itself.
///
/// Single-objective evaluators can return [`TrialResult`] and convert with
/// `.into()` ([`MultiObjective`] implements `From<TrialResult>`).
pub enum StudyEval<'a> {
    /// Serial per-point evaluation.
    Points(&'a mut dyn FnMut(&[usize]) -> MultiObjective),
    /// Whole-round evaluation; must return one result per point, in order.
    Batch(&'a mut dyn FnMut(&[Vec<usize>]) -> Vec<MultiObjective>),
    /// Thread-safe per-point evaluation.
    Shared(&'a (dyn Fn(&[usize]) -> MultiObjective + Sync)),
}

impl<'a> StudyEval<'a> {
    /// Wraps a serial per-point closure.
    pub fn points<F: FnMut(&[usize]) -> MultiObjective>(f: &'a mut F) -> Self {
        StudyEval::Points(f)
    }

    /// Wraps a whole-round closure (one result per point, proposal order).
    pub fn batch<F: FnMut(&[Vec<usize>]) -> Vec<MultiObjective>>(f: &'a mut F) -> Self {
        StudyEval::Batch(f)
    }

    /// Wraps a thread-safe per-point function.
    pub fn shared<F: Fn(&[usize]) -> MultiObjective + Sync>(f: &'a F) -> Self {
        StudyEval::Shared(f)
    }

    /// Scores one round. `parallel` only affects [`StudyEval::Shared`],
    /// which then fans the round out across the rayon pool (results are
    /// collected in proposal order either way).
    fn eval(&mut self, points: &[Vec<usize>], parallel: bool) -> Vec<MultiObjective> {
        match self {
            StudyEval::Points(f) => points.iter().map(|p| f(p)).collect(),
            StudyEval::Batch(f) => f(points),
            StudyEval::Shared(f) => {
                if parallel {
                    points.par_iter().map(|p| f(p)).collect()
                } else {
                    points.iter().map(|p| f(p)).collect()
                }
            }
        }
    }
}

impl fmt::Debug for StudyEval<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StudyEval::Points(_) => "StudyEval::Points(..)",
            StudyEval::Batch(_) => "StudyEval::Batch(..)",
            StudyEval::Shared(_) => "StudyEval::Shared(..)",
        })
    }
}

/// What [`Durability::Checkpointed`] did during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// The checkpoint file.
    pub path: PathBuf,
    /// Trials restored from the file before the first round (0 on a cold
    /// start).
    pub resumed_trials: usize,
    /// Checkpoints written during this run.
    pub saves: usize,
}

/// The one result type of [`Study::run`]: scalar incumbent, convergence,
/// trials, the Pareto frontier (when tracked), and checkpoint info (when
/// durable).
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Optimizer name.
    pub optimizer: String,
    /// Best point found (index encoding), if any trial was valid.
    pub best_point: Option<Vec<usize>>,
    /// Best guide objective found.
    pub best_objective: Option<f64>,
    /// Best-so-far guide after each trial (`NaN` until the first valid
    /// trial).
    pub convergence: Vec<f64>,
    /// Number of invalid (rejected) trials.
    pub invalid_trials: usize,
    /// All trials in proposal order. Single-objective studies record an
    /// empty metric vector per valid trial (only the guide is tracked).
    pub trials: Vec<MultiTrial>,
    /// The non-dominated set in canonical order — `Some` iff the study ran
    /// with [`StudyObjective::Pareto`].
    pub frontier: Option<Vec<FrontierPoint>>,
    /// Checkpoint activity — `Some` iff the study ran with
    /// [`Durability::Checkpointed`].
    pub checkpoint: Option<CheckpointInfo>,
    /// Screening activity — `Some` iff the study ran with
    /// [`Fidelity::Screened`] (via [`Study::run_screened`]).
    pub fidelity: Option<FidelityReport>,
}

impl StudyReport {
    /// Converts into the scalar [`StudyResult`] shape (metric vectors are
    /// dropped; each trial keeps its guide).
    #[must_use]
    pub fn into_study_result(self) -> StudyResult {
        StudyResult {
            optimizer: self.optimizer,
            best_point: self.best_point,
            best_objective: self.best_objective,
            convergence: self.convergence,
            invalid_trials: self.invalid_trials,
            trials: self
                .trials
                .into_iter()
                .map(|t| Trial { result: scalar_of(&t.result), point: t.point })
                .collect(),
        }
    }

    /// Converts into the multi-objective [`ParetoStudyResult`] shape.
    ///
    /// # Panics
    /// Panics if the study did not run with [`StudyObjective::Pareto`]
    /// (there is no frontier to report).
    #[must_use]
    pub fn into_pareto_result(self) -> ParetoStudyResult {
        ParetoStudyResult {
            optimizer: self.optimizer,
            frontier: self.frontier.expect("into_pareto_result on a single-objective study"),
            guide_convergence: self.convergence,
            invalid_trials: self.invalid_trials,
            trials: self.trials,
        }
    }
}

/// The guide scalar of a stored trial outcome. Screened-out trials project
/// to [`TrialResult::Invalid`]: the optimizer must not climb surrogate
/// scores as if they had been simulated, so it sees them as rejections.
fn scalar_of(result: &MultiObjective) -> TrialResult {
    match result {
        MultiObjective::Valid { guide, .. } => TrialResult::Valid(*guide),
        MultiObjective::Invalid | MultiObjective::Surrogate { .. } => TrialResult::Invalid,
    }
}

/// A study checkpoint at a round boundary, in whichever shape the objective
/// axis produces. The legacy `*_resumable` drivers thread these through
/// in-memory hooks; [`Durability::Checkpointed`] persists them to disk.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RoundSnapshot {
    /// A [`StudyObjective::Single`] study's checkpoint.
    Scalar(StudyCheckpoint),
    /// A [`StudyObjective::Pareto`] study's checkpoint.
    Pareto(ParetoCheckpoint),
}

impl RoundSnapshot {
    /// Completed trials at the snapshot.
    pub(crate) fn trials_done(&self) -> usize {
        match self {
            RoundSnapshot::Scalar(ck) => ck.trials_done(),
            RoundSnapshot::Pareto(ck) => ck.trials_done(),
        }
    }

    /// The optimizer state recorded at the snapshot.
    fn optimizer_state(&self) -> &OptimizerState {
        match self {
            RoundSnapshot::Scalar(ck) => &ck.optimizer,
            RoundSnapshot::Pareto(ck) => &ck.optimizer,
        }
    }
}

/// Cheap per-round progress, handed to observers after every evaluated
/// round (per trial under [`Execution::Sequential`]). Everything here is
/// O(1) to produce — no trial history, no archive clone — so observing a
/// study costs nothing measurable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyProgress {
    /// Trials evaluated so far (monotone; starts at the restored count on a
    /// resumed study).
    pub trials_done: usize,
    /// The study's trial budget.
    pub total_trials: usize,
    /// Best guide objective observed so far (`None` while all trials were
    /// invalid).
    pub best_objective: Option<f64>,
    /// Safe-search rejections so far.
    pub invalid_trials: usize,
    /// Current non-dominated-set size (`None` for single-objective
    /// studies).
    pub frontier_size: Option<usize>,
    /// Trials that reached the real evaluator so far (`None` for
    /// [`Fidelity::Exact`] studies, where it would equal `trials_done`).
    pub full_evals: Option<usize>,
}

/// A round hook: called after every evaluated round with that round's
/// progress and a thunk building its snapshot. The thunk clones the full
/// accumulated state (trials, convergence, archive, optimizer), so hooks
/// that thin their save cadence only call it on the rounds they actually
/// persist.
pub(crate) type RoundHook<'h> = &'h mut dyn FnMut(&StudyProgress, &dyn Fn() -> RoundSnapshot);

/// Whether a checkpoint's optimizer state (`ck`, mid-run) was produced by
/// an optimizer configured like `fresh` (a just-built optimizer's state):
/// same algorithm *and* same hyperparameters/seed designs, ignoring the
/// run-accumulated fields (history, particles, cursors). Used to reject a
/// checkpoint file written by a different or differently-configured
/// algorithm before the resume path silently continues the old
/// configuration or panics on a diverging replay. Two
/// [`OptimizerState::Opaque`] states are indistinguishable — custom
/// optimizers without snapshot support are the caller's responsibility.
fn same_optimizer_config(ck: &OptimizerState, fresh: &OptimizerState) -> bool {
    match (ck, fresh) {
        (OptimizerState::Random, OptimizerState::Random)
        | (OptimizerState::Opaque, OptimizerState::Opaque) => true,
        (
            OptimizerState::Lcs { population: pa, pull_global: ga, mutate: ma, .. },
            OptimizerState::Lcs { population: pb, pull_global: gb, mutate: mb, .. },
        ) => pa == pb && ga.to_bits() == gb.to_bits() && ma.to_bits() == mb.to_bits(),
        (
            OptimizerState::Tpe { gamma: ga, candidates: ca, startup: sa, .. },
            OptimizerState::Tpe { gamma: gb, candidates: cb, startup: sb, .. },
        ) => ga.to_bits() == gb.to_bits() && ca == cb && sa == sb,
        (
            OptimizerState::Seeded { seeds: sa, inner: ia, .. },
            OptimizerState::Seeded { seeds: sb, inner: ib, .. },
        ) => sa == sb && same_optimizer_config(ia, ib),
        _ => false,
    }
}

/// `batch_size` recorded in checkpoints of [`Execution::Sequential`]
/// studies. The shared-RNG loop has no rounds, and the legacy batched
/// drivers clamp their batch size to ≥ 1, so `0` is unambiguous.
const SEQUENTIAL_MARKER: usize = 0;

/// Checkpoint file name under [`Durability::Checkpointed`]'s directory.
const STUDY_FILE_NAME: &str = "study.bin";
/// Magic prefix of study checkpoint files.
const STUDY_MAGIC: [u8; 8] = *b"FASTSTU1";
/// Checkpoint file format version; bump on layout changes.
/// v2: checkpoints carry an optional [`FidelityCheckpoint`] (screener
/// state, correlation pairs, screened-out trial markings).
const STUDY_VERSION: u32 = 2;

/// Seed salt of the screening exploration RNG. Each screened round draws
/// its exploration pick from `trial_rng(seed ^ SCREEN_SEED_SALT,
/// round_start)` — a pure function of the study seed and the round's first
/// trial index, so the "screening RNG cursor" is the completed-trial count
/// the checkpoint already records, and a resumed study re-derives the
/// exact generator a straight-through run would have used.
const SCREEN_SEED_SALT: u64 = 0x5c3e_e21d_0b5c_a17e;

/// The unified study driver. See the [module docs](self) for the axis
/// semantics and a runnable example.
#[derive(Debug, Clone)]
pub struct Study<'s> {
    space: &'s ParamSpace,
    trials: usize,
    objective: StudyObjective,
    execution: Execution,
    durability: Durability,
    fidelity: Fidelity,
    seed: u64,
}

impl<'s> Study<'s> {
    /// A study of `trials` evaluations over `space`, with default axes:
    /// [`StudyObjective::Single`], [`Execution::Sequential`],
    /// [`Durability::Ephemeral`], seed 0.
    #[must_use]
    pub fn new(space: &'s ParamSpace, trials: usize) -> Self {
        Study {
            space,
            trials,
            objective: StudyObjective::Single,
            execution: Execution::Sequential,
            durability: Durability::Ephemeral,
            fidelity: Fidelity::Exact,
            seed: 0,
        }
    }

    /// Sets the objective axis.
    #[must_use]
    pub fn objective(mut self, objective: StudyObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the execution axis.
    #[must_use]
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the durability axis.
    #[must_use]
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Sets the fidelity axis. [`Fidelity::Screened`] studies must run
    /// through [`Study::run_screened`] (they need a [`Screener`]).
    #[must_use]
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Sets the reproducibility seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// `(round_size, parallel, sequential)` of the execution axis.
    fn shape(&self) -> (usize, bool, bool) {
        match self.execution {
            Execution::Sequential => (1, false, true),
            Execution::Batched { batch_size } => (batch_size.max(1), false, false),
            Execution::Parallel { threads } => (threads.max(1), true, false),
        }
    }

    /// Validates the configuration against the evaluator shape.
    fn validate(&self, eval: &StudyEval<'_>) -> Result<(), StudyConfigError> {
        match self.execution {
            Execution::Batched { batch_size: 0 } => return Err(StudyConfigError::EmptyBatch),
            Execution::Parallel { threads: 0 } => return Err(StudyConfigError::NoThreads),
            Execution::Parallel { .. } => {
                if matches!(eval, StudyEval::Points(_)) {
                    return Err(StudyConfigError::SerialEvalUnderParallelExecution);
                }
            }
            Execution::Sequential | Execution::Batched { .. } => {}
        }
        if let StudyObjective::Pareto { directions } = &self.objective {
            if directions.len() < 2 {
                return Err(StudyConfigError::TooFewMetrics { got: directions.len() });
            }
        }
        if let Fidelity::Screened { keep_fraction, .. } = self.fidelity {
            // NaN fails the first comparison and lands here too.
            if !(keep_fraction > 0.0 && keep_fraction <= 1.0) {
                return Err(StudyConfigError::KeepFractionOutOfRange);
            }
            if self.execution == Execution::Sequential {
                return Err(StudyConfigError::ScreenedSequentialExecution);
            }
        }
        if let Durability::Checkpointed { dir, every } = &self.durability {
            if *every == 0 {
                return Err(StudyConfigError::ZeroCheckpointInterval);
            }
            let unwritable = |e: std::io::Error| StudyConfigError::CheckpointDirUnwritable {
                dir: dir.clone(),
                reason: e.to_string(),
            };
            std::fs::create_dir_all(dir).map_err(unwritable)?;
            let probe = dir.join(".study_write_probe");
            std::fs::write(&probe, b"probe").map_err(unwritable)?;
            let _ = std::fs::remove_file(&probe);
        }
        Ok(())
    }

    /// Runs the study.
    ///
    /// # Errors
    /// Returns a [`StudyConfigError`] when the configured axes are invalid
    /// (zero batch/threads, < 2 Pareto metrics, an unusable checkpoint
    /// directory, or a serial evaluator under parallel execution) — before
    /// any trial runs.
    ///
    /// # Panics
    /// Panics on evaluator-contract violations (wrong result count per
    /// round, wrong metric arity, NaN metrics offered to the archive) —
    /// caller bugs, exactly as the drivers this API absorbed did.
    pub fn run(
        &self,
        optimizer: &mut dyn Optimizer,
        eval: StudyEval<'_>,
    ) -> Result<StudyReport, StudyConfigError> {
        self.run_with(optimizer, eval, None, None)
    }

    /// [`Study::run`] with a [`Screener`] ranking each proposal round —
    /// required by [`Fidelity::Screened`]. Under [`Fidelity::Exact`] the
    /// screener is ignored and the run is bit-identical to [`Study::run`].
    ///
    /// # Errors
    /// As [`Study::run`].
    pub fn run_screened(
        &self,
        optimizer: &mut dyn Optimizer,
        eval: StudyEval<'_>,
        screener: &mut dyn Screener,
    ) -> Result<StudyReport, StudyConfigError> {
        self.run_with(optimizer, eval, Some(screener), None)
    }

    /// [`Study::run_screened`] + the [`Study::run_observed`] progress feed.
    ///
    /// # Errors
    /// As [`Study::run`].
    pub fn run_screened_observed(
        &self,
        optimizer: &mut dyn Optimizer,
        eval: StudyEval<'_>,
        screener: &mut dyn Screener,
        observer: &mut dyn FnMut(&StudyProgress),
    ) -> Result<StudyReport, StudyConfigError> {
        self.run_with(optimizer, eval, Some(screener), Some(observer))
    }

    /// [`Study::run`], additionally calling `observer` with a
    /// [`StudyProgress`] after every evaluated round (per trial under
    /// [`Execution::Sequential`]) — the live-progress feed a serving
    /// process streams to its clients. Works under every durability axis: a
    /// resumed checkpointed study reports progress from its restored trial
    /// count onward. Observation never changes what is computed.
    ///
    /// # Errors
    /// As [`Study::run`].
    pub fn run_observed(
        &self,
        optimizer: &mut dyn Optimizer,
        eval: StudyEval<'_>,
        observer: &mut dyn FnMut(&StudyProgress),
    ) -> Result<StudyReport, StudyConfigError> {
        self.run_with(optimizer, eval, None, Some(observer))
    }

    fn run_with(
        &self,
        optimizer: &mut dyn Optimizer,
        eval: StudyEval<'_>,
        screener: Option<&mut dyn Screener>,
        mut observer: Option<&mut dyn FnMut(&StudyProgress)>,
    ) -> Result<StudyReport, StudyConfigError> {
        self.validate(&eval)?;
        let screen = match (self.fidelity, screener) {
            (Fidelity::Screened { .. }, Some(sc)) => Some(ScreenEngine::new(sc, self.fidelity)),
            (Fidelity::Screened { .. }, None) => {
                return Err(StudyConfigError::ScreenedWithoutScreener)
            }
            (Fidelity::Exact, _) => None,
        };
        match &self.durability {
            Durability::Ephemeral => match observer {
                None => Ok(self.run_hooked(optimizer, eval, screen, None, None)),
                Some(obs) => {
                    let mut hook = |p: &StudyProgress, _make: &dyn Fn() -> RoundSnapshot| obs(p);
                    Ok(self.run_hooked(optimizer, eval, screen, None, Some(&mut hook)))
                }
            },
            Durability::Checkpointed { dir, every } => {
                let path = dir.join(STUDY_FILE_NAME);
                let (round_size, _, sequential) = self.shape();
                let resume = match load_snapshot(&path, self, &*optimizer, round_size, sequential) {
                    SnapshotLoad::Loaded(snap) => Some(*snap),
                    SnapshotLoad::Missing => None,
                    // Transiently unreadable: the file may hold real
                    // progress a later rerun can resume from, so neither
                    // overwrite it with this run's saves nor quarantine
                    // it — run undurably and leave it in place.
                    SnapshotLoad::Unreadable => {
                        eprintln!(
                            "warning: checkpoint {} is unreadable right now; running without \
                             saves so the file is preserved",
                            path.display()
                        );
                        let mut hook = |p: &StudyProgress, _make: &dyn Fn() -> RoundSnapshot| {
                            if let Some(obs) = observer.as_deref_mut() {
                                obs(p);
                            }
                        };
                        let mut report =
                            self.run_hooked(optimizer, eval, screen, None, Some(&mut hook));
                        report.checkpoint =
                            Some(CheckpointInfo { path, resumed_trials: 0, saves: 0 });
                        return Ok(report);
                    }
                    SnapshotLoad::Rejected => {
                        // The file was read but is damaged or belongs to a
                        // different configuration. The cold run's first
                        // save would overwrite it — quarantine it instead
                        // so whatever progress it holds survives a
                        // mis-typed rerun.
                        quarantine_rejected(&path);
                        None
                    }
                };
                let resumed_trials = resume.as_ref().map_or(0, RoundSnapshot::trials_done);
                let every = *every;
                let n_trials = self.trials;
                let mut rounds = 0usize;
                let mut saves = 0usize;
                let mut report = {
                    // Off-cadence rounds never call `make`, so they skip
                    // the full-state snapshot clone entirely.
                    let mut hook = |p: &StudyProgress, make: &dyn Fn() -> RoundSnapshot| {
                        if let Some(obs) = observer.as_deref_mut() {
                            obs(p);
                        }
                        rounds += 1;
                        if rounds.is_multiple_of(every) || p.trials_done == n_trials {
                            saves += usize::from(save_snapshot(&path, &make()));
                        }
                    };
                    self.run_hooked(optimizer, eval, screen, resume, Some(&mut hook))
                };
                report.checkpoint = Some(CheckpointInfo { path, resumed_trials, saves });
                Ok(report)
            }
        }
    }

    /// The engine behind [`Study::run`]:
    /// optionally restores an in-memory snapshot before the first round and
    /// calls `on_round` after every evaluated round (per-trial under
    /// [`Execution::Sequential`]) with the trial count and a lazy snapshot
    /// builder.
    ///
    /// Unlike the disk path (which degrades to a cold start on any
    /// mismatch), a programmatic `resume` snapshot that disagrees with the
    /// study configuration panics — it is a caller bug, and silently
    /// diverging from the bit-identity contract would be worse.
    pub(crate) fn run_hooked(
        &self,
        optimizer: &mut dyn Optimizer,
        mut eval: StudyEval<'_>,
        mut screen: Option<ScreenEngine<'_>>,
        resume: Option<RoundSnapshot>,
        mut on_round: Option<RoundHook<'_>>,
    ) -> StudyReport {
        let (round_size, parallel, sequential) = self.shape();
        let mut st = EngineState::new(&self.objective);
        if sequential {
            assert!(screen.is_none(), "validate rejects Screened + Sequential");
            let mut rng = StdRng::seed_from_u64(self.seed);
            if let Some(snap) = resume {
                self.restore_sequential(&mut st, optimizer, &mut rng, snap);
            }
            while st.trials.len() < self.trials {
                let point = optimizer.propose(self.space, &mut rng);
                debug_assert!(self.space.contains(&point));
                let results = eval.eval(std::slice::from_ref(&point), false);
                assert_eq!(results.len(), 1, "evaluator must score every proposed point");
                let result = results.into_iter().next().expect("length asserted");
                let scalar = st.absorb(&point, &result);
                let trial = Trial { point: point.clone(), result: scalar };
                optimizer.observe(self.space, &trial);
                st.push_trial(point, result);
                if let Some(hook) = on_round.as_deref_mut() {
                    let opt_ref: &dyn Optimizer = optimizer;
                    let progress = self.progress(&st, None);
                    hook(&progress, &|| self.snapshot(&st, SEQUENTIAL_MARKER, opt_ref, None));
                }
            }
        } else {
            if let Some(snap) = resume {
                self.restore_batched(&mut st, optimizer, round_size, snap, screen.as_mut());
            }
            let mut start = st.trials.len();
            while start < self.trials {
                let round = round_size.min(self.trials - start);
                let mut rngs: Vec<StdRng> =
                    (start..start + round).map(|i| trial_rng(self.seed, i)).collect();
                let points = optimizer.propose_batch(self.space, &mut rngs);
                assert_eq!(points.len(), round, "optimizer must propose one point per RNG");
                debug_assert!(points.iter().all(|p| self.space.contains(p)));

                let results = match screen.as_mut() {
                    Some(eng) => self.screen_round(eng, &points, &mut eval, parallel, start),
                    None => {
                        let results = eval.eval(&points, parallel);
                        assert_eq!(
                            results.len(),
                            round,
                            "evaluator must score every proposed point"
                        );
                        results
                    }
                };

                let mut scalar_trials = Vec::with_capacity(round);
                for (point, result) in points.into_iter().zip(results) {
                    let scalar = st.absorb(&point, &result);
                    scalar_trials.push(Trial { point: point.clone(), result: scalar });
                    st.push_trial(point, result);
                }
                optimizer.observe_batch(self.space, &scalar_trials);
                start += round;

                if let Some(hook) = on_round.as_deref_mut() {
                    let opt_ref: &dyn Optimizer = optimizer;
                    let sc_ref = screen.as_ref();
                    let progress = self.progress(&st, sc_ref);
                    hook(&progress, &|| self.snapshot(&st, round_size, opt_ref, sc_ref));
                }
            }
        }

        StudyReport {
            optimizer: optimizer.name().to_string(),
            best_point: st.best.as_ref().map(|(p, _)| p.clone()),
            best_objective: st.best.as_ref().map(|(_, g)| *g),
            convergence: st.convergence,
            invalid_trials: st.invalid,
            trials: st.trials,
            frontier: st.archive.as_ref().map(ParetoArchive::frontier),
            checkpoint: None,
            fidelity: screen.as_ref().map(ScreenEngine::report),
        }
    }

    /// Scores one screened round: ranks `points` with the screener, fully
    /// evaluates the kept subset, and fills the rest with
    /// [`MultiObjective::Surrogate`] outcomes. Rounds proposed while the
    /// screener is still warming up keep everything (that is how an online
    /// tier earns its training set). One kept slot per screened round is an
    /// exploration pick — a uniformly random screened-out candidate drawn
    /// from [`trial_rng`]`(seed ^ `[`SCREEN_SEED_SALT`]`, round_start)` —
    /// so a systematically wrong surrogate keeps receiving corrective
    /// observations instead of locking the search into its own bias.
    fn screen_round(
        &self,
        eng: &mut ScreenEngine<'_>,
        points: &[Vec<usize>],
        eval: &mut StudyEval<'_>,
        parallel: bool,
        start: usize,
    ) -> Vec<MultiObjective> {
        use rand::Rng;
        let round = points.len();
        let ready = eng.screener.ready();
        let scores: Option<Vec<f64>> =
            ready.then(|| points.iter().map(|p| eng.screener.score(p)).collect());
        let keep = if ready { eng.fidelity.keep_of_round(round) } else { round };
        let kept: Vec<usize> = if keep >= round {
            (0..round).collect()
        } else {
            let scores = scores.as_ref().expect("partial rounds only happen when ready");
            let mut order: Vec<usize> = (0..round).collect();
            order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
            let mut kept = order[..keep].to_vec();
            if keep >= 2 {
                // Sacrifice the weakest kept slot, never the top pick.
                let mut rng = trial_rng(self.seed ^ SCREEN_SEED_SALT, start);
                kept[keep - 1] = order[keep + rng.gen_range(0..round - keep)];
            }
            kept.sort_unstable();
            kept
        };
        let kept_points: Vec<Vec<usize>> = kept.iter().map(|&i| points[i].clone()).collect();
        let kept_results = eval.eval(&kept_points, parallel);
        assert_eq!(kept_results.len(), kept.len(), "evaluator must score every kept point");
        let mut merged: Vec<MultiObjective> = match &scores {
            Some(sc) => sc.iter().map(|&s| MultiObjective::Surrogate { guide: s }).collect(),
            // Warm-up round: every slot is overwritten below.
            None => vec![MultiObjective::Invalid; round],
        };
        for (&i, result) in kept.iter().zip(kept_results) {
            if let MultiObjective::Valid { guide, .. } = &result {
                if let Some(sc) = &scores {
                    eng.pairs.push((sc[i], *guide));
                }
            }
            let guide = match &result {
                MultiObjective::Valid { guide, .. } => Some(*guide),
                MultiObjective::Invalid | MultiObjective::Surrogate { .. } => None,
            };
            eng.screener.observe(&points[i], guide);
            merged[i] = result;
        }
        eng.full_evals += kept.len();
        eng.screened_out += round - kept.len();
        merged
    }

    /// Cheap progress summary of the engine state, for round observers.
    fn progress(&self, st: &EngineState, screen: Option<&ScreenEngine<'_>>) -> StudyProgress {
        StudyProgress {
            trials_done: st.trials.len(),
            total_trials: self.trials,
            best_objective: st.best.as_ref().map(|(_, g)| *g),
            invalid_trials: st.invalid,
            frontier_size: st.archive.as_ref().map(ParetoArchive::len),
            full_evals: screen.map(|eng| eng.full_evals),
        }
    }

    /// Builds the round snapshot matching the objective axis.
    fn snapshot(
        &self,
        st: &EngineState,
        batch_marker: usize,
        opt: &dyn Optimizer,
        screen: Option<&ScreenEngine<'_>>,
    ) -> RoundSnapshot {
        let fidelity = screen.map(|eng| fidelity_checkpoint(eng, &st.trials));
        match &self.objective {
            StudyObjective::Single => RoundSnapshot::Scalar(StudyCheckpoint {
                seed: self.seed,
                batch_size: batch_marker,
                best: st.best.clone(),
                convergence: st.convergence.clone(),
                invalid_trials: st.invalid,
                trials: scalar_trials(&st.trials),
                optimizer: opt.save_state(),
                fidelity,
            }),
            StudyObjective::Pareto { .. } => RoundSnapshot::Pareto(ParetoCheckpoint {
                seed: self.seed,
                batch_size: batch_marker,
                archive: st.archive.clone().expect("Pareto study keeps an archive"),
                best_guide: st.best.as_ref().map_or(f64::NAN, |(_, g)| *g),
                guide_convergence: st.convergence.clone(),
                invalid_trials: st.invalid,
                trials: st.trials.clone(),
                optimizer: opt.save_state(),
                fidelity,
            }),
        }
    }

    /// Loads a snapshot's accumulated state into `st`, returning the
    /// checkpoint's `(seed, batch marker, convergence length, scalar trial
    /// stream)` for validation and optimizer restoration.
    ///
    /// # Panics
    /// Panics when the snapshot's objective shape (or its Pareto
    /// directions) disagrees with the study's — for programmatic resumes
    /// that is a caller bug; the disk loader filters such files out before
    /// they reach here.
    fn load_state(
        &self,
        st: &mut EngineState,
        snap: RoundSnapshot,
    ) -> (u64, usize, usize, Vec<Trial>, Option<FidelityCheckpoint>) {
        match (snap, &self.objective) {
            (RoundSnapshot::Scalar(ck), StudyObjective::Single) => {
                let scalar = ck.trials.clone();
                st.best = ck.best;
                st.convergence = ck.convergence;
                st.invalid = ck.invalid_trials;
                st.trials = ck
                    .trials
                    .into_iter()
                    .map(|t| MultiTrial { point: t.point, result: MultiObjective::from(t.result) })
                    .collect();
                // The scalar trial stream is lossy (a screened-out trial
                // records the same `Invalid` the optimizer observed), so
                // the Surrogate markings are reapplied from the fidelity
                // sidecar.
                if let Some(fid) = &ck.fidelity {
                    for &(i, guide) in &fid.screened {
                        st.trials[i].result = MultiObjective::Surrogate { guide };
                    }
                }
                (ck.seed, ck.batch_size, st.convergence.len(), scalar, ck.fidelity)
            }
            (RoundSnapshot::Pareto(ck), StudyObjective::Pareto { directions }) => {
                assert_eq!(
                    ck.archive.directions(),
                    &directions[..],
                    "checkpoint direction mismatch"
                );
                let scalar = scalar_trials(&ck.trials);
                st.best = rebuild_pareto_best(&ck.trials);
                debug_assert_eq!(
                    st.best.as_ref().map_or(f64::NAN, |(_, g)| *g).to_bits(),
                    ck.best_guide.to_bits(),
                    "checkpoint best_guide disagrees with its own trial record — \
                     rebuild_pareto_best drifted from EngineState::absorb"
                );
                st.archive = Some(ck.archive);
                st.convergence = ck.guide_convergence;
                st.invalid = ck.invalid_trials;
                st.trials = ck.trials;
                (ck.seed, ck.batch_size, st.convergence.len(), scalar, ck.fidelity)
            }
            (RoundSnapshot::Scalar(_), StudyObjective::Pareto { .. }) => {
                panic!("checkpoint objective mismatch: scalar checkpoint for a Pareto study")
            }
            (RoundSnapshot::Pareto(_), StudyObjective::Single) => {
                panic!("checkpoint objective mismatch: Pareto checkpoint for a scalar study")
            }
        }
    }

    /// Restores a batched/parallel study from a snapshot (state restore or
    /// [`trial_rng`] replay, via [`validate_and_restore`]).
    fn restore_batched(
        &self,
        st: &mut EngineState,
        optimizer: &mut dyn Optimizer,
        round_size: usize,
        snap: RoundSnapshot,
        screen: Option<&mut ScreenEngine<'_>>,
    ) {
        let opt_state = snap.optimizer_state().clone();
        let (seed, marker, conv_len, scalar, fidelity) = self.load_state(st, snap);
        validate_and_restore(
            self.space,
            optimizer,
            self.trials,
            round_size,
            self.seed,
            seed,
            marker,
            conv_len,
            &opt_state,
            &scalar,
        );
        match (screen, fidelity) {
            (Some(eng), Some(fid)) => restore_screen(eng, fid, &st.trials),
            (None, None) => {}
            // The disk loader rejects such files before they get here, so
            // a mismatch is a programmatic-resume caller bug.
            (Some(_), None) => {
                panic!("checkpoint carries no fidelity state for a screened study")
            }
            (None, Some(_)) => panic!("fidelity checkpoint offered to an unscreened study"),
        }
    }

    /// Restores a sequential study by replaying the recorded trials through
    /// both the optimizer and the shared RNG. There is no state-restore
    /// shortcut here: the shared generator's state is a function of every
    /// proposal made so far, so replay *is* the cursor.
    fn restore_sequential(
        &self,
        st: &mut EngineState,
        optimizer: &mut dyn Optimizer,
        rng: &mut StdRng,
        snap: RoundSnapshot,
    ) {
        let (seed, marker, conv_len, scalar, fidelity) = self.load_state(st, snap);
        assert!(fidelity.is_none(), "sequential studies are never screened");
        crate::snapshot::validate_checkpoint_header(
            self.trials,
            SEQUENTIAL_MARKER,
            self.seed,
            seed,
            marker,
            conv_len,
            scalar.len(),
        );
        for t in &scalar {
            let p = optimizer.propose(self.space, rng);
            assert_eq!(p, t.point, "{}", crate::snapshot::REPLAY_DIVERGED);
            optimizer.observe(self.space, t);
        }
    }
}

/// Accumulated study state shared by every (objective × execution) cell.
struct EngineState {
    /// Single-objective mode (metric vectors dropped, sticky-NaN incumbent).
    scalar: bool,
    best: Option<(Vec<usize>, f64)>,
    convergence: Vec<f64>,
    invalid: usize,
    trials: Vec<MultiTrial>,
    archive: Option<ParetoArchive>,
}

impl EngineState {
    fn new(objective: &StudyObjective) -> Self {
        let archive = match objective {
            StudyObjective::Single => None,
            StudyObjective::Pareto { directions } => Some(ParetoArchive::new(directions)),
        };
        EngineState {
            scalar: archive.is_none(),
            best: None,
            convergence: Vec::new(),
            invalid: 0,
            trials: Vec::new(),
            archive,
        }
    }

    /// Feeds one outcome into the archive/incumbent/counters and returns
    /// the scalar trial the optimizer observes.
    fn absorb(&mut self, point: &[usize], result: &MultiObjective) -> TrialResult {
        let scalar = match result {
            MultiObjective::Valid { metrics, guide } => {
                if let Some(archive) = self.archive.as_mut() {
                    archive.insert(point.to_vec(), metrics.clone());
                }
                // Incumbent rule, bit-compatible with the drivers this
                // engine absorbed: a scalar study's NaN incumbent sticks
                // (`obj > NaN` is false); a Pareto study's guide incumbent
                // recovers from NaN (it mirrored a bare `f64` that began
                // life as NaN).
                let replace = self
                    .best
                    .as_ref()
                    .is_none_or(|(_, b)| *guide > *b || (!self.scalar && b.is_nan()));
                if replace {
                    self.best = Some((point.to_vec(), *guide));
                }
                TrialResult::Valid(*guide)
            }
            MultiObjective::Invalid => {
                self.invalid += 1;
                TrialResult::Invalid
            }
            // Screened-out: no archive insert, no incumbent update — a
            // surrogate score must never masquerade as a simulated result —
            // and not a safe-search rejection either (the screening
            // counters live in the `ScreenEngine`).
            MultiObjective::Surrogate { .. } => TrialResult::Invalid,
        };
        self.convergence.push(self.best.as_ref().map_or(f64::NAN, |(_, b)| *b));
        scalar
    }

    /// Records a completed trial. Single-objective studies drop the metric
    /// vector so a checkpointed-and-resumed study is indistinguishable from
    /// an uninterrupted one (scalar checkpoints cannot carry metrics).
    fn push_trial(&mut self, point: Vec<usize>, result: MultiObjective) {
        let result = if self.scalar {
            match result {
                MultiObjective::Valid { guide, .. } => {
                    MultiObjective::Valid { metrics: Vec::new(), guide }
                }
                MultiObjective::Invalid => MultiObjective::Invalid,
                MultiObjective::Surrogate { guide } => MultiObjective::Surrogate { guide },
            }
        } else {
            result
        };
        self.trials.push(MultiTrial { point, result });
    }
}

/// Projects stored trials down to the scalar stream the optimizer observed.
fn scalar_trials(trials: &[MultiTrial]) -> Vec<Trial> {
    trials.iter().map(|t| Trial { point: t.point.clone(), result: scalar_of(&t.result) }).collect()
}

/// Serializes a [`ScreenEngine`]'s state (plus the screened-out markings of
/// the trial record, which scalar checkpoints cannot carry themselves) into
/// the checkpoint sidecar.
fn fidelity_checkpoint(eng: &ScreenEngine<'_>, trials: &[MultiTrial]) -> FidelityCheckpoint {
    let Fidelity::Screened { keep_fraction, min_full, tier } = eng.fidelity else {
        unreachable!("ScreenEngine only exists for screened studies")
    };
    FidelityCheckpoint {
        keep_fraction,
        min_full,
        tier,
        full_evals: eng.full_evals,
        screened_out: eng.screened_out,
        pairs: eng.pairs.clone(),
        screener: eng.screener.save_state(),
        screened: trials
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.result {
                MultiObjective::Surrogate { guide } => Some((i, guide)),
                _ => None,
            })
            .collect(),
    }
}

/// Rebuilds a [`ScreenEngine`]'s state from a checkpoint sidecar. The
/// screener restores its serialized state directly; a screener that refuses
/// the bytes is retrained by replaying every fully evaluated trial through
/// [`Screener::observe`] — the same observations the original run fed it,
/// in the same order, so both paths land on the same state.
fn restore_screen(eng: &mut ScreenEngine<'_>, fid: FidelityCheckpoint, trials: &[MultiTrial]) {
    eng.full_evals = fid.full_evals;
    eng.screened_out = fid.screened_out;
    eng.pairs = fid.pairs;
    if !eng.screener.load_state(&fid.screener) {
        for t in trials {
            match &t.result {
                MultiObjective::Valid { guide, .. } => eng.screener.observe(&t.point, Some(*guide)),
                MultiObjective::Invalid => eng.screener.observe(&t.point, None),
                MultiObjective::Surrogate { .. } => {}
            }
        }
    }
}

/// Rebuilds the tracked `(point, guide)` incumbent from a recorded trial
/// stream with the Pareto update rule (a NaN incumbent is replaced) —
/// Pareto checkpoints store only the guide value, not its point. Must stay
/// in lockstep with [`EngineState::absorb`]'s non-scalar branch.
fn rebuild_pareto_best(trials: &[MultiTrial]) -> Option<(Vec<usize>, f64)> {
    let mut best: Option<(Vec<usize>, f64)> = None;
    for t in trials {
        if let MultiObjective::Valid { guide, .. } = &t.result {
            if best.as_ref().is_none_or(|(_, b)| *guide > *b || b.is_nan()) {
                best = Some((t.point.clone(), *guide));
            }
        }
    }
    best
}

/// Moves a rejected checkpoint file aside under the first free
/// `study.bin.rejected[.N]` name, so neither the new run's saves nor an
/// earlier quarantined file clobber the progress it may hold.
fn quarantine_rejected(path: &Path) {
    let fresh = (0..)
        .map(|i| {
            let name = if i == 0 {
                format!("{STUDY_FILE_NAME}.rejected")
            } else {
                format!("{STUDY_FILE_NAME}.rejected.{i}")
            };
            path.with_file_name(name)
        })
        .find(|p| !p.exists())
        .expect("some rejected-checkpoint name is free");
    match std::fs::rename(path, &fresh) {
        Ok(()) => eprintln!("note: preserved the rejected checkpoint as {}", fresh.display()),
        Err(e) => {
            eprintln!("warning: could not preserve rejected checkpoint {}: {e}", path.display());
        }
    }
}

/// Atomically writes a snapshot file (temp + rename). Returns whether the
/// write succeeded; failures warn and the study continues undurably.
fn save_snapshot(path: &Path, snap: &RoundSnapshot) -> bool {
    let mut payload = Writer::new();
    match snap {
        RoundSnapshot::Scalar(ck) => {
            payload.put_u8(0);
            ck.encode(&mut payload);
        }
        RoundSnapshot::Pareto(ck) => {
            payload.put_u8(1);
            ck.encode(&mut payload);
        }
    }
    let file = bin::write_envelope(STUDY_MAGIC, STUDY_VERSION, &payload.into_bytes());
    let tmp = path.with_extension("tmp");
    match std::fs::write(&tmp, &file).and_then(|()| std::fs::rename(&tmp, path)) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("warning: could not write study checkpoint {}: {e}", path.display());
            false
        }
    }
}

/// Loads and validates a snapshot file against the study configuration
/// (including the optimizer: a file written by a different algorithm must
/// not be adopted — its replay would diverge and panic). A missing file is
/// a silent cold start; damage or a configuration mismatch warns and
/// degrades to a cold start — resuming can cost re-evaluation, never
/// correctness.
/// Outcome of reading a checkpoint file: only [`SnapshotLoad::Rejected`]
/// files are quarantined — an unreadable file may be transiently so and is
/// left in place for a later rerun.
enum SnapshotLoad {
    /// No file: a plain cold start.
    Missing,
    /// The file exists but could not be read right now (transient I/O).
    Unreadable,
    /// The file was read but is damaged or belongs to another study.
    Rejected,
    /// A snapshot matching this study's configuration.
    Loaded(Box<RoundSnapshot>),
}

fn load_snapshot(
    path: &Path,
    study: &Study<'_>,
    optimizer: &dyn Optimizer,
    round_size: usize,
    sequential: bool,
) -> SnapshotLoad {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return SnapshotLoad::Missing,
        Err(e) => {
            eprintln!("warning: study checkpoint ignored — reading {}: {e}", path.display());
            return SnapshotLoad::Unreadable;
        }
    };
    let reject = |what: &str| {
        eprintln!("warning: study checkpoint ignored — {}: {what}", path.display());
    };
    let payload = match bin::read_envelope(STUDY_MAGIC, STUDY_VERSION, &bytes) {
        Ok(p) => p,
        Err(e) => {
            reject(&e.to_string());
            return SnapshotLoad::Rejected;
        }
    };
    let mut r = Reader::new(payload);
    let decoded = r.get_u8().and_then(|tag| match tag {
        0 => StudyCheckpoint::decode(&mut r).map(RoundSnapshot::Scalar),
        1 => ParetoCheckpoint::decode(&mut r).map(RoundSnapshot::Pareto),
        t => Err(bin::DecodeError { offset: 0, what: format!("invalid snapshot tag {t}") }),
    });
    let snap = match decoded {
        Ok(s) if r.is_done() => s,
        Ok(_) => {
            reject("trailing bytes");
            return SnapshotLoad::Rejected;
        }
        Err(e) => {
            reject(&e.to_string());
            return SnapshotLoad::Rejected;
        }
    };

    let (seed, marker, done, conv_len) = match &snap {
        RoundSnapshot::Scalar(ck) => {
            (ck.seed, ck.batch_size, ck.trials_done(), ck.convergence.len())
        }
        RoundSnapshot::Pareto(ck) => {
            (ck.seed, ck.batch_size, ck.trials_done(), ck.guide_convergence.len())
        }
    };
    let mode_matches = match (&snap, &study.objective) {
        (RoundSnapshot::Scalar(_), StudyObjective::Single) => true,
        (RoundSnapshot::Pareto(ck), StudyObjective::Pareto { directions }) => {
            ck.archive.directions() == &directions[..]
        }
        _ => false,
    };
    let fid = match &snap {
        RoundSnapshot::Scalar(ck) => ck.fidelity.as_ref(),
        RoundSnapshot::Pareto(ck) => ck.fidelity.as_ref(),
    };
    // The fidelity axis must match exactly: adopting an exact study's file
    // into a screened rerun (or a differently-screened one) would splice
    // two different kept-trial sequences into one record.
    let fidelity_matches = match (study.fidelity, fid) {
        (Fidelity::Exact, None) => true,
        (Fidelity::Screened { keep_fraction, min_full, tier }, Some(f)) => {
            f.keep_fraction.to_bits() == keep_fraction.to_bits()
                && f.min_full == min_full
                && f.tier == tier
        }
        _ => false,
    };
    let expected_marker = if sequential { SEQUENTIAL_MARKER } else { round_size };
    let on_grid =
        if sequential { true } else { done.is_multiple_of(round_size) || done == study.trials };
    if !mode_matches
        || !fidelity_matches
        || seed != study.seed
        || marker != expected_marker
        || done > study.trials
        || conv_len != done
        || !on_grid
    {
        reject("checkpoint belongs to a different study configuration");
        return SnapshotLoad::Rejected;
    }
    if !same_optimizer_config(snap.optimizer_state(), &optimizer.save_state()) {
        reject("checkpoint was written by a different or differently-configured optimizer");
        return SnapshotLoad::Rejected;
    }
    SnapshotLoad::Loaded(Box::new(snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{LcsSwarm, RandomSearch, Tpe};
    use crate::space::ParamDomain;

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add("x", ParamDomain::Pow2 { min: 1, max: 256 });
        s.add("y", ParamDomain::Categorical { n: 6 });
        s
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fast-study-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn score(p: &[usize]) -> MultiObjective {
        if p[1] == 5 {
            MultiObjective::Invalid
        } else {
            MultiObjective::valid(
                vec![(p[0] * (p[1] + 1)) as f64, (p[0] + 3 * p[1]) as f64],
                (p[0] * 2 + p[1]) as f64,
            )
        }
    }

    #[test]
    fn config_errors_are_typed_not_panics() {
        let s = space();
        let mut opt = RandomSearch::new();
        let run = |study: Study<'_>, opt: &mut RandomSearch| {
            let mut eval = |p: &[usize]| score(p);
            study.run(opt, StudyEval::points(&mut eval)).map(|_| ())
        };
        assert_eq!(
            run(Study::new(&s, 4).execution(Execution::Batched { batch_size: 0 }), &mut opt),
            Err(StudyConfigError::EmptyBatch)
        );
        assert_eq!(
            run(Study::new(&s, 4).execution(Execution::Parallel { threads: 0 }), &mut opt),
            Err(StudyConfigError::NoThreads)
        );
        assert_eq!(
            run(
                Study::new(&s, 4).objective(StudyObjective::pareto(&[MetricDirection::Maximize])),
                &mut opt
            ),
            Err(StudyConfigError::TooFewMetrics { got: 1 })
        );
        assert_eq!(
            run(
                Study::new(&s, 4)
                    .durability(Durability::Checkpointed { dir: scratch_dir("every0"), every: 0 }),
                &mut opt
            ),
            Err(StudyConfigError::ZeroCheckpointInterval)
        );
        // A file where the checkpoint directory should be is unwritable.
        let blocked = scratch_dir("blocked");
        std::fs::write(&blocked, b"not a directory").unwrap();
        let err = run(
            Study::new(&s, 4)
                .durability(Durability::Checkpointed { dir: blocked.clone(), every: 1 }),
            &mut opt,
        )
        .unwrap_err();
        assert!(
            matches!(err, StudyConfigError::CheckpointDirUnwritable { ref dir, .. } if *dir == blocked),
            "{err:?}"
        );
        // Parallel execution cannot fan out a serial-only points closure.
        let mut eval = |p: &[usize]| score(p);
        let got = Study::new(&s, 4)
            .execution(Execution::Parallel { threads: 2 })
            .run(&mut opt, StudyEval::points(&mut eval));
        assert_eq!(got.map(|_| ()), Err(StudyConfigError::SerialEvalUnderParallelExecution));
        // Each error renders a non-empty human-readable message.
        for e in [
            StudyConfigError::EmptyBatch,
            StudyConfigError::NoThreads,
            StudyConfigError::TooFewMetrics { got: 1 },
            StudyConfigError::ZeroCheckpointInterval,
            StudyConfigError::CheckpointDirUnwritable {
                dir: PathBuf::from("/x"),
                reason: "denied".into(),
            },
            StudyConfigError::SerialEvalUnderParallelExecution,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn parallel_equals_batched_bitwise() {
        let s = space();
        let eval = |p: &[usize]| score(p);
        let run = |execution: Execution| {
            let mut opt = LcsSwarm::default();
            Study::new(&s, 48)
                .seed(9)
                .execution(execution)
                .run(&mut opt, StudyEval::shared(&eval))
                .expect("valid configuration")
        };
        let batched = run(Execution::Batched { batch_size: 6 });
        let parallel = run(Execution::Parallel { threads: 6 });
        assert_eq!(batched.best_point, parallel.best_point);
        assert_eq!(
            batched.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parallel.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(batched.trials, parallel.trials);
    }

    /// Kill-and-rerun through the file checkpoint: running the same
    /// configuration against the same directory resumes and finishes
    /// bit-identically to an uninterrupted study — for the scalar, Pareto,
    /// and sequential (shared-RNG replay) paths.
    #[test]
    fn checkpointed_rerun_is_bit_identical_for_every_axis_combination() {
        let s = space();
        let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
        type MkOpt = fn() -> Box<dyn Optimizer>;
        let makers: [MkOpt; 3] = [
            || Box::new(RandomSearch::new()),
            || Box::new(LcsSwarm::default()),
            || Box::new(Tpe::new()),
        ];
        let objectives =
            [StudyObjective::Single, StudyObjective::Pareto { directions: dirs.to_vec() }];
        let executions = [
            Execution::Sequential,
            Execution::Batched { batch_size: 8 },
            Execution::Parallel { threads: 8 },
        ];
        for (mi, mk) in makers.iter().enumerate() {
            for (oi, objective) in objectives.iter().enumerate() {
                for (ei, execution) in executions.iter().enumerate() {
                    let eval = |p: &[usize]| score(p);
                    let run = |trials: usize, durability: Durability, opt: &mut dyn Optimizer| {
                        Study::new(&s, trials)
                            .seed(7)
                            .objective(objective.clone())
                            .execution(*execution)
                            .durability(durability)
                            .run(opt, StudyEval::shared(&eval))
                            .expect("valid configuration")
                    };
                    let mut straight_opt = mk();
                    let straight = run(40, Durability::Ephemeral, straight_opt.as_mut());

                    let dir = scratch_dir(&format!("axis-{mi}-{oi}-{ei}"));
                    let durable = || Durability::Checkpointed { dir: dir.clone(), every: 1 };
                    // "Kill" at trial 24 (a round boundary of every
                    // execution mode here), then rerun the full budget.
                    let mut first = mk();
                    let partial = run(24, durable(), first.as_mut());
                    assert!(partial.checkpoint.as_ref().unwrap().saves > 0);

                    let mut resumed_opt = mk();
                    let resumed = run(40, durable(), resumed_opt.as_mut());
                    let label = format!("{objective:?}/{execution:?}/{}", straight.optimizer);
                    assert_eq!(
                        resumed.checkpoint.as_ref().unwrap().resumed_trials,
                        24,
                        "{label}: must resume from the partial run's file"
                    );
                    assert_eq!(resumed.best_point, straight.best_point, "{label}");
                    assert_eq!(
                        resumed.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        straight.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{label}"
                    );
                    assert_eq!(resumed.trials, straight.trials, "{label}");
                    assert_eq!(resumed.invalid_trials, straight.invalid_trials, "{label}");
                    assert_eq!(resumed.frontier, straight.frontier, "{label}");
                }
            }
        }
    }

    /// A damaged or differently-configured checkpoint file degrades to a
    /// cold (but correct) run instead of panicking or poisoning results.
    #[test]
    fn damaged_or_mismatched_checkpoint_degrades_to_cold_run() {
        let s = space();
        let eval = |p: &[usize]| score(p);
        let run = |seed: u64, durability: Durability| {
            let mut opt = LcsSwarm::default();
            Study::new(&s, 24)
                .seed(seed)
                .execution(Execution::Batched { batch_size: 4 })
                .durability(durability)
                .run(&mut opt, StudyEval::shared(&eval))
                .expect("valid configuration")
        };
        let straight = run(3, Durability::Ephemeral);

        for (name, damage) in [
            ("garbage", vec![0xA5u8; 128]),
            ("truncated", STUDY_MAGIC.to_vec()),
            ("empty", Vec::new()),
        ] {
            let dir = scratch_dir(&format!("damage-{name}"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join(STUDY_FILE_NAME), &damage).unwrap();
            let got = run(3, Durability::Checkpointed { dir, every: 1 });
            assert_eq!(got.checkpoint.as_ref().unwrap().resumed_trials, 0, "{name}");
            assert_eq!(got.trials, straight.trials, "{name}");
        }

        // A checkpoint from a different seed is ignored, not adopted —
        // and quarantined, not overwritten: its progress survives the
        // mismatched rerun's saves.
        let dir = scratch_dir("seed-mismatch");
        let _ = run(99, Durability::Checkpointed { dir: dir.clone(), every: 1 });
        let got = run(3, Durability::Checkpointed { dir: dir.clone(), every: 1 });
        assert_eq!(got.checkpoint.as_ref().unwrap().resumed_trials, 0);
        assert_eq!(got.trials, straight.trials);
        assert!(
            dir.join("study.bin.rejected").exists(),
            "the rejected checkpoint must be preserved, not overwritten"
        );
    }

    /// A checkpoint written by one optimizer must not be adopted by a run
    /// with a different one (e.g. comparing LCS vs TPE against the same
    /// directory): without the state-kind check, TPE would reject the LCS
    /// state, fall back to replay, propose different points, and panic —
    /// instead the file is ignored and the run starts cold.
    #[test]
    fn checkpoint_from_a_different_optimizer_degrades_to_cold_run() {
        let s = space();
        let eval = |p: &[usize]| score(p);
        let dir = scratch_dir("optimizer-mismatch");
        let run = |opt: &mut dyn Optimizer, trials: usize| {
            Study::new(&s, trials)
                .seed(7)
                .execution(Execution::Batched { batch_size: 4 })
                .durability(Durability::Checkpointed { dir: dir.clone(), every: 1 })
                .run(opt, StudyEval::shared(&eval))
                .expect("valid configuration")
        };
        let _ = run(&mut LcsSwarm::default(), 16);
        let mut straight_opt = Tpe::new();
        let straight = Study::new(&s, 24)
            .seed(7)
            .execution(Execution::Batched { batch_size: 4 })
            .run(&mut straight_opt, StudyEval::shared(&eval))
            .expect("valid configuration");
        let got = run(&mut Tpe::new(), 24);
        assert_eq!(
            got.checkpoint.as_ref().unwrap().resumed_trials,
            0,
            "an LCS-written checkpoint must not resume a TPE study"
        );
        assert_eq!(got.trials, straight.trials);

        // Same algorithm, different configuration (swarm size): also a
        // cold start, not a silent continuation of the old configuration.
        let _ = run(&mut LcsSwarm::default(), 16); // refresh the file with a default-LCS state
        let got = run(&mut LcsSwarm::new(3), 24);
        assert_eq!(
            got.checkpoint.as_ref().unwrap().resumed_trials,
            0,
            "a default-swarm checkpoint must not resume a 3-particle study"
        );
    }

    /// `every` thins the saves; the completed study is always persisted.
    #[test]
    fn checkpoint_interval_thins_saves_but_keeps_the_final_state() {
        let s = space();
        let eval = |p: &[usize]| score(p);
        let dir = scratch_dir("every3");
        let mut opt = RandomSearch::new();
        // 24 trials in rounds of 4 = 6 rounds; every=4 saves at round 4
        // plus the forced final-round save.
        let report = Study::new(&s, 24)
            .seed(1)
            .execution(Execution::Batched { batch_size: 4 })
            .durability(Durability::Checkpointed { dir: dir.clone(), every: 4 })
            .run(&mut opt, StudyEval::shared(&eval))
            .expect("valid configuration");
        assert_eq!(report.checkpoint.as_ref().unwrap().saves, 2);
        // The persisted state is the completed study: a rerun is a no-op
        // resume that reproduces it without re-evaluating anything.
        let mut evals = 0usize;
        let mut counting = |p: &[usize]| {
            evals += 1;
            score(p)
        };
        let mut opt2 = RandomSearch::new();
        let rerun = Study::new(&s, 24)
            .seed(1)
            .execution(Execution::Batched { batch_size: 4 })
            .durability(Durability::Checkpointed { dir, every: 4 })
            .run(&mut opt2, StudyEval::points(&mut counting))
            .expect("valid configuration");
        assert_eq!(evals, 0, "a completed checkpoint resumes without re-evaluation");
        assert_eq!(rerun.trials, report.trials);
        assert_eq!(rerun.checkpoint.as_ref().unwrap().resumed_trials, 24);
    }

    /// Deterministic test screener: scores with the same formula `score`
    /// uses for the guide (a perfect surrogate), becomes ready after
    /// `warmup` observations, and (when `restorable`) checkpoints its
    /// observation count.
    struct ToyScreener {
        warmup: usize,
        seen: usize,
        restorable: bool,
    }

    impl ToyScreener {
        fn new(warmup: usize) -> Self {
            ToyScreener { warmup, seen: 0, restorable: true }
        }
    }

    impl Screener for ToyScreener {
        fn ready(&self) -> bool {
            self.seen >= self.warmup
        }

        fn score(&self, p: &[usize]) -> f64 {
            (p[0] * 2 + p[1]) as f64
        }

        fn observe(&mut self, _point: &[usize], _guide: Option<f64>) {
            self.seen += 1;
        }

        fn save_state(&self) -> Vec<u8> {
            (self.seen as u64).to_le_bytes().to_vec()
        }

        fn load_state(&mut self, bytes: &[u8]) -> bool {
            let Ok(raw) = <[u8; 8]>::try_from(bytes) else { return false };
            if !self.restorable {
                return false;
            }
            self.seen = u64::from_le_bytes(raw) as usize;
            true
        }
    }

    fn screened(keep_fraction: f64, min_full: usize) -> Fidelity {
        Fidelity::Screened { keep_fraction, min_full, tier: crate::SurrogateTier::S0 }
    }

    #[test]
    fn screened_config_errors_are_typed() {
        let s = space();
        let mut opt = RandomSearch::new();
        let mut eval = |p: &[usize]| score(p);
        // Screened fidelity without a screener: run() has none to offer.
        let got = Study::new(&s, 8)
            .execution(Execution::Batched { batch_size: 4 })
            .fidelity(screened(0.5, 1))
            .run(&mut opt, StudyEval::points(&mut eval));
        assert_eq!(got.map(|_| ()), Err(StudyConfigError::ScreenedWithoutScreener));
        // Screened fidelity under sequential execution.
        let mut sc = ToyScreener::new(0);
        let got = Study::new(&s, 8).fidelity(screened(0.5, 1)).run_screened(
            &mut opt,
            StudyEval::points(&mut eval),
            &mut sc,
        );
        assert_eq!(got.map(|_| ()), Err(StudyConfigError::ScreenedSequentialExecution));
        // keep_fraction outside (0, 1] — including NaN.
        for bad in [0.0, -0.25, 1.5, f64::NAN] {
            let got = Study::new(&s, 8)
                .execution(Execution::Batched { batch_size: 4 })
                .fidelity(screened(bad, 1))
                .run_screened(&mut opt, StudyEval::points(&mut eval), &mut sc);
            assert_eq!(got.map(|_| ()), Err(StudyConfigError::KeepFractionOutOfRange), "{bad}");
        }
    }

    /// `Screened { keep_fraction: 1.0 }` keeps every proposal: the trial
    /// record, convergence curve, and frontier are bit-identical to the
    /// same study under `Fidelity::Exact` — only the fidelity report is
    /// added. An exact study run through `run_screened` ignores the
    /// screener entirely.
    #[test]
    fn keep_everything_screening_degenerates_to_exact() {
        let s = space();
        let eval = |p: &[usize]| score(p);
        let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
        let base = || {
            Study::new(&s, 48)
                .seed(5)
                .objective(StudyObjective::pareto(&dirs))
                .execution(Execution::Batched { batch_size: 8 })
        };
        let mut opt = LcsSwarm::default();
        let exact = base().run(&mut opt, StudyEval::shared(&eval)).unwrap();

        let mut opt = LcsSwarm::default();
        let mut sc = ToyScreener::new(0);
        let kept_all = base()
            .fidelity(screened(1.0, 0))
            .run_screened(&mut opt, StudyEval::shared(&eval), &mut sc)
            .unwrap();
        assert_eq!(kept_all.trials, exact.trials);
        assert_eq!(
            kept_all.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            exact.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(kept_all.frontier, exact.frontier);
        let fid = kept_all.fidelity.expect("screened studies report fidelity");
        assert_eq!(fid.full_evals, 48);
        assert_eq!(fid.screened_out, 0);

        let mut opt = LcsSwarm::default();
        let mut sc = ToyScreener::new(0);
        let ignored = base().run_screened(&mut opt, StudyEval::shared(&eval), &mut sc).unwrap();
        assert_eq!(ignored.trials, exact.trials);
        assert!(ignored.fidelity.is_none(), "Exact fidelity reports no screening");
        assert_eq!(sc.seen, 0, "Exact fidelity never touches the screener");
    }

    /// Partial screening: only the kept fraction reaches the evaluator,
    /// screened-out trials are recorded as Surrogate outcomes, the frontier
    /// only ever contains fully simulated points, and a perfect surrogate
    /// reports Spearman 1.
    #[test]
    fn screened_run_thins_full_evaluations_and_reports_fidelity() {
        let s = space();
        let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
        let mut evals = 0usize;
        let mut eval = |points: &[Vec<usize>]| {
            evals += points.len();
            points.iter().map(|p| score(p)).collect::<Vec<_>>()
        };
        let mut opt = RandomSearch::new();
        // Warmup of 8 = exactly the first round: round 1 is fully
        // evaluated, every later round keeps 2 of 8.
        let mut sc = ToyScreener::new(8);
        let report = Study::new(&s, 64)
            .seed(3)
            .objective(StudyObjective::pareto(&dirs))
            .execution(Execution::Batched { batch_size: 8 })
            .fidelity(screened(0.25, 2))
            .run_screened(&mut opt, StudyEval::batch(&mut eval), &mut sc)
            .unwrap();
        let fid = report.fidelity.expect("screened studies report fidelity");
        assert_eq!(fid.full_evals, 8 + 7 * 2);
        assert_eq!(fid.screened_out, 64 - fid.full_evals);
        assert_eq!(evals, fid.full_evals, "only kept trials reach the evaluator");
        assert!(fid.savings_factor() > 2.5, "factor = {}", fid.savings_factor());
        // The perfect surrogate ranks exactly like the simulator.
        assert_eq!(fid.spearman, Some(1.0));
        assert_eq!(fid.kendall, Some(1.0));
        assert!(fid.pairs > 0);
        // The full trial record is kept, with screened-out trials marked.
        assert_eq!(report.trials.len(), 64);
        let surrogates = report.trials.iter().filter(|t| !t.result.fully_evaluated()).count();
        assert_eq!(surrogates, fid.screened_out);
        // Every frontier point was fully simulated: its point must appear
        // among the fully evaluated trials.
        for fp in report.frontier.as_ref().unwrap() {
            assert!(report
                .trials
                .iter()
                .any(|t| t.point == fp.point && t.result.fully_evaluated()));
        }
    }

    /// Kill-and-rerun bit-identity holds on the screened axis too — both
    /// when the screener restores its serialized state and when it refuses
    /// the bytes and is retrained by observation replay.
    #[test]
    fn screened_checkpointed_rerun_is_bit_identical() {
        let s = space();
        let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
        let eval = |p: &[usize]| score(p);
        for restorable in [true, false] {
            let mk_sc = || ToyScreener { warmup: 8, seen: 0, restorable };
            let run = |trials: usize, durability: Durability, sc: &mut ToyScreener| {
                let mut opt = LcsSwarm::default();
                Study::new(&s, trials)
                    .seed(11)
                    .objective(StudyObjective::pareto(&dirs))
                    .execution(Execution::Batched { batch_size: 8 })
                    .fidelity(screened(0.25, 2))
                    .durability(durability)
                    .run_screened(&mut opt, StudyEval::shared(&eval), sc)
                    .unwrap()
            };
            let straight = run(64, Durability::Ephemeral, &mut mk_sc());

            let dir = scratch_dir(&format!("screened-{restorable}"));
            let durable = || Durability::Checkpointed { dir: dir.clone(), every: 1 };
            let partial = run(24, durable(), &mut mk_sc());
            assert!(partial.checkpoint.as_ref().unwrap().saves > 0);

            let resumed = run(64, durable(), &mut mk_sc());
            let label = format!("restorable={restorable}");
            assert_eq!(resumed.checkpoint.as_ref().unwrap().resumed_trials, 24, "{label}");
            assert_eq!(resumed.trials, straight.trials, "{label}");
            assert_eq!(
                resumed.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                straight.convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{label}"
            );
            assert_eq!(resumed.frontier, straight.frontier, "{label}");
            assert_eq!(resumed.fidelity, straight.fidelity, "{label}");
        }
    }

    /// A checkpoint written under one fidelity configuration must not be
    /// adopted by a run with another (exact file → screened rerun and
    /// vice versa): both degrade to a quarantined cold start.
    #[test]
    fn fidelity_mismatched_checkpoint_degrades_to_cold_run() {
        let s = space();
        let eval = |p: &[usize]| score(p);
        let dir = scratch_dir("fidelity-mismatch");
        let run_exact = |trials: usize| {
            let mut opt = RandomSearch::new();
            Study::new(&s, trials)
                .seed(2)
                .execution(Execution::Batched { batch_size: 4 })
                .durability(Durability::Checkpointed { dir: dir.clone(), every: 1 })
                .run(&mut opt, StudyEval::shared(&eval))
                .unwrap()
        };
        let run_screened = |trials: usize| {
            let mut opt = RandomSearch::new();
            let mut sc = ToyScreener::new(4);
            Study::new(&s, trials)
                .seed(2)
                .execution(Execution::Batched { batch_size: 4 })
                .fidelity(screened(0.5, 1))
                .durability(Durability::Checkpointed { dir: dir.clone(), every: 1 })
                .run_screened(&mut opt, StudyEval::shared(&eval), &mut sc)
                .unwrap()
        };
        let _ = run_exact(16);
        let got = run_screened(16);
        assert_eq!(
            got.checkpoint.as_ref().unwrap().resumed_trials,
            0,
            "an exact-mode checkpoint must not resume a screened study"
        );
        // The screened rerun's own file now sits there; an exact rerun
        // must reject it in turn.
        let got = run_exact(16);
        assert_eq!(
            got.checkpoint.as_ref().unwrap().resumed_trials,
            0,
            "a screened checkpoint must not resume an exact study"
        );
    }

    /// Single-objective reports carry no frontier; Pareto reports do, and
    /// `into_pareto_result` refuses the former.
    #[test]
    #[should_panic(expected = "single-objective study")]
    fn into_pareto_result_rejects_single_objective_reports() {
        let s = space();
        let mut opt = RandomSearch::new();
        let mut eval = |p: &[usize]| score(p);
        let report = Study::new(&s, 4)
            .run(&mut opt, StudyEval::points(&mut eval))
            .expect("valid configuration");
        assert!(report.frontier.is_none());
        let _ = report.into_pareto_result();
    }
}
