//! # fast-search — black-box optimization for FAST (the Vizier stand-in)
//!
//! The paper drives its design-space exploration with Google Vizier (§5.3,
//! §6.1): a service proposing hyperparameter settings, with LCS and random
//! sampling as alternative heuristics (Figure 11) and *safe search* rejecting
//! invalid designs. This crate rebuilds that substrate:
//!
//! * [`ParamSpace`] — discrete, named parameter domains (powers of two,
//!   categoricals, booleans — exactly Table 3's shapes);
//! * [`Optimizer`] implementations: [`RandomSearch`], [`LcsSwarm`] (linear
//!   combination swarm) and [`Tpe`] (a Parzen-estimator Bayesian optimizer
//!   standing in for Vizier's default);
//! * [`Study`] — the **unified study builder**: one driver whose orthogonal
//!   axes replace the old `run_study_*` function family — objective
//!   ([`StudyObjective::Single`] incumbent or [`StudyObjective::Pareto`]
//!   frontier over a [`ParetoArchive`]), execution
//!   ([`Execution::Sequential`] / [`Execution::Batched`] /
//!   [`Execution::Parallel`]), durability ([`Durability::Ephemeral`] or
//!   [`Durability::Checkpointed`]) and seed, validated at
//!   [`Study::run`] time with a typed [`StudyConfigError`] and returning
//!   one [`StudyReport`];
//! * [`convergence_band`] — multi-run mean/CI aggregation for Figure 11;
//! * [`snapshot`] — the durable-study substrate: [`StudyCheckpoint`] /
//!   [`ParetoCheckpoint`] capture a study at a round boundary (archive,
//!   convergence, trials, [`OptimizerState`], and the `trial_rng` cursor as
//!   `(seed, trials_done)`); [`Durability::Checkpointed`] persists one per
//!   round interval and resumes it bit-identically —
//!   interrupted-then-resumed equals uninterrupted.
//!
//! ```
//! use fast_search::{ParamSpace, ParamDomain, RandomSearch, Study, StudyEval, TrialResult};
//!
//! let mut space = ParamSpace::new();
//! space.add("pe_count", ParamDomain::Pow2 { min: 1, max: 64 });
//! let mut opt = RandomSearch::new();
//! let mut eval = |point: &[usize]| TrialResult::Valid(space.value(point, 0) as f64).into();
//! let report = Study::new(&space, 50)
//!     .seed(0)
//!     .run(&mut opt, StudyEval::points(&mut eval))
//!     .expect("valid configuration");
//! assert_eq!(report.best_objective, Some(64.0));
//! ```
//!
pub mod algorithms;
pub mod builder;
pub mod optimizer;
pub mod pareto;
pub mod screen;
pub mod snapshot;
pub mod space;
pub mod stats;
pub mod study;

pub use algorithms::{LcsSwarm, RandomSearch, Tpe};
pub use builder::{
    CheckpointInfo, Durability, Execution, Study, StudyConfigError, StudyEval, StudyObjective,
    StudyProgress, StudyReport,
};
pub use optimizer::{Optimizer, Trial, TrialResult};
pub use pareto::{
    FrontierPoint, MetricDirection, MultiObjective, MultiTrial, ParetoArchive, ParetoStudyResult,
};
pub use screen::{Fidelity, FidelityReport, Screener, SurrogateTier};
pub use snapshot::{FidelityCheckpoint, OptimizerState, ParetoCheckpoint, StudyCheckpoint};
pub use space::{ParamDef, ParamDomain, ParamSpace};
pub use stats::{kendall_tau, spearman_rank};
pub use study::{convergence_band, trial_rng, ConvergenceBand, StudyResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The toy study shared by the fidelity properties: two Table-3-shaped
    /// axes, one categorical level rejected as invalid, and a two-metric
    /// Pareto objective so the frontier is exercised too.
    fn fidelity_fixture(
    ) -> (ParamSpace, [MetricDirection; 2], impl Fn(&[usize]) -> MultiObjective + Sync) {
        let mut space = ParamSpace::new();
        space.add("a", ParamDomain::Pow2 { min: 1, max: 256 });
        space.add("b", ParamDomain::Categorical { n: 7 });
        let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
        let eval = |p: &[usize]| {
            if p[1] == 6 {
                MultiObjective::Invalid
            } else {
                MultiObjective::valid(
                    vec![(p[0] * (p[1] + 1)) as f64, (p[0] + 3 * p[1]) as f64],
                    (p[0] * (p[1] + 1)) as f64,
                )
            }
        };
        (space, dirs, eval)
    }

    /// One fresh optimizer of each kind the paper sweeps (Figure 11).
    fn make_opt(ix: usize) -> Box<dyn Optimizer> {
        match ix {
            0 => Box::new(RandomSearch::new()),
            1 => Box::new(LcsSwarm::new(6)),
            _ => Box::new(Tpe::new()),
        }
    }

    /// A screener that counts calls; the fidelity properties only ever hand
    /// it to studies that must ignore it or keep every proposal.
    struct OracleScreener {
        seen: usize,
    }

    impl Screener for OracleScreener {
        fn ready(&self) -> bool {
            true
        }

        fn score(&self, p: &[usize]) -> f64 {
            (p[0] * 2 + p[1]) as f64
        }

        fn observe(&mut self, _point: &[usize], _guide: Option<f64>) {
            self.seen += 1;
        }

        fn save_state(&self) -> Vec<u8> {
            Vec::new()
        }

        fn load_state(&mut self, _bytes: &[u8]) -> bool {
            true
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random samples always lie inside the space, for arbitrary spaces.
        #[test]
        fn samples_in_space(dims in prop::collection::vec(0u32..=8, 1..6), seed in 0u64..1000) {
            let mut space = ParamSpace::new();
            for (i, d) in dims.iter().enumerate() {
                space.add(format!("p{i}"), ParamDomain::Pow2 { min: 1, max: 1u64 << d });
            }
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                let p = space.sample(&mut rng);
                prop_assert!(space.contains(&p));
            }
        }

        /// A Pareto archive is order-invariant: inserting the same trials in
        /// any order yields the same non-dominated set (satellite of the
        /// parallel==sequential frontier guarantee).
        #[test]
        fn pareto_archive_order_invariant(
            raw in prop::collection::vec((0usize..40, 0u32..20, 0u32..20), 1..40),
            seed in 0u64..1000,
        ) {
            use rand::Rng as _;
            let pts: Vec<(Vec<usize>, Vec<f64>)> = raw
                .iter()
                .map(|&(p, a, b)| (vec![p], vec![f64::from(a), f64::from(b)]))
                .collect();
            let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
            let build = |order: &[usize]| {
                let mut arch = ParetoArchive::new(&dirs);
                for &i in order {
                    let (p, m) = pts[i].clone();
                    arch.insert(p, m);
                }
                arch.frontier()
            };
            let forward: Vec<usize> = (0..pts.len()).collect();
            let reference = build(&forward);
            // Reversed plus a seeded Fisher–Yates shuffle.
            let mut reversed = forward.clone();
            reversed.reverse();
            prop_assert_eq!(&build(&reversed), &reference);
            let mut shuffled = forward;
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..shuffled.len()).rev() {
                let j = rng.gen_range(0..=i);
                shuffled.swap(i, j);
            }
            prop_assert_eq!(&build(&shuffled), &reference);
        }

        /// A batch-1 Pareto study equals any other batch size for random
        /// search: the frontier is bit-identical, so a caller evaluating
        /// rounds in parallel reproduces the sequential study (the
        /// evaluator returns results in proposal order either way).
        #[test]
        fn pareto_batched_matches_sequential(seed in 0u64..200, batch in 1usize..24) {
            let mut space = ParamSpace::new();
            space.add("a", ParamDomain::Pow2 { min: 1, max: 256 });
            space.add("b", ParamDomain::Categorical { n: 7 });
            let dirs = [MetricDirection::Maximize, MetricDirection::Minimize];
            let score = |p: &[usize]| {
                if p[1] == 6 {
                    MultiObjective::Invalid
                } else {
                    MultiObjective::valid(
                        vec![(p[0] * (p[1] + 1)) as f64, (p[0] + 3 * p[1]) as f64],
                        p[0] as f64,
                    )
                }
            };
            let run = |batch_size: usize| {
                let mut opt = RandomSearch::new();
                let mut eval = |p: &[usize]| score(p);
                Study::new(&space, 60)
                    .seed(seed)
                    .objective(StudyObjective::pareto(&dirs))
                    .execution(Execution::Batched { batch_size })
                    .run(&mut opt, StudyEval::points(&mut eval))
                    .expect("valid configuration")
                    .into_pareto_result()
            };
            let seq = run(1);
            let bat = run(batch);
            prop_assert_eq!(&seq.frontier, &bat.frontier);
            // Bitwise: the convergence prefix is NaN until the first valid
            // trial, and NaN != NaN under PartialEq.
            let bits = |c: &[f64]| c.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&seq.guide_convergence), bits(&bat.guide_convergence));
            prop_assert_eq!(seq.invalid_trials, bat.invalid_trials);
        }

        /// The fidelity axis is inert for exact studies: a study built
        /// without touching the axis, one with an explicit
        /// [`Fidelity::Exact`], and one handed a screener through
        /// `run_screened` all produce bit-identical reports — across every
        /// optimizer and execution shape — and the ignored screener is
        /// never called.
        #[test]
        fn exact_fidelity_is_bit_identical_to_pre_axis_study(
            seed in 0u64..200,
            batch_size in 1usize..12,
            threads in 1usize..8,
            opt_ix in 0usize..3,
        ) {
            let (space, dirs, eval) = fidelity_fixture();
            for execution in [
                Execution::Sequential,
                Execution::Batched { batch_size },
                Execution::Parallel { threads },
            ] {
                let base = || {
                    Study::new(&space, 40)
                        .seed(seed)
                        .objective(StudyObjective::pareto(&dirs))
                        .execution(execution)
                };
                let pre_axis = base()
                    .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval))
                    .expect("valid configuration");
                let explicit = base()
                    .fidelity(Fidelity::Exact)
                    .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval))
                    .expect("valid configuration");
                let mut sc = OracleScreener { seen: 0 };
                let handed = base()
                    .fidelity(Fidelity::Exact)
                    .run_screened(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval), &mut sc)
                    .expect("valid configuration");
                prop_assert_eq!(sc.seen, 0, "Exact fidelity must never touch the screener");
                for report in [&explicit, &handed] {
                    prop_assert_eq!(&report.trials, &pre_axis.trials);
                    prop_assert_eq!(&report.frontier, &pre_axis.frontier);
                    prop_assert_eq!(&report.best_point, &pre_axis.best_point);
                    prop_assert_eq!(
                        report.best_objective.map(f64::to_bits),
                        pre_axis.best_objective.map(f64::to_bits)
                    );
                    let bits = |c: &[f64]| c.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                    prop_assert_eq!(bits(&report.convergence), bits(&pre_axis.convergence));
                    prop_assert_eq!(report.invalid_trials, pre_axis.invalid_trials);
                    prop_assert!(report.fidelity.is_none());
                }
            }
        }

        /// `Screened { keep_fraction: 1.0 }` degenerates to exact: every
        /// proposal is fully evaluated, so the trial record, convergence
        /// curve and frontier are bit-identical to the exact study — only
        /// the [`FidelityReport`] is added, and it records zero screening.
        #[test]
        fn keep_everything_screened_study_is_exact_plus_a_report(
            seed in 0u64..200,
            batch_size in 1usize..12,
            threads in 1usize..8,
            opt_ix in 0usize..3,
            min_full in 0usize..4,
        ) {
            let (space, dirs, eval) = fidelity_fixture();
            for execution in
                [Execution::Batched { batch_size }, Execution::Parallel { threads }]
            {
                let base = || {
                    Study::new(&space, 40)
                        .seed(seed)
                        .objective(StudyObjective::pareto(&dirs))
                        .execution(execution)
                };
                let exact = base()
                    .run(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval))
                    .expect("valid configuration");
                let mut sc = OracleScreener { seen: 0 };
                let screened = base()
                    .fidelity(Fidelity::Screened {
                        keep_fraction: 1.0,
                        min_full,
                        tier: SurrogateTier::S0,
                    })
                    .run_screened(make_opt(opt_ix).as_mut(), StudyEval::shared(&eval), &mut sc)
                    .expect("valid configuration");
                prop_assert_eq!(&screened.trials, &exact.trials);
                prop_assert_eq!(&screened.frontier, &exact.frontier);
                let bits = |c: &[f64]| c.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&screened.convergence), bits(&exact.convergence));
                prop_assert_eq!(screened.invalid_trials, exact.invalid_trials);
                let fid = screened.fidelity.expect("screened studies report fidelity");
                prop_assert_eq!(fid.full_evals, 40);
                prop_assert_eq!(fid.screened_out, 0);
                prop_assert!((fid.savings_factor() - 1.0).abs() < 1e-12);
            }
        }

        /// Convergence curves are monotone non-decreasing past the first
        /// valid trial, for every optimizer.
        #[test]
        fn convergence_monotone(seed in 0u64..50) {
            let mut space = ParamSpace::new();
            space.add("a", ParamDomain::Pow2 { min: 1, max: 256 });
            space.add("b", ParamDomain::Categorical { n: 5 });
            for mut opt in [
                Box::new(RandomSearch::new()) as Box<dyn Optimizer>,
                Box::new(LcsSwarm::new(6)),
                Box::new(Tpe::new()),
            ] {
                let mut eval = |p: &[usize]| {
                    if p[1] == 4 {
                        MultiObjective::Invalid
                    } else {
                        MultiObjective::from(TrialResult::Valid((p[0] * (p[1] + 1)) as f64))
                    }
                };
                let res = Study::new(&space, 60)
                    .seed(seed)
                    .run(opt.as_mut(), StudyEval::points(&mut eval))
                    .expect("valid configuration");
                let mut last = f64::NEG_INFINITY;
                for v in res.convergence.iter().filter(|v| v.is_finite()) {
                    prop_assert!(*v >= last);
                    last = *v;
                }
            }
        }
    }
}
