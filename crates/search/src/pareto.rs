//! Multi-objective (Pareto) search: the layer the paper's budget sweeps
//! stand on (Figs. 9–11 report *frontiers* across area/TDP budgets, not
//! single optima).
//!
//! The scalar study drivers in [`crate::study`] optimize one objective;
//! this module adds the multi-metric path alongside them:
//!
//! * [`MultiObjective`] — the trial outcome carrying one value per tracked
//!   metric plus the scalar *guide* the black-box optimizer climbs;
//! * [`ParetoArchive`] — an order-invariant non-dominated set over two or
//!   more metrics with per-metric [`MetricDirection`]s;
//! * the multi-objective study itself now runs through the unified
//!   [`crate::Study`] builder
//!   (`.objective(StudyObjective::Pareto { .. })`), which keeps the scalar
//!   drivers' `trial_rng(seed, index)` determinism contract, so
//!   batched/parallel evaluation reproduces the sequential study frontier
//!   bit for bit.

use crate::optimizer::TrialResult;
use serde::{Deserialize, Serialize};

/// Whether larger or smaller values of a metric are preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricDirection {
    /// Larger is better (e.g. geomean QPS).
    Maximize,
    /// Smaller is better (e.g. TDP watts, die area).
    Minimize,
}

impl MetricDirection {
    /// Canonicalizes `v` so that "larger is better" holds for every metric:
    /// minimized metrics are negated.
    #[must_use]
    fn signed(self, v: f64) -> f64 {
        match self {
            MetricDirection::Maximize => v,
            MetricDirection::Minimize => -v,
        }
    }
}

/// Outcome of evaluating one point under several metrics at once — the
/// multi-objective counterpart of [`TrialResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MultiObjective {
    /// A feasible design.
    Valid {
        /// One value per archive metric, in the archive's metric order.
        metrics: Vec<f64>,
        /// The scalar the black-box optimizer maximizes while the archive
        /// tracks the full metric vector (e.g. the scenario objective).
        guide: f64,
    },
    /// An infeasible design (safe-search rejection), counted but never
    /// archived.
    Invalid,
    /// A low-fidelity outcome: the point was screened out by a surrogate
    /// ([`crate::Fidelity::Screened`]) and never reached the real
    /// evaluator. `guide` is the surrogate's predicted objective
    /// ([`f64::NEG_INFINITY`] for predicted-infeasible points). Never
    /// archived and never an incumbent: frontiers and best points are built
    /// only from fully evaluated trials.
    Surrogate {
        /// The surrogate score the point was ranked (and rejected) with.
        guide: f64,
    },
}

impl MultiObjective {
    /// Convenience constructor for a feasible outcome.
    #[must_use]
    pub fn valid(metrics: Vec<f64>, guide: f64) -> Self {
        MultiObjective::Valid { metrics, guide }
    }

    /// Whether this outcome came from a full evaluation (valid or
    /// rejected), as opposed to a surrogate screen.
    #[must_use]
    pub fn fully_evaluated(&self) -> bool {
        !matches!(self, MultiObjective::Surrogate { .. })
    }
}

/// A scalar outcome is a multi-objective outcome with no tracked metrics —
/// the bridge that lets single-objective evaluators feed the unified
/// [`crate::Study`] driver with `.into()`.
impl From<TrialResult> for MultiObjective {
    fn from(result: TrialResult) -> Self {
        match result {
            TrialResult::Valid(guide) => MultiObjective::Valid { metrics: Vec::new(), guide },
            TrialResult::Invalid => MultiObjective::Invalid,
        }
    }
}

/// One completed multi-objective trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTrial {
    /// The proposed point (index encoding).
    pub point: Vec<usize>,
    /// Evaluation outcome.
    pub result: MultiObjective,
}

/// A non-dominated point: the design and its metric vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// The design (index encoding).
    pub point: Vec<usize>,
    /// Raw metric values (not canonicalized), in archive metric order.
    pub metrics: Vec<f64>,
}

/// A non-dominated set (Pareto frontier) over two or more metrics.
///
/// Insertion order never affects the final set: a point enters the archive
/// iff no archived point dominates it, and entering evicts every archived
/// point it dominates. Points with identical metric vectors do not dominate
/// each other, so distinct co-located designs are all kept; exact duplicates
/// (same point *and* metrics) are inserted once. [`ParetoArchive::frontier`]
/// returns the set in a canonical sort order, so two archives holding the
/// same set render identically — the basis of the order-invariance and
/// parallel-equals-sequential guarantees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoArchive {
    directions: Vec<MetricDirection>,
    entries: Vec<FrontierPoint>,
}

impl ParetoArchive {
    /// Creates an empty archive over the given metric directions.
    ///
    /// # Panics
    /// Panics if fewer than two metrics are given — a single metric is a
    /// scalar study; use a [`crate::Study`] with the default
    /// [`crate::StudyObjective::Single`] objective instead.
    #[must_use]
    pub fn new(directions: &[MetricDirection]) -> Self {
        assert!(directions.len() >= 2, "a Pareto archive needs >= 2 metrics");
        ParetoArchive { directions: directions.to_vec(), entries: Vec::new() }
    }

    /// Number of tracked metrics.
    #[must_use]
    pub fn metrics(&self) -> usize {
        self.directions.len()
    }

    /// The metric directions.
    #[must_use]
    pub fn directions(&self) -> &[MetricDirection] {
        &self.directions
    }

    /// Number of non-dominated points currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `a` dominates `b`: at least as good on every metric and
    /// strictly better on at least one (directions applied).
    fn dominates(&self, a: &[f64], b: &[f64]) -> bool {
        let mut strictly = false;
        for (d, (&va, &vb)) in self.directions.iter().zip(a.iter().zip(b)) {
            let (sa, sb) = (d.signed(va), d.signed(vb));
            if sa < sb {
                return false;
            }
            if sa > sb {
                strictly = true;
            }
        }
        strictly
    }

    /// Offers a point to the archive. Returns `true` if it was kept (it is
    /// non-dominated and not an exact duplicate), evicting any archived
    /// points it dominates.
    ///
    /// # Panics
    /// Panics if `metrics` has the wrong arity or contains a NaN (NaN has no
    /// place in a dominance order).
    pub fn insert(&mut self, point: Vec<usize>, metrics: Vec<f64>) -> bool {
        assert_eq!(metrics.len(), self.directions.len(), "metric arity mismatch");
        assert!(metrics.iter().all(|m| !m.is_nan()), "NaN metric offered to Pareto archive");
        for e in &self.entries {
            if self.dominates(&e.metrics, &metrics) {
                return false;
            }
            if e.metrics == metrics && e.point == point {
                return false; // exact duplicate
            }
        }
        let dominated: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.dominates(&metrics, &self.entries[i].metrics))
            .collect();
        for i in dominated.into_iter().rev() {
            self.entries.remove(i);
        }
        self.entries.push(FrontierPoint { point, metrics });
        true
    }

    /// The raw entries in insertion order — the serialization view.
    /// Prefer [`ParetoArchive::frontier`] for reporting: insertion order is
    /// an implementation detail that checkpointing must preserve (so a
    /// resumed archive is *bit*-identical, not merely set-identical) but
    /// nothing else should depend on.
    #[must_use]
    pub fn entries(&self) -> &[FrontierPoint] {
        &self.entries
    }

    /// Rebuilds an archive from serialized parts, preserving entry order.
    ///
    /// Validates everything [`ParetoArchive::insert`] would have: ≥ 2
    /// directions, metric arity, no NaNs, and mutual non-domination with no
    /// exact duplicates — so a decoded archive is indistinguishable from
    /// the archive that was encoded.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn from_parts(
        directions: &[MetricDirection],
        entries: Vec<FrontierPoint>,
    ) -> Result<Self, String> {
        if directions.len() < 2 {
            return Err(format!("a Pareto archive needs >= 2 metrics, got {}", directions.len()));
        }
        let mut archive = ParetoArchive { directions: directions.to_vec(), entries: Vec::new() };
        for fp in entries {
            if fp.metrics.len() != directions.len() {
                return Err(format!(
                    "entry arity {} != {} directions",
                    fp.metrics.len(),
                    directions.len()
                ));
            }
            if fp.metrics.iter().any(|m| m.is_nan()) {
                return Err("NaN metric in archive entry".to_string());
            }
            if !archive.insert(fp.point, fp.metrics) {
                return Err("archive entries are not a mutually non-dominated set".to_string());
            }
        }
        Ok(archive)
    }

    /// The non-dominated set in canonical order: sorted by metric values
    /// (lexicographic `total_cmp`), ties broken by the point encoding.
    #[must_use]
    pub fn frontier(&self) -> Vec<FrontierPoint> {
        let mut f = self.entries.clone();
        f.sort_by(|a, b| {
            a.metrics
                .iter()
                .zip(&b.metrics)
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.point.cmp(&b.point))
        });
        f
    }
}

/// Result of one multi-objective study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoStudyResult {
    /// Optimizer name.
    pub optimizer: String,
    /// The non-dominated set over all valid trials, in canonical order.
    pub frontier: Vec<FrontierPoint>,
    /// Best-so-far *guide* scalar after each trial (`NaN` until the first
    /// valid trial) — the multi-objective analogue of
    /// [`crate::StudyResult::convergence`].
    pub guide_convergence: Vec<f64>,
    /// Number of invalid (rejected) trials.
    pub invalid_trials: usize,
    /// All trials in order.
    pub trials: Vec<MultiTrial>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::RandomSearch;
    use crate::builder::{Execution, RoundSnapshot, Study, StudyEval, StudyObjective};
    use crate::optimizer::{Optimizer, Trial};
    use crate::snapshot::ParetoCheckpoint;
    use crate::space::{ParamDomain, ParamSpace};
    use rand::rngs::StdRng;
    use MetricDirection::{Maximize, Minimize};

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add("x", ParamDomain::Pow2 { min: 1, max: 64 });
        s.add("y", ParamDomain::Pow2 { min: 1, max: 64 });
        s
    }

    /// Sequential (batch-1) Pareto study in the one modern spelling.
    fn run_pareto(
        space: &ParamSpace,
        optimizer: &mut dyn Optimizer,
        n_trials: usize,
        seed: u64,
        directions: &[MetricDirection],
        mut objective: impl FnMut(&[usize]) -> MultiObjective,
    ) -> ParetoStudyResult {
        let mut eval = |p: &[usize]| objective(p);
        Study::new(space, n_trials)
            .seed(seed)
            .objective(StudyObjective::pareto(directions))
            .execution(Execution::Batched { batch_size: 1 })
            .run(optimizer, StudyEval::points(&mut eval))
            .expect("valid study configuration")
            .into_pareto_result()
    }

    /// Batched Pareto study in the one modern spelling.
    fn run_pareto_batched(
        space: &ParamSpace,
        optimizer: &mut dyn Optimizer,
        n_trials: usize,
        batch_size: usize,
        seed: u64,
        directions: &[MetricDirection],
        mut evaluate_batch: impl FnMut(&[Vec<usize>]) -> Vec<MultiObjective>,
    ) -> ParetoStudyResult {
        let mut eval = |points: &[Vec<usize>]| evaluate_batch(points);
        Study::new(space, n_trials)
            .seed(seed)
            .objective(StudyObjective::pareto(directions))
            .execution(Execution::Batched { batch_size })
            .run(optimizer, StudyEval::batch(&mut eval))
            .expect("valid study configuration")
            .into_pareto_result()
    }

    /// Batched Pareto study with programmatic round snapshots — the
    /// in-memory counterpart of `Durability::Checkpointed`.
    #[allow(clippy::too_many_arguments)] // the durable superset of the batched helper
    fn run_pareto_resumable(
        space: &ParamSpace,
        optimizer: &mut dyn Optimizer,
        n_trials: usize,
        batch_size: usize,
        seed: u64,
        directions: &[MetricDirection],
        resume_from: Option<ParetoCheckpoint>,
        mut evaluate_batch: impl FnMut(&[Vec<usize>]) -> Vec<MultiObjective>,
        mut on_round: impl FnMut(&ParetoCheckpoint),
    ) -> ParetoStudyResult {
        let mut eval = |points: &[Vec<usize>]| evaluate_batch(points);
        let mut hook = |_p: &crate::StudyProgress, make: &dyn Fn() -> RoundSnapshot| {
            let RoundSnapshot::Pareto(ck) = make() else {
                unreachable!("a Pareto study emits Pareto snapshots")
            };
            on_round(&ck);
        };
        Study::new(space, n_trials)
            .seed(seed)
            .objective(StudyObjective::pareto(directions))
            .execution(Execution::Batched { batch_size })
            .run_hooked(
                optimizer,
                StudyEval::batch(&mut eval),
                None,
                resume_from.map(RoundSnapshot::Pareto),
                Some(&mut hook),
            )
            .into_pareto_result()
    }

    #[test]
    fn archive_keeps_only_non_dominated() {
        let mut a = ParetoArchive::new(&[Maximize, Minimize]);
        assert!(a.insert(vec![0], vec![1.0, 5.0]));
        // Dominated: lower qps, higher tdp.
        assert!(!a.insert(vec![1], vec![0.5, 6.0]));
        // Dominates the first: evicts it.
        assert!(a.insert(vec![2], vec![2.0, 4.0]));
        assert_eq!(a.len(), 1);
        // Incomparable: better on one metric, worse on the other.
        assert!(a.insert(vec![3], vec![1.0, 1.0]));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn archive_keeps_colocated_points_and_dedupes_exact() {
        let mut a = ParetoArchive::new(&[Maximize, Maximize]);
        assert!(a.insert(vec![0], vec![1.0, 1.0]));
        // Same metrics, different design: neither dominates, both kept.
        assert!(a.insert(vec![1], vec![1.0, 1.0]));
        // Exact duplicate: skipped.
        assert!(!a.insert(vec![0], vec![1.0, 1.0]));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn archive_is_order_invariant_on_a_fixed_set() {
        let pts: Vec<(Vec<usize>, Vec<f64>)> = vec![
            (vec![0], vec![1.0, 5.0]),
            (vec![1], vec![2.0, 4.0]),
            (vec![2], vec![0.5, 6.0]),
            (vec![3], vec![2.0, 4.0]),
            (vec![4], vec![3.0, 9.0]),
            (vec![5], vec![1.5, 4.5]),
        ];
        let build = |order: &[usize]| {
            let mut a = ParetoArchive::new(&[Maximize, Minimize]);
            for &i in order {
                let (p, m) = pts[i].clone();
                a.insert(p, m);
            }
            a.frontier()
        };
        let reference = build(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(reference, build(&[5, 4, 3, 2, 1, 0]));
        assert_eq!(reference, build(&[3, 0, 5, 1, 4, 2]));
        assert_eq!(reference, build(&[2, 4, 0, 3, 1, 5]));
    }

    #[test]
    #[should_panic(expected = "metric arity mismatch")]
    fn archive_rejects_wrong_arity() {
        let mut a = ParetoArchive::new(&[Maximize, Minimize]);
        a.insert(vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = ">= 2 metrics")]
    fn archive_rejects_single_metric() {
        let _ = ParetoArchive::new(&[Maximize]);
    }

    #[test]
    fn pareto_study_tracks_frontier_and_guide() {
        let s = space();
        let mut opt = RandomSearch::new();
        let res = run_pareto(&s, &mut opt, 200, 7, &[Maximize, Minimize], |p| {
            // qps grows with x, "tdp" grows with x + y: the frontier is the
            // set of y == 0 points (any extra y costs tdp, gains nothing).
            let (x, y) = (p[0] as f64, p[1] as f64);
            MultiObjective::valid(vec![x, x + y], x / (x + y + 1.0))
        });
        assert_eq!(res.guide_convergence.len(), 200);
        assert_eq!(res.invalid_trials, 0);
        assert!(!res.frontier.is_empty());
        for fp in &res.frontier {
            assert_eq!(fp.point[1], 0, "frontier must be y == 0, got {:?}", fp.point);
        }
        // Guide convergence is monotone once finite.
        let mut last = f64::NEG_INFINITY;
        for v in res.guide_convergence.iter().filter(|v| v.is_finite()) {
            assert!(*v >= last);
            last = *v;
        }
    }

    #[test]
    fn pareto_study_counts_invalid_trials() {
        let s = space();
        let mut opt = RandomSearch::new();
        let res = run_pareto(&s, &mut opt, 100, 3, &[Maximize, Minimize], |p| {
            if p[0] > 3 {
                MultiObjective::Invalid
            } else {
                MultiObjective::valid(vec![p[0] as f64, p[1] as f64], p[0] as f64)
            }
        });
        assert!(res.invalid_trials > 0);
        assert!(res.frontier.iter().all(|fp| fp.point[0] <= 3));
        assert_eq!(res.trials.len(), 100);
    }

    /// The durability contract: checkpoint after any round, resume with a
    /// *fresh* optimizer, and the study ends bit-identical to an
    /// uninterrupted run — for every built-in algorithm (state restore)
    /// and for an Opaque-state optimizer (replay path).
    #[test]
    fn resumed_study_is_bit_identical_to_uninterrupted() {
        use crate::algorithms::{LcsSwarm, Tpe};
        use crate::snapshot::ParetoCheckpoint;

        let s = space();
        let dirs = [Maximize, Minimize];
        let objective = |pts: &[Vec<usize>]| -> Vec<MultiObjective> {
            pts.iter()
                .map(|p| {
                    if p[0] == 0 && p[1] == 0 {
                        MultiObjective::Invalid
                    } else {
                        let (x, y) = (p[0] as f64, p[1] as f64);
                        MultiObjective::valid(vec![x, x + y], x / (y + 1.0))
                    }
                })
                .collect()
        };

        type MkOpt = fn() -> Box<dyn Optimizer>;
        let makers: [MkOpt; 3] = [
            || Box::new(RandomSearch::new()),
            || Box::new(LcsSwarm::default()),
            || Box::new(Tpe::new()),
        ];
        for mk in makers {
            let mut straight_opt = mk();
            let straight =
                run_pareto_batched(&s, straight_opt.as_mut(), 60, 8, 11, &dirs, objective);

            // Capture checkpoints at every round boundary, then resume from
            // a mid-study one with a fresh optimizer.
            let mut checkpoints: Vec<ParetoCheckpoint> = Vec::new();
            let mut first_opt = mk();
            let _ = run_pareto_resumable(
                &s,
                first_opt.as_mut(),
                32,
                8,
                11,
                &dirs,
                None,
                objective,
                |ck| checkpoints.push(ck.clone()),
            );
            assert_eq!(checkpoints.len(), 4, "{}: one checkpoint per round", first_opt.name());
            let ck = checkpoints[2].clone(); // killed after 24 of 60 trials
            assert_eq!(ck.trials_done(), 24);

            let mut resumed_opt = mk();
            let resumed = run_pareto_resumable(
                &s,
                resumed_opt.as_mut(),
                60,
                8,
                11,
                &dirs,
                Some(ck),
                objective,
                |_| {},
            );

            let name = resumed_opt.name();
            assert_eq!(resumed.frontier, straight.frontier, "{name}: frontier");
            assert_eq!(
                resumed.guide_convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                straight.guide_convergence.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{name}: convergence"
            );
            assert_eq!(resumed.trials, straight.trials, "{name}: trial sequence");
            assert_eq!(resumed.invalid_trials, straight.invalid_trials, "{name}");
        }
    }

    /// An optimizer whose `save_state` stays `Opaque` exercises the replay
    /// fallback: resume must still be bit-identical.
    #[test]
    fn opaque_optimizer_resumes_via_replay() {
        use crate::algorithms::LcsSwarm;

        /// LCS with snapshotting hidden — forces the replay path.
        struct NoSnapshot(LcsSwarm);
        impl Optimizer for NoSnapshot {
            fn name(&self) -> &'static str {
                "no-snapshot LCS"
            }
            fn propose(&mut self, space: &ParamSpace, rng: &mut StdRng) -> Vec<usize> {
                self.0.propose(space, rng)
            }
            fn observe(&mut self, space: &ParamSpace, trial: &Trial) {
                self.0.observe(space, trial);
            }
        }

        let s = space();
        let dirs = [Maximize, Minimize];
        let objective = |pts: &[Vec<usize>]| -> Vec<MultiObjective> {
            pts.iter()
                .map(|p| MultiObjective::valid(vec![p[0] as f64, p[1] as f64], p[0] as f64))
                .collect()
        };

        let mut straight_opt = NoSnapshot(LcsSwarm::default());
        let straight = run_pareto_batched(&s, &mut straight_opt, 48, 6, 3, &dirs, objective);

        let mut checkpoints = Vec::new();
        let mut first = NoSnapshot(LcsSwarm::default());
        let _ = run_pareto_resumable(&s, &mut first, 24, 6, 3, &dirs, None, objective, |ck| {
            checkpoints.push(ck.clone());
        });
        let ck = checkpoints.last().unwrap().clone();
        assert_eq!(ck.optimizer, crate::snapshot::OptimizerState::Opaque);

        let mut resumed_opt = NoSnapshot(LcsSwarm::default());
        let resumed = run_pareto_resumable(
            &s,
            &mut resumed_opt,
            48,
            6,
            3,
            &dirs,
            Some(ck),
            objective,
            |_| {},
        );
        assert_eq!(resumed.frontier, straight.frontier);
        assert_eq!(resumed.trials, straight.trials);
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn resume_rejects_checkpoint_from_a_different_seed() {
        let s = space();
        let dirs = [Maximize, Minimize];
        let objective = |pts: &[Vec<usize>]| -> Vec<MultiObjective> {
            pts.iter().map(|p| MultiObjective::valid(vec![p[0] as f64, 0.0], 0.0)).collect()
        };
        let mut checkpoints = Vec::new();
        let mut opt = RandomSearch::new();
        let _ = run_pareto_resumable(&s, &mut opt, 8, 4, 1, &dirs, None, objective, |ck| {
            checkpoints.push(ck.clone());
        });
        let mut opt2 = RandomSearch::new();
        let _ = run_pareto_resumable(
            &s,
            &mut opt2,
            8,
            4,
            2, // different seed
            &dirs,
            Some(checkpoints.pop().unwrap()),
            objective,
            |_| {},
        );
    }

    #[test]
    fn batched_pareto_study_is_invariant_to_batch_size_for_random_search() {
        let s = space();
        let run = |batch| {
            let mut opt = RandomSearch::new();
            run_pareto_batched(&s, &mut opt, 93, batch, 5, &[Maximize, Minimize], |pts| {
                pts.iter()
                    .map(|p| {
                        MultiObjective::valid(
                            vec![(p[0] * 2) as f64, (p[0] + p[1]) as f64],
                            p[0] as f64,
                        )
                    })
                    .collect()
            })
        };
        let a = run(1);
        for batch in [2, 16, 93, 1000] {
            let b = run(batch);
            assert_eq!(a.frontier, b.frontier, "batch {batch}");
            assert_eq!(a.guide_convergence, b.guide_convergence, "batch {batch}");
        }
    }
}
