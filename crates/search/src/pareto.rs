//! Multi-objective (Pareto) search: the layer the paper's budget sweeps
//! stand on (Figs. 9–11 report *frontiers* across area/TDP budgets, not
//! single optima).
//!
//! The scalar study drivers in [`crate::study`] optimize one objective;
//! this module adds the multi-metric path alongside them:
//!
//! * [`MultiObjective`] — the trial outcome carrying one value per tracked
//!   metric plus the scalar *guide* the black-box optimizer climbs;
//! * [`ParetoArchive`] — an order-invariant non-dominated set over two or
//!   more metrics with per-metric [`MetricDirection`]s;
//! * [`run_study_pareto`] / [`run_study_pareto_batched`] — study drivers
//!   that keep the scalar drivers' `trial_rng(seed, index)` determinism
//!   contract, so batched/parallel evaluation reproduces the sequential
//!   study frontier bit for bit.

use crate::optimizer::{Optimizer, Trial, TrialResult};
use crate::space::ParamSpace;
use crate::study::trial_rng;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Whether larger or smaller values of a metric are preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricDirection {
    /// Larger is better (e.g. geomean QPS).
    Maximize,
    /// Smaller is better (e.g. TDP watts, die area).
    Minimize,
}

impl MetricDirection {
    /// Canonicalizes `v` so that "larger is better" holds for every metric:
    /// minimized metrics are negated.
    #[must_use]
    fn signed(self, v: f64) -> f64 {
        match self {
            MetricDirection::Maximize => v,
            MetricDirection::Minimize => -v,
        }
    }
}

/// Outcome of evaluating one point under several metrics at once — the
/// multi-objective counterpart of [`TrialResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MultiObjective {
    /// A feasible design.
    Valid {
        /// One value per archive metric, in the archive's metric order.
        metrics: Vec<f64>,
        /// The scalar the black-box optimizer maximizes while the archive
        /// tracks the full metric vector (e.g. the scenario objective).
        guide: f64,
    },
    /// An infeasible design (safe-search rejection), counted but never
    /// archived.
    Invalid,
}

impl MultiObjective {
    /// Convenience constructor for a feasible outcome.
    #[must_use]
    pub fn valid(metrics: Vec<f64>, guide: f64) -> Self {
        MultiObjective::Valid { metrics, guide }
    }
}

/// One completed multi-objective trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTrial {
    /// The proposed point (index encoding).
    pub point: Vec<usize>,
    /// Evaluation outcome.
    pub result: MultiObjective,
}

/// A non-dominated point: the design and its metric vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// The design (index encoding).
    pub point: Vec<usize>,
    /// Raw metric values (not canonicalized), in archive metric order.
    pub metrics: Vec<f64>,
}

/// A non-dominated set (Pareto frontier) over two or more metrics.
///
/// Insertion order never affects the final set: a point enters the archive
/// iff no archived point dominates it, and entering evicts every archived
/// point it dominates. Points with identical metric vectors do not dominate
/// each other, so distinct co-located designs are all kept; exact duplicates
/// (same point *and* metrics) are inserted once. [`ParetoArchive::frontier`]
/// returns the set in a canonical sort order, so two archives holding the
/// same set render identically — the basis of the order-invariance and
/// parallel-equals-sequential guarantees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoArchive {
    directions: Vec<MetricDirection>,
    entries: Vec<FrontierPoint>,
}

impl ParetoArchive {
    /// Creates an empty archive over the given metric directions.
    ///
    /// # Panics
    /// Panics if fewer than two metrics are given — a single metric is a
    /// scalar study; use [`crate::run_study`] instead.
    #[must_use]
    pub fn new(directions: &[MetricDirection]) -> Self {
        assert!(directions.len() >= 2, "a Pareto archive needs >= 2 metrics");
        ParetoArchive { directions: directions.to_vec(), entries: Vec::new() }
    }

    /// Number of tracked metrics.
    #[must_use]
    pub fn metrics(&self) -> usize {
        self.directions.len()
    }

    /// The metric directions.
    #[must_use]
    pub fn directions(&self) -> &[MetricDirection] {
        &self.directions
    }

    /// Number of non-dominated points currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `a` dominates `b`: at least as good on every metric and
    /// strictly better on at least one (directions applied).
    fn dominates(&self, a: &[f64], b: &[f64]) -> bool {
        let mut strictly = false;
        for (d, (&va, &vb)) in self.directions.iter().zip(a.iter().zip(b)) {
            let (sa, sb) = (d.signed(va), d.signed(vb));
            if sa < sb {
                return false;
            }
            if sa > sb {
                strictly = true;
            }
        }
        strictly
    }

    /// Offers a point to the archive. Returns `true` if it was kept (it is
    /// non-dominated and not an exact duplicate), evicting any archived
    /// points it dominates.
    ///
    /// # Panics
    /// Panics if `metrics` has the wrong arity or contains a NaN (NaN has no
    /// place in a dominance order).
    pub fn insert(&mut self, point: Vec<usize>, metrics: Vec<f64>) -> bool {
        assert_eq!(metrics.len(), self.directions.len(), "metric arity mismatch");
        assert!(metrics.iter().all(|m| !m.is_nan()), "NaN metric offered to Pareto archive");
        for e in &self.entries {
            if self.dominates(&e.metrics, &metrics) {
                return false;
            }
            if e.metrics == metrics && e.point == point {
                return false; // exact duplicate
            }
        }
        let dominated: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.dominates(&metrics, &self.entries[i].metrics))
            .collect();
        for i in dominated.into_iter().rev() {
            self.entries.remove(i);
        }
        self.entries.push(FrontierPoint { point, metrics });
        true
    }

    /// The non-dominated set in canonical order: sorted by metric values
    /// (lexicographic `total_cmp`), ties broken by the point encoding.
    #[must_use]
    pub fn frontier(&self) -> Vec<FrontierPoint> {
        let mut f = self.entries.clone();
        f.sort_by(|a, b| {
            a.metrics
                .iter()
                .zip(&b.metrics)
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.point.cmp(&b.point))
        });
        f
    }
}

/// Result of one multi-objective study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoStudyResult {
    /// Optimizer name.
    pub optimizer: String,
    /// The non-dominated set over all valid trials, in canonical order.
    pub frontier: Vec<FrontierPoint>,
    /// Best-so-far *guide* scalar after each trial (`NaN` until the first
    /// valid trial) — the multi-objective analogue of
    /// [`crate::StudyResult::convergence`].
    pub guide_convergence: Vec<f64>,
    /// Number of invalid (rejected) trials.
    pub invalid_trials: usize,
    /// All trials in order.
    pub trials: Vec<MultiTrial>,
}

/// Runs `optimizer` for `n_trials` multi-objective evaluations, one point at
/// a time, maintaining a [`ParetoArchive`] over `directions`.
///
/// Determinism: identical to [`run_study_pareto_batched`] with
/// `batch_size == 1` — every trial draws its RNG from
/// [`trial_rng`]`(seed, index)`, so the frontier depends only on the seed,
/// the optimizer, and the objective function.
pub fn run_study_pareto<F>(
    space: &ParamSpace,
    optimizer: &mut dyn Optimizer,
    n_trials: usize,
    seed: u64,
    directions: &[MetricDirection],
    mut objective: F,
) -> ParetoStudyResult
where
    F: FnMut(&[usize]) -> MultiObjective,
{
    run_study_pareto_batched(space, optimizer, n_trials, 1, seed, directions, |points| {
        points.iter().map(|p| objective(p)).collect()
    })
}

/// Runs `optimizer` for `n_trials` multi-objective evaluations in rounds of
/// `batch_size` proposals, handing each round to `evaluate_batch` as a
/// slice.
///
/// This is the multi-objective sibling of [`crate::run_study_batched`] and
/// keeps its determinism contract: trial `i` draws its randomness from
/// [`trial_rng`]`(seed, i)`, rounds are observed in proposal order, and
/// `evaluate_batch` must return one [`MultiObjective`] per point in proposal
/// order — so the caller may evaluate a round's points concurrently (or
/// serially) and obtain a bit-identical [`ParetoStudyResult::frontier`].
/// The optimizer itself observes the scalar `guide` of each valid trial
/// (as [`TrialResult::Valid`]) while the archive tracks the full metric
/// vectors.
///
/// # Panics
/// Panics if `evaluate_batch` returns the wrong number of results or a
/// metric vector of the wrong arity.
pub fn run_study_pareto_batched<F>(
    space: &ParamSpace,
    optimizer: &mut dyn Optimizer,
    n_trials: usize,
    batch_size: usize,
    seed: u64,
    directions: &[MetricDirection],
    mut evaluate_batch: F,
) -> ParetoStudyResult
where
    F: FnMut(&[Vec<usize>]) -> Vec<MultiObjective>,
{
    let batch_size = batch_size.max(1);
    let mut archive = ParetoArchive::new(directions);
    let mut best_guide = f64::NAN;
    let mut guide_convergence = Vec::with_capacity(n_trials);
    let mut invalid = 0;
    let mut trials = Vec::with_capacity(n_trials);

    let mut start = 0;
    while start < n_trials {
        let round = batch_size.min(n_trials - start);
        let mut rngs: Vec<StdRng> = (start..start + round).map(|i| trial_rng(seed, i)).collect();
        let points = optimizer.propose_batch(space, &mut rngs);
        assert_eq!(points.len(), round, "optimizer must propose one point per RNG");
        debug_assert!(points.iter().all(|p| space.contains(p)));

        let results = evaluate_batch(&points);
        assert_eq!(results.len(), round, "evaluator must score every proposed point");

        let mut scalar_trials = Vec::with_capacity(round);
        for (point, result) in points.into_iter().zip(results) {
            let scalar = match &result {
                MultiObjective::Valid { metrics, guide } => {
                    archive.insert(point.clone(), metrics.clone());
                    if best_guide.is_nan() || *guide > best_guide {
                        best_guide = *guide;
                    }
                    TrialResult::Valid(*guide)
                }
                MultiObjective::Invalid => {
                    invalid += 1;
                    TrialResult::Invalid
                }
            };
            guide_convergence.push(best_guide);
            scalar_trials.push(Trial { point: point.clone(), result: scalar });
            trials.push(MultiTrial { point, result });
        }
        optimizer.observe_batch(space, &scalar_trials);
        start += round;
    }

    ParetoStudyResult {
        optimizer: optimizer.name().to_string(),
        frontier: archive.frontier(),
        guide_convergence,
        invalid_trials: invalid,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::RandomSearch;
    use crate::space::ParamDomain;
    use MetricDirection::{Maximize, Minimize};

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add("x", ParamDomain::Pow2 { min: 1, max: 64 });
        s.add("y", ParamDomain::Pow2 { min: 1, max: 64 });
        s
    }

    #[test]
    fn archive_keeps_only_non_dominated() {
        let mut a = ParetoArchive::new(&[Maximize, Minimize]);
        assert!(a.insert(vec![0], vec![1.0, 5.0]));
        // Dominated: lower qps, higher tdp.
        assert!(!a.insert(vec![1], vec![0.5, 6.0]));
        // Dominates the first: evicts it.
        assert!(a.insert(vec![2], vec![2.0, 4.0]));
        assert_eq!(a.len(), 1);
        // Incomparable: better on one metric, worse on the other.
        assert!(a.insert(vec![3], vec![1.0, 1.0]));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn archive_keeps_colocated_points_and_dedupes_exact() {
        let mut a = ParetoArchive::new(&[Maximize, Maximize]);
        assert!(a.insert(vec![0], vec![1.0, 1.0]));
        // Same metrics, different design: neither dominates, both kept.
        assert!(a.insert(vec![1], vec![1.0, 1.0]));
        // Exact duplicate: skipped.
        assert!(!a.insert(vec![0], vec![1.0, 1.0]));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn archive_is_order_invariant_on_a_fixed_set() {
        let pts: Vec<(Vec<usize>, Vec<f64>)> = vec![
            (vec![0], vec![1.0, 5.0]),
            (vec![1], vec![2.0, 4.0]),
            (vec![2], vec![0.5, 6.0]),
            (vec![3], vec![2.0, 4.0]),
            (vec![4], vec![3.0, 9.0]),
            (vec![5], vec![1.5, 4.5]),
        ];
        let build = |order: &[usize]| {
            let mut a = ParetoArchive::new(&[Maximize, Minimize]);
            for &i in order {
                let (p, m) = pts[i].clone();
                a.insert(p, m);
            }
            a.frontier()
        };
        let reference = build(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(reference, build(&[5, 4, 3, 2, 1, 0]));
        assert_eq!(reference, build(&[3, 0, 5, 1, 4, 2]));
        assert_eq!(reference, build(&[2, 4, 0, 3, 1, 5]));
    }

    #[test]
    #[should_panic(expected = "metric arity mismatch")]
    fn archive_rejects_wrong_arity() {
        let mut a = ParetoArchive::new(&[Maximize, Minimize]);
        a.insert(vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = ">= 2 metrics")]
    fn archive_rejects_single_metric() {
        let _ = ParetoArchive::new(&[Maximize]);
    }

    #[test]
    fn pareto_study_tracks_frontier_and_guide() {
        let s = space();
        let mut opt = RandomSearch::new();
        let res = run_study_pareto(&s, &mut opt, 200, 7, &[Maximize, Minimize], |p| {
            // qps grows with x, "tdp" grows with x + y: the frontier is the
            // set of y == 0 points (any extra y costs tdp, gains nothing).
            let (x, y) = (p[0] as f64, p[1] as f64);
            MultiObjective::valid(vec![x, x + y], x / (x + y + 1.0))
        });
        assert_eq!(res.guide_convergence.len(), 200);
        assert_eq!(res.invalid_trials, 0);
        assert!(!res.frontier.is_empty());
        for fp in &res.frontier {
            assert_eq!(fp.point[1], 0, "frontier must be y == 0, got {:?}", fp.point);
        }
        // Guide convergence is monotone once finite.
        let mut last = f64::NEG_INFINITY;
        for v in res.guide_convergence.iter().filter(|v| v.is_finite()) {
            assert!(*v >= last);
            last = *v;
        }
    }

    #[test]
    fn pareto_study_counts_invalid_trials() {
        let s = space();
        let mut opt = RandomSearch::new();
        let res = run_study_pareto(&s, &mut opt, 100, 3, &[Maximize, Minimize], |p| {
            if p[0] > 3 {
                MultiObjective::Invalid
            } else {
                MultiObjective::valid(vec![p[0] as f64, p[1] as f64], p[0] as f64)
            }
        });
        assert!(res.invalid_trials > 0);
        assert!(res.frontier.iter().all(|fp| fp.point[0] <= 3));
        assert_eq!(res.trials.len(), 100);
    }

    #[test]
    fn batched_pareto_study_is_invariant_to_batch_size_for_random_search() {
        let s = space();
        let run = |batch| {
            let mut opt = RandomSearch::new();
            run_study_pareto_batched(&s, &mut opt, 93, batch, 5, &[Maximize, Minimize], |pts| {
                pts.iter()
                    .map(|p| {
                        MultiObjective::valid(
                            vec![(p[0] * 2) as f64, (p[0] + p[1]) as f64],
                            p[0] as f64,
                        )
                    })
                    .collect()
            })
        };
        let a = run(1);
        for batch in [2, 16, 93, 1000] {
            let b = run(batch);
            assert_eq!(a.frontier, b.frontier, "batch {batch}");
            assert_eq!(a.guide_convergence, b.guide_convergence, "batch {batch}");
        }
    }
}
