//! Concurrency: N clients hammering one daemon must each get exactly what
//! a solo single-process run of their spec produces — bit-identical — while
//! sharing one warm evaluator, and the admission controller must shed load
//! with typed rejects instead of stalls.

mod common;

use std::thread;

use common::{b0, expected_points, outcome_points, scratch, spec_one, ServerProc};
use fast_core::{BudgetLevel, JobSpec};
use fast_serve::{ClientError, JobEvent, JobPhase, RejectReason, Request, Response};

/// The three-client fixture: one domain, three budget levels, so the jobs
/// contend for the shared evaluator without being identical.
fn budget_specs(trials: usize, batch: usize) -> Vec<JobSpec> {
    [1.0, 0.75, 0.5]
        .iter()
        .map(|&scale| {
            let mut spec = spec_one(&format!("concurrent-{scale}"), b0(), trials, batch);
            spec.matrix.budgets = vec![BudgetLevel::scaled(scale)];
            spec
        })
        .collect()
}

#[test]
fn concurrent_clients_are_bit_identical_to_sequential_runs() {
    let specs = budget_specs(32, 4);
    let expected: Vec<String> = specs.iter().map(expected_points).collect();
    let journal = scratch("concurrent");

    // Two workers over three jobs: genuine overlap plus genuine queueing.
    let server = ServerProc::spawn(&journal, &["--max-inflight", "2"]);

    // Submit in shuffled order from parallel threads — arrival order, queue
    // position, and worker interleaving must not leak into any result.
    let order = [2usize, 0, 1];
    let points: Vec<(usize, String)> = thread::scope(|scope| {
        let handles: Vec<_> = order
            .iter()
            .map(|&i| {
                let spec = &specs[i];
                let server = &server;
                scope.spawn(move || {
                    let mut client = server.client();
                    client.set_read_timeout(None).expect("stream timeout off");
                    let outcome = client.run(spec).expect("served job completes");
                    (i, outcome_points(&outcome))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    for (i, got) in points {
        assert_eq!(
            got, expected[i],
            "concurrently-served spec {i} must match its solo single-process run bit-for-bit"
        );
    }
}

#[test]
fn a_second_client_on_a_shared_domain_runs_mostly_warm() {
    let spec_a = spec_one("warmup", b0(), 32, 4);
    let mut spec_b = spec_a.clone();
    spec_b.name = "rerun".to_string();
    let expected = expected_points(&spec_a);
    let journal = scratch("shared-warm");

    let server = ServerProc::spawn(&journal, &["--max-inflight", "1"]);

    let mut first = server.client();
    first.set_read_timeout(None).expect("stream timeout off");
    let cold = first.run(&spec_a).expect("first job completes");
    assert_eq!(outcome_points(&cold), expected);

    // A *different* client submitting the same scenarios gets its own job
    // (own id, own journal entry) but the shared evaluator answers it
    // almost entirely from memory: the cross-client cache dividend.
    let mut second = server.client();
    second.set_read_timeout(None).expect("stream timeout off");
    let warm = second.run(&spec_b).expect("second job completes");
    assert_eq!(outcome_points(&warm), expected, "cache temperature must not alter results");
    assert!(
        warm.cache.hit_rate() > 0.5,
        "second client on a shared domain should run >50% warm, got {:.0}% ({}/{})",
        100.0 * warm.cache.hit_rate(),
        warm.cache.hits,
        warm.cache.misses
    );
}

#[test]
fn a_full_queue_is_a_typed_reject_and_service_order_is_fifo() {
    // One worker, one queue slot: the third concurrent job must bounce.
    let journal = scratch("queue-full");
    let server = ServerProc::spawn(&journal, &["--max-inflight", "1", "--queue", "1"]);

    // Job 1: long enough (64 rounds) to still be running while we fill and
    // overflow the queue behind it.
    let long = spec_one("occupant", b0(), 256, 4);
    let mut holder = server.client();
    holder.set_read_timeout(None).expect("stream timeout off");
    let (id1, _) = holder.submit(&long, true).expect("job 1 accepted");
    // Wait until the worker has *popped* job 1 — from then on the queue is
    // empty and job 1 occupies the only worker.
    loop {
        match holder.read_response().expect("job 1 stream") {
            Response::Event { event: JobEvent::Started { .. }, .. } => break,
            Response::Event { .. } => continue,
            other => panic!("unexpected response before start: {other:?}"),
        }
    }

    let quick = spec_one("queued", b0(), 16, 4);
    let mut second = server.client();
    let (id2, _) = second.submit(&quick, false).expect("job 2 queued");

    let mut third = server.client();
    match third.submit(&spec_one("bounced", b0(), 16, 4), false) {
        Err(ClientError::Rejected(RejectReason::QueueFull { capacity })) => {
            assert_eq!(capacity, 1, "reject must name the configured capacity");
        }
        other => panic!("expected a typed QueueFull reject, got {other:?}"),
    }

    // FIFO: job 2 only finishes after job 1 released the worker — so once a
    // watch on job 2 returns, job 1 must already be Done.
    let mut watcher = server.client();
    watcher.set_read_timeout(None).expect("stream timeout off");
    watcher.watch(id2).expect("queued job completes");
    let mut prober = server.client();
    match prober.request(&Request::Status { id: id1 }).expect("status answered") {
        Response::JobStatus { phase: JobPhase::Done, .. } => {}
        other => panic!("job 1 should be Done once job 2 finished (FIFO), got {other:?}"),
    }
}
