//! Fault injection: SIGKILL the server mid-campaign — mid-round, at a
//! scenario boundary, and with a corrupted cache snapshot — restart it on
//! the same journal directory, and prove the final frontiers are
//! **bit-identical** to an uninterrupted single-process run.
//!
//! The kill moment is deliberately jittered by the server's pid so repeated
//! CI runs sample different interrupt points; correctness must not depend
//! on where the axe lands.

mod common;

use common::{expected_points, outcome_points, scratch, spec_one, spec_two_budgets, ServerProc};
use fast_serve::{JobEvent, Response};

/// Reads streamed responses until `stop` says the axe should fall (or the
/// job finishes first — possible on a fast machine, and handled by every
/// caller). Returns the events seen and whether Done arrived.
fn read_until(
    client: &mut fast_serve::Client,
    mut stop: impl FnMut(&[JobEvent]) -> bool,
) -> (Vec<JobEvent>, bool) {
    let mut events = Vec::new();
    loop {
        match client.read_response().expect("event stream") {
            Response::Event { event, .. } => {
                events.push(event);
                if stop(&events) {
                    return (events, false);
                }
            }
            Response::Done { .. } => return (events, true),
            other => panic!("unexpected mid-stream response: {other:?}"),
        }
    }
}

fn rounds_seen(events: &[JobEvent]) -> usize {
    events.iter().filter(|e| matches!(e, JobEvent::Round { .. })).count()
}

fn scenarios_finished(events: &[JobEvent]) -> usize {
    events.iter().filter(|e| matches!(e, JobEvent::ScenarioFinished { .. })).count()
}

#[test]
fn sigkill_mid_round_then_restart_is_bit_identical() {
    let spec = spec_one("resume-mid", common::b0(), 96, 4);
    let expected = expected_points(&spec);
    let journal = scratch("resume-mid");

    let mut server = ServerProc::spawn(&journal, &["--max-inflight", "1"]);
    let mut client = server.client();
    client.set_read_timeout(None).expect("stream timeout off");
    let (id, _) = client.submit(&spec, true).expect("accepted");

    // Kill somewhere inside the study: after a pid-jittered handful of
    // rounds, with ~24 rounds of runway. Killing right after a Round event
    // lands mid-flight of the *next* round with high probability.
    let cut = 2 + (server.pid() as usize % 3);
    let (_events, done) = read_until(&mut client, |evs| rounds_seen(evs) >= cut);
    server.kill();

    // Restart on the same journal: the job re-enters the queue, resumes
    // from its checkpoint, and must finish exactly as if never interrupted.
    let restarted = ServerProc::spawn(&journal, &["--max-inflight", "1"]);
    let mut client2 = restarted.client();
    client2.set_read_timeout(None).expect("stream timeout off");
    let outcome = client2.watch(id).expect("resumed job completes");
    assert_eq!(
        outcome_points(&outcome),
        expected,
        "killed-and-resumed frontiers must be bit-identical to an uninterrupted run \
         (job finished before the kill: {done})"
    );
}

#[test]
fn sigkill_at_scenario_boundary_replays_completed_scenarios_warm() {
    let spec = spec_two_budgets("resume-boundary", 48, 4);
    let expected = expected_points(&spec);
    let journal = scratch("resume-boundary");

    let mut server = ServerProc::spawn(&journal, &["--max-inflight", "1"]);
    let mut client = server.client();
    client.set_read_timeout(None).expect("stream timeout off");
    let (id, _) = client.submit(&spec, true).expect("accepted");

    // Kill right after the first scenario completes (+ pid-jittered 0-1
    // further rounds into the second scenario).
    let jitter = server.pid() as usize % 2;
    let (_events, done) = read_until(&mut client, |evs| {
        scenarios_finished(evs) >= 1
            && rounds_seen(evs) >= scenarios_finished(evs) * (48 / 4) + jitter
    });
    server.kill();

    let restarted = ServerProc::spawn(&journal, &["--max-inflight", "1"]);
    let mut client2 = restarted.client();
    client2.set_read_timeout(None).expect("stream timeout off");
    let outcome = client2.watch(id).expect("resumed job completes");
    assert_eq!(
        outcome_points(&outcome),
        expected,
        "boundary-killed frontiers must be bit-identical (job finished pre-kill: {done})"
    );

    // The completed-then-replayed scenario must be answered almost
    // entirely from the persisted cache snapshot: >90% fuse-tier hits.
    // (If the whole job finished before the kill, the restart replays the
    // journaled result instead and streams no per-scenario events — the
    // bit-identity assertion above already covered that path.)
    let replayed: Vec<_> = outcome
        .events
        .iter()
        .filter_map(|e| match e {
            JobEvent::ScenarioFinished { index: 0, cache, .. } => Some(*cache),
            _ => None,
        })
        .collect();
    if let Some(cache) = replayed.first() {
        assert!(
            cache.hit_rate() > 0.9,
            "replayed scenario should be >90% cache hits, got {:.0}% ({}/{} hits/misses)",
            100.0 * cache.hit_rate(),
            cache.hits,
            cache.misses
        );
    } else {
        // The job either finished before the kill, or the restarted worker
        // replayed scenario 0 before the watcher attached; both paths are
        // fully covered by the bit-identity assertion above.
        eprintln!("note: scenario-0 replay events not observed (done pre-kill: {done})");
    }
}

#[test]
fn corrupt_cache_snapshot_degrades_to_cold_with_a_streamed_warning() {
    let spec = spec_one("resume-corrupt", common::b0(), 48, 4);
    let expected = expected_points(&spec);
    let journal = scratch("resume-corrupt");

    let mut server = ServerProc::spawn(&journal, &["--max-inflight", "1"]);
    let mut client = server.client();
    client.set_read_timeout(None).expect("stream timeout off");
    let (id, _) = client.submit(&spec, true).expect("accepted");
    let (_events, _done) = read_until(&mut client, |evs| rounds_seen(evs) >= 1);
    server.kill();

    // Vandalize both cache-tier snapshots in the job directory: the
    // restart must detect the damage (checksums), warn *through the
    // per-job sink onto the event stream*, and recompute cold —
    // bit-identically, because the determinism contract doesn't care about
    // cache temperature.
    let job_dir = journal.join("jobs").join(format!("job-{id:06}"));
    for name in ["eval_cache.bin", "eval_cache.op.bin"] {
        let path = job_dir.join(name);
        if path.exists() {
            std::fs::write(&path, b"definitely not a snapshot").expect("corrupt snapshot");
        }
    }

    let restarted = ServerProc::spawn(&journal, &["--max-inflight", "1"]);
    let mut client2 = restarted.client();
    client2.set_read_timeout(None).expect("stream timeout off");
    let outcome = client2.watch(id).expect("job completes despite corrupt snapshot");
    assert_eq!(
        outcome_points(&outcome),
        expected,
        "cold recompute after snapshot corruption must still be bit-identical"
    );
    assert!(
        outcome.warnings.iter().any(|w| w.contains("snapshot ignored")),
        "the degrade-to-cold warning must reach the job's event stream, got {:?}",
        outcome.warnings
    );
}
