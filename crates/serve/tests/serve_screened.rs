//! Multi-fidelity jobs over the wire: a spec carrying
//! [`Fidelity::Screened`] must stream surrogate accounting (per-round
//! full-sim counts, per-scenario [`FidelityReport`]s) and still produce a
//! result bit-identical to a single-process screened sweep of the same
//! spec — while an [`Fidelity::Exact`] job streams no surrogate fields at
//! all.

mod common;

use common::{b0, expected_points, outcome_points, scratch, spec_one, ServerProc};
use fast_core::{Fidelity, SurrogateTier};
use fast_serve::JobEvent;

// 32 trials at batch 8: an 8-trial burn-in round, then three screened
// rounds keeping 2 of 8 — 14 full sims, a 2.3x thinning.
const TRIALS: usize = 32;

fn screened_spec(name: &str) -> fast_core::JobSpec {
    let mut spec = spec_one(name, b0(), TRIALS, 8);
    spec.config.fidelity =
        Fidelity::Screened { keep_fraction: 0.25, min_full: 2, tier: SurrogateTier::S0 };
    spec
}

#[test]
fn screened_job_streams_fidelity_and_matches_a_single_process_sweep() {
    let spec = screened_spec("screened-e2e");
    let expected = expected_points(&spec);
    let journal = scratch("screened-e2e");

    let server = ServerProc::spawn(&journal, &["--max-inflight", "1"]);
    let mut client = server.client();
    client.set_read_timeout(None).expect("stream timeout off");
    let outcome = client.run(&spec).expect("screened job completes");

    // Bit-identity: the served screened frontier is exactly what one
    // process computes — screening is part of the determinism contract.
    assert_eq!(outcome_points(&outcome), expected);

    // Every Round event of a screened job reports its full-sim count, and
    // the count never decreases and never exceeds trials evaluated.
    let mut last_full = 0usize;
    let mut rounds = 0usize;
    for ev in &outcome.events {
        if let JobEvent::Round { trials_done, full_evals, .. } = ev {
            let full = full_evals.expect("screened rounds carry full_evals");
            assert!(full >= last_full, "full-sim count must be monotone");
            assert!(full <= *trials_done, "cannot fully simulate more than proposed");
            last_full = full;
            rounds += 1;
        }
    }
    assert!(rounds > 0, "watched job must stream rounds");

    // The terminal scenario event and the durable record agree on the
    // fidelity accounting, and the screening actually thinned simulation.
    let streamed = outcome
        .events
        .iter()
        .find_map(|ev| match ev {
            JobEvent::ScenarioFinished { fidelity, .. } => Some(fidelity.clone()),
            _ => None,
        })
        .expect("scenario finished on stream");
    let recorded = outcome.scenarios[0].fidelity.clone();
    assert_eq!(streamed, recorded);
    let fid = recorded.expect("screened scenario records a FidelityReport");
    assert_eq!(fid.full_evals + fid.screened_out, TRIALS);
    assert!(
        fid.savings_factor() >= 2.0,
        "keep 0.25 of {TRIALS} trials must at least halve full sims, got {}",
        fid.full_evals
    );
    assert_eq!(fid.full_evals, last_full, "stream and report count the same sims");
}

#[test]
fn exact_job_streams_no_surrogate_fields() {
    let spec = spec_one("exact-e2e", b0(), 8, 4);
    let journal = scratch("exact-e2e");

    let server = ServerProc::spawn(&journal, &["--max-inflight", "1"]);
    let mut client = server.client();
    client.set_read_timeout(None).expect("stream timeout off");
    let outcome = client.run(&spec).expect("exact job completes");

    for ev in &outcome.events {
        match ev {
            JobEvent::Round { full_evals, .. } => {
                assert_eq!(*full_evals, None, "exact rounds carry no full-sim count");
            }
            JobEvent::ScenarioFinished { fidelity, .. } => {
                assert_eq!(*fidelity, None, "exact scenarios carry no FidelityReport");
            }
            _ => {}
        }
    }
    assert!(outcome.scenarios.iter().all(|s| s.fidelity.is_none()));
}
