//! Protocol abuse against a *live* daemon: truncated frames, version skew,
//! oversized length claims, and systematic byte flips. Every case must end
//! in a typed reject or a clean close — never a panic, never a hang — and
//! the daemon must keep answering fresh connections afterwards.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use common::{b0, scratch, spec_one, ServerProc};
use fast_serve::{
    read_frame, write_frame, ClientError, FrameError, ListenAddr, RejectReason, Request, Response,
    MAGIC, VERSION,
};

/// A raw TCP connection to the daemon, bypassing [`fast_serve::Client`] so
/// tests can speak the protocol wrong on purpose. Reads are bounded: a
/// server that stops answering fails the test instead of wedging it.
fn raw_conn(server: &ServerProc) -> TcpStream {
    let ListenAddr::Tcp(addr) = &server.addr else { panic!("test server listens on tcp") };
    let stream = TcpStream::connect(addr).expect("raw connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("bounded reads");
    stream
}

/// The bytes of one well-formed frame.
fn frame_bytes(req: &Request) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, req).expect("encode to memory");
    bytes
}

/// Sends `bytes`, half-closes the write side, and reads the daemon's
/// verdict: `Some(response)` or `None` for a clean close.
fn send_and_read(server: &ServerProc, bytes: &[u8]) -> Option<Response> {
    let mut stream = raw_conn(server);
    // The daemon may reject and close before we finish writing or manage
    // the half-close (EPIPE / ENOTCONN) — that's the *fast* variant of the
    // behavior under test, so press on to read the verdict either way.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    match read_frame::<Response>(&mut stream) {
        Ok(response) => Some(response),
        Err(FrameError::Closed) => None,
        // A reset mid-read is the kernel's spelling of "the daemon closed
        // on us with bytes still in flight" — a close, not an answer.
        Err(FrameError::Io(e)) if e.kind() == std::io::ErrorKind::ConnectionReset => None,
        Err(other) => panic!("daemon answered garbage with garbage: {other}"),
    }
}

/// The daemon must still answer a fresh, well-formed connection.
fn assert_alive(server: &ServerProc) {
    server.client().ping().expect("daemon still answers after abuse");
}

fn assert_bad_frame(verdict: Option<Response>, what: &str) {
    match verdict {
        Some(Response::Rejected { reason: RejectReason::BadFrame { .. } }) | None => {}
        other => panic!("{what}: expected a BadFrame reject or clean close, got {other:?}"),
    }
}

#[test]
fn truncated_frames_are_typed_rejects_at_every_interesting_cut() {
    let journal = scratch("proto-truncated");
    let server = ServerProc::spawn(&journal, &[]);
    let frame = frame_bytes(&Request::Submit { spec: spec_one("t", b0(), 8, 4), watch: false });

    // Cut inside the header, one short of it, just past it, and one byte
    // short of the whole frame.
    for cut in [1, 7, 27, 29, frame.len() - 1] {
        assert_bad_frame(send_and_read(&server, &frame[..cut]), &format!("cut at {cut}"));
    }
    assert_alive(&server);
}

#[test]
fn version_skew_is_a_typed_reject_naming_the_version() {
    let journal = scratch("proto-version");
    let server = ServerProc::spawn(&journal, &[]);

    // A structurally perfect envelope from a "future" protocol revision.
    let mut w = serde::bin::Writer::new();
    serde::bin::Encode::encode(&Request::Ping, &mut w);
    let skewed = serde::bin::write_envelope(MAGIC, VERSION + 1, &w.into_bytes());
    match send_and_read(&server, &skewed) {
        Some(Response::Rejected { reason: RejectReason::BadFrame { what } }) => {
            assert!(
                what.contains("version"),
                "the reject should name the version mismatch, got {what:?}"
            );
        }
        other => panic!("expected a version-skew reject, got {other:?}"),
    }
    assert_alive(&server);
}

#[test]
fn oversized_length_claims_are_rejected_before_any_payload_arrives() {
    let journal = scratch("proto-oversized");
    let server = ServerProc::spawn(&journal, &[]);

    // Header claiming a 1 TiB payload — and not a byte of payload behind
    // it. The daemon must reject from the header alone, promptly, instead
    // of trying to read (or worse, allocate) a terabyte.
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&(1u64 << 40).to_le_bytes());
    header.extend_from_slice(&0u64.to_le_bytes());
    let mut stream = raw_conn(&server);
    stream.write_all(&header).expect("send header");
    // Deliberately no shutdown: the 10s read bound is the hang detector.
    match read_frame::<Response>(&mut stream) {
        Ok(Response::Rejected { reason: RejectReason::BadFrame { what } }) => {
            assert!(what.contains("frame"), "reject should describe the claim, got {what:?}");
        }
        Ok(other) => panic!("expected a prompt reject, got {other:?}"),
        Err(e) => panic!("expected a prompt reject, got frame error {e}"),
    }
    assert_alive(&server);
}

#[test]
fn single_byte_flips_never_panic_or_hang_the_daemon() {
    let journal = scratch("proto-flips");
    let server = ServerProc::spawn(&journal, &[]);
    let frame = frame_bytes(&Request::Submit { spec: spec_one("f", b0(), 8, 4), watch: false });

    // ~40 flip positions spread across the frame (header and payload), each
    // on a fresh connection. Magic flips, version flips, length flips,
    // checksum flips, payload flips: all must produce a typed reject or a
    // clean close. The FNV checksum makes a silently-accepted mutation a
    // hash collision, not a test gap.
    let positions: Vec<usize> = (0..40).map(|i| i * frame.len() / 40).collect();
    for pos in positions {
        let mut bent = frame.clone();
        bent[pos] ^= 0x5A;
        let verdict = send_and_read(&server, &bent);
        match verdict {
            Some(Response::Rejected { .. }) | None => {}
            other => panic!("flip at byte {pos}: expected reject or close, got {other:?}"),
        }
    }
    assert_alive(&server);
}

#[test]
fn semantic_nonsense_gets_semantic_rejects() {
    let journal = scratch("proto-semantic");
    let server = ServerProc::spawn(&journal, &[]);

    // A well-framed spec with an empty domain axis: BadSpec, not BadFrame.
    let mut empty = spec_one("empty", b0(), 8, 4);
    empty.matrix.domains.clear();
    let mut client = server.client();
    match client.submit(&empty, false) {
        Err(ClientError::Rejected(RejectReason::BadSpec { .. })) => {}
        other => panic!("expected a typed BadSpec reject, got {other:?}"),
    }

    // Watching and probing a job that was never submitted: UnknownJob.
    for req in [Request::Watch { id: 999_999 }, Request::Status { id: 999_999 }] {
        let mut client = server.client();
        match client.request(&req).expect("answered") {
            Response::Rejected { reason: RejectReason::UnknownJob { id } } => {
                assert_eq!(id, 999_999);
            }
            other => panic!("expected UnknownJob for {req:?}, got {other:?}"),
        }
    }
    assert_alive(&server);
}
