//! Shared scaffolding for the `fast-serve` integration battery: spawning
//! (and SIGKILLing) real server processes, tiny sweep specs, and the
//! in-process expected results the served ones must match bit-for-bit.
//!
//! Each integration test binary compiles this module independently and
//! uses a different subset of it, so unused-item lints are off.
#![allow(dead_code)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

use fast_core::{
    points_table, BudgetLevel, Fidelity, JobSpec, Objective, OptimizerKind, ScenarioMatrix,
    SweepConfig, SweepRunner,
};
use fast_models::{EfficientNet, Workload, WorkloadDomain};
use fast_serve::{Client, ListenAddr};

/// A unique scratch directory per call, under the target-adjacent tempdir.
pub fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fast-serve-test-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A running `fast-serve` daemon on an ephemeral localhost port.
///
/// Dropping it SIGKILLs the process — tests that want a graceful drain call
/// [`Client::shutdown`] themselves; tests that want a crash call
/// [`ServerProc::kill`] at the moment of their choosing.
pub struct ServerProc {
    child: Child,
    /// The resolved listen address parsed from the startup line.
    pub addr: ListenAddr,
}

impl ServerProc {
    /// Spawns `fast-serve --journal {journal} --listen tcp:127.0.0.1:0`
    /// plus `extra` flags, and blocks until the daemon prints its
    /// listening line.
    pub fn spawn(journal: &Path, extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fast-serve"))
            .arg("--journal")
            .arg(journal)
            .args(["--listen", "tcp:127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fast-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("startup line");
        let addr = line
            .trim()
            .strip_prefix("fast-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {line:?}"));
        let addr = ListenAddr::parse(addr).expect("parseable listen address");
        ServerProc { child, addr }
    }

    /// Connects a fresh client.
    pub fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect to test server")
    }

    /// SIGKILL — the crash the journal must survive. (`Child::kill` sends
    /// SIGKILL on Unix: no handlers, no flushing, no goodbyes.)
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// The daemon's pid, for pid-derived test jitter.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// A small single-scenario spec: `domain` at the paper budget under one
/// objective. `trials`/`batch` size the round count (`trials / batch`
/// rounds), which is what kill-timing tests care about.
pub fn spec_one(name: &str, domain: WorkloadDomain, trials: usize, batch: usize) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        matrix: ScenarioMatrix {
            budgets: vec![BudgetLevel::scaled(1.0)],
            objectives: vec![Objective::Qps],
            domains: vec![domain],
        },
        config: SweepConfig {
            trials,
            optimizer: OptimizerKind::Random,
            seed: 0x5EED,
            batch,
            seeds: Vec::new(),
            fidelity: Fidelity::Exact,
        },
    }
}

/// A two-scenario spec (two budget levels over one domain) — enough
/// structure for a scenario *boundary* to exist mid-job.
pub fn spec_two_budgets(name: &str, trials: usize, batch: usize) -> JobSpec {
    let mut spec = spec_one(name, b0(), trials, batch);
    spec.matrix.budgets = vec![BudgetLevel::scaled(1.0), BudgetLevel::scaled(0.75)];
    spec
}

/// The cheapest interesting domain.
pub fn b0() -> WorkloadDomain {
    WorkloadDomain::per_model(Workload::EfficientNet(EfficientNet::B0))
}

/// What an uninterrupted single-process run of `spec` produces, as the
/// canonical frontier-points table. Every served result — concurrent,
/// killed-and-resumed, cache-corrupted — must print this exact string.
pub fn expected_points(spec: &JobSpec) -> String {
    let runner = SweepRunner::new(spec.matrix.clone(), spec.config.clone());
    let result = runner.run();
    let records: Vec<_> = result.scenarios.iter().map(|s| s.record()).collect();
    points_table(&records)
}

/// Renders a served outcome's scenarios the same way.
pub fn outcome_points(outcome: &fast_serve::JobOutcome) -> String {
    points_table(&outcome.scenarios)
}
