//! The `fast-serve` wire protocol: length-prefixed, checksummed frames
//! carrying [`Request`]s client→server and [`Response`]s server→client.
//!
//! # Frame layout
//!
//! Every frame is exactly the [`serde::bin`] snapshot envelope applied to a
//! socket — an 8-byte magic (`FASTSRV1`), a `u32` protocol version, a `u64`
//! payload length, a `u64` FNV-1a payload checksum, then the payload, all
//! little-endian (see [`bin::write_envelope`]; a unit test pins the
//! byte-for-byte equivalence). Reusing the snapshot container means the
//! wire format inherits the same damage detection the on-disk caches
//! already trust: truncation, version skew, and bit rot each surface as a
//! distinct [`FrameError`], never as a mis-decoded message.
//!
//! The length field is validated against [`MAX_FRAME`] *before* the payload
//! is read, so a hostile or corrupt length claim costs a rejected header,
//! not an allocation.
//!
//! # Error discipline
//!
//! [`read_frame`] never panics and never returns a partially-decoded
//! message. Every failure mode is a typed [`FrameError`]; the server
//! answers decodable-but-damaged traffic with
//! [`Response::Rejected`]`(`[`RejectReason::BadFrame`]`)` and closes the
//! connection, so a fuzzer sees a typed reject or a clean close — never a
//! hang and never a crash.

use std::io::{self, Read, Write};

use fast_core::{CacheStats, CompletedScenario, FidelityReport, JobSpec, StagedCacheStats};
use serde::bin::{self, Decode, DecodeError, Encode, Reader, Writer};

/// Frame magic: the protocol's on-wire name.
pub const MAGIC: [u8; 8] = *b"FASTSRV1";

/// Protocol version; both sides must agree exactly. Version 2 added the
/// multi-fidelity fields: [`JobEvent::Round::full_evals`] and
/// [`JobEvent::ScenarioFinished::fidelity`]. Version 3 added
/// [`StagedTraffic::solver`], the per-job exact-solver counters (warm-start
/// hit rate, branch-and-bound node counts, simplex pivots).
pub const VERSION: u32 = 3;

/// Hard ceiling on a frame payload. A header claiming more is rejected
/// before any payload byte is read or allocated.
pub const MAX_FRAME: u64 = 16 * 1024 * 1024;

/// Byte length of the frame header ([`bin::ENVELOPE_HEADER_LEN`]).
pub const HEADER_LEN: usize = bin::ENVELOPE_HEADER_LEN;

// ---------------------------------------------------------------------------
// Cache-traffic mirrors
// ---------------------------------------------------------------------------

/// Hit/miss counters for one cache tier, as carried on the wire (a
/// serve-local mirror of [`fast_core::CacheStats`], which lives in another
/// crate and owns no wire encoding).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the underlying stage.
    pub misses: u64,
}

impl Traffic {
    /// Fraction of lookups answered from the cache (0 when untouched).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl From<CacheStats> for Traffic {
    fn from(s: CacheStats) -> Self {
        Traffic { hits: s.hits, misses: s.misses }
    }
}

/// Per-stage traffic: op tier (Stage A), sim tier (Stage B), fuse tier
/// (Stage C) plus exact-solver counters — the wire mirror of
/// [`fast_core::StagedCacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagedTraffic {
    /// Per-op mapper lookups.
    pub op: Traffic,
    /// Per-workload perf assemblies.
    pub sim: Traffic,
    /// Fusion solves.
    pub fuse: Traffic,
    /// Exact-solver work behind the fuse misses (all zero on the default
    /// heuristic-only fusion path).
    pub solver: SolverTraffic,
}

/// Exact-fusion solver counters, as carried on the wire (the serve-local
/// mirror of [`fast_core::SolverStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverTraffic {
    /// Exact solves seeded by a cross-point warm-start incumbent.
    pub warm_hits: u64,
    /// Exact solves with no usable incumbent.
    pub warm_misses: u64,
    /// Branch-and-bound nodes spent in warm-seeded solves.
    pub warm_nodes: u64,
    /// Branch-and-bound nodes spent in cold solves.
    pub cold_nodes: u64,
    /// Total simplex pivots across all exact solves.
    pub lp_pivots: u64,
}

impl SolverTraffic {
    /// Warm-start hit rate over the exact solves (0 when none ran).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }
}

impl From<fast_core::SolverStats> for SolverTraffic {
    fn from(s: fast_core::SolverStats) -> Self {
        SolverTraffic {
            warm_hits: s.warm_hits,
            warm_misses: s.warm_misses,
            warm_nodes: s.warm_nodes,
            cold_nodes: s.cold_nodes,
            lp_pivots: s.lp_pivots,
        }
    }
}

impl From<StagedCacheStats> for StagedTraffic {
    fn from(s: StagedCacheStats) -> Self {
        StagedTraffic {
            op: s.op.into(),
            sim: s.sim.into(),
            fuse: s.fuse.into(),
            solver: s.solver.into(),
        }
    }
}

impl Encode for Traffic {
    fn encode(&self, w: &mut Writer) {
        let Traffic { hits, misses } = self;
        w.put_u64(*hits);
        w.put_u64(*misses);
    }
}

impl Decode for Traffic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Traffic { hits: r.get_u64()?, misses: r.get_u64()? })
    }
}

impl Encode for StagedTraffic {
    fn encode(&self, w: &mut Writer) {
        let StagedTraffic { op, sim, fuse, solver } = self;
        op.encode(w);
        sim.encode(w);
        fuse.encode(w);
        solver.encode(w);
    }
}

impl Decode for StagedTraffic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StagedTraffic {
            op: Decode::decode(r)?,
            sim: Decode::decode(r)?,
            fuse: Decode::decode(r)?,
            solver: Decode::decode(r)?,
        })
    }
}

impl Encode for SolverTraffic {
    fn encode(&self, w: &mut Writer) {
        let SolverTraffic { warm_hits, warm_misses, warm_nodes, cold_nodes, lp_pivots } = self;
        w.put_u64(*warm_hits);
        w.put_u64(*warm_misses);
        w.put_u64(*warm_nodes);
        w.put_u64(*cold_nodes);
        w.put_u64(*lp_pivots);
    }
}

impl Decode for SolverTraffic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SolverTraffic {
            warm_hits: r.get_u64()?,
            warm_misses: r.get_u64()?,
            warm_nodes: r.get_u64()?,
            cold_nodes: r.get_u64()?,
            lp_pivots: r.get_u64()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Submit a study job. The server journals the spec durably *before*
    /// acknowledging, so an accepted job survives any later crash.
    Submit {
        /// What to run: a scenario matrix plus its sweep configuration.
        spec: JobSpec,
        /// `true` keeps the connection open streaming [`JobEvent`]s until
        /// the job's [`Response::Done`]; `false` returns after
        /// [`Response::Accepted`].
        watch: bool,
    },
    /// Attach to an existing job's event stream (finished jobs answer with
    /// an immediate [`Response::Done`] replayed from the journal).
    Watch {
        /// The job to watch.
        id: u64,
    },
    /// One-shot state query for a job.
    Status {
        /// The job to query.
        id: u64,
    },
    /// List every journaled job and its state.
    List,
    /// Drain the queue and exit: no new submissions are accepted, running
    /// and queued jobs finish, then the server responds
    /// [`Response::ShuttingDown`] and exits 0.
    Shutdown,
}

impl Encode for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Ping => w.put_u8(0),
            Request::Submit { spec, watch } => {
                w.put_u8(1);
                spec.encode(w);
                watch.encode(w);
            }
            Request::Watch { id } => {
                w.put_u8(2);
                w.put_u64(*id);
            }
            Request::Status { id } => {
                w.put_u8(3);
                w.put_u64(*id);
            }
            Request::List => w.put_u8(4),
            Request::Shutdown => w.put_u8(5),
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => Request::Ping,
            1 => Request::Submit { spec: Decode::decode(r)?, watch: Decode::decode(r)? },
            2 => Request::Watch { id: r.get_u64()? },
            3 => Request::Status { id: r.get_u64()? },
            4 => Request::List,
            5 => Request::Shutdown,
            tag => {
                return Err(DecodeError { offset: 0, what: format!("invalid Request tag {tag}") })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted but not yet started; `position` is its place in the FIFO
    /// queue (0 = next to run).
    Queued {
        /// Jobs ahead of it.
        position: usize,
    },
    /// A worker is running it right now.
    Running,
    /// Finished; its result is journaled.
    Done,
    /// Its journal entry cannot be read back.
    Damaged {
        /// What the journal reported.
        what: String,
    },
}

impl Encode for JobPhase {
    fn encode(&self, w: &mut Writer) {
        match self {
            JobPhase::Queued { position } => {
                w.put_u8(0);
                position.encode(w);
            }
            JobPhase::Running => w.put_u8(1),
            JobPhase::Done => w.put_u8(2),
            JobPhase::Damaged { what } => {
                w.put_u8(3);
                what.encode(w);
            }
        }
    }
}

impl Decode for JobPhase {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => JobPhase::Queued { position: Decode::decode(r)? },
            1 => JobPhase::Running,
            2 => JobPhase::Done,
            3 => JobPhase::Damaged { what: Decode::decode(r)? },
            tag => {
                return Err(DecodeError { offset: 0, what: format!("invalid JobPhase tag {tag}") })
            }
        })
    }
}

/// Why the server refused a request. Every refusal is typed — a client can
/// distinguish "your bytes were damaged" from "the queue is full" without
/// string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The frame failed validation (truncation, version skew, oversized
    /// length claim, checksum mismatch, undecodable payload). The
    /// connection is closed after this reply.
    BadFrame {
        /// The [`FrameError`] rendered for transport.
        what: String,
    },
    /// Admission control: the FIFO queue is at capacity. Resubmit later.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// No journaled job has this id.
    UnknownJob {
        /// The id asked for.
        id: u64,
    },
    /// The spec is structurally invalid (e.g. an empty matrix axis).
    BadSpec {
        /// What is wrong with it.
        what: String,
    },
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The job's journal entry exists but cannot be read back (damaged
    /// spec or result file).
    Damaged {
        /// What the journal reported.
        what: String,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::BadFrame { what } => write!(f, "bad frame: {what}"),
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::UnknownJob { id } => write!(f, "unknown job {id}"),
            RejectReason::BadSpec { what } => write!(f, "bad spec: {what}"),
            RejectReason::ShuttingDown => write!(f, "server is shutting down"),
            RejectReason::Damaged { what } => write!(f, "journal entry damaged: {what}"),
        }
    }
}

impl Encode for RejectReason {
    fn encode(&self, w: &mut Writer) {
        match self {
            RejectReason::BadFrame { what } => {
                w.put_u8(0);
                what.encode(w);
            }
            RejectReason::QueueFull { capacity } => {
                w.put_u8(1);
                capacity.encode(w);
            }
            RejectReason::UnknownJob { id } => {
                w.put_u8(2);
                w.put_u64(*id);
            }
            RejectReason::BadSpec { what } => {
                w.put_u8(3);
                what.encode(w);
            }
            RejectReason::ShuttingDown => w.put_u8(4),
            RejectReason::Damaged { what } => {
                w.put_u8(5);
                what.encode(w);
            }
        }
    }
}

impl Decode for RejectReason {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => RejectReason::BadFrame { what: Decode::decode(r)? },
            1 => RejectReason::QueueFull { capacity: Decode::decode(r)? },
            2 => RejectReason::UnknownJob { id: r.get_u64()? },
            3 => RejectReason::BadSpec { what: Decode::decode(r)? },
            4 => RejectReason::ShuttingDown,
            5 => RejectReason::Damaged { what: Decode::decode(r)? },
            tag => {
                return Err(DecodeError {
                    offset: 0,
                    what: format!("invalid RejectReason tag {tag}"),
                })
            }
        })
    }
}

/// A progress event streamed to watchers while a job runs — the wire form
/// of the sweep's [`fast_core::SweepEvent`] stream plus serve-side
/// lifecycle markers.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job entered the FIFO queue at `position`.
    Queued {
        /// Jobs ahead of it at admission time.
        position: usize,
    },
    /// A worker picked the job up. `resumed` is `true` when a checkpoint
    /// from a previous (killed) server run was found in its job directory.
    Started {
        /// Whether a prior checkpoint is being resumed.
        resumed: bool,
    },
    /// A scenario's Pareto study is starting.
    ScenarioStarted {
        /// 0-based position in the job's scenario list.
        index: usize,
        /// Scenarios in the job.
        total: usize,
        /// `"{domain}/{budget}/{objective}"`.
        name: String,
    },
    /// A study round finished.
    Round {
        /// Position of the running scenario.
        index: usize,
        /// The running scenario's name.
        name: String,
        /// Trials evaluated so far.
        trials_done: usize,
        /// The scenario's trial budget.
        total_trials: usize,
        /// Best objective so far (`None` while all-invalid).
        best_objective: Option<f64>,
        /// Size of the non-dominated set so far.
        frontier_size: usize,
        /// Trials fully simulated so far — `Some` iff the job runs with
        /// [`fast_core::Fidelity::Screened`], where it lags `trials_done`
        /// by the surrogate-screened-out count.
        full_evals: Option<usize>,
    },
    /// A scenario finished; counts plus the cache traffic it caused.
    ScenarioFinished {
        /// Position in the job's scenario list.
        index: usize,
        /// The finished scenario's name.
        name: String,
        /// Its non-dominated set size.
        frontier_size: usize,
        /// Best objective value observed.
        best_objective: Option<f64>,
        /// Safe-search rejections in its study.
        invalid_trials: usize,
        /// Fuse-tier traffic attributable to this scenario.
        cache: Traffic,
        /// Per-stage traffic attributable to this scenario.
        staged: StagedTraffic,
        /// Surrogate-screening accounting (full-sim count, screened-out
        /// count, surrogate-vs-true rank correlations) — `Some` iff the
        /// job ran with [`fast_core::Fidelity::Screened`].
        fidelity: Option<FidelityReport>,
    },
    /// A warning the evaluation stack raised while this job ran (e.g. a
    /// cache snapshot degraded to cold), captured via the
    /// [`fast_core::warn`] sink.
    Warning {
        /// The warning line, as the stack rendered it.
        line: String,
    },
}

impl Encode for JobEvent {
    fn encode(&self, w: &mut Writer) {
        match self {
            JobEvent::Queued { position } => {
                w.put_u8(0);
                position.encode(w);
            }
            JobEvent::Started { resumed } => {
                w.put_u8(1);
                resumed.encode(w);
            }
            JobEvent::ScenarioStarted { index, total, name } => {
                w.put_u8(2);
                index.encode(w);
                total.encode(w);
                name.encode(w);
            }
            JobEvent::Round {
                index,
                name,
                trials_done,
                total_trials,
                best_objective,
                frontier_size,
                full_evals,
            } => {
                w.put_u8(3);
                index.encode(w);
                name.encode(w);
                trials_done.encode(w);
                total_trials.encode(w);
                best_objective.encode(w);
                frontier_size.encode(w);
                full_evals.encode(w);
            }
            JobEvent::ScenarioFinished {
                index,
                name,
                frontier_size,
                best_objective,
                invalid_trials,
                cache,
                staged,
                fidelity,
            } => {
                w.put_u8(4);
                index.encode(w);
                name.encode(w);
                frontier_size.encode(w);
                best_objective.encode(w);
                invalid_trials.encode(w);
                cache.encode(w);
                staged.encode(w);
                fidelity.encode(w);
            }
            JobEvent::Warning { line } => {
                w.put_u8(5);
                line.encode(w);
            }
        }
    }
}

impl Decode for JobEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => JobEvent::Queued { position: Decode::decode(r)? },
            1 => JobEvent::Started { resumed: Decode::decode(r)? },
            2 => JobEvent::ScenarioStarted {
                index: Decode::decode(r)?,
                total: Decode::decode(r)?,
                name: Decode::decode(r)?,
            },
            3 => JobEvent::Round {
                index: Decode::decode(r)?,
                name: Decode::decode(r)?,
                trials_done: Decode::decode(r)?,
                total_trials: Decode::decode(r)?,
                best_objective: Decode::decode(r)?,
                frontier_size: Decode::decode(r)?,
                full_evals: Decode::decode(r)?,
            },
            4 => JobEvent::ScenarioFinished {
                index: Decode::decode(r)?,
                name: Decode::decode(r)?,
                frontier_size: Decode::decode(r)?,
                best_objective: Decode::decode(r)?,
                invalid_trials: Decode::decode(r)?,
                cache: Decode::decode(r)?,
                staged: Decode::decode(r)?,
                fidelity: Decode::decode(r)?,
            },
            5 => JobEvent::Warning { line: Decode::decode(r)? },
            tag => {
                return Err(DecodeError { offset: 0, what: format!("invalid JobEvent tag {tag}") })
            }
        })
    }
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The job was journaled and queued.
    Accepted {
        /// Its durable id (stable across server restarts).
        id: u64,
        /// Its place in the FIFO queue at admission (0 = next to run).
        position: usize,
    },
    /// The request was refused; see [`RejectReason`].
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// A streamed progress event for a watched job.
    Event {
        /// The job it belongs to.
        id: u64,
        /// What happened.
        event: JobEvent,
    },
    /// A watched job finished; the full result, bit-identical to what a
    /// single-process sweep of the same spec would produce.
    Done {
        /// The finished job.
        id: u64,
        /// Per-scenario records in matrix order.
        scenarios: Vec<CompletedScenario>,
        /// Fuse-tier traffic attributable to the whole job.
        cache: Traffic,
        /// Per-stage traffic attributable to the whole job.
        staged: StagedTraffic,
    },
    /// Answer to [`Request::Status`].
    JobStatus {
        /// The queried job.
        id: u64,
        /// Where it is.
        phase: JobPhase,
    },
    /// Answer to [`Request::List`]: every journaled job, id-ascending.
    Jobs {
        /// `(id, phase)` pairs.
        jobs: Vec<(u64, JobPhase)>,
    },
    /// Answer to [`Request::Shutdown`], sent after the queue drained.
    ShuttingDown,
}

impl Encode for Response {
    fn encode(&self, w: &mut Writer) {
        match self {
            Response::Pong => w.put_u8(0),
            Response::Accepted { id, position } => {
                w.put_u8(1);
                w.put_u64(*id);
                position.encode(w);
            }
            Response::Rejected { reason } => {
                w.put_u8(2);
                reason.encode(w);
            }
            Response::Event { id, event } => {
                w.put_u8(3);
                w.put_u64(*id);
                event.encode(w);
            }
            Response::Done { id, scenarios, cache, staged } => {
                w.put_u8(4);
                w.put_u64(*id);
                scenarios.encode(w);
                cache.encode(w);
                staged.encode(w);
            }
            Response::JobStatus { id, phase } => {
                w.put_u8(5);
                w.put_u64(*id);
                phase.encode(w);
            }
            Response::Jobs { jobs } => {
                w.put_u8(6);
                jobs.encode(w);
            }
            Response::ShuttingDown => w.put_u8(7),
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => Response::Pong,
            1 => Response::Accepted { id: r.get_u64()?, position: Decode::decode(r)? },
            2 => Response::Rejected { reason: Decode::decode(r)? },
            3 => Response::Event { id: r.get_u64()?, event: Decode::decode(r)? },
            4 => Response::Done {
                id: r.get_u64()?,
                scenarios: Decode::decode(r)?,
                cache: Decode::decode(r)?,
                staged: Decode::decode(r)?,
            },
            5 => Response::JobStatus { id: r.get_u64()?, phase: Decode::decode(r)? },
            6 => Response::Jobs { jobs: Decode::decode(r)? },
            7 => Response::ShuttingDown,
            tag => {
                return Err(DecodeError { offset: 0, what: format!("invalid Response tag {tag}") })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Why a frame could not be read. Every connection-terminating condition is
/// one of these — [`read_frame`] never panics and never blocks forever on a
/// stream with a read timeout set.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The stream ended mid-frame (a partial header or payload).
    Truncated {
        /// Bytes the frame needed.
        wanted: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The stream's read timeout elapsed.
    TimedOut,
    /// The first 8 bytes were not [`MAGIC`].
    BadMagic {
        /// What arrived instead.
        got: [u8; 8],
    },
    /// The header carried a different protocol version.
    VersionSkew {
        /// The peer's version.
        got: u32,
        /// Ours ([`VERSION`]).
        want: u32,
    },
    /// The header claimed a payload larger than [`MAX_FRAME`]; nothing
    /// past the header was read.
    Oversized {
        /// The claimed payload length.
        claimed: u64,
        /// The ceiling it exceeded.
        max: u64,
    },
    /// The payload arrived but failed its checksum or did not decode as
    /// the expected message (bit flips, trailing garbage).
    Corrupt {
        /// What exactly failed.
        what: String,
    },
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { wanted, got } => {
                write!(f, "truncated frame: wanted {wanted} bytes, got {got}")
            }
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::BadMagic { got } => write!(f, "bad frame magic {got:02x?}"),
            FrameError::VersionSkew { got, want } => {
                write!(f, "protocol version {got}, expected {want}")
            }
            FrameError::Oversized { claimed, max } => {
                write!(f, "frame claims {claimed} payload bytes, limit is {max}")
            }
            FrameError::Corrupt { what } => write!(f, "corrupt frame: {what}"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    fn from_io(e: io::Error) -> FrameError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::TimedOut,
            _ => FrameError::Io(e),
        }
    }
}

/// Encodes `msg` and writes it as one frame.
///
/// # Errors
/// Propagates stream write failures.
pub fn write_frame(stream: &mut impl Write, msg: &impl Encode) -> io::Result<()> {
    let mut w = Writer::new();
    msg.encode(&mut w);
    let frame = bin::write_envelope(MAGIC, VERSION, &w.into_bytes());
    stream.write_all(&frame)?;
    stream.flush()
}

/// Reads exactly `buf.len()` bytes. `read_so_far` distinguishes a clean
/// close at a frame boundary ([`FrameError::Closed`]) from mid-frame
/// truncation.
fn read_full(
    stream: &mut impl Read,
    buf: &mut [u8],
    frame_bytes_before: usize,
    frame_total: usize,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if frame_bytes_before + filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Truncated {
                        wanted: frame_total,
                        got: frame_bytes_before + filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::from_io(e)),
        }
    }
    Ok(())
}

/// Reads one frame and decodes its payload as `T`.
///
/// The header is parsed field-by-field so each failure mode maps to its own
/// [`FrameError`]; the payload length is checked against [`MAX_FRAME`]
/// before any payload byte is read.
///
/// # Errors
/// See [`FrameError`] — this is the complete taxonomy; no variant panics.
pub fn read_frame<T: Decode>(stream: &mut impl Read) -> Result<T, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_full(stream, &mut header, 0, HEADER_LEN)?;

    let mut magic = [0u8; 8];
    magic.copy_from_slice(&header[..8]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic { got: magic });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(FrameError::VersionSkew { got: version, want: VERSION });
    }
    let len = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { claimed: len, max: MAX_FRAME });
    }
    let checksum = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));

    let payload_len = usize::try_from(len).expect("len <= MAX_FRAME fits usize");
    let mut payload = vec![0u8; payload_len];
    read_full(stream, &mut payload, HEADER_LEN, HEADER_LEN + payload_len)?;

    let computed = bin::fnv1a(&payload);
    if computed != checksum {
        return Err(FrameError::Corrupt {
            what: format!(
                "checksum mismatch over {payload_len} payload bytes (stored {checksum:#018x}, \
                 computed {computed:#018x})"
            ),
        });
    }

    let mut r = Reader::new(&payload);
    let msg = T::decode(&mut r).map_err(|e| FrameError::Corrupt {
        what: format!("payload byte {}: {}", e.offset, e.what),
    })?;
    if !r.is_done() {
        return Err(FrameError::Corrupt {
            what: format!("{} trailing bytes after message", r.remaining()),
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_core::{
        BudgetLevel, Fidelity, Objective, OptimizerKind, ScenarioMatrix, SurrogateTier, SweepConfig,
    };
    use fast_models::WorkloadDomain;

    fn sample_spec() -> JobSpec {
        JobSpec {
            name: "smoke".to_string(),
            matrix: ScenarioMatrix {
                budgets: vec![BudgetLevel::scaled(1.0)],
                objectives: vec![Objective::Qps],
                domains: vec![WorkloadDomain::by_name("EfficientNet-B0").expect("registry name")],
            },
            config: SweepConfig {
                trials: 8,
                optimizer: OptimizerKind::Random,
                seed: 7,
                batch: 4,
                seeds: Vec::new(),
                fidelity: Fidelity::Screened {
                    keep_fraction: 0.25,
                    min_full: 2,
                    tier: SurrogateTier::S1,
                },
            },
        }
    }

    fn frame_of(msg: &impl Encode) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).expect("Vec<u8> never fails to write");
        buf
    }

    #[test]
    fn frames_are_exactly_the_bin_envelope() {
        let msg = Request::Ping;
        let mut w = Writer::new();
        msg.encode(&mut w);
        let payload = w.into_bytes();
        assert_eq!(frame_of(&msg), bin::write_envelope(MAGIC, VERSION, &payload));
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::Submit { spec: sample_spec(), watch: true },
            Request::Watch { id: 3 },
            Request::Status { id: 9 },
            Request::List,
            Request::Shutdown,
        ];
        for req in reqs {
            let buf = frame_of(&req);
            let back: Request = read_frame(&mut buf.as_slice()).expect("clean frame");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Pong,
            Response::Accepted { id: 1, position: 0 },
            Response::Rejected { reason: RejectReason::QueueFull { capacity: 4 } },
            Response::Event {
                id: 1,
                event: JobEvent::Round {
                    index: 0,
                    name: "d/1.00x/qps".to_string(),
                    trials_done: 8,
                    total_trials: 32,
                    best_objective: Some(123.5),
                    frontier_size: 3,
                    full_evals: None,
                },
            },
            Response::Event {
                id: 4,
                event: JobEvent::Round {
                    index: 1,
                    name: "d/1.00x/qps".to_string(),
                    trials_done: 16,
                    total_trials: 32,
                    best_objective: Some(123.5),
                    frontier_size: 3,
                    full_evals: Some(5),
                },
            },
            Response::Event {
                id: 4,
                event: JobEvent::ScenarioFinished {
                    index: 1,
                    name: "d/1.00x/qps".to_string(),
                    frontier_size: 3,
                    best_objective: Some(123.5),
                    invalid_trials: 2,
                    cache: Traffic { hits: 4, misses: 9 },
                    staged: StagedTraffic::default(),
                    fidelity: Some(fast_core::FidelityReport {
                        tier: SurrogateTier::S0,
                        keep_fraction: 0.25,
                        min_full: 2,
                        full_evals: 9,
                        screened_out: 23,
                        pairs: 9,
                        spearman: Some(0.9),
                        kendall: Some(0.8),
                    }),
                },
            },
            Response::Done {
                id: 1,
                scenarios: Vec::new(),
                cache: Traffic { hits: 10, misses: 2 },
                staged: StagedTraffic::default(),
            },
            Response::JobStatus { id: 2, phase: JobPhase::Queued { position: 1 } },
            Response::Jobs {
                jobs: vec![(1, JobPhase::Done), (2, JobPhase::Damaged { what: "x".into() })],
            },
            Response::ShuttingDown,
        ];
        for resp in resps {
            let buf = frame_of(&resp);
            let back: Response = read_frame(&mut buf.as_slice()).expect("clean frame");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn clean_eof_at_frame_boundary_is_closed() {
        let empty: &[u8] = &[];
        match read_frame::<Request>(&mut { empty }) {
            Err(FrameError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed_at_every_cut_point() {
        let full = frame_of(&Request::Submit { spec: sample_spec(), watch: false });
        // Cut inside the header and inside the payload.
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 1, full.len() - 1] {
            let mut short = &full[..cut];
            match read_frame::<Request>(&mut short) {
                Err(FrameError::Truncated { wanted, got }) => {
                    assert_eq!(got, cut);
                    assert!(wanted > cut, "wanted {wanted} should exceed the {cut} sent");
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn version_skew_is_typed() {
        let mut w = Writer::new();
        Request::Ping.encode(&mut w);
        let buf = bin::write_envelope(MAGIC, VERSION + 1, &w.into_bytes());
        match read_frame::<Request>(&mut buf.as_slice()) {
            Err(FrameError::VersionSkew { got, want }) => {
                assert_eq!(got, VERSION + 1);
                assert_eq!(want, VERSION);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut buf = frame_of(&Request::Ping);
        buf[0] ^= 0xff;
        match read_frame::<Request>(&mut buf.as_slice()) {
            Err(FrameError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_claim_is_rejected_from_the_header_alone() {
        // A header claiming 2^40 payload bytes, followed by nothing: the
        // reader must reject it without waiting for (or allocating) the
        // claimed payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_frame::<Request>(&mut buf.as_slice()) {
            Err(FrameError::Oversized { claimed, max }) => {
                assert_eq!(claimed, 1u64 << 40);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected_never_misread() {
        let req = Request::Submit { spec: sample_spec(), watch: true };
        let clean = frame_of(&req);
        for i in 0..clean.len() {
            let mut bent = clean.clone();
            bent[i] ^= 0x01;
            match read_frame::<Request>(&mut bent.as_slice()) {
                Err(_) => {}
                // A flip in the payload *could* in principle still decode —
                // but then the checksum must have caught it first, so
                // reaching Ok means the frame was untouched semantically,
                // which a 1-bit XOR cannot be.
                Ok(back) => panic!("flip at byte {i} decoded as {back:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_inside_the_payload_is_corrupt() {
        let mut w = Writer::new();
        Request::Ping.encode(&mut w);
        let mut payload = w.into_bytes();
        payload.push(0xEE);
        let buf = bin::write_envelope(MAGIC, VERSION, &payload);
        match read_frame::<Request>(&mut buf.as_slice()) {
            Err(FrameError::Corrupt { what }) => assert!(what.contains("trailing")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn traffic_hit_rate() {
        assert_eq!(Traffic::default().hit_rate(), 0.0);
        let t = Traffic { hits: 3, misses: 1 };
        assert!((t.hit_rate() - 0.75).abs() < 1e-12);
    }
}
