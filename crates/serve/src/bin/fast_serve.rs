//! The `fast-serve` daemon binary.
//!
//! ```text
//! fast-serve --journal DIR [--listen tcp:HOST:PORT|unix:PATH]
//!            [--max-inflight N] [--queue N] [--read-timeout-ms N]
//! ```
//!
//! On startup the daemon prints exactly one line to stdout —
//! `fast-serve listening on {addr}` — carrying the resolved address
//! (`tcp:127.0.0.1:0` resolves to the OS-picked port), then serves until a
//! `Shutdown` request drains the queue. Jobs and their checkpoints live
//! under `DIR/jobs/`; restarting with the same `--journal` resumes
//! unfinished jobs bit-identically.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use fast_serve::{serve, ListenAddr, ServerConfig};

const USAGE: &str = "usage: fast-serve --journal DIR [--listen tcp:HOST:PORT|unix:PATH] \
                     [--max-inflight N] [--queue N] [--read-timeout-ms N]";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut journal: Option<PathBuf> = None;
    let mut listen = ListenAddr::Tcp("127.0.0.1:0".to_string());
    let mut max_inflight = 2usize;
    let mut queue_capacity = 16usize;
    let mut read_timeout = Some(Duration::from_secs(30));

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{flag} needs {what}"))
        };
        match flag.as_str() {
            "--journal" => journal = Some(PathBuf::from(value("a directory")?)),
            "--listen" => listen = ListenAddr::parse(value("an address")?)?,
            "--max-inflight" => {
                max_inflight =
                    value("a count")?.parse().map_err(|e| format!("--max-inflight: {e}"))?;
            }
            "--queue" => {
                queue_capacity =
                    value("a capacity")?.parse().map_err(|e| format!("--queue: {e}"))?;
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("milliseconds")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let journal = journal.ok_or_else(|| format!("--journal is required\n{USAGE}"))?;
    Ok(ServerConfig { listen, journal, max_inflight, queue_capacity, read_timeout })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("fast-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    match serve(config) {
        // `serve` only returns on a fatal startup/accept error; a drained
        // shutdown exits 0 from inside.
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fast-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
