//! A blocking client for the `fast-serve` protocol: dial, submit, watch,
//! and collect a job's full outcome.
//!
//! The client is deliberately thin — one request, one read, no hidden
//! state machine — so tests can also speak the protocol by hand (or
//! deliberately mis-speak it) against the same [`crate::net::Conn`].

use std::io;
use std::time::Duration;

use fast_core::CompletedScenario;

use crate::net::{Conn, ListenAddr};
use crate::protocol::{
    read_frame, write_frame, FrameError, JobEvent, RejectReason, Request, Response, StagedTraffic,
    Traffic,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing layer failed.
    Frame(FrameError),
    /// The server refused the request with a typed reason.
    Rejected(RejectReason),
    /// The server answered with a response the call did not expect.
    Unexpected(String),
    /// Dialing or socket setup failed.
    Io(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Rejected(r) => write!(f, "rejected: {r}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            ClientError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Everything a watched job produced, assembled from its event stream.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's durable id.
    pub id: u64,
    /// Per-scenario records in matrix order — bit-identical to a
    /// single-process sweep of the same spec.
    pub scenarios: Vec<CompletedScenario>,
    /// Fuse-tier traffic attributable to the job (zero when the result was
    /// replayed from the journal).
    pub cache: Traffic,
    /// Per-stage traffic attributable to the job.
    pub staged: StagedTraffic,
    /// Every event streamed while watching, in arrival order.
    pub events: Vec<JobEvent>,
    /// The [`JobEvent::Warning`] lines, extracted for convenience.
    pub warnings: Vec<String>,
}

/// A blocking connection to a `fast-serve` daemon.
#[derive(Debug)]
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Dials the daemon.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &ListenAddr) -> io::Result<Client> {
        Ok(Client { conn: Conn::connect(addr)? })
    }

    /// Bounds how long a read waits (`None` = forever). Watching a long
    /// job needs either `None` or a bound beyond its round cadence.
    ///
    /// # Errors
    /// Propagates setsockopt failures.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.conn.set_read_timeout(dur)
    }

    /// Sends one request without awaiting a response.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.conn, req)
    }

    /// Reads the next response frame.
    ///
    /// # Errors
    /// Propagates frame errors; see [`FrameError`].
    pub fn read_response(&mut self) -> Result<Response, FrameError> {
        read_frame(&mut self.conn)
    }

    /// One request, one response.
    ///
    /// # Errors
    /// Propagates write and frame failures.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req).map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        Ok(self.read_response()?)
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Fails unless the server answers [`Response::Pong`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Submits a job; returns `(id, queue position)`.
    ///
    /// With `watch: true` the connection then streams events — follow up
    /// with [`Client::wait_done`].
    ///
    /// # Errors
    /// Typed rejection, frame damage, or an unexpected response.
    pub fn submit(
        &mut self,
        spec: &fast_core::JobSpec,
        watch: bool,
    ) -> Result<(u64, usize), ClientError> {
        let req = Request::Submit { spec: spec.clone(), watch };
        match self.request(&req)? {
            Response::Accepted { id, position } => Ok((id, position)),
            Response::Rejected { reason } => Err(ClientError::Rejected(reason)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Consumes the event stream of the most recent watched submission (or
    /// [`Request::Watch`]) until the job's terminal response.
    ///
    /// # Errors
    /// Typed rejection (the job's terminal state was a reject), frame
    /// damage, or an unexpected response.
    pub fn wait_done(&mut self, id: u64) -> Result<JobOutcome, ClientError> {
        let mut events = Vec::new();
        let mut warnings = Vec::new();
        loop {
            match self.read_response()? {
                Response::Event { id: ev_id, event } if ev_id == id => {
                    if let JobEvent::Warning { line } = &event {
                        warnings.push(line.clone());
                    }
                    events.push(event);
                }
                Response::Done { id: done_id, scenarios, cache, staged } if done_id == id => {
                    return Ok(JobOutcome { id, scenarios, cache, staged, events, warnings });
                }
                Response::Rejected { reason } => return Err(ClientError::Rejected(reason)),
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Submit-and-watch in one call.
    ///
    /// # Errors
    /// As [`Client::submit`] and [`Client::wait_done`].
    pub fn run(&mut self, spec: &fast_core::JobSpec) -> Result<JobOutcome, ClientError> {
        let (id, _position) = self.submit(spec, true)?;
        self.wait_done(id)
    }

    /// Attaches to an existing job and waits for its result.
    ///
    /// # Errors
    /// As [`Client::wait_done`]; unknown ids surface as a typed rejection.
    pub fn watch(&mut self, id: u64) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Watch { id }).map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        self.wait_done(id)
    }

    /// Asks the server to drain and exit; resolves when it confirms.
    ///
    /// # Errors
    /// Fails unless the server answers [`Response::ShuttingDown`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
