//! Transport: the server listens on (and clients dial) either a TCP
//! address or a Unix-domain socket, spelled uniformly as `tcp:HOST:PORT`
//! or `unix:PATH`.
//!
//! Both transports behave identically above this module — [`Conn`] erases
//! the difference behind `Read + Write`, so the framing layer
//! ([`crate::protocol`]) and the server never branch on transport.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where the server listens / the client dials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// `tcp:HOST:PORT` — `PORT` may be `0` to let the OS pick (the server
    /// prints the bound address on startup).
    Tcp(String),
    /// `unix:PATH` — a Unix-domain socket at `PATH` (created on bind,
    /// removed first if a stale one exists).
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses the uniform spelling.
    ///
    /// # Errors
    /// Returns a description of the expected syntax on anything else.
    pub fn parse(s: &str) -> Result<ListenAddr, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none() {
                return Err(format!("tcp address {addr:?} has no :PORT"));
            }
            Ok(ListenAddr::Tcp(addr.to_string()))
        } else if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: needs a socket path".to_string());
            }
            Ok(ListenAddr::Unix(PathBuf::from(path)))
        } else {
            Err(format!("listen address {s:?} must be tcp:HOST:PORT or unix:PATH"))
        }
    }
}

/// `Display` writes the parseable spelling back out, so the server's
/// startup line round-trips through [`ListenAddr::parse`].
impl fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListenAddr::Tcp(a) => write!(f, "tcp:{a}"),
            ListenAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A bound listening socket of either transport.
#[derive(Debug)]
pub enum Listener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix-domain.
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr`. A stale Unix socket file at the path is removed first
    /// (the daemon owns its socket path the way it owns its journal dir).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(addr: &ListenAddr) -> io::Result<Listener> {
        match addr {
            ListenAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a)?)),
            ListenAddr::Unix(p) => {
                if p.exists() {
                    std::fs::remove_file(p)?;
                }
                Ok(Listener::Unix(UnixListener::bind(p)?))
            }
        }
    }

    /// The bound address in parseable spelling — for TCP this is the
    /// *actual* address (resolving a `:0` port request).
    ///
    /// # Errors
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<ListenAddr> {
        match self {
            Listener::Tcp(l) => Ok(ListenAddr::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(l) => {
                let path = l
                    .local_addr()?
                    .as_pathname()
                    .map(PathBuf::from)
                    .ok_or_else(|| io::Error::other("unix listener has no pathname"))?;
                Ok(ListenAddr::Unix(path))
            }
        }
    }

    /// Blocks for the next connection.
    ///
    /// # Errors
    /// Propagates accept failures.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => Ok(Conn::Tcp(l.accept()?.0)),
            Listener::Unix(l) => Ok(Conn::Unix(l.accept()?.0)),
        }
    }
}

/// One accepted or dialed connection, transport-erased.
#[derive(Debug)]
pub enum Conn {
    /// TCP.
    Tcp(TcpStream),
    /// Unix-domain.
    Unix(UnixStream),
}

impl Conn {
    /// Dials `addr`.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &ListenAddr) -> io::Result<Conn> {
        match addr {
            ListenAddr::Tcp(a) => Ok(Conn::Tcp(TcpStream::connect(a)?)),
            ListenAddr::Unix(p) => Ok(Conn::Unix(UnixStream::connect(p)?)),
        }
    }

    /// Clones the underlying socket handle (reads and writes can then run
    /// on separate threads).
    ///
    /// # Errors
    /// Propagates `try_clone` failures.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }

    /// Bounds how long a blocking read waits (`None` = forever).
    ///
    /// # Errors
    /// Propagates setsockopt failures.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Closes the write half, signalling EOF to the peer while reads stay
    /// open.
    ///
    /// # Errors
    /// Propagates shutdown failures.
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_both_transports() {
        for s in ["tcp:127.0.0.1:0", "tcp:localhost:4114", "unix:/tmp/fast-serve.sock"] {
            let addr = ListenAddr::parse(s).expect("valid spelling");
            assert_eq!(addr.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed_spellings() {
        for s in ["", "127.0.0.1:80", "tcp:nohostport", "unix:", "http:foo"] {
            assert!(ListenAddr::parse(s).is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn tcp_listener_reports_the_resolved_port() {
        let l = Listener::bind(&ListenAddr::parse("tcp:127.0.0.1:0").expect("spelling"))
            .expect("bind ephemeral");
        match l.local_addr().expect("local addr") {
            ListenAddr::Tcp(a) => {
                let port: u16 = a.rsplit_once(':').expect("host:port").1.parse().expect("port");
                assert_ne!(port, 0, "OS must have picked a real port");
            }
            other => panic!("expected tcp, got {other:?}"),
        }
    }

    #[test]
    fn unix_socket_round_trips_bytes() {
        let dir = std::env::temp_dir().join(format!("fast-serve-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("t.sock");
        let addr = ListenAddr::Unix(path.clone());
        let listener = Listener::bind(&addr).expect("bind");
        let handle = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let mut buf = [0u8; 4];
            conn.read_exact(&mut buf).expect("read");
            conn.write_all(&buf).expect("echo");
        });
        let mut client = Conn::connect(&addr).expect("connect");
        client.write_all(b"fast").expect("write");
        let mut back = [0u8; 4];
        client.read_exact(&mut back).expect("read back");
        assert_eq!(&back, b"fast");
        handle.join().expect("server thread");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
