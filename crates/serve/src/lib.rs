//! # fast-serve — search as a service
//!
//! A crash-safe job server for the FAST stack: clients submit declarative
//! study requests (a [`fast_core::ScenarioMatrix`] plus a
//! [`fast_core::SweepConfig`], together a [`fast_core::JobSpec`]) over a
//! TCP or Unix socket; the daemon runs them as Pareto sweeps against **one
//! process-wide warm evaluation cache**, streams incremental
//! frontier/round events back, and journals everything so that a
//! `kill -9` at any instant loses no accepted work — a restarted server
//! resumes every in-flight job and finishes it **bit-identically**.
//!
//! The crate splits along the obvious seams:
//!
//! * [`protocol`] — the framed wire format (`FASTSRV1`), message types,
//!   and the typed [`protocol::FrameError`] taxonomy. Damaged traffic is
//!   rejected, never mis-read.
//! * [`net`] — the transport-erased socket layer (`tcp:HOST:PORT` /
//!   `unix:PATH`).
//! * [`server`] — admission control, the FIFO queue, worker threads,
//!   event fan-out, per-job warning capture, and journal replay.
//! * [`client`] — a thin blocking client used by `fast-serve-client` and
//!   the test battery.
//!
//! Correctness leans entirely on contracts the lower layers already
//! guarantee: the determinism contract (same spec ⇒ same study, whatever
//! the cache temperature), the [`fast_core::Checkpointer`]'s atomic
//! snapshots, and the [`fast_core::JobJournal`]'s atomic spec/result
//! records. The server adds no state of its own that needs to survive a
//! crash — the journal directory *is* the server's durable state.

pub mod client;
pub mod net;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, JobOutcome};
pub use net::{Conn, ListenAddr, Listener};
pub use protocol::{
    read_frame, write_frame, FrameError, JobEvent, JobPhase, RejectReason, Request, Response,
    StagedTraffic, Traffic, MAGIC, MAX_FRAME, VERSION,
};
pub use server::{serve, ServerConfig};
