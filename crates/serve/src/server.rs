//! The `fast-serve` daemon: admission control, the shared warm evaluator,
//! job workers, event fan-out, and crash recovery.
//!
//! # Life of a job
//!
//! 1. A client submits a [`JobSpec`]. Under the scheduler lock the server
//!    checks admission (queue capacity, shutdown), journals the spec
//!    durably ([`JobJournal::create`]) and appends the job to the FIFO
//!    queue — so an `Accepted` reply *guarantees* the job survives any
//!    later crash of either side.
//! 2. A worker thread pops the queue and runs the job's sweep through
//!    [`SweepRunner::run_session`] with three attachments: the process-wide
//!    shared [`Evaluator`] (every job reads and feeds one warm cache), the
//!    job's own [`fast_core::Checkpointer`] inside its journal directory, and an
//!    observer that fans sweep progress out to watching clients. Warnings
//!    the evaluation stack raises meanwhile are captured per-job via
//!    [`fast_core::warn::route_to`] and streamed as
//!    [`JobEvent::Warning`]s.
//! 3. The finished frontier set is journaled (`result.bin`) and broadcast
//!    as [`Response::Done`].
//!
//! # Crash recovery
//!
//! On startup the server replays its journal: every job directory's
//! evaluation-cache snapshot is merged into the shared evaluator (warming
//! it across restarts), and every job with a spec but no result re-enters
//! the queue in id order. Because each job resumes from its own checkpoint
//! and the determinism contract fixes what a study computes, a job
//! interrupted by `kill -9` finishes with frontiers **bit-identical** to
//! an uninterrupted run — the only observable difference is cache traffic.
//!
//! Sharing one evaluator across concurrent jobs is safe for the same
//! reason: the staged tiers are concurrent-safe and memoize pure
//! functions, so sharing changes speed, never results.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use fast_arch::Budget;
use fast_core::{
    warn, Evaluator, JobEntry, JobId, JobJournal, JobSpec, JobState, Objective, SweepEvent,
    SweepRunner, SweepSession,
};

use crate::net::{Conn, ListenAddr, Listener};
use crate::protocol::{
    read_frame, write_frame, FrameError, JobEvent, JobPhase, RejectReason, Request, Response,
};

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub listen: ListenAddr,
    /// Journal root; created if absent, replayed if not.
    pub journal: PathBuf,
    /// Worker threads = jobs running concurrently (min 1).
    pub max_inflight: usize,
    /// FIFO queue capacity; a submit beyond it gets
    /// [`RejectReason::QueueFull`] (min 1).
    pub queue_capacity: usize,
    /// Per-connection read timeout between requests; `None` waits forever.
    pub read_timeout: Option<Duration>,
}

impl ServerConfig {
    /// Ephemeral-port localhost defaults around `journal`.
    #[must_use]
    pub fn at(journal: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            listen: ListenAddr::Tcp("127.0.0.1:0".to_string()),
            journal: journal.into(),
            max_inflight: 2,
            queue_capacity: 16,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Scheduler state guarded by one mutex: the FIFO queue, the in-flight
/// count, and the drain flag.
#[derive(Debug)]
struct Sched {
    queue: VecDeque<JobId>,
    running: usize,
    shutdown: bool,
}

/// Everything the threads share.
struct Shared {
    journal: JobJournal,
    /// The process-wide warm evaluator every job's session borrows.
    proto: Evaluator,
    sched: Mutex<Sched>,
    /// Signaled when the queue gains work or shutdown begins.
    work_ready: Condvar,
    /// Signaled when the last in-flight job finishes with an empty queue.
    idle: Condvar,
    /// Per-job event fan-out; entries removed at the job's terminal
    /// response.
    watchers: Mutex<HashMap<u64, Fanout>>,
    queue_capacity: usize,
}

/// Runs the daemon: replays the journal, binds, prints
/// `fast-serve listening on {addr}` to stdout (the line tooling parses for
/// the resolved port), and serves until a [`Request::Shutdown`] drains the
/// queue — at which point the process exits 0.
///
/// # Errors
/// Propagates journal-open and bind failures; per-connection and per-job
/// failures are handled in-protocol and never tear the daemon down.
pub fn serve(config: ServerConfig) -> io::Result<()> {
    let journal = JobJournal::open(&config.journal)?;
    let proto = Evaluator::new(Vec::new(), Objective::Qps, Budget::paper_default());

    // Recovery: warm the shared cache from every job's snapshot and
    // re-queue everything that has a spec but no result, in id order.
    let mut pending = VecDeque::new();
    for entry in journal.jobs()? {
        let ck = journal.checkpointer(entry.id)?;
        let report = proto.load_eval_cache(&ck.cache_path());
        if report.loaded() > 0 {
            warn::note(format_args!(
                "{}: warmed shared cache with {} entries",
                entry.id,
                report.loaded()
            ));
        }
        if entry.state == JobState::Pending {
            pending.push_back(entry.id);
        }
    }
    if !pending.is_empty() {
        warn::note(format_args!("resuming {} unfinished job(s) from the journal", pending.len()));
    }

    let listener = Listener::bind(&config.listen)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        journal,
        proto,
        sched: Mutex::new(Sched { queue: pending, running: 0, shutdown: false }),
        work_ready: Condvar::new(),
        idle: Condvar::new(),
        watchers: Mutex::new(HashMap::new()),
        queue_capacity: config.queue_capacity.max(1),
    });

    for worker in 0..config.max_inflight.max(1) {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name(format!("fast-serve-worker-{worker}"))
            .spawn(move || worker_loop(&shared))?;
    }

    // The exact line tests and the CI smoke job parse; flush so a piped
    // stdout delivers it before the first job starts.
    println!("fast-serve listening on {addr}");
    io::stdout().flush()?;

    loop {
        match listener.accept() {
            Ok(conn) => {
                let shared = Arc::clone(&shared);
                let read_timeout = config.read_timeout;
                thread::Builder::new()
                    .name("fast-serve-conn".to_string())
                    .spawn(move || handle_conn(&shared, conn, read_timeout))?;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Event fan-out
// ---------------------------------------------------------------------------

/// One job's event fan-out: live subscribers plus the backlog of every
/// event the job has emitted so far.
///
/// The backlog is what makes late attachment lossless: a job resumed at
/// daemon startup begins emitting (including degrade-to-cold warnings from
/// its snapshot load) *before* any client can possibly reconnect, so a
/// watcher registered mid-job first replays the backlog, then follows
/// live. Cleared with the entry at the job's terminal response — a
/// finished job's durable record is `result.bin`, not this buffer.
#[derive(Default)]
struct Fanout {
    subs: Vec<mpsc::Sender<Response>>,
    backlog: Vec<Response>,
}

/// Subscribes a new watcher to `id`'s event stream, replaying everything
/// the job already emitted. Replay and registration share one lock
/// acquisition with [`broadcast`], so the watcher sees every event exactly
/// once, in order.
fn register_watcher(shared: &Shared, id: u64) -> mpsc::Receiver<Response> {
    let (tx, rx) = mpsc::channel();
    let mut watchers = shared.watchers.lock().expect("watchers lock");
    let fanout = watchers.entry(id).or_default();
    for resp in &fanout.backlog {
        // A fresh channel with a live receiver cannot refuse.
        let _ = tx.send(resp.clone());
    }
    fanout.subs.push(tx);
    rx
}

/// Sends `resp` to every watcher of `id` (pruning the hung-up ones) and
/// appends it to the job's backlog for watchers yet to attach.
fn broadcast(shared: &Shared, id: u64, resp: &Response) {
    let mut watchers = shared.watchers.lock().expect("watchers lock");
    let fanout = watchers.entry(id).or_default();
    fanout.subs.retain(|tx| tx.send(resp.clone()).is_ok());
    fanout.backlog.push(resp.clone());
}

/// Sends the job's final response and drops its watcher list.
fn finish(shared: &Shared, id: u64, resp: &Response) {
    broadcast(shared, id, resp);
    shared.watchers.lock().expect("watchers lock").remove(&id);
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let id = {
            let mut sched = shared.sched.lock().expect("sched lock");
            loop {
                if let Some(id) = sched.queue.pop_front() {
                    sched.running += 1;
                    break id;
                }
                if sched.shutdown {
                    return;
                }
                sched = shared.work_ready.wait(sched).expect("sched lock");
            }
        };
        run_job(shared, id);
        let mut sched = shared.sched.lock().expect("sched lock");
        sched.running -= 1;
        if sched.running == 0 && sched.queue.is_empty() {
            shared.idle.notify_all();
        }
    }
}

/// Translates a sweep progress event to its wire form.
fn wire_event(ev: &SweepEvent) -> JobEvent {
    match ev {
        SweepEvent::ScenarioStarted { index, total, name } => {
            JobEvent::ScenarioStarted { index: *index, total: *total, name: name.clone() }
        }
        SweepEvent::Round {
            index,
            name,
            trials_done,
            total_trials,
            best_objective,
            frontier_size,
            full_evals,
        } => JobEvent::Round {
            index: *index,
            name: name.clone(),
            trials_done: *trials_done,
            total_trials: *total_trials,
            best_objective: *best_objective,
            frontier_size: *frontier_size,
            full_evals: *full_evals,
        },
        SweepEvent::ScenarioFinished { index, record, cache, staged } => {
            JobEvent::ScenarioFinished {
                index: *index,
                name: record.name.clone(),
                frontier_size: record.frontier_points.len(),
                best_objective: record.best_objective,
                invalid_trials: record.invalid_trials,
                cache: (*cache).into(),
                staged: (*staged).into(),
                fidelity: record.fidelity.clone(),
            }
        }
    }
}

/// Runs one job to completion on the current worker thread.
fn run_job(shared: &Shared, id: JobId) {
    let raw = id.0;
    let spec = match shared.journal.load_spec(id) {
        Ok(spec) => spec,
        Err(what) => {
            finish(shared, raw, &Response::Rejected { reason: RejectReason::Damaged { what } });
            return;
        }
    };
    // A job that already has a readable result (finished just before a
    // kill, re-queued by a racing restart) replays it instead of re-running.
    if shared.journal.has_result(id) {
        if let Ok(scenarios) = shared.journal.load_result(id) {
            finish(
                shared,
                raw,
                &Response::Done {
                    id: raw,
                    scenarios,
                    cache: crate::protocol::Traffic::default(),
                    staged: crate::protocol::StagedTraffic::default(),
                },
            );
            return;
        }
        // Unreadable result: fall through and recompute it — the
        // checkpoint makes that cheap and the determinism contract makes
        // it bit-identical.
    }
    let ck = match shared.journal.checkpointer(id) {
        Ok(ck) => ck,
        Err(e) => {
            finish(
                shared,
                raw,
                &Response::Rejected { reason: RejectReason::Damaged { what: e.to_string() } },
            );
            return;
        }
    };
    let resumed = ck.sweep_path().exists();
    broadcast(shared, raw, &Response::Event { id: raw, event: JobEvent::Started { resumed } });

    // Warnings raised while this job runs (all on this thread — the sweep
    // drives rounds from the calling thread) stream to its watchers.
    let (warn_tx, warn_rx) = mpsc::channel::<String>();
    let result = thread::scope(|scope| {
        scope.spawn(|| {
            for line in warn_rx {
                broadcast(
                    shared,
                    raw,
                    &Response::Event { id: raw, event: JobEvent::Warning { line } },
                );
            }
        });
        let _sink = warn::route_to(warn_tx);
        let runner = SweepRunner::new(spec.matrix, spec.config);
        let mut observe = |ev: &SweepEvent| {
            broadcast(shared, raw, &Response::Event { id: raw, event: wire_event(ev) });
        };
        runner.run_session(SweepSession {
            evaluator: Some(&shared.proto),
            checkpointer: Some(&ck),
            // Always resume: with no checkpoint this degrades to a cold
            // run, so cold-start and crash-restart are one code path.
            resume: true,
            observer: Some(&mut observe),
        })
        // `_sink` drops here, closing the channel and ending the
        // forwarder before the scope joins it.
    });

    let records: Vec<_> = result.scenarios.iter().map(|s| s.record()).collect();
    if let Err(e) = shared.journal.record_result(id, &records) {
        broadcast(
            shared,
            raw,
            &Response::Event {
                id: raw,
                event: JobEvent::Warning {
                    line: format!("warning: could not journal the result of {id}: {e}"),
                },
            },
        );
    }
    finish(
        shared,
        raw,
        &Response::Done {
            id: raw,
            scenarios: records,
            cache: result.total_cache.into(),
            staged: result.total_staged.into(),
        },
    );
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// Serves one connection until it closes, times out, or sends a damaged
/// frame (answered with a typed reject, then closed).
fn handle_conn(shared: &Shared, mut conn: Conn, read_timeout: Option<Duration>) {
    let _ = conn.set_read_timeout(read_timeout);
    loop {
        let req = match read_frame::<Request>(&mut conn) {
            Ok(req) => req,
            Err(FrameError::Closed | FrameError::TimedOut) => return,
            Err(e) => {
                // Best-effort typed reject; the connection is unusable
                // afterwards (framing is lost), so close it either way.
                let _ = write_frame(
                    &mut conn,
                    &Response::Rejected { reason: RejectReason::BadFrame { what: e.to_string() } },
                );
                return;
            }
        };
        let keep_going = match req {
            Request::Ping => write_frame(&mut conn, &Response::Pong).is_ok(),
            Request::Submit { spec, watch } => handle_submit(shared, &mut conn, spec, watch),
            Request::Watch { id } => handle_watch(shared, &mut conn, id),
            Request::Status { id } => {
                let resp = match phase_of(shared, JobId(id)) {
                    Some(phase) => Response::JobStatus { id, phase },
                    None => Response::Rejected { reason: RejectReason::UnknownJob { id } },
                };
                write_frame(&mut conn, &resp).is_ok()
            }
            Request::List => {
                let resp = match list_jobs(shared) {
                    Ok(jobs) => Response::Jobs { jobs },
                    Err(e) => {
                        Response::Rejected { reason: RejectReason::Damaged { what: e.to_string() } }
                    }
                };
                write_frame(&mut conn, &resp).is_ok()
            }
            Request::Shutdown => {
                drain(shared);
                let _ = write_frame(&mut conn, &Response::ShuttingDown);
                std::process::exit(0);
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Structural validation run before a spec is journaled.
fn validate_spec(spec: &JobSpec) -> Result<(), String> {
    if spec.matrix.budgets.is_empty() {
        return Err("matrix has no budget levels".to_string());
    }
    if spec.matrix.objectives.is_empty() {
        return Err("matrix has no objectives".to_string());
    }
    if spec.matrix.domains.is_empty() {
        return Err("matrix has no workload domains".to_string());
    }
    if spec.config.trials == 0 {
        return Err("sweep config has a zero trial budget".to_string());
    }
    Ok(())
}

/// Admits, journals, and queues a submission; returns `false` when the
/// connection should close.
fn handle_submit(shared: &Shared, conn: &mut Conn, spec: JobSpec, watch: bool) -> bool {
    if let Err(what) = validate_spec(&spec) {
        return write_frame(conn, &Response::Rejected { reason: RejectReason::BadSpec { what } })
            .is_ok();
    }
    // Admission, journaling and queue insertion are one critical section:
    // ids are handed out in queue order and capacity is never oversubscribed.
    let admitted = {
        let mut sched = shared.sched.lock().expect("sched lock");
        if sched.shutdown {
            Err(RejectReason::ShuttingDown)
        } else if sched.queue.len() >= shared.queue_capacity {
            Err(RejectReason::QueueFull { capacity: shared.queue_capacity })
        } else {
            match shared.journal.create(&spec) {
                Ok(id) => {
                    let position = sched.queue.len();
                    // Subscribe before enqueueing so no event is missed.
                    let rx = watch.then(|| register_watcher(shared, id.0));
                    sched.queue.push_back(id);
                    shared.work_ready.notify_one();
                    Ok((id.0, position, rx))
                }
                Err(e) => {
                    Err(RejectReason::Damaged { what: format!("could not journal the spec: {e}") })
                }
            }
        }
    };
    match admitted {
        Err(reason) => write_frame(conn, &Response::Rejected { reason }).is_ok(),
        Ok((id, position, rx)) => {
            broadcast(shared, id, &Response::Event { id, event: JobEvent::Queued { position } });
            if write_frame(conn, &Response::Accepted { id, position }).is_err() {
                return false;
            }
            match rx {
                None => true,
                Some(rx) => stream_until_done(conn, &rx),
            }
        }
    }
}

/// Attaches `conn` to `id`'s event stream (finished jobs get an immediate
/// journal-replayed `Done`).
fn handle_watch(shared: &Shared, conn: &mut Conn, id: u64) -> bool {
    if !shared.journal.job_dir(JobId(id)).is_dir() {
        return write_frame(conn, &Response::Rejected { reason: RejectReason::UnknownJob { id } })
            .is_ok();
    }
    // Subscribe first, then check for a stored result: a job finishing in
    // between delivers through the subscription, never into a gap.
    let rx = register_watcher(shared, id);
    if shared.journal.has_result(JobId(id)) {
        // The subscription was only a race guard; a job with a stored
        // result answers from the journal and will never broadcast again,
        // so drop a fanout entry we created for nothing. (A non-empty
        // backlog means the job is *just now* finishing — its terminal
        // broadcast still needs the entry; it is removed there instead.)
        drop(rx);
        let mut watchers = shared.watchers.lock().expect("watchers lock");
        if watchers.get(&id).is_some_and(|f| f.backlog.is_empty()) {
            watchers.remove(&id);
        }
        drop(watchers);
        let resp = match shared.journal.load_result(JobId(id)) {
            Ok(scenarios) => Response::Done {
                id,
                scenarios,
                cache: crate::protocol::Traffic::default(),
                staged: crate::protocol::StagedTraffic::default(),
            },
            Err(what) => Response::Rejected { reason: RejectReason::Damaged { what } },
        };
        return write_frame(conn, &resp).is_ok();
    }
    stream_until_done(conn, &rx)
}

/// Forwards events to the client until the job's terminal response; `true`
/// keeps the connection open for further requests.
fn stream_until_done(conn: &mut Conn, rx: &mpsc::Receiver<Response>) -> bool {
    for resp in rx {
        let terminal = matches!(resp, Response::Done { .. } | Response::Rejected { .. });
        if write_frame(conn, &resp).is_err() {
            return false;
        }
        if terminal {
            return true;
        }
    }
    // The channel closed without a terminal response (server tearing
    // down); nothing more will come, so close.
    false
}

/// Where `id` currently is, or `None` if no such job.
fn phase_of(shared: &Shared, id: JobId) -> Option<JobPhase> {
    if !shared.journal.job_dir(id).is_dir() {
        return None;
    }
    // Queue membership first: a queued job also has a readable spec.
    {
        let sched = shared.sched.lock().expect("sched lock");
        if let Some(position) = sched.queue.iter().position(|&q| q == id) {
            return Some(JobPhase::Queued { position });
        }
    }
    if shared.journal.has_result(id) {
        return Some(JobPhase::Done);
    }
    match shared.journal.load_spec(id) {
        Ok(_) => Some(JobPhase::Running),
        Err(what) => Some(JobPhase::Damaged { what }),
    }
}

/// Every journaled job with its current phase, id-ascending.
fn list_jobs(shared: &Shared) -> io::Result<Vec<(u64, JobPhase)>> {
    let entries = shared.journal.jobs()?;
    let sched = shared.sched.lock().expect("sched lock");
    Ok(entries
        .into_iter()
        .map(|JobEntry { id, state }| {
            let phase = match state {
                JobState::Done => JobPhase::Done,
                JobState::Damaged(what) => JobPhase::Damaged { what },
                JobState::Pending => match sched.queue.iter().position(|&q| q == id) {
                    Some(position) => JobPhase::Queued { position },
                    None => JobPhase::Running,
                },
            };
            (id.0, phase)
        })
        .collect())
}

/// Stops admissions and blocks until the queue and the workers drain.
fn drain(shared: &Shared) {
    let mut sched = shared.sched.lock().expect("sched lock");
    sched.shutdown = true;
    shared.work_ready.notify_all();
    while sched.running > 0 || !sched.queue.is_empty() {
        sched = shared.idle.wait(sched).expect("sched lock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_core::{BudgetLevel, Fidelity, OptimizerKind, ScenarioMatrix, SweepConfig};
    use fast_models::WorkloadDomain;

    fn spec(trials: usize) -> JobSpec {
        JobSpec {
            name: "t".to_string(),
            matrix: ScenarioMatrix {
                budgets: vec![BudgetLevel::scaled(1.0)],
                objectives: vec![Objective::Qps],
                domains: vec![WorkloadDomain::by_name("EfficientNet-B0").expect("registry")],
            },
            config: SweepConfig {
                trials,
                optimizer: OptimizerKind::Random,
                seed: 1,
                batch: 4,
                seeds: Vec::new(),
                fidelity: Fidelity::Exact,
            },
        }
    }

    #[test]
    fn empty_axes_and_zero_trials_are_bad_specs() {
        assert!(validate_spec(&spec(8)).is_ok());
        let mut s = spec(8);
        s.matrix.domains.clear();
        assert!(validate_spec(&s).is_err());
        let mut s = spec(8);
        s.matrix.budgets.clear();
        assert!(validate_spec(&s).is_err());
        let mut s = spec(8);
        s.matrix.objectives.clear();
        assert!(validate_spec(&s).is_err());
        assert!(validate_spec(&spec(0)).is_err());
    }

    #[test]
    fn broadcast_prunes_hung_up_watchers() {
        let dir = std::env::temp_dir().join(format!("fast-serve-bc-{}", std::process::id()));
        let shared = Shared {
            journal: JobJournal::open(&dir).expect("journal"),
            proto: Evaluator::new(Vec::new(), Objective::Qps, Budget::paper_default()),
            sched: Mutex::new(Sched { queue: VecDeque::new(), running: 0, shutdown: false }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            watchers: Mutex::new(HashMap::new()),
            queue_capacity: 1,
        };
        let rx_live = register_watcher(&shared, 7);
        drop(register_watcher(&shared, 7)); // hung up immediately
        broadcast(&shared, 7, &Response::Pong);
        assert_eq!(rx_live.try_recv().expect("live watcher got it"), Response::Pong);
        assert_eq!(shared.watchers.lock().expect("lock")[&7].subs.len(), 1, "dead watcher pruned");

        // A watcher attaching *after* the broadcast replays the backlog —
        // the lossless-late-attach guarantee resumed jobs depend on.
        let rx_late = register_watcher(&shared, 7);
        assert_eq!(rx_late.try_recv().expect("backlog replayed"), Response::Pong);

        finish(&shared, 7, &Response::ShuttingDown);
        assert_eq!(rx_late.try_recv().expect("terminal delivered"), Response::ShuttingDown);
        assert!(
            shared.watchers.lock().expect("lock").get(&7).is_none(),
            "entry (subs + backlog) dropped at the terminal response"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
