//! The full FAST search space: Table 3's datapath dimensions plus the
//! compiler/scheduling knobs (two-pass softmax, §5.6).
//!
//! The scheduling mapspace itself is explored *inside* the simulator (the
//! mapper tries the constrained set of known-good schemes per op — §5.3),
//! and FAST fusion adds its own `2^(3n)` placement space solved by ILP, so
//! the black-box optimizer only proposes the dimensions below. The combined
//! space size (datapath × schedule × fusion) is what the paper's O(10^2300)
//! headline counts; see [`combined_search_space_log10`].

use fast_arch::{BufferSharing, DatapathConfig, L2Config, MemoryTech};
use fast_search::{ParamDomain, ParamSpace};
use fast_sim::{PaddingMode, SimOptions, SoftmaxMode};
use serde::{Deserialize, Serialize};

/// Dimension indices of the encoded search space, in Table-3 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceDims {
    /// `PEs_x_dim`.
    pub pes_x: usize,
    /// `PEs_y_dim`.
    pub pes_y: usize,
    /// `Systolic_array_x`.
    pub sa_x: usize,
    /// `Systolic_array_y`.
    pub sa_y: usize,
    /// `Vector_unit_multiplier`.
    pub vector_multiplier: usize,
    /// `L1_buffer_config`.
    pub l1_config: usize,
    /// `L1_input_buffer_size`.
    pub l1_input: usize,
    /// `L1_weight_buffer_size`.
    pub l1_weight: usize,
    /// `L1_output_buffer_size`.
    pub l1_output: usize,
    /// `L2_buffer_config`.
    pub l2_config: usize,
    /// `L2_input_buffer_multiplier`.
    pub l2_input_mult: usize,
    /// `L2_weight_buffer_multiplier`.
    pub l2_weight_mult: usize,
    /// `L2_output_buffer_multiplier`.
    pub l2_output_mult: usize,
    /// `L3_global_buffer_size`.
    pub global_memory: usize,
    /// `GDDR6_channels`.
    pub dram_channels: usize,
    /// `Native_batch_size`.
    pub native_batch: usize,
    /// Two-pass-softmax flag (§5.6).
    pub two_pass_softmax: usize,
}

/// The encoded FAST search space.
#[derive(Debug, Clone)]
pub struct FastSpace {
    space: ParamSpace,
    dims: SpaceDims,
}

impl FastSpace {
    /// Builds the Table-3 search space (plus the softmax knob).
    #[must_use]
    pub fn table3() -> Self {
        let mut s = ParamSpace::new();
        let dims = SpaceDims {
            pes_x: s.add("PEs_x_dim", ParamDomain::Pow2 { min: 1, max: 256 }),
            pes_y: s.add("PEs_y_dim", ParamDomain::Pow2 { min: 1, max: 256 }),
            sa_x: s.add("Systolic_array_x", ParamDomain::Pow2 { min: 1, max: 256 }),
            sa_y: s.add("Systolic_array_y", ParamDomain::Pow2 { min: 1, max: 256 }),
            vector_multiplier: s
                .add("Vector_unit_multiplier", ParamDomain::Pow2 { min: 1, max: 16 }),
            l1_config: s.add("L1_buffer_config", ParamDomain::Categorical { n: 2 }),
            l1_input: s.add("L1_input_buffer_size", ParamDomain::Pow2 { min: 1, max: 1024 }),
            l1_weight: s.add("L1_weight_buffer_size", ParamDomain::Pow2 { min: 1, max: 1024 }),
            l1_output: s.add("L1_output_buffer_size", ParamDomain::Pow2 { min: 1, max: 1024 }),
            l2_config: s.add("L2_buffer_config", ParamDomain::Categorical { n: 3 }),
            l2_input_mult: s
                .add("L2_input_buffer_multiplier", ParamDomain::Pow2 { min: 1, max: 128 }),
            l2_weight_mult: s
                .add("L2_weight_buffer_multiplier", ParamDomain::Pow2 { min: 1, max: 128 }),
            l2_output_mult: s
                .add("L2_output_buffer_multiplier", ParamDomain::Pow2 { min: 1, max: 128 }),
            global_memory: s
                .add("L3_global_buffer_size", ParamDomain::Pow2OrZero { min: 1, max: 256 }),
            dram_channels: s.add("GDDR6_channels", ParamDomain::Pow2 { min: 1, max: 8 }),
            native_batch: s.add("Native_batch_size", ParamDomain::Pow2 { min: 1, max: 256 }),
            two_pass_softmax: s.add("Two_pass_softmax", ParamDomain::Bool),
        };
        FastSpace { space: s, dims }
    }

    /// The underlying parameter space (for optimizers).
    #[must_use]
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Dimension indices.
    #[must_use]
    pub fn dims(&self) -> &SpaceDims {
        &self.dims
    }

    /// Decodes a point into a datapath config and simulation options.
    ///
    /// Searched designs are single-core at 1 GHz over GDDR6, matching the
    /// FAST-Large/-Small presets.
    #[must_use]
    pub fn decode(&self, point: &[usize]) -> (DatapathConfig, SimOptions) {
        let v = |d: usize| self.space.value(point, d);
        let d = &self.dims;
        let cfg = DatapathConfig {
            pes_x: v(d.pes_x),
            pes_y: v(d.pes_y),
            sa_x: v(d.sa_x),
            sa_y: v(d.sa_y),
            vector_multiplier: v(d.vector_multiplier),
            l1_config: if v(d.l1_config) == 0 {
                BufferSharing::Private
            } else {
                BufferSharing::Shared
            },
            l1_input_kib: v(d.l1_input),
            l1_weight_kib: v(d.l1_weight),
            l1_output_kib: v(d.l1_output),
            l2_config: match v(d.l2_config) {
                0 => L2Config::Disabled,
                1 => L2Config::Private,
                _ => L2Config::Shared,
            },
            l2_input_mult: v(d.l2_input_mult),
            l2_weight_mult: v(d.l2_weight_mult),
            l2_output_mult: v(d.l2_output_mult),
            global_memory_mib: v(d.global_memory),
            dram_channels: v(d.dram_channels),
            memory: MemoryTech::Gddr6,
            native_batch: v(d.native_batch),
            clock_ghz: 1.0,
            cores: 1,
        };
        let sim = SimOptions {
            padding: PaddingMode::Pad,
            softmax: if v(d.two_pass_softmax) == 1 {
                SoftmaxMode::TwoPass
            } else {
                SoftmaxMode::ThreePass
            },
            dataflows: fast_sim::mapper::DataflowSet::All,
            schedule_quality: fast_sim::engine::ScheduleQuality::Searched,
        };
        (cfg, sim)
    }

    /// Encodes a config back into a point (inverse of [`FastSpace::decode`]),
    /// used to seed searches with known designs.
    ///
    /// # Panics
    /// Panics if the config contains values outside the Table-3 ranges.
    #[must_use]
    pub fn encode(&self, cfg: &DatapathConfig, sim: &SimOptions) -> Vec<usize> {
        let mut point = vec![0usize; self.space.len()];
        let d = &self.dims;
        let pow2_index = |dim: usize, value: u64, min: u64| {
            let idx = (value.trailing_zeros() - min.trailing_zeros()) as usize;
            assert!(idx < self.space.cardinality(dim), "value {value} outside domain of dim {dim}");
            idx
        };
        point[d.pes_x] = pow2_index(d.pes_x, cfg.pes_x, 1);
        point[d.pes_y] = pow2_index(d.pes_y, cfg.pes_y, 1);
        point[d.sa_x] = pow2_index(d.sa_x, cfg.sa_x, 1);
        point[d.sa_y] = pow2_index(d.sa_y, cfg.sa_y, 1);
        point[d.vector_multiplier] = pow2_index(d.vector_multiplier, cfg.vector_multiplier, 1);
        point[d.l1_config] = usize::from(matches!(cfg.l1_config, BufferSharing::Shared));
        point[d.l1_input] = pow2_index(d.l1_input, cfg.l1_input_kib, 1);
        point[d.l1_weight] = pow2_index(d.l1_weight, cfg.l1_weight_kib, 1);
        point[d.l1_output] = pow2_index(d.l1_output, cfg.l1_output_kib, 1);
        point[d.l2_config] = match cfg.l2_config {
            L2Config::Disabled => 0,
            L2Config::Private => 1,
            L2Config::Shared => 2,
        };
        point[d.l2_input_mult] = pow2_index(d.l2_input_mult, cfg.l2_input_mult, 1);
        point[d.l2_weight_mult] = pow2_index(d.l2_weight_mult, cfg.l2_weight_mult, 1);
        point[d.l2_output_mult] = pow2_index(d.l2_output_mult, cfg.l2_output_mult, 1);
        point[d.global_memory] = if cfg.global_memory_mib == 0 {
            0
        } else {
            pow2_index(d.global_memory, cfg.global_memory_mib, 1) + 1
        };
        point[d.dram_channels] = pow2_index(d.dram_channels, cfg.dram_channels, 1);
        point[d.native_batch] = pow2_index(d.native_batch, cfg.native_batch, 1);
        point[d.two_pass_softmax] = usize::from(matches!(sim.softmax, SoftmaxMode::TwoPass));
        point
    }
}

/// log10 of the combined FAST search space — datapath (Table 3) × per-layer
/// schedule mapspaces × fusion placements — the paper's O(10^2300) estimate
/// for a ResNet-50-scale model (§5.3).
#[must_use]
pub fn combined_search_space_log10(
    datapath_log10: f64,
    n_matrix_ops: usize,
    mapspace_log10_per_op: f64,
    n_fusion_regions: usize,
) -> f64 {
    let schedule = n_matrix_ops as f64 * mapspace_log10_per_op;
    let fusion = 3.0 * n_fusion_regions as f64 * 2f64.log10();
    datapath_log10 + schedule + fusion
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_arch::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn datapath_space_is_about_1e13() {
        let s = FastSpace::table3();
        // 17 dims including the softmax bool: Table 3's 1e13 × 2.
        let log = s.space().log10_size();
        assert!((13.0..14.0).contains(&log), "{log}");
    }

    #[test]
    fn decode_produces_valid_configs() {
        let s = FastSpace::table3();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let p = s.space().sample(&mut rng);
            let (cfg, _sim) = s.decode(&p);
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn encode_decode_roundtrip_for_presets() {
        let s = FastSpace::table3();
        for cfg in [presets::fast_large(), presets::fast_small()] {
            let sim = SimOptions::default();
            let point = s.encode(&cfg, &sim);
            let (decoded, dsim) = s.decode(&point);
            assert_eq!(decoded, cfg);
            assert_eq!(dsim.softmax, sim.softmax);
        }
    }

    #[test]
    fn combined_space_matches_paper_order() {
        // ResNet-50-scale: ~53 conv layers with ~1e38-per-op unconstrained
        // mapspaces (1e2000 aggregate) plus the 1e13 datapath and 2^(3·60)
        // fusion placements — the paper rounds the product down to 1e2300.
        let log = combined_search_space_log10(13.0, 53, 38.0, 60);
        assert!(log > 2000.0, "{log}");
        assert!(log < 2400.0, "{log}");
    }
}
