//! Component breakdown (Figure 15), the FAST-Large ablation (Table 6), and
//! frontier-quality metrics (hypervolume, rank correlations) used to compare
//! screened sweeps against exact ones.

use crate::evaluate::{EvalError, Evaluator, Objective};
use fast_arch::{presets, Budget, DatapathConfig};
use fast_fusion::FusionOptions;
use fast_models::{EfficientNet, Workload};
use fast_search::FrontierPoint;
// Rank-correlation utilities (surrogate-vs-true agreement in fidelity
// reports) — re-exported here so analysis code has one import site.
pub use fast_search::{kendall_tau, spearman_rank};
use fast_sim::{mapper::DataflowSet, SimOptions};
use serde::{Deserialize, Serialize};

/// A single-core TPU-v3 (Figure 15 compares one TPU core against a halved
/// FAST-Large design).
#[must_use]
pub fn tpu_v3_single_core() -> DatapathConfig {
    let mut c = presets::tpu_v3();
    c.cores = 1;
    c.dram_channels = 1; // one HBM2 stack: 450 GB/s
    c
}

/// A halved FAST-Large: 32 PEs; the memory system keeps its full 448 GB/s,
/// matching the single TPU-v3 core's ~450 GB/s (Figure 15 compares one TPU
/// core against this half design).
#[must_use]
pub fn fast_large_half() -> DatapathConfig {
    let mut c = presets::fast_large();
    c.pes_x = 8;
    c.pes_y = 4;
    c
}

/// One Figure-15 row: cumulative speedups over the single-core TPU-v3
/// baseline as FAST's components are added.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Workload.
    pub workload: Workload,
    /// Baseline step time (seconds).
    pub baseline_seconds: f64,
    /// + FAST scheduling (Timeloop mappings on the TPU datapath).
    pub scheduling_speedup: f64,
    /// + datapath (32×32 arrays, 128 MiB GM), fusion still off.
    pub datapath_speedup: f64,
    /// + FAST fusion (the full stack).
    pub fusion_speedup: f64,
}

/// Computes the Figure-15 component breakdown for `workloads`.
///
/// Components are additive in the paper's sense: each bar includes all
/// previous ones.
///
/// # Errors
/// Propagates evaluation failures.
pub fn component_breakdown(workloads: &[Workload]) -> Result<Vec<BreakdownRow>, EvalError> {
    let budget = Budget::paper_default();
    let tpu1 = tpu_v3_single_core();
    let half = fast_large_half();
    let no_fusion = FusionOptions::disabled();

    let mut rows = Vec::new();
    for &w in workloads {
        let ev = |cfg: &DatapathConfig, sim: &SimOptions, fusion: &FusionOptions| {
            let e = Evaluator::new(vec![w], Objective::Qps, budget).with_fusion(fusion.clone());
            e.evaluate(cfg, sim).map(|d| d.workloads[0].qps)
        };
        // Baseline: stock TPU stack, fusion disabled (GM used only as the
        // staging buffer the baseline compiler already uses).
        let mut tpu_nogm = tpu1;
        tpu_nogm.global_memory_mib = tpu1.global_memory_mib;
        let baseline = ev(&tpu_nogm, &SimOptions::tpu_baseline(), &no_fusion)?;
        // + scheduling: FAST mappings (all dataflows, searched quality) on
        // the unchanged TPU datapath.
        let sched_sim = SimOptions {
            dataflows: DataflowSet::All,
            schedule_quality: fast_sim::engine::ScheduleQuality::Searched,
            ..SimOptions::tpu_baseline()
        };
        let sched = ev(&tpu1, &sched_sim, &no_fusion)?;
        // + datapath: halved FAST-Large, still no FAST fusion. Without
        // fusion the design keeps the baseline's large batch (batch 8 is
        // only optimal once fusion shrinks working sets — §4.1).
        let mut half_b64 = half;
        half_b64.native_batch = tpu1.native_batch;
        let datapath = ev(&half_b64, &SimOptions::default(), &no_fusion)?;
        // + fusion: the full stack.
        let fusion = ev(&half, &SimOptions::default(), &FusionOptions::heuristic_only())?;

        rows.push(BreakdownRow {
            workload: w,
            baseline_seconds: 1.0 / baseline,
            scheduling_speedup: sched / baseline,
            datapath_speedup: datapath / baseline,
            fusion_speedup: fusion / baseline,
        });
    }
    Ok(rows)
}

/// One Table-6 ablation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Per-workload `(Perf/TDP vs TPU-v3, relative to unmodified FAST-Large)`.
    pub per_workload: Vec<(Workload, f64, f64)>,
}

/// The Table-6 workloads.
#[must_use]
pub fn ablation_workloads() -> Vec<Workload> {
    vec![
        Workload::EfficientNet(EfficientNet::B7),
        Workload::ResNet50,
        Workload::Bert { seq_len: 1024 },
    ]
}

/// Builds the Table-6 ablation variants: FAST-Large with one component at a
/// time reverted to its TPU-v3 value.
#[must_use]
pub fn ablation_variants() -> Vec<(String, DatapathConfig, SimOptions, FusionOptions)> {
    let base = presets::fast_large();
    let sim = SimOptions::default();
    let fusion = FusionOptions::heuristic_only();
    let no_fusion = FusionOptions::disabled();

    let mut with_16mb = base;
    with_16mb.global_memory_mib = 16;

    // Revert to 128×128 arrays at constant peak FLOPS (4 PEs), with the
    // TPU-sized L1 such a tile needs.
    let mut big_arrays = base;
    big_arrays.sa_x = 128;
    big_arrays.sa_y = 128;
    big_arrays.pes_x = 2;
    big_arrays.pes_y = 2;
    big_arrays.l1_input_kib = 64;
    big_arrays.l1_weight_kib = 32;
    big_arrays.l1_output_kib = 32;

    let mut big_l1 = base;
    big_l1.l1_input_kib = 16;
    big_l1.l1_weight_kib = 8;
    big_l1.l1_output_kib = 8;

    vec![
        ("FAST-Large".to_string(), base, sim, fusion.clone()),
        ("With 16MB Global Mem".to_string(), with_16mb, sim, fusion.clone()),
        ("Without FAST Fusion".to_string(), base, sim, no_fusion),
        ("With 128x128 systolic arrays".to_string(), big_arrays, sim, fusion.clone()),
        ("With 32KB L1 scratchpads".to_string(), big_l1, sim, fusion),
    ]
}

/// Runs the Table-6 ablation.
///
/// # Errors
/// Propagates evaluation failures.
pub fn ablation_study() -> Result<Vec<AblationRow>, EvalError> {
    let budget = Budget::paper_default();
    let workloads = ablation_workloads();
    let tpu = presets::tpu_v3();

    // Per-workload TPU-v3 reference Perf/TDP (stock stack: no FAST fusion).
    let mut tpu_ppt = Vec::new();
    for &w in &workloads {
        let e = Evaluator::new(vec![w], Objective::PerfPerTdp, budget)
            .with_fusion(FusionOptions::disabled());
        let d = e.evaluate(&tpu, &SimOptions::tpu_baseline())?;
        tpu_ppt.push(d.geomean_qps / d.tdp_w);
    }

    let mut rows = Vec::new();
    let mut baseline_ppt: Vec<f64> = Vec::new();
    for (label, cfg, sim, fusion) in ablation_variants() {
        let mut per_workload = Vec::new();
        for (k, &w) in workloads.iter().enumerate() {
            let e =
                Evaluator::new(vec![w], Objective::PerfPerTdp, budget).with_fusion(fusion.clone());
            let d = e.evaluate(&cfg, &sim)?;
            let ppt = d.geomean_qps / d.tdp_w;
            let vs_tpu = ppt / tpu_ppt[k];
            let vs_base = if rows.is_empty() {
                baseline_ppt.push(ppt);
                1.0
            } else {
                ppt / baseline_ppt[k]
            };
            per_workload.push((w, vs_tpu, vs_base));
        }
        rows.push(AblationRow { label, per_workload });
    }
    Ok(rows)
}

/// Hypervolume (in maximize space) of a 3-D point set against a reference
/// point: the volume of the union of boxes `[reference, p]` over all points
/// `p` that strictly improve on `reference` in every dimension.
///
/// Exact sweep-line computation: points are processed in descending first
/// coordinate; each slab's contribution is its width times the 2-D staircase
/// hypervolume of the points seen so far. `O(n² log n)`, plenty for frontier
/// sizes (tens of points).
#[must_use]
pub fn hypervolume_3d(points: &[[f64; 3]], reference: [f64; 3]) -> f64 {
    let mut pts: Vec<[f64; 3]> =
        points.iter().copied().filter(|p| p.iter().zip(&reference).all(|(a, r)| a > r)).collect();
    if pts.is_empty() {
        return 0.0;
    }
    pts.sort_by(|a, b| b[0].total_cmp(&a[0]).then(b[1].total_cmp(&a[1])));
    let mut volume = 0.0;
    for i in 0..pts.len() {
        // Slab between this point's first coordinate and the next one's
        // (the reference plane for the last): within it, exactly the first
        // i+1 points are "alive" in the remaining two dimensions.
        let width = pts[i][0] - if i + 1 < pts.len() { pts[i + 1][0] } else { reference[0] };
        if width <= 0.0 {
            continue;
        }
        // 2-D staircase hypervolume of the alive points' (y, z) projections.
        let mut proj: Vec<[f64; 2]> = pts[..=i].iter().map(|p| [p[1], p[2]]).collect();
        proj.sort_by(|a, b| b[0].total_cmp(&a[0]));
        let mut area = 0.0;
        let mut z_best = reference[2];
        for q in proj {
            if q[1] > z_best {
                area += (q[0] - reference[1]) * (q[1] - z_best);
                z_best = q[1];
            }
        }
        volume += width * area;
    }
    volume
}

/// Hypervolume of a sweep frontier (objective ↑, TDP ↓, area ↓ — the
/// [`crate::SweepRunner`] metric order) against a reference design
/// `(objective, tdp_w, area_mm2)`. Minimized metrics are negated into
/// maximize space, so the reference should be a *pessimistic* design:
/// objective at or below every frontier point's, TDP/area at or above.
///
/// This is the scalar the surrogate smoke test compares between screened
/// and exact sweeps: matched frontier quality means matched hypervolume.
#[must_use]
pub fn frontier_hypervolume(frontier: &[FrontierPoint], reference: [f64; 3]) -> f64 {
    let points: Vec<[f64; 3]> = frontier
        .iter()
        .filter(|fp| fp.metrics.len() == 3)
        .map(|fp| [fp.metrics[0], -fp.metrics[1], -fp.metrics[2]])
        .collect();
    hypervolume_3d(&points, [reference[0], -reference[1], -reference[2]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypervolume_of_hand_checked_boxes() {
        let reference = [0.0, 0.0, 0.0];
        // One unit cube.
        assert!((hypervolume_3d(&[[1.0, 1.0, 1.0]], reference) - 1.0).abs() < 1e-12);
        // Two overlapping boxes: 2·1·1 ∪ 1·2·2 = 2 + 4 − 1 = 5.
        let hv = hypervolume_3d(&[[2.0, 1.0, 1.0], [1.0, 2.0, 2.0]], reference);
        assert!((hv - 5.0).abs() < 1e-12, "{hv}");
        // A dominated point adds nothing.
        let hv2 = hypervolume_3d(&[[2.0, 1.0, 1.0], [1.0, 2.0, 2.0], [0.5, 0.5, 0.5]], reference);
        assert!((hv2 - 5.0).abs() < 1e-12, "{hv2}");
        // Duplicates add nothing either.
        let hv3 = hypervolume_3d(&[[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]], reference);
        assert!((hv3 - 1.0).abs() < 1e-12, "{hv3}");
    }

    #[test]
    fn hypervolume_ignores_points_outside_the_reference() {
        let hv = hypervolume_3d(&[[1.0, 1.0, -0.5], [0.0, 1.0, 1.0]], [0.0, 0.0, 0.0]);
        assert_eq!(hv, 0.0);
        assert_eq!(hypervolume_3d(&[], [0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn hypervolume_is_monotone_in_the_point_set() {
        let reference = [0.0, 0.0, 0.0];
        let a = vec![[3.0, 1.0, 2.0], [1.0, 4.0, 1.0]];
        let base = hypervolume_3d(&a, reference);
        let mut more = a.clone();
        more.push([2.0, 2.0, 2.0]);
        assert!(hypervolume_3d(&more, reference) >= base);
    }

    #[test]
    fn frontier_hypervolume_maps_minimized_metrics() {
        // Sweep metrics: objective ↑, TDP ↓, area ↓. A point with objective
        // 2, TDP 3, area 4 against reference (1, 5, 6) spans
        // (2−1)·(5−3)·(6−4) = 4.
        let frontier = vec![FrontierPoint { point: vec![0], metrics: vec![2.0, 3.0, 4.0] }];
        let hv = frontier_hypervolume(&frontier, [1.0, 5.0, 6.0]);
        assert!((hv - 4.0).abs() < 1e-12, "{hv}");
        // A frontier point worse than the reference in any axis contributes
        // nothing.
        let worse = vec![FrontierPoint { point: vec![0], metrics: vec![0.5, 3.0, 4.0] }];
        assert_eq!(frontier_hypervolume(&worse, [1.0, 5.0, 6.0]), 0.0);
    }

    #[test]
    fn rank_correlations_are_reexported() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(spearman_rank(&xs, &ys), Some(1.0));
        assert_eq!(kendall_tau(&xs, &ys), Some(1.0));
    }

    #[test]
    fn breakdown_components_are_cumulative_for_b7() {
        let rows = component_breakdown(&[Workload::EfficientNet(EfficientNet::B7)]).unwrap();
        let r = &rows[0];
        assert!(r.scheduling_speedup > 1.0, "scheduling {}", r.scheduling_speedup);
        // The paper's Figure-15 message: datapath changes alone saturate on
        // the memory-bandwidth wall; fusion unlocks them.
        assert!(
            r.fusion_speedup > r.datapath_speedup,
            "fusion {} must add over datapath {}",
            r.fusion_speedup,
            r.datapath_speedup
        );
        assert!(
            r.fusion_speedup > r.scheduling_speedup,
            "fusion {} must add over scheduling {}",
            r.fusion_speedup,
            r.scheduling_speedup
        );
    }

    #[test]
    fn ablation_every_component_matters_for_b7() {
        let rows = ablation_study().unwrap();
        assert_eq!(rows.len(), 5);
        let base = &rows[0];
        assert!(base.per_workload[0].1 > 2.0, "FAST-Large vs TPU {}", base.per_workload[0].1);
        // Every ablated variant loses Perf/TDP on EfficientNet-B7 (Table 6).
        for row in &rows[1..] {
            let (_, _, rel) = row.per_workload[0];
            assert!(rel < 1.0, "{}: relative {rel}", row.label);
        }
    }
}
