//! A routable sink for degradation warnings.
//!
//! Durability code degrades rather than fails — a damaged cache snapshot or
//! sweep ledger becomes a cold start, never an error — and reports the
//! degradation as a warning. Historically those warnings went to stderr
//! unconditionally, which is right for a CLI but wrong for a server: a
//! `fast-serve` client should see *its* study's degradation warnings in its
//! own event stream, not buried in the daemon's log.
//!
//! [`route_to`] installs an [`mpsc::Sender`] as the warning sink for the
//! **current thread** until the returned guard drops; while installed, every
//! [`warning`]/[`note`] raised on that thread is sent there instead of
//! printed. The sink is thread-local on purpose: a server runs one job per
//! worker thread, and a job's warnings must not leak into another job's
//! stream. (All sweep-durability warnings — snapshot loads, ledger loads,
//! checkpoint writes — are raised on the thread driving the sweep, never on
//! rayon evaluation workers.)
//!
//! Uninstalled (the default everywhere outside a server), both functions
//! print to stderr exactly as before, so CLI behaviour is unchanged.
//!
//! ```
//! let ((), lines) = fast_core::warn::capture(|| {
//!     fast_core::warn::warning("snapshot ignored — checksum mismatch");
//! });
//! assert_eq!(lines, ["warning: snapshot ignored — checksum mismatch"]);
//! ```

use std::cell::RefCell;
use std::sync::mpsc;

thread_local! {
    /// Innermost-wins stack of installed sinks for this thread.
    static SINKS: RefCell<Vec<mpsc::Sender<String>>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls the sink installed by the matching [`route_to`] when dropped.
#[derive(Debug)]
pub struct SinkGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        SINKS.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Routes this thread's [`warning`]/[`note`] lines to `tx` until the
/// returned guard drops. Nested installs stack — the innermost sink wins —
/// so a scoped capture inside a routed job does not leak lines to the job's
/// client.
#[must_use]
pub fn route_to(tx: mpsc::Sender<String>) -> SinkGuard {
    SINKS.with(|s| s.borrow_mut().push(tx));
    SinkGuard { _not_send: std::marker::PhantomData }
}

/// Delivers one line: to the innermost installed sink, else to stderr. A
/// sink whose receiver hung up degrades to stderr rather than losing the
/// line.
fn deliver(line: String) {
    let routed = SINKS.with(|s| match s.borrow().last() {
        Some(tx) => tx.send(line.clone()).is_ok(),
        None => false,
    });
    if !routed {
        eprintln!("{line}");
    }
}

/// Emits a degradation warning (prefixed `warning: `) through the sink.
pub fn warning(msg: impl std::fmt::Display) {
    deliver(format!("warning: {msg}"));
}

/// Emits an informational line (e.g. resume progress) through the sink.
pub fn note(msg: impl std::fmt::Display) {
    deliver(msg.to_string());
}

/// Runs `f` with a capturing sink installed and returns its result plus
/// every line it emitted — the unit-test (and single-job) form of
/// [`route_to`].
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    let (tx, rx) = mpsc::channel();
    let guard = route_to(tx);
    let result = f();
    drop(guard);
    (result, rx.try_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_in_order_and_uninstalls() {
        let ((), lines) = capture(|| {
            warning("first");
            note("second");
        });
        assert_eq!(lines, ["warning: first", "second"]);
        // After the guard dropped, emitting again must not panic (it goes
        // to stderr) — the stack is empty.
        warning("outside any capture");
    }

    #[test]
    fn inner_capture_shadows_outer() {
        let ((), outer) = capture(|| {
            warning("outer-1");
            let ((), inner) = capture(|| warning("inner"));
            assert_eq!(inner, ["warning: inner"]);
            warning("outer-2");
        });
        assert_eq!(outer, ["warning: outer-1", "warning: outer-2"]);
    }

    #[test]
    fn sinks_are_per_thread() {
        let ((), lines) = capture(|| {
            std::thread::scope(|s| {
                // A warning on another thread does not reach this thread's
                // sink.
                s.spawn(|| warning("from another thread")).join().unwrap();
            });
            warning("from this thread");
        });
        assert_eq!(lines, ["warning: from this thread"]);
    }

    #[test]
    fn hung_up_receiver_degrades_to_stderr() {
        let (tx, rx) = mpsc::channel();
        drop(rx);
        let guard = route_to(tx);
        warning("receiver is gone"); // must not panic
        drop(guard);
    }
}
