//! Trial evaluation: the three-phase pipeline of Figure 1.
//!
//! For a candidate design the evaluator (1) validates the datapath and its
//! area/TDP against the budget (Eq. 4), (2) schedules every op of every
//! workload through the Timeloop-style mapper (rejecting on schedule
//! failures, Eq. 5), (3) runs the FAST-fusion ILP, and finally scores the
//! objective. Workload graphs are cached by `(workload, batch)` since the
//! model zoo is immutable across trials.

use crate::search_space::FastSpace;
use fast_arch::{cost, Budget, DatapathConfig};
use fast_fusion::{fuse_workload, FusionOptions, FusionResult};
use fast_models::Workload;
use fast_sim::{simulate, SimOptions, WorkloadPerf};
use serde::bin::{self, Decode, Encode, Reader, Writer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The optimization objective `f` (§5.2). Higher is better in all cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Inference throughput (queries/second), geomean across workloads.
    Qps,
    /// Throughput per watt of TDP — the paper's headline Perf/TDP metric
    /// (the Perf/TCO proxy).
    #[default]
    PerfPerTdp,
}

/// Why a trial was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The datapath violates a Table-3 range.
    InvalidConfig(String),
    /// Area or TDP exceeds the budget (Eq. 4).
    OverBudget {
        /// Normalized area (1.0 = at budget).
        area: f64,
        /// Normalized TDP (1.0 = at budget).
        tdp: f64,
    },
    /// A workload could not be scheduled (Eq. 5).
    ScheduleFailure(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidConfig(e) => write!(f, "invalid config: {e}"),
            EvalError::OverBudget { area, tdp } => {
                write!(f, "over budget: area {area:.2}, tdp {tdp:.2}")
            }
            EvalError::ScheduleFailure(e) => write!(f, "schedule failure: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Per-workload outcome of one design evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadEval {
    /// The workload.
    pub workload: Workload,
    /// Post-fusion step time (seconds) for one core's batch.
    pub step_seconds: f64,
    /// Chip throughput in queries/second.
    pub qps: f64,
    /// Compute utilization at the post-fusion step time.
    pub utilization: f64,
    /// Pre-fusion memory-stall fraction.
    pub prefusion_stall: f64,
    /// Post-fusion memory-stall fraction.
    pub postfusion_stall: f64,
    /// Pre-fusion operational intensity (FLOPs/DRAM byte).
    pub op_intensity_pre: f64,
    /// Post-fusion operational intensity.
    pub op_intensity_post: f64,
    /// Bytes of weights pinned by FAST fusion.
    pub pinned_weight_bytes: u64,
}

/// Complete evaluation of one design point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignEval {
    /// The evaluated datapath.
    pub config: DatapathConfig,
    /// Scheduling options used.
    pub sim: SimOptions,
    /// Per-workload results.
    pub workloads: Vec<WorkloadEval>,
    /// Power-virus TDP (watts).
    pub tdp_w: f64,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Geomean QPS across workloads.
    pub geomean_qps: f64,
    /// Objective value under the evaluator's objective.
    pub objective_value: f64,
}

/// Canonical cache identity of one `(workload, datapath, schedule, fusion)`
/// simulation — the unit of work [`Evaluator::evaluate`] repeats per trial.
///
/// [`DatapathConfig`] is float-bearing (`clock_ghz`), so it cannot derive
/// `Eq`/`Hash`; the key canonicalizes the clock through `f64::to_bits`.
/// Configs only reach the cache after `validate()` accepts them, which
/// excludes NaN clocks, so bitwise equality is exact equality here. Fusion
/// options are part of the key because `with_fusion` clones share one cache.
#[derive(Debug, Clone)]
struct SimKey {
    workload: Workload,
    config: DatapathConfig,
    sim: SimOptions,
    fusion: FusionOptions,
}

/// The fully canonicalized, hashable form of a [`DatapathConfig`]: every
/// field, floats as `to_bits`.
type ConfigKey = (
    (u64, u64, u64, u64, u64),
    (fast_arch::BufferSharing, u64, u64, u64),
    (fast_arch::L2Config, u64, u64, u64),
    (u64, u64, fast_arch::MemoryTech, u64),
    (u64, u64),
);

impl SimKey {
    /// The single source of truth for key identity: every [`DatapathConfig`]
    /// field, floats canonicalized through `to_bits`. The exhaustive
    /// destructuring (no `..`) makes adding a config field a compile error
    /// here, so the cache key can never silently ignore one; a new float
    /// field must be converted with `to_bits` to satisfy [`ConfigKey`]'s
    /// `Eq`/`Hash`.
    fn canonical(&self) -> (Workload, SimOptions, &FusionOptions, ConfigKey) {
        let DatapathConfig {
            pes_x,
            pes_y,
            sa_x,
            sa_y,
            vector_multiplier,
            l1_config,
            l1_input_kib,
            l1_weight_kib,
            l1_output_kib,
            l2_config,
            l2_input_mult,
            l2_weight_mult,
            l2_output_mult,
            global_memory_mib,
            dram_channels,
            memory,
            native_batch,
            clock_ghz,
            cores,
        } = self.config;
        (
            self.workload,
            self.sim,
            &self.fusion,
            (
                (pes_x, pes_y, sa_x, sa_y, vector_multiplier),
                (l1_config, l1_input_kib, l1_weight_kib, l1_output_kib),
                (l2_config, l2_input_mult, l2_weight_mult, l2_output_mult),
                (global_memory_mib, dram_channels, memory, native_batch),
                (clock_ghz.to_bits(), cores),
            ),
        )
    }
}

impl PartialEq for SimKey {
    fn eq(&self, other: &Self) -> bool {
        self.canonical() == other.canonical()
    }
}

impl Eq for SimKey {}

impl Hash for SimKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical().hash(state);
    }
}

/// Hit/miss counters of the evaluation cache (monotonic totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Evaluations answered from the cache.
    pub hits: u64,
    /// Evaluations that ran the simulator + fusion pipeline.
    pub misses: u64,
}

/// The per-workload evaluation cache shared by every clone of an
/// [`Evaluator`] (and thus by every thread of a parallel study).
///
/// Both successful evaluations and schedule failures are cached: a design
/// that failed to schedule once will fail identically forever, and repeated
/// proposals of near-duplicate points are common in swarm/TPE searches.
#[derive(Default)]
struct EvalCache {
    entries: Mutex<HashMap<SimKey, Arc<Result<WorkloadEval, EvalError>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

// Worker threads score trials through a shared `&Evaluator`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Evaluator>();
    assert_send_sync::<DesignEval>();
    assert_send_sync::<EvalError>();
};

/// The immutable workload-graph cache, keyed by `(workload, batch)`.
type GraphCache = Mutex<HashMap<(Workload, u64), Arc<fast_ir::Graph>>>;

/// Evaluates design points for a fixed workload set, objective and budget.
///
/// Clone-cheap: the graph and evaluation caches are shared behind `Arc`s, so
/// clones handed to worker threads by the parallel driver all feed one
/// memoization table.
#[derive(Clone)]
pub struct Evaluator {
    workloads: Vec<Workload>,
    objective: Objective,
    budget: Budget,
    fusion: FusionOptions,
    graphs: Arc<GraphCache>,
    cache: Arc<EvalCache>,
}

impl Evaluator {
    /// Creates an evaluator.
    #[must_use]
    pub fn new(workloads: Vec<Workload>, objective: Objective, budget: Budget) -> Self {
        Evaluator {
            workloads,
            objective,
            budget,
            fusion: FusionOptions::heuristic_only(),
            graphs: Arc::new(Mutex::new(HashMap::new())),
            cache: Arc::new(EvalCache::default()),
        }
    }

    /// Uses a custom fusion configuration (e.g. the exact ILP path for
    /// one-off reports). Safe to combine with a shared cache: fusion options
    /// are part of the cache key.
    ///
    /// **Determinism caveat:** the exact-ILP path (`exact_binary_limit > 0`)
    /// is bounded by a wall-clock `time_limit`, so its incumbent can depend
    /// on machine load. The default [`FusionOptions::heuristic_only`]
    /// pipeline is a pure function of its inputs; prefer it (or an
    /// effectively unlimited `time_limit` with a `max_nodes` bound, which is
    /// deterministic) whenever reproducibility across runs matters — e.g.
    /// under `run_fast_search_parallel`, whose sequential-equivalence
    /// guarantee assumes a deterministic evaluation pipeline. Within one
    /// run the cache is always self-consistent (first insert wins).
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionOptions) -> Self {
        self.fusion = fusion;
        self
    }

    /// A clone re-targeted at a different scenario — workload set, objective
    /// and budget — while *sharing* this evaluator's graph and evaluation
    /// caches.
    ///
    /// This is the scenario-sweep engine's re-scoring path: the cache is
    /// keyed per `(workload, datapath, schedule, fusion)` simulation, and
    /// budgets/objectives only enter scoring *after* the cached stage — so
    /// re-scoring a design under a second objective or a tighter budget is a
    /// cache hit, never a re-simulation, and a domain whose workloads were
    /// simulated under another domain reuses those simulations wholesale.
    #[must_use]
    pub fn for_scenario(
        &self,
        workloads: Vec<Workload>,
        objective: Objective,
        budget: Budget,
    ) -> Self {
        let mut e = self.clone();
        e.workloads = workloads;
        e.objective = objective;
        e.budget = budget;
        e
    }

    /// A clone sharing the (immutable) workload-graph cache but starting
    /// from an empty evaluation cache — for benchmarks and tests that must
    /// measure or observe uncached evaluation.
    #[must_use]
    pub fn fresh_eval_cache(&self) -> Self {
        let mut e = self.clone();
        e.cache = Arc::new(EvalCache::default());
        e
    }

    /// Evaluation-cache hit/miss totals since this cache was created.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache.hits.load(Ordering::Relaxed),
            misses: self.cache.misses.load(Ordering::Relaxed),
        }
    }

    /// The workload set.
    #[must_use]
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The budget in force.
    #[must_use]
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The objective in force.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    fn graph(&self, w: Workload, batch: u64) -> Arc<fast_ir::Graph> {
        let mut cache = self.graphs.lock().expect("graph cache poisoned");
        cache
            .entry((w, batch))
            .or_insert_with(|| Arc::new(w.build(batch).expect("in-tree workloads always build")))
            .clone()
    }

    /// Simulates one workload on a config (pre-fusion detail), without budget
    /// checks — used by report/breakdown code as well as `evaluate`.
    ///
    /// # Errors
    /// Propagates schedule failures.
    pub fn simulate_workload(
        &self,
        w: Workload,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<WorkloadPerf, EvalError> {
        let graph = self.graph(w, cfg.native_batch);
        simulate(&graph, cfg, sim).map_err(|e| EvalError::ScheduleFailure(e.to_string()))
    }

    /// Runs fusion for a simulated workload.
    #[must_use]
    pub fn fuse(&self, perf: &WorkloadPerf, cfg: &DatapathConfig) -> FusionResult {
        fuse_workload(perf, cfg, &self.fusion)
    }

    /// The uncached simulate→fuse→summarize pipeline for one workload.
    fn compute_workload_eval(
        &self,
        w: Workload,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<WorkloadEval, EvalError> {
        let perf = self.simulate_workload(w, cfg, sim)?;
        let fused = self.fuse(&perf, cfg);
        let step = fused.total_seconds;
        let qps = (perf.batch_per_core * perf.cores) as f64 / step;
        Ok(WorkloadEval {
            workload: w,
            step_seconds: step,
            qps,
            utilization: perf.utilization_at(step),
            prefusion_stall: perf.prefusion_memory_stall_fraction(),
            postfusion_stall: (1.0 - perf.compute_seconds / step).max(0.0),
            op_intensity_pre: perf.prefusion_op_intensity(),
            op_intensity_post: fused.op_intensity(perf.total_flops),
            pinned_weight_bytes: fused.pinned_weight_bytes,
        })
    }

    /// Memoized per-workload evaluation: answers from the shared cache when
    /// the exact `(workload, datapath, schedule, fusion)` combination has
    /// been scored before — by any clone, on any thread — and otherwise runs
    /// the simulator + fusion pipeline and records the outcome (schedule
    /// failures included; they are deterministic too).
    fn workload_eval(
        &self,
        w: Workload,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<WorkloadEval, EvalError> {
        let key = SimKey { workload: w, config: *cfg, sim: *sim, fusion: self.fusion.clone() };
        if let Some(cached) = self.cache.entries.lock().expect("eval cache poisoned").get(&key) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            return (**cached).clone();
        }
        // Compute outside the lock: simulation is the hot path and may run
        // concurrently for distinct keys. Two threads racing on the same key
        // duplicate work once; first insert wins (`or_insert_with`) and the
        // loser adopts the cached value, so every reader of a key observes
        // one single result for the whole run.
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        let result = self.compute_workload_eval(w, cfg, sim);
        let entry = self
            .cache
            .entries
            .lock()
            .expect("eval cache poisoned")
            .entry(key)
            .or_insert_with(|| Arc::new(result))
            .clone();
        (*entry).clone()
    }

    /// Full Figure-1 evaluation of one design point.
    ///
    /// # Errors
    /// Returns [`EvalError`] when the design is invalid, over budget, or
    /// unschedulable — the search loop maps these to safe-search rejections.
    pub fn evaluate(
        &self,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<DesignEval, EvalError> {
        cfg.validate().map_err(|e| EvalError::InvalidConfig(e.to_string()))?;
        let area = cost::area(cfg).total_mm2;
        let tdp = cost::tdp(cfg).total_w;
        if !self.budget.admits(cfg) {
            return Err(EvalError::OverBudget {
                area: self.budget.normalized_area(cfg),
                tdp: self.budget.normalized_tdp(cfg),
            });
        }

        let mut workloads = Vec::with_capacity(self.workloads.len());
        let mut log_qps_sum = 0.0;
        for &w in &self.workloads {
            let we = self.workload_eval(w, cfg, sim)?;
            log_qps_sum += we.qps.ln();
            workloads.push(we);
        }
        let geomean_qps = (log_qps_sum / self.workloads.len() as f64).exp();
        let objective_value = match self.objective {
            Objective::Qps => geomean_qps,
            Objective::PerfPerTdp => geomean_qps / tdp,
        };
        Ok(DesignEval {
            config: *cfg,
            sim: *sim,
            workloads,
            tdp_w: tdp,
            area_mm2: area,
            geomean_qps,
            objective_value,
        })
    }

    /// Evaluates an encoded search-space point.
    ///
    /// # Errors
    /// See [`Evaluator::evaluate`].
    pub fn evaluate_point(
        &self,
        space: &FastSpace,
        point: &[usize],
    ) -> Result<DesignEval, EvalError> {
        let (cfg, sim) = space.decode(point);
        self.evaluate(&cfg, &sim)
    }

    /// Number of `(workload, datapath, schedule, fusion)` results currently
    /// memoized.
    #[must_use]
    pub fn eval_cache_len(&self) -> usize {
        self.cache.entries.lock().expect("eval cache poisoned").len()
    }

    /// Writes the evaluation cache to `path` as a versioned, checksummed
    /// snapshot; returns the number of entries written.
    ///
    /// The write is atomic (temp file + rename), so a process killed
    /// mid-save leaves either the previous snapshot or a temp file the
    /// loader never looks at — never a torn snapshot. Entries are sorted by
    /// encoded key, so equal caches produce byte-identical files.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_eval_cache(&self, path: &Path) -> std::io::Result<usize> {
        let encoded: Vec<(Vec<u8>, Vec<u8>)> = {
            let entries = self.cache.entries.lock().expect("eval cache poisoned");
            let mut pairs: Vec<(Vec<u8>, Vec<u8>)> =
                entries.iter().map(|(k, v)| (k.to_bytes(), v.as_ref().to_bytes())).collect();
            pairs.sort();
            pairs
        };
        let mut payload = Writer::new();
        payload.put_u64(encoded.len() as u64);
        for (k, v) in &encoded {
            payload.put_bytes(k);
            payload.put_bytes(v);
        }
        let file = bin::write_envelope(CACHE_MAGIC, CACHE_VERSION, &payload.into_bytes());
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &file)?;
        std::fs::rename(&tmp, path)?;
        Ok(encoded.len())
    }

    /// [`Evaluator::save_eval_cache`], but only when the cache holds
    /// simulations not yet represented on disk: `saved_misses` is the miss
    /// count at the last successful save and is advanced on success, so
    /// rounds that simulated nothing new skip the (whole-cache) rewrite.
    /// Failures warn and leave `saved_misses` unchanged — the next
    /// boundary retries. Shared by the checkpointed drivers
    /// ([`crate::FastStudy`], [`crate::SweepRunner`]).
    pub fn save_eval_cache_if_new(&self, path: &Path, saved_misses: &mut u64) {
        let misses = self.cache_stats().misses;
        if misses > *saved_misses {
            match self.save_eval_cache(path) {
                Ok(_) => *saved_misses = misses,
                Err(e) => {
                    eprintln!("warning: could not write cache snapshot {}: {e}", path.display());
                }
            }
        }
    }

    /// Loads a [`Evaluator::save_eval_cache`] snapshot from `path` and
    /// merges it into this evaluator's (shared) cache.
    ///
    /// **Never fails and never poisons results:** a missing file is simply
    /// a cold cache, and any damage — truncation, a wrong version byte,
    /// endian-swapped or otherwise corrupt bytes — is detected by the
    /// envelope (magic/version/length/checksum) or the decoders, logged to
    /// stderr, and degrades to a cold cache. Existing in-memory entries
    /// always win over loaded ones. Loaded entries count as neither hits
    /// nor misses until they answer an evaluation.
    pub fn load_eval_cache(&self, path: &Path) -> CacheLoadReport {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return CacheLoadReport { loaded: 0, warning: None };
            }
            Err(e) => return CacheLoadReport::cold(format!("reading {}: {e}", path.display())),
        };
        let payload = match bin::read_envelope(CACHE_MAGIC, CACHE_VERSION, &bytes) {
            Ok(p) => p,
            Err(e) => {
                return CacheLoadReport::cold(format!("snapshot {}: {e}", path.display()));
            }
        };
        // Decode everything before touching the shared cache: a snapshot is
        // adopted whole or not at all.
        let mut decoded: Vec<(SimKey, Result<WorkloadEval, EvalError>)> = Vec::new();
        let mut r = Reader::new(payload);
        let count = match r.get_u64() {
            Ok(c) => c,
            Err(e) => return CacheLoadReport::cold(format!("snapshot {}: {e}", path.display())),
        };
        for _ in 0..count {
            match <(SimKey, Result<WorkloadEval, EvalError>)>::decode(&mut r) {
                Ok(pair) => decoded.push(pair),
                Err(e) => {
                    return CacheLoadReport::cold(format!("snapshot {}: {e}", path.display()));
                }
            }
        }
        if !r.is_done() {
            return CacheLoadReport::cold(format!(
                "snapshot {}: {} trailing bytes",
                path.display(),
                r.remaining()
            ));
        }
        let loaded = decoded.len();
        let mut entries = self.cache.entries.lock().expect("eval cache poisoned");
        for (key, value) in decoded {
            entries.entry(key).or_insert_with(|| Arc::new(value));
        }
        CacheLoadReport { loaded, warning: None }
    }
}

/// Magic prefix of evaluation-cache snapshot files.
const CACHE_MAGIC: [u8; 8] = *b"FASTEVC1";
/// Snapshot format version; bump on any layout change so old files degrade
/// to a cold cache instead of being misread.
const CACHE_VERSION: u32 = 1;

/// Outcome of [`Evaluator::load_eval_cache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLoadReport {
    /// Entries merged into the cache (0 when cold).
    pub loaded: usize,
    /// Why the snapshot was rejected, if it was (also logged to stderr).
    pub warning: Option<String>,
}

impl CacheLoadReport {
    /// A cold-cache outcome carrying (and logging) a warning.
    fn cold(warning: String) -> Self {
        eprintln!("warning: evaluation-cache snapshot ignored — {warning}");
        CacheLoadReport { loaded: 0, warning: Some(warning) }
    }
}

impl Encode for Objective {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Objective::Qps => 0,
            Objective::PerfPerTdp => 1,
        });
    }
}

impl Decode for Objective {
    fn decode(r: &mut Reader<'_>) -> Result<Self, bin::DecodeError> {
        match r.get_u8()? {
            0 => Ok(Objective::Qps),
            1 => Ok(Objective::PerfPerTdp),
            t => Err(bin::DecodeError { offset: 0, what: format!("invalid Objective tag {t}") }),
        }
    }
}

impl Encode for SimKey {
    fn encode(&self, w: &mut Writer) {
        let SimKey { workload, config, sim, fusion } = self;
        workload.encode(w);
        config.encode(w);
        sim.encode(w);
        fusion.encode(w);
    }
}

impl Decode for SimKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, bin::DecodeError> {
        Ok(SimKey {
            workload: Decode::decode(r)?,
            config: Decode::decode(r)?,
            sim: Decode::decode(r)?,
            fusion: Decode::decode(r)?,
        })
    }
}

impl Encode for WorkloadEval {
    fn encode(&self, w: &mut Writer) {
        let WorkloadEval {
            workload,
            step_seconds,
            qps,
            utilization,
            prefusion_stall,
            postfusion_stall,
            op_intensity_pre,
            op_intensity_post,
            pinned_weight_bytes,
        } = self;
        workload.encode(w);
        step_seconds.encode(w);
        qps.encode(w);
        utilization.encode(w);
        prefusion_stall.encode(w);
        postfusion_stall.encode(w);
        op_intensity_pre.encode(w);
        op_intensity_post.encode(w);
        pinned_weight_bytes.encode(w);
    }
}

impl Decode for WorkloadEval {
    fn decode(r: &mut Reader<'_>) -> Result<Self, bin::DecodeError> {
        Ok(WorkloadEval {
            workload: Decode::decode(r)?,
            step_seconds: Decode::decode(r)?,
            qps: Decode::decode(r)?,
            utilization: Decode::decode(r)?,
            prefusion_stall: Decode::decode(r)?,
            postfusion_stall: Decode::decode(r)?,
            op_intensity_pre: Decode::decode(r)?,
            op_intensity_post: Decode::decode(r)?,
            pinned_weight_bytes: Decode::decode(r)?,
        })
    }
}

impl Encode for EvalError {
    fn encode(&self, w: &mut Writer) {
        match self {
            EvalError::InvalidConfig(e) => {
                w.put_u8(0);
                e.encode(w);
            }
            EvalError::OverBudget { area, tdp } => {
                w.put_u8(1);
                area.encode(w);
                tdp.encode(w);
            }
            EvalError::ScheduleFailure(e) => {
                w.put_u8(2);
                e.encode(w);
            }
        }
    }
}

impl Decode for EvalError {
    fn decode(r: &mut Reader<'_>) -> Result<Self, bin::DecodeError> {
        match r.get_u8()? {
            0 => Ok(EvalError::InvalidConfig(Decode::decode(r)?)),
            1 => Ok(EvalError::OverBudget { area: Decode::decode(r)?, tdp: Decode::decode(r)? }),
            2 => Ok(EvalError::ScheduleFailure(Decode::decode(r)?)),
            t => Err(bin::DecodeError { offset: 0, what: format!("invalid EvalError tag {t}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_arch::presets;
    use fast_models::EfficientNet;

    fn evaluator(objective: Objective) -> Evaluator {
        Evaluator::new(
            vec![Workload::EfficientNet(EfficientNet::B0)],
            objective,
            Budget::paper_default(),
        )
    }

    #[test]
    fn evaluates_presets() {
        let e = evaluator(Objective::PerfPerTdp);
        let eval = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert!(eval.geomean_qps > 0.0);
        assert!(eval.objective_value > 0.0);
        assert_eq!(eval.workloads.len(), 1);
        assert!(eval.tdp_w > 50.0);
    }

    #[test]
    fn rejects_over_budget() {
        let e = evaluator(Objective::Qps);
        let mut cfg = presets::fast_large();
        cfg.pes_x = 32;
        cfg.pes_y = 32; // 1M MACs: far over the area budget
        let err = e.evaluate(&cfg, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::OverBudget { .. }));
    }

    #[test]
    fn rejects_schedule_failures() {
        let e = evaluator(Objective::Qps);
        let mut cfg = presets::fast_large();
        cfg.sa_x = 128;
        cfg.sa_y = 128;
        cfg.pes_x = 2;
        cfg.pes_y = 1;
        // 128×128 weight tiles (32 KiB) cannot fit in 8 KiB shared L1.
        let err = e.evaluate(&cfg, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::ScheduleFailure(_)), "{err:?}");
    }

    #[test]
    fn rejects_invalid_config() {
        let e = evaluator(Objective::Qps);
        let mut cfg = presets::fast_large();
        cfg.pes_x = 3;
        assert!(matches!(
            e.evaluate(&cfg, &SimOptions::default()),
            Err(EvalError::InvalidConfig(_))
        ));
    }

    #[test]
    fn objective_perf_per_tdp_differs_from_qps() {
        let qps = evaluator(Objective::Qps)
            .evaluate(&presets::fast_large(), &SimOptions::default())
            .unwrap();
        let ppt = evaluator(Objective::PerfPerTdp)
            .evaluate(&presets::fast_large(), &SimOptions::default())
            .unwrap();
        assert!(ppt.objective_value < qps.objective_value);
        assert!((ppt.geomean_qps - qps.geomean_qps).abs() < 1e-9);
    }

    #[test]
    fn graph_cache_is_shared_across_clones() {
        let e = evaluator(Objective::Qps);
        let e2 = e.clone();
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        // Second evaluation through the clone hits the cache (smoke test —
        // correctness, not timing).
        let _ = e2.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(e.graphs.lock().unwrap().len(), 1);
    }

    #[test]
    fn eval_cache_hits_on_repeat_and_across_clones() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(e.cache_stats(), CacheStats { hits: 0, misses: 1 });
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(e.cache_stats(), CacheStats { hits: 1, misses: 1 });
        // Clones share the cache; fresh_eval_cache severs it.
        let _ = e.clone().evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(e.cache_stats().hits, 2);
        let fresh = e.fresh_eval_cache();
        let _ = fresh.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(fresh.cache_stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(e.cache_stats().hits, 2, "fresh clone must not touch the original");
    }

    #[test]
    fn eval_cache_result_is_bit_identical_to_fresh_run() {
        let e = evaluator(Objective::PerfPerTdp);
        let cfg = presets::fast_large();
        let sim = SimOptions::default();
        let first = e.evaluate(&cfg, &sim).unwrap();
        let cached = e.evaluate(&cfg, &sim).unwrap();
        assert!(e.cache_stats().hits >= 1);
        assert_eq!(first.objective_value.to_bits(), cached.objective_value.to_bits());
        assert_eq!(
            first.workloads[0].step_seconds.to_bits(),
            cached.workloads[0].step_seconds.to_bits()
        );
        assert_eq!(first.workloads[0].pinned_weight_bytes, cached.workloads[0].pinned_weight_bytes);
    }

    #[test]
    fn eval_cache_caches_schedule_failures() {
        let e = evaluator(Objective::Qps);
        let mut cfg = presets::fast_large();
        cfg.sa_x = 128;
        cfg.sa_y = 128;
        cfg.pes_x = 2;
        cfg.pes_y = 1;
        let a = e.evaluate(&cfg, &SimOptions::default()).unwrap_err();
        let b = e.evaluate(&cfg, &SimOptions::default()).unwrap_err();
        assert_eq!(a, b);
        assert_eq!(e.cache_stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn eval_cache_distinguishes_fusion_options() {
        let base = evaluator(Objective::Qps);
        let cfg = presets::fast_large();
        let sim = SimOptions::default();
        let with_fusion =
            base.clone().with_fusion(FusionOptions { disabled: true, ..FusionOptions::default() });
        let fused = base.evaluate(&cfg, &sim).unwrap();
        // Shares the cache Arc but must not share entries: fusion options differ.
        let unfused = with_fusion.evaluate(&cfg, &sim).unwrap();
        assert_eq!(base.cache_stats(), CacheStats { hits: 0, misses: 2 });
        assert!(
            unfused.workloads[0].step_seconds >= fused.workloads[0].step_seconds,
            "disabling fusion cannot speed the workload up"
        );
    }

    #[test]
    fn for_scenario_shares_cache_across_budget_objective_and_domain() {
        use fast_models::EfficientNet;
        let base = evaluator(Objective::Qps);
        let cfg = presets::fast_large();
        let sim = SimOptions::default();
        let _ = base.evaluate(&cfg, &sim).unwrap();
        assert_eq!(base.cache_stats(), CacheStats { hits: 0, misses: 1 });
        // Different objective and a tighter (still admitting) budget: the
        // simulation is a cache hit.
        let tighter = Budget {
            max_area_mm2: Budget::paper_default().max_area_mm2 * 0.9,
            max_tdp_w: Budget::paper_default().max_tdp_w * 0.9,
        };
        let rescore = base.for_scenario(
            vec![Workload::EfficientNet(EfficientNet::B0)],
            Objective::PerfPerTdp,
            tighter,
        );
        let _ = rescore.evaluate(&cfg, &sim).unwrap();
        assert_eq!(base.cache_stats(), CacheStats { hits: 1, misses: 1 });
        // A multi-workload domain containing the simulated workload reuses
        // its simulation and only pays for the new workload.
        let multi = base.for_scenario(
            vec![
                Workload::EfficientNet(EfficientNet::B0),
                Workload::EfficientNet(EfficientNet::B1),
            ],
            Objective::Qps,
            Budget::paper_default(),
        );
        let _ = multi.evaluate(&cfg, &sim).unwrap();
        assert_eq!(base.cache_stats(), CacheStats { hits: 2, misses: 2 });
    }

    /// A per-test scratch path under the target-adjacent temp dir.
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fast-evc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn cache_snapshot_round_trips_bit_identically() {
        let e = evaluator(Objective::PerfPerTdp);
        let sim = SimOptions::default();
        let first = e.evaluate(&presets::fast_large(), &sim).unwrap();
        // A cached schedule failure rides along.
        let mut bad = presets::fast_large();
        bad.sa_x = 128;
        bad.sa_y = 128;
        bad.pes_x = 2;
        bad.pes_y = 1;
        let _ = e.evaluate(&bad, &sim).unwrap_err();
        assert_eq!(e.eval_cache_len(), 2);

        let path = scratch("roundtrip.bin");
        assert_eq!(e.save_eval_cache(&path).unwrap(), 2);

        let fresh = e.fresh_eval_cache();
        let report = fresh.load_eval_cache(&path);
        assert_eq!(report, CacheLoadReport { loaded: 2, warning: None });
        assert_eq!(fresh.eval_cache_len(), 2);
        // Warm: both lookups are hits, and the success is bit-identical.
        let warm = fresh.evaluate(&presets::fast_large(), &sim).unwrap();
        let bad_again = fresh.evaluate(&bad, &sim).unwrap_err();
        assert_eq!(fresh.cache_stats(), CacheStats { hits: 2, misses: 0 });
        assert_eq!(warm.objective_value.to_bits(), first.objective_value.to_bits());
        assert_eq!(
            warm.workloads[0].step_seconds.to_bits(),
            first.workloads[0].step_seconds.to_bits()
        );
        assert!(matches!(bad_again, EvalError::ScheduleFailure(_)));
    }

    #[test]
    fn cache_snapshot_missing_file_is_silently_cold() {
        let e = evaluator(Objective::Qps);
        let report = e.load_eval_cache(&scratch("never-written.bin"));
        assert_eq!(report, CacheLoadReport { loaded: 0, warning: None });
    }

    #[test]
    fn cache_snapshot_rejects_truncation_at_every_length() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let path = scratch("truncate.bin");
        e.save_eval_cache(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        for cut in [0, 1, bin::ENVELOPE_HEADER_LEN - 1, bin::ENVELOPE_HEADER_LEN, bytes.len() - 1] {
            let cut_path = scratch("truncated.bin");
            std::fs::write(&cut_path, &bytes[..cut]).unwrap();
            let fresh = e.fresh_eval_cache();
            let report = fresh.load_eval_cache(&cut_path);
            assert_eq!(report.loaded, 0, "cut at {cut}");
            assert!(report.warning.is_some(), "cut at {cut}");
            assert_eq!(fresh.eval_cache_len(), 0, "cut at {cut}: cold means cold");
        }
    }

    #[test]
    fn cache_snapshot_rejects_version_skew() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let path = scratch("version.bin");
        e.save_eval_cache(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = bytes[8].wrapping_add(1); // version u32's low byte
        std::fs::write(&path, &bytes).unwrap();
        let fresh = e.fresh_eval_cache();
        let report = fresh.load_eval_cache(&path);
        assert_eq!(report.loaded, 0);
        assert!(report.warning.unwrap().contains("version"), "must name the version skew");
    }

    #[test]
    fn cache_snapshot_rejects_foreign_endian_garbage() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let path = scratch("endian.bin");
        e.save_eval_cache(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Byte-swap the payload as a big-endian writer would have produced
        // it: the checksum (computed over the little-endian payload) fails.
        let mut swapped = bytes.clone();
        swapped[bin::ENVELOPE_HEADER_LEN..].reverse();
        std::fs::write(&path, &swapped).unwrap();
        let fresh = e.fresh_eval_cache();
        let report = fresh.load_eval_cache(&path);
        assert_eq!(report.loaded, 0);
        assert!(report.warning.is_some());

        // Arbitrary garbage of plausible size: bad magic.
        std::fs::write(&path, vec![0xA5u8; 256]).unwrap();
        let report = fresh.load_eval_cache(&path);
        assert_eq!(report.loaded, 0);
        assert!(report.warning.unwrap().contains("magic"));
        assert_eq!(fresh.eval_cache_len(), 0);
    }

    #[test]
    fn cache_snapshot_checksum_catches_flipped_payload_bits() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let path = scratch("bitflip.bin");
        e.save_eval_cache(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let fresh = e.fresh_eval_cache();
        let report = fresh.load_eval_cache(&path);
        assert_eq!(report.loaded, 0);
        assert!(report.warning.unwrap().contains("checksum"));
    }

    #[test]
    fn cache_snapshot_merge_keeps_existing_entries() {
        let e = evaluator(Objective::Qps);
        let sim = SimOptions::default();
        let _ = e.evaluate(&presets::fast_large(), &sim).unwrap();
        let path = scratch("merge.bin");
        e.save_eval_cache(&path).unwrap();

        // An evaluator that already simulated one of the snapshot's keys
        // keeps its own entry and gains nothing new for it.
        let other = e.fresh_eval_cache();
        let _ = other.evaluate(&presets::fast_large(), &sim).unwrap();
        let report = other.load_eval_cache(&path);
        assert_eq!(report.loaded, 1);
        assert_eq!(other.eval_cache_len(), 1);
    }

    #[test]
    fn eval_cache_distinguishes_objectives_without_resimulating() {
        // Multi-objective re-scoring: same design under QPS and Perf/TDP
        // shares one simulation when the evaluators share a cache.
        let qps_eval = evaluator(Objective::Qps);
        let mut ppt_eval = qps_eval.clone();
        ppt_eval.objective = Objective::PerfPerTdp;
        let cfg = presets::fast_large();
        let a = qps_eval.evaluate(&cfg, &SimOptions::default()).unwrap();
        let b = ppt_eval.evaluate(&cfg, &SimOptions::default()).unwrap();
        assert_eq!(qps_eval.cache_stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(a.geomean_qps.to_bits(), b.geomean_qps.to_bits());
        assert!(b.objective_value < a.objective_value);
    }
}
