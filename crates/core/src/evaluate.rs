//! Trial evaluation: the three-phase pipeline of Figure 1, staged and
//! memoized per stage.
//!
//! For a candidate design the evaluator (1) validates the datapath and its
//! area/TDP against the budget (Eq. 4), (2) schedules every op of every
//! workload through the Timeloop-style mapper (rejecting on schedule
//! failures, Eq. 5), (3) runs the FAST-fusion ILP, and finally scores the
//! objective. The paper's own decomposition — map each op, assemble
//! workload perf, solve the Figure-8 fusion ILP — is mirrored by three
//! caches:
//!
//! * **Stage A (op tier)** — the shared [`fast_sim::MapperCache`], keyed by
//!   [`fast_sim::OpKey`] (canonical loop nest + exactly the config/option
//!   fields the mapper reads). Identical shapes across workloads, batches
//!   and neighboring search points map once; GM/clock/DRAM/L2/fusion sweeps
//!   re-map nothing.
//! * **Stage B (sim tier)** — per-workload perf assembly, memoized in
//!   memory per `(workload, datapath, schedule)` as slim region statistics
//!   plus summary scalars (no per-node detail). Schedule failures live
//!   here too.
//! * **Stage C (fuse tier)** — fusion results keyed by a
//!   [`fast_fusion::StatsFingerprint`] of the region stats + the
//!   Global-Memory capacity + the [`FusionOptions`]. Sweeping fusion
//!   options or objectives re-solves at most the ILP, never the mapper.
//!
//! The op and fuse tiers persist to disk ([`Evaluator::save_eval_cache`]);
//! the sim tier is cheap to rebuild from a warm op tier and stays in
//! memory. Workload graphs are cached by `(workload, batch)` since the
//! model zoo is immutable across trials.

use crate::search_space::FastSpace;
use fast_arch::{cost, Budget, DatapathConfig};
use fast_fusion::{
    fuse_workload, FusionOptions, FusionResult, Placement, StatsFingerprint, StructureKey,
    WarmStartTier,
};
use fast_models::Workload;
use fast_sim::{
    simulate_staged, MapFailure, MapperCache, Mapping, OpKey, RegionPerf, SimError, SimOptions,
    Tier, WorkloadPerf,
};
use serde::bin::{self, Decode, Encode, Reader, Writer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The optimization objective `f` (§5.2). Higher is better in all cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Inference throughput (queries/second), geomean across workloads.
    Qps,
    /// Throughput per watt of TDP — the paper's headline Perf/TDP metric
    /// (the Perf/TCO proxy).
    #[default]
    PerfPerTdp,
}

/// Why a trial was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The datapath violates a Table-3 range.
    InvalidConfig(String),
    /// Area or TDP exceeds the budget (Eq. 4).
    OverBudget {
        /// Normalized area (1.0 = at budget).
        area: f64,
        /// Normalized TDP (1.0 = at budget).
        tdp: f64,
    },
    /// A workload could not be scheduled (Eq. 5). Carries the structured
    /// [`SimError`] — callers can match on [`SimError::cause`] to react to
    /// the failure kind; `Display` remains the historical
    /// `schedule failure: …` line.
    ScheduleFailure(SimError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidConfig(e) => write!(f, "invalid config: {e}"),
            EvalError::OverBudget { area, tdp } => {
                write!(f, "over budget: area {area:.2}, tdp {tdp:.2}")
            }
            EvalError::ScheduleFailure(e) => write!(f, "schedule failure: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Per-workload outcome of one design evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadEval {
    /// The workload.
    pub workload: Workload,
    /// Post-fusion step time (seconds) for one core's batch.
    pub step_seconds: f64,
    /// Chip throughput in queries/second.
    pub qps: f64,
    /// Compute utilization at the post-fusion step time.
    pub utilization: f64,
    /// Pre-fusion memory-stall fraction.
    pub prefusion_stall: f64,
    /// Post-fusion memory-stall fraction.
    pub postfusion_stall: f64,
    /// Pre-fusion operational intensity (FLOPs/DRAM byte).
    pub op_intensity_pre: f64,
    /// Post-fusion operational intensity.
    pub op_intensity_post: f64,
    /// Bytes of weights pinned by FAST fusion.
    pub pinned_weight_bytes: u64,
}

/// Complete evaluation of one design point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignEval {
    /// The evaluated datapath.
    pub config: DatapathConfig,
    /// Scheduling options used.
    pub sim: SimOptions,
    /// Per-workload results.
    pub workloads: Vec<WorkloadEval>,
    /// Power-virus TDP (watts).
    pub tdp_w: f64,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Geomean QPS across workloads.
    pub geomean_qps: f64,
    /// Objective value under the evaluator's objective.
    pub objective_value: f64,
}

/// The fully canonicalized, hashable form of a [`DatapathConfig`]: every
/// field, floats as `to_bits`.
type ConfigKey = (
    (u64, u64, u64, u64, u64),
    (fast_arch::BufferSharing, u64, u64, u64),
    (fast_arch::L2Config, u64, u64, u64),
    (u64, u64, fast_arch::MemoryTech, u64),
    (u64, u64),
);

/// Canonical identity of one Stage-B assembly: `(workload, datapath,
/// schedule)` — the inputs of [`fast_sim::simulate_staged`]. Fusion options
/// are deliberately absent (they belong to [`FuseKey`]); budgets and
/// objectives enter scoring only after the cached stages.
#[derive(Debug, Clone)]
struct SimTierKey {
    workload: Workload,
    config: DatapathConfig,
    sim: SimOptions,
}

impl SimTierKey {
    /// The single source of truth for Stage-B key identity: every
    /// [`DatapathConfig`] field, floats canonicalized through `to_bits`.
    /// The exhaustive destructuring (no `..`) makes adding a config field a
    /// compile error here, so the cache key can never silently ignore one;
    /// a new float field must be converted with `to_bits` to satisfy
    /// [`ConfigKey`]'s `Eq`/`Hash`. ([`DatapathConfig`] is float-bearing
    /// (`clock_ghz`), so it cannot derive `Eq`/`Hash`; configs only reach
    /// the cache after `validate()` accepts them, which excludes NaN
    /// clocks, so bitwise equality is exact equality here.)
    fn canonical(&self) -> (Workload, SimOptions, ConfigKey) {
        let DatapathConfig {
            pes_x,
            pes_y,
            sa_x,
            sa_y,
            vector_multiplier,
            l1_config,
            l1_input_kib,
            l1_weight_kib,
            l1_output_kib,
            l2_config,
            l2_input_mult,
            l2_weight_mult,
            l2_output_mult,
            global_memory_mib,
            dram_channels,
            memory,
            native_batch,
            clock_ghz,
            cores,
        } = self.config;
        (
            self.workload,
            self.sim,
            (
                (pes_x, pes_y, sa_x, sa_y, vector_multiplier),
                (l1_config, l1_input_kib, l1_weight_kib, l1_output_kib),
                (l2_config, l2_input_mult, l2_weight_mult, l2_output_mult),
                (global_memory_mib, dram_channels, memory, native_batch),
                (clock_ghz.to_bits(), cores),
            ),
        )
    }
}

impl PartialEq for SimTierKey {
    fn eq(&self, other: &Self) -> bool {
        self.canonical() == other.canonical()
    }
}

impl Eq for SimTierKey {}

impl Hash for SimTierKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical().hash(state);
    }
}

/// Stage C cache identity: fingerprinted fusion inputs + the Global-Memory
/// capacity + the fusion options. Everything else about the datapath is
/// invisible to the fusion pass, so datapaths with identical region stats
/// and GM share one ILP solve.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct FuseKey {
    stats: StatsFingerprint,
    gm_bytes: u64,
    fusion: FusionOptions,
}

impl Encode for FuseKey {
    fn encode(&self, w: &mut Writer) {
        let FuseKey { stats, gm_bytes, fusion } = self;
        stats.encode(w);
        gm_bytes.encode(w);
        fusion.encode(w);
    }
}

impl Decode for FuseKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, bin::DecodeError> {
        Ok(FuseKey {
            stats: Decode::decode(r)?,
            gm_bytes: Decode::decode(r)?,
            fusion: Decode::decode(r)?,
        })
    }
}

/// The slim Stage-B product: exactly what Stage C and the final
/// [`WorkloadEval`] assembly read — region statistics plus summary scalars,
/// no per-node detail (use [`Evaluator::simulate_workload`] for that).
#[derive(Debug)]
struct SimStats {
    /// Workload display name (labels the ILP problem; never keys anything).
    workload: String,
    regions: Vec<RegionPerf>,
    compute_seconds: f64,
    prefusion_seconds: f64,
    batch_per_core: u64,
    cores: u64,
    matrix_flops: u64,
    peak_flops_per_core: f64,
    total_flops: u64,
    prefusion_dram_bytes: u64,
    /// Precomputed Stage-C fingerprint of `(regions, compute_seconds)`.
    fingerprint: StatsFingerprint,
}

impl SimStats {
    fn from_perf(perf: WorkloadPerf) -> SimStats {
        let fingerprint = fast_fusion::stats_fingerprint(&perf.regions, perf.compute_seconds);
        SimStats {
            workload: perf.workload,
            regions: perf.regions,
            compute_seconds: perf.compute_seconds,
            prefusion_seconds: perf.prefusion_seconds,
            batch_per_core: perf.batch_per_core,
            cores: perf.cores,
            matrix_flops: perf.matrix_flops,
            peak_flops_per_core: perf.peak_flops_per_core,
            total_flops: perf.total_flops,
            prefusion_dram_bytes: perf.prefusion_dram_bytes,
            fingerprint,
        }
    }
}

/// The Stage-C product persisted in the fuse tier: the fusion outputs the
/// final summary needs. Everything else in [`WorkloadEval`] derives from
/// the (in-hand) [`SimStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FusedSummary {
    total_seconds: f64,
    pinned_weight_bytes: u64,
    dram_bytes: u64,
}

impl FusedSummary {
    fn of(fused: &FusionResult) -> FusedSummary {
        FusedSummary {
            total_seconds: fused.total_seconds,
            pinned_weight_bytes: fused.pinned_weight_bytes,
            dram_bytes: fused.dram_bytes,
        }
    }
}

impl Encode for FusedSummary {
    fn encode(&self, w: &mut Writer) {
        let FusedSummary { total_seconds, pinned_weight_bytes, dram_bytes } = *self;
        total_seconds.encode(w);
        pinned_weight_bytes.encode(w);
        dram_bytes.encode(w);
    }
}

impl Decode for FusedSummary {
    fn decode(r: &mut Reader<'_>) -> Result<Self, bin::DecodeError> {
        Ok(FusedSummary {
            total_seconds: Decode::decode(r)?,
            pinned_weight_bytes: Decode::decode(r)?,
            dram_bytes: Decode::decode(r)?,
        })
    }
}

pub use fast_fusion::SolverStats;
pub use fast_sim::CacheStats;

/// Per-stage hit/miss counters of the staged evaluation pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagedCacheStats {
    /// Stage A: per-op mapper lookups (shared [`fast_sim::MapperCache`]).
    pub op: CacheStats,
    /// Stage B: per-workload perf assemblies (in-memory sim tier).
    pub sim: CacheStats,
    /// Stage C: fusion solves (fuse tier).
    pub fuse: CacheStats,
    /// Stage C detail: exact-solver work and cross-point warm-start reuse
    /// (all zero on the default heuristic-only fusion path, where the
    /// branch-and-bound never runs).
    pub solver: SolverStats,
}

impl StagedCacheStats {
    /// Per-stage delta `self - before` (both from one evaluator, `before`
    /// sampled earlier).
    #[must_use]
    pub fn since(&self, before: &StagedCacheStats) -> StagedCacheStats {
        let delta = |a: CacheStats, b: CacheStats| CacheStats {
            hits: a.hits - b.hits,
            misses: a.misses - b.misses,
        };
        StagedCacheStats {
            op: delta(self.op, before.op),
            sim: delta(self.sim, before.sim),
            fuse: delta(self.fuse, before.fuse),
            solver: self.solver.since(&before.solver),
        }
    }
}

// Worker threads score trials through a shared `&Evaluator`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Evaluator>();
    assert_send_sync::<DesignEval>();
    assert_send_sync::<EvalError>();
};

/// The immutable workload-graph cache, keyed by `(workload, batch)`.
type GraphCache = Mutex<HashMap<(Workload, u64), Arc<fast_ir::Graph>>>;

/// Evaluates design points for a fixed workload set, objective and budget.
///
/// Clone-cheap: the graph cache and all three pipeline tiers are shared
/// behind `Arc`s, so clones handed to worker threads by the parallel driver
/// all feed one set of memoization tables.
///
/// ```
/// use fast_core::{CacheStats, Evaluator, Objective};
/// use fast_arch::{presets, Budget};
/// use fast_fusion::FusionOptions;
/// use fast_models::Workload;
/// use fast_sim::SimOptions;
///
/// let e = Evaluator::new(vec![Workload::ResNet50], Objective::Qps, Budget::paper_default());
/// let first = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
///
/// // A repeat evaluation hits every stage: no mapping, no assembly, no
/// // fusion solve.
/// let again = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
/// assert_eq!(again.objective_value.to_bits(), first.objective_value.to_bits());
/// assert_eq!(e.cache_stats(), CacheStats { hits: 1, misses: 1 });
///
/// // Sweeping fusion options re-solves Stage C only — the op tier
/// // (mapper) is untouched, so the sweep never re-maps an op.
/// let op_before = e.staged_cache_stats().op;
/// let strict = e.clone().with_fusion(FusionOptions::strict_adjacency());
/// let _ = strict.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
/// assert_eq!(e.staged_cache_stats().op, op_before);
/// assert_eq!(e.staged_cache_stats().fuse.misses, 2);
/// ```
#[derive(Clone)]
pub struct Evaluator {
    workloads: Vec<Workload>,
    objective: Objective,
    budget: Budget,
    fusion: FusionOptions,
    graphs: Arc<GraphCache>,
    mapper: Arc<MapperCache>,
    sims: Arc<Tier<SimTierKey, Result<Arc<SimStats>, SimError>>>,
    fuses: Arc<Tier<FuseKey, FusedSummary>>,
    /// Cross-point warm-start incumbents for the exact fusion solver.
    /// Strictly a performance hint — fusion answers are bit-identical with
    /// or without it — shared across clones like the tiers above.
    warm: Arc<WarmStartTier>,
    /// `false` routes [`Evaluator::evaluate`] through the uncached
    /// monolithic simulate→fuse reference path.
    staged: bool,
}

impl Evaluator {
    /// Creates an evaluator.
    #[must_use]
    pub fn new(workloads: Vec<Workload>, objective: Objective, budget: Budget) -> Self {
        Evaluator {
            workloads,
            objective,
            budget,
            fusion: FusionOptions::heuristic_only(),
            graphs: Arc::new(Mutex::new(HashMap::new())),
            mapper: Arc::new(MapperCache::new()),
            sims: Arc::new(Tier::default()),
            fuses: Arc::new(Tier::default()),
            warm: Arc::new(WarmStartTier::new()),
            staged: true,
        }
    }

    /// Uses a custom fusion configuration (e.g. the exact ILP path for
    /// one-off reports). Safe to combine with a shared cache: fusion options
    /// are part of the fuse-tier key, and sweeping them re-solves at most
    /// the fusion stage — the op and sim tiers are shared untouched.
    ///
    /// **Determinism caveat:** the exact-ILP path (`exact_binary_limit > 0`)
    /// is bounded by a wall-clock `time_limit`, so its incumbent can depend
    /// on machine load. The default [`FusionOptions::heuristic_only`]
    /// pipeline is a pure function of its inputs; prefer it (or an
    /// effectively unlimited `time_limit` with a `max_nodes` bound, which is
    /// deterministic) whenever reproducibility across runs matters — e.g.
    /// under `Execution::Parallel`, whose sequential-equivalence guarantee
    /// assumes a deterministic evaluation pipeline. Within one run the
    /// cache is always self-consistent (first compute wins).
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionOptions) -> Self {
        self.fusion = fusion;
        self
    }

    /// Disables the staged pipeline: every evaluation runs the raw,
    /// uncached simulate→fuse path. This is the reference implementation
    /// the staged pipeline is property-tested against (bit-identical
    /// results), and is only useful for such equivalence checks and
    /// cache-free timing baselines.
    #[must_use]
    pub fn monolithic(mut self) -> Self {
        self.staged = false;
        self
    }

    /// A clone re-targeted at a different scenario — workload set, objective
    /// and budget — while *sharing* this evaluator's caches.
    ///
    /// This is the scenario-sweep engine's re-scoring path: budgets and
    /// objectives only enter scoring *after* the cached stages — so
    /// re-scoring a design under a second objective or a tighter budget is
    /// a fuse-tier hit, never a re-simulation, and a domain whose workloads
    /// were simulated under another domain reuses those simulations
    /// wholesale.
    #[must_use]
    pub fn for_scenario(
        &self,
        workloads: Vec<Workload>,
        objective: Objective,
        budget: Budget,
    ) -> Self {
        let mut e = self.clone();
        e.workloads = workloads;
        e.objective = objective;
        e.budget = budget;
        e
    }

    /// A clone sharing the (immutable) workload-graph cache but starting
    /// from empty pipeline tiers — for benchmarks and tests that must
    /// measure or observe uncached evaluation.
    #[must_use]
    pub fn fresh_eval_cache(&self) -> Self {
        let mut e = self.clone();
        e.mapper = Arc::new(MapperCache::new());
        e.sims = Arc::new(Tier::default());
        e.fuses = Arc::new(Tier::default());
        e.warm = Arc::new(WarmStartTier::new());
        e
    }

    /// Fuse-tier (Stage C) hit/miss totals since this cache was created —
    /// one lookup per *successful* per-workload evaluation, so this is the
    /// evaluation-level reuse signal (schedule failures never reach the
    /// fuse tier; see [`Evaluator::staged_cache_stats`] for those).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.fuses.stats()
    }

    /// Per-stage hit/miss totals: op tier (Stage A), sim tier (Stage B),
    /// fuse tier (Stage C).
    #[must_use]
    pub fn staged_cache_stats(&self) -> StagedCacheStats {
        StagedCacheStats {
            op: self.mapper.stats(),
            sim: self.sims.stats(),
            fuse: self.fuses.stats(),
            solver: self.warm.stats(),
        }
    }

    /// The workload set.
    #[must_use]
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The budget in force.
    #[must_use]
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The objective in force.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    fn graph(&self, w: Workload, batch: u64) -> Arc<fast_ir::Graph> {
        let mut cache = self.graphs.lock().expect("graph cache poisoned");
        cache
            .entry((w, batch))
            .or_insert_with(|| Arc::new(w.build(batch).expect("in-tree workloads always build")))
            .clone()
    }

    /// Simulates one workload on a config (pre-fusion detail), without budget
    /// checks — used by report/breakdown code as well as equivalence tests.
    /// Op scheduling is answered from the shared Stage-A mapper cache; the
    /// full per-node [`WorkloadPerf`] is recomputed per call (the sim tier
    /// stores only the slim region stats).
    ///
    /// # Errors
    /// Propagates schedule failures.
    pub fn simulate_workload(
        &self,
        w: Workload,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<WorkloadPerf, EvalError> {
        let graph = self.graph(w, cfg.native_batch);
        simulate_staged(&graph, cfg, sim, &self.mapper).map_err(EvalError::ScheduleFailure)
    }

    /// Runs fusion for a simulated workload (uncached).
    #[must_use]
    pub fn fuse(&self, perf: &WorkloadPerf, cfg: &DatapathConfig) -> FusionResult {
        fuse_workload(perf, cfg, &self.fusion)
    }

    /// The uncached, monolithic simulate→fuse→summarize pipeline for one
    /// workload — the reference the staged path must reproduce bit for bit.
    fn compute_workload_eval(
        &self,
        w: Workload,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<WorkloadEval, EvalError> {
        let graph = self.graph(w, cfg.native_batch);
        let perf = fast_sim::simulate(&graph, cfg, sim).map_err(EvalError::ScheduleFailure)?;
        let fused = self.fuse(&perf, cfg);
        let step = fused.total_seconds;
        let qps = (perf.batch_per_core * perf.cores) as f64 / step;
        Ok(WorkloadEval {
            workload: w,
            step_seconds: step,
            qps,
            utilization: perf.utilization_at(step),
            prefusion_stall: perf.prefusion_memory_stall_fraction(),
            postfusion_stall: (1.0 - perf.compute_seconds / step).max(0.0),
            op_intensity_pre: perf.prefusion_op_intensity(),
            op_intensity_post: fused.op_intensity(perf.total_flops),
            pinned_weight_bytes: fused.pinned_weight_bytes,
        })
    }

    /// Stage A+B: the memoized per-workload assembly. Answers from the sim
    /// tier when the exact `(workload, datapath, schedule)` combination has
    /// been assembled before — by any clone, on any thread — and otherwise
    /// simulates through the shared op-tier mapper cache and records the
    /// outcome (schedule failures included; they are deterministic too).
    fn sim_stats(
        &self,
        w: Workload,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<Arc<SimStats>, SimError> {
        let key = SimTierKey { workload: w, config: *cfg, sim: *sim };
        self.sims.get_or_compute(key, || {
            let graph = self.graph(w, cfg.native_batch);
            simulate_staged(&graph, cfg, sim, &self.mapper)
                .map(|perf| Arc::new(SimStats::from_perf(perf)))
        })
    }

    /// Stage C: the memoized fusion solve for one assembled workload. Fuse
    /// misses solve through the cross-point warm-start tier, which seeds
    /// the exact solver with a neighboring point's incumbent — results stay
    /// bit-identical (see [`fast_fusion::fuse_regions_warm`]); only node
    /// counts shrink.
    fn fused_summary(&self, stats: &SimStats, cfg: &DatapathConfig) -> FusedSummary {
        let gm_bytes = cfg.global_memory_bytes();
        let key = FuseKey { stats: stats.fingerprint, gm_bytes, fusion: self.fusion.clone() };
        self.fuses.get_or_compute(key, || {
            let fused = fast_fusion::fuse_regions_warm(
                &stats.regions,
                stats.compute_seconds,
                gm_bytes,
                &self.fusion,
                &stats.workload,
                Some(&self.warm),
            );
            FusedSummary::of(&fused)
        })
    }

    /// The staged per-workload evaluation: Stage A+B then Stage C, then the
    /// summary assembly (pure arithmetic over the two cached products).
    fn workload_eval(
        &self,
        w: Workload,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<WorkloadEval, EvalError> {
        if !self.staged {
            return self.compute_workload_eval(w, cfg, sim);
        }
        let stats = self.sim_stats(w, cfg, sim).map_err(EvalError::ScheduleFailure)?;
        let fused = self.fused_summary(&stats, cfg);
        let step = fused.total_seconds;
        let qps = (stats.batch_per_core * stats.cores) as f64 / step;
        Ok(WorkloadEval {
            workload: w,
            step_seconds: step,
            qps,
            utilization: stats.matrix_flops as f64 / (step * stats.peak_flops_per_core),
            prefusion_stall: (1.0 - stats.compute_seconds / stats.prefusion_seconds).max(0.0),
            postfusion_stall: (1.0 - stats.compute_seconds / step).max(0.0),
            op_intensity_pre: stats.total_flops as f64 / stats.prefusion_dram_bytes as f64,
            op_intensity_post: if fused.dram_bytes == 0 {
                f64::INFINITY
            } else {
                stats.total_flops as f64 / fused.dram_bytes as f64
            },
            pinned_weight_bytes: fused.pinned_weight_bytes,
        })
    }

    /// Full Figure-1 evaluation of one design point.
    ///
    /// # Errors
    /// Returns [`EvalError`] when the design is invalid, over budget, or
    /// unschedulable — the search loop maps these to safe-search rejections.
    pub fn evaluate(
        &self,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<DesignEval, EvalError> {
        cfg.validate().map_err(|e| EvalError::InvalidConfig(e.to_string()))?;
        let area = cost::area(cfg).total_mm2;
        let tdp = cost::tdp(cfg).total_w;
        if !self.budget.admits(cfg) {
            return Err(EvalError::OverBudget {
                area: self.budget.normalized_area(cfg),
                tdp: self.budget.normalized_tdp(cfg),
            });
        }

        let mut workloads = Vec::with_capacity(self.workloads.len());
        let mut log_qps_sum = 0.0;
        for &w in &self.workloads {
            let we = self.workload_eval(w, cfg, sim)?;
            log_qps_sum += we.qps.ln();
            workloads.push(we);
        }
        let geomean_qps = (log_qps_sum / self.workloads.len() as f64).exp();
        let objective_value = match self.objective {
            Objective::Qps => geomean_qps,
            Objective::PerfPerTdp => geomean_qps / tdp,
        };
        Ok(DesignEval {
            config: *cfg,
            sim: *sim,
            workloads,
            tdp_w: tdp,
            area_mm2: area,
            geomean_qps,
            objective_value,
        })
    }

    /// Evaluates an encoded search-space point.
    ///
    /// # Errors
    /// See [`Evaluator::evaluate`].
    pub fn evaluate_point(
        &self,
        space: &FastSpace,
        point: &[usize],
    ) -> Result<DesignEval, EvalError> {
        let (cfg, sim) = space.decode(point);
        self.evaluate(&cfg, &sim)
    }

    /// Number of per-op mapper results currently memoized (Stage A).
    #[must_use]
    pub fn op_cache_len(&self) -> usize {
        self.mapper.len()
    }

    /// Number of per-workload assemblies currently memoized (Stage B).
    #[must_use]
    pub fn sim_cache_len(&self) -> usize {
        self.sims.len()
    }

    /// Number of fusion solves currently memoized (Stage C).
    #[must_use]
    pub fn fuse_cache_len(&self) -> usize {
        self.fuses.len()
    }

    /// The op-tier snapshot file that rides along with a fuse-tier snapshot
    /// at `path` (`eval_cache.bin` → `eval_cache.op.bin`).
    #[must_use]
    pub fn op_tier_path(path: &Path) -> PathBuf {
        path.with_extension("op.bin")
    }

    /// The warm-start-tier snapshot file that rides along with a fuse-tier
    /// snapshot at `path` (`eval_cache.bin` → `eval_cache.warm.bin`). Only
    /// written when the tier is non-empty — the default heuristic-only
    /// fusion path never populates it, so most studies produce no warm
    /// file. The snapshot is a pure solver hint: loading (or losing) it
    /// changes node counts, never results, which is why the shard-merge
    /// pipeline ignores warm files entirely.
    #[must_use]
    pub fn warm_tier_path(path: &Path) -> PathBuf {
        path.with_extension("warm.bin")
    }

    /// Writes the persistent cache tiers as versioned, checksummed
    /// snapshots — the fuse tier at `path`, the (much larger) op tier at
    /// [`Evaluator::op_tier_path`] — and returns the entry counts written
    /// as `(op, fuse)`.
    ///
    /// Each write is atomic (temp file + rename), so a process killed
    /// mid-save leaves either the previous snapshot or a temp file the
    /// loader never looks at — never a torn snapshot. Entries are sorted by
    /// encoded key, so equal caches produce byte-identical files. The sim
    /// tier is not persisted: it rebuilds from a warm op tier at assembly
    /// speed, without re-running the mapper.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_eval_cache(&self, path: &Path) -> std::io::Result<(usize, usize)> {
        let op = write_tier(&Self::op_tier_path(path), OP_MAGIC, OP_VERSION, self.mapper.export())?;
        let fuse = write_tier(path, FUSE_MAGIC, FUSE_VERSION, self.fuses.export())?;
        // The warm tier rides along only when the exact solver actually ran
        // (see `warm_tier_path`); its entry count is deliberately not part
        // of the return contract.
        if !self.warm.is_empty() {
            write_tier(&Self::warm_tier_path(path), WARM_MAGIC, WARM_VERSION, self.warm.export())?;
        }
        Ok((op, fuse))
    }

    /// [`Evaluator::save_eval_cache`], but per tier and only when that tier
    /// holds results not yet represented on disk: `marks` carries the miss
    /// counts at the last successful save and is advanced on success. A
    /// fusion-only round (new fuse solves, no new mapper work) rewrites
    /// only the small fuse file, never the op tier; rounds that computed
    /// nothing new write nothing. Failures warn and leave the mark
    /// unchanged — the next boundary retries. Shared by the checkpointed
    /// drivers ([`crate::FastStudy`], [`crate::SweepRunner`]).
    pub fn save_eval_cache_if_new(&self, path: &Path, marks: &mut SavedCacheMarks) {
        let stats = self.staged_cache_stats();
        if stats.op.misses > marks.op_misses {
            let op_path = Self::op_tier_path(path);
            match write_tier(&op_path, OP_MAGIC, OP_VERSION, self.mapper.export()) {
                Ok(_) => marks.op_misses = stats.op.misses,
                Err(e) => {
                    crate::warn::warning(format_args!(
                        "could not write cache snapshot {}: {e}",
                        op_path.display()
                    ));
                }
            }
        }
        if stats.fuse.misses > marks.fuse_misses {
            match write_tier(path, FUSE_MAGIC, FUSE_VERSION, self.fuses.export()) {
                Ok(_) => marks.fuse_misses = stats.fuse.misses,
                Err(e) => {
                    crate::warn::warning(format_args!(
                        "could not write cache snapshot {}: {e}",
                        path.display()
                    ));
                }
            }
        }
        let warm_entries = self.warm.len() as u64;
        if warm_entries > marks.warm_entries {
            let warm_path = Self::warm_tier_path(path);
            match write_tier(&warm_path, WARM_MAGIC, WARM_VERSION, self.warm.export()) {
                Ok(_) => marks.warm_entries = warm_entries,
                Err(e) => {
                    crate::warn::warning(format_args!(
                        "could not write cache snapshot {}: {e}",
                        warm_path.display()
                    ));
                }
            }
        }
    }

    /// Current per-tier miss counts, as the starting [`SavedCacheMarks`]
    /// for [`Evaluator::save_eval_cache_if_new`] — "everything computed so
    /// far is already represented on disk".
    #[must_use]
    pub fn save_marks(&self) -> SavedCacheMarks {
        let stats = self.staged_cache_stats();
        SavedCacheMarks {
            op_misses: stats.op.misses,
            fuse_misses: stats.fuse.misses,
            warm_entries: self.warm.len() as u64,
        }
    }

    /// Loads a [`Evaluator::save_eval_cache`] snapshot pair from `path` and
    /// merges both tiers into this evaluator's (shared) caches.
    ///
    /// **Never fails and never poisons results:** a missing file is simply
    /// a cold tier, and any damage — truncation, a wrong version byte
    /// (including pre-split `eval_cache.bin` files, whose version no longer
    /// matches), endian-swapped or otherwise corrupt bytes — is detected by
    /// the envelope (magic/version/length/checksum) or the decoders,
    /// reported through the [`crate::warn`] sink (stderr unless routed),
    /// and degrades that tier to cold. Existing in-memory
    /// entries always win over loaded ones. Loaded entries count as neither
    /// hits nor misses until they answer an evaluation.
    pub fn load_eval_cache(&self, path: &Path) -> CacheLoadReport {
        let mut warnings: Vec<String> = Vec::new();
        let op_entries: Vec<(OpKey, Result<Mapping, MapFailure>)> =
            read_tier(&Self::op_tier_path(path), OP_MAGIC, OP_VERSION, "op", &mut warnings);
        let op_loaded = op_entries.len();
        self.mapper.merge(op_entries);
        let fuse_entries: Vec<(FuseKey, FusedSummary)> =
            read_tier(path, FUSE_MAGIC, FUSE_VERSION, "fuse", &mut warnings);
        let fuse_loaded = fuse_entries.len();
        self.fuses.merge(fuse_entries);
        let warm_entries: Vec<(StructureKey, Vec<Placement>)> =
            read_tier(&Self::warm_tier_path(path), WARM_MAGIC, WARM_VERSION, "warm", &mut warnings);
        let warm_loaded = warm_entries.len();
        self.warm.merge(warm_entries);
        CacheLoadReport {
            op_loaded,
            fuse_loaded,
            warm_loaded,
            warning: if warnings.is_empty() { None } else { Some(warnings.join("; ")) },
        }
    }
}

/// Magic prefix of fuse-tier snapshot files (`eval_cache.bin`).
pub(crate) const FUSE_MAGIC: [u8; 8] = *b"FASTEVC1";
/// Fuse-tier format version; bump on any layout change so old files degrade
/// to a cold cache instead of being misread. Version 1 was the pre-split
/// monolithic `(workload, datapath, schedule, fusion) → WorkloadEval`
/// cache; those files are rejected with a version warning.
pub(crate) const FUSE_VERSION: u32 = 2;
/// Magic prefix of op-tier snapshot files (`…op.bin`).
pub(crate) const OP_MAGIC: [u8; 8] = *b"FASTOPC1";
/// Op-tier format version.
pub(crate) const OP_VERSION: u32 = 1;
/// Magic prefix of warm-start-tier snapshot files (`…warm.bin`).
pub(crate) const WARM_MAGIC: [u8; 8] = *b"FASTWRM1";
/// Warm-start-tier format version.
pub(crate) const WARM_VERSION: u32 = 1;

/// Atomically writes one tier snapshot; returns the entry count.
pub(crate) fn write_tier<K: Encode, V: Encode>(
    path: &Path,
    magic: [u8; 8],
    version: u32,
    entries: Vec<(K, V)>,
) -> std::io::Result<usize> {
    let mut encoded: Vec<(Vec<u8>, Vec<u8>)> =
        entries.iter().map(|(k, v)| (k.to_bytes(), v.to_bytes())).collect();
    encoded.sort();
    let mut payload = Writer::new();
    payload.put_u64(encoded.len() as u64);
    for (k, v) in &encoded {
        payload.put_bytes(k);
        payload.put_bytes(v);
    }
    let file = bin::write_envelope(magic, version, &payload.into_bytes());
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &file)?;
    std::fs::rename(&tmp, path)?;
    Ok(encoded.len())
}

/// Why a tier snapshot could not be adopted.
#[derive(Debug)]
pub(crate) enum TierReadError {
    /// The snapshot file does not exist — a cold tier, not damage.
    Missing,
    /// The file exists but is unusable; the message names the tier, the
    /// file, and the failing byte region (e.g. the checksum's coverage).
    Damaged(String),
}

/// Reads one tier snapshot strictly: the caller decides whether damage
/// degrades (the warm-start loader) or aborts (the merge pipeline, where a
/// silently dropped shard would break the merged == single-process
/// bit-identity contract). A snapshot is adopted whole or not at all:
/// everything decodes before anything is returned.
pub(crate) fn read_tier_strict<K: Decode, V: Decode>(
    path: &Path,
    magic: [u8; 8],
    version: u32,
    tier: &str,
) -> Result<Vec<(K, V)>, TierReadError> {
    let damaged =
        |what: String| Err(TierReadError::Damaged(format!("{tier} tier snapshot {what}")));
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(TierReadError::Missing),
        Err(e) => return damaged(format!("{}: {e}", path.display())),
    };
    let payload = match bin::read_envelope(magic, version, &bytes) {
        Ok(p) => p,
        Err(e) => return damaged(format!("{}: {e}", path.display())),
    };
    let mut r = Reader::new(payload);
    let count = match r.get_u64() {
        Ok(c) => c,
        Err(e) => return damaged(format!("{}: {e}", path.display())),
    };
    let mut decoded = Vec::new();
    for _ in 0..count {
        match <(K, V)>::decode(&mut r) {
            Ok(pair) => decoded.push(pair),
            Err(e) => return damaged(format!("{}: {e}", path.display())),
        }
    }
    if !r.is_done() {
        return damaged(format!("{}: {} trailing bytes", path.display(), r.remaining()));
    }
    Ok(decoded)
}

/// [`read_tier_strict`] with the warm-start policy: a missing file is
/// silently cold, damage is logged (naming the tier file and failing byte
/// region) and degrades to cold.
fn read_tier<K: Decode, V: Decode>(
    path: &Path,
    magic: [u8; 8],
    version: u32,
    tier: &str,
    warnings: &mut Vec<String>,
) -> Vec<(K, V)> {
    match read_tier_strict(path, magic, version, tier) {
        Ok(entries) => entries,
        Err(TierReadError::Missing) => Vec::new(),
        Err(TierReadError::Damaged(what)) => {
            crate::warn::warning(format_args!("evaluation-cache snapshot ignored — {what}"));
            warnings.push(what);
            Vec::new()
        }
    }
}

/// Per-tier miss counts at the last successful snapshot save — the
/// "what is already on disk" cursor of [`Evaluator::save_eval_cache_if_new`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SavedCacheMarks {
    /// Op-tier (Stage A) miss count at the last op-file save.
    pub op_misses: u64,
    /// Fuse-tier (Stage C) miss count at the last fuse-file save.
    pub fuse_misses: u64,
    /// Warm-tier incumbent count at the last warm-file save.
    pub warm_entries: u64,
}

/// Outcome of [`Evaluator::load_eval_cache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLoadReport {
    /// Op-tier entries merged (0 when that tier was cold).
    pub op_loaded: usize,
    /// Fuse-tier entries merged (0 when that tier was cold).
    pub fuse_loaded: usize,
    /// Warm-tier incumbents merged (0 when that tier was cold — the usual
    /// case: only exact-fusion studies write warm files).
    pub warm_loaded: usize,
    /// Why a snapshot file was rejected, if one was (also logged to
    /// stderr); `None` when every tier loaded (or was simply absent).
    pub warning: Option<String>,
}

impl CacheLoadReport {
    /// Total entries merged across all tiers.
    #[must_use]
    pub fn loaded(&self) -> usize {
        self.op_loaded + self.fuse_loaded + self.warm_loaded
    }
}

impl Encode for Objective {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Objective::Qps => 0,
            Objective::PerfPerTdp => 1,
        });
    }
}

impl Decode for Objective {
    fn decode(r: &mut Reader<'_>) -> Result<Self, bin::DecodeError> {
        match r.get_u8()? {
            0 => Ok(Objective::Qps),
            1 => Ok(Objective::PerfPerTdp),
            t => Err(bin::DecodeError { offset: 0, what: format!("invalid Objective tag {t}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_arch::presets;
    use fast_models::EfficientNet;

    fn evaluator(objective: Objective) -> Evaluator {
        Evaluator::new(
            vec![Workload::EfficientNet(EfficientNet::B0)],
            objective,
            Budget::paper_default(),
        )
    }

    /// The `128×128` arrays / tiny-L1 config no schedule can map.
    fn unschedulable() -> DatapathConfig {
        let mut cfg = presets::fast_large();
        cfg.sa_x = 128;
        cfg.sa_y = 128;
        cfg.pes_x = 2;
        cfg.pes_y = 1;
        cfg
    }

    #[test]
    fn evaluates_presets() {
        let e = evaluator(Objective::PerfPerTdp);
        let eval = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert!(eval.geomean_qps > 0.0);
        assert!(eval.objective_value > 0.0);
        assert_eq!(eval.workloads.len(), 1);
        assert!(eval.tdp_w > 50.0);
    }

    #[test]
    fn rejects_over_budget() {
        let e = evaluator(Objective::Qps);
        let mut cfg = presets::fast_large();
        cfg.pes_x = 32;
        cfg.pes_y = 32; // 1M MACs: far over the area budget
        let err = e.evaluate(&cfg, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::OverBudget { .. }));
    }

    #[test]
    fn rejects_schedule_failures_with_structured_cause() {
        let e = evaluator(Objective::Qps);
        // 128×128 weight tiles (32 KiB) cannot fit in 8 KiB shared L1.
        let err = e.evaluate(&unschedulable(), &SimOptions::default()).unwrap_err();
        let EvalError::ScheduleFailure(sim_err) = &err else {
            panic!("expected a schedule failure, got {err:?}");
        };
        // The cause is matchable without string inspection…
        assert!(matches!(sim_err.cause, MapFailure::WeightTileDoesNotFit { .. }));
        assert!(!sim_err.op.is_empty());
        // …and Display keeps the historical log line shape.
        assert!(err.to_string().starts_with("schedule failure: op `"));
    }

    #[test]
    fn rejects_invalid_config() {
        let e = evaluator(Objective::Qps);
        let mut cfg = presets::fast_large();
        cfg.pes_x = 3;
        assert!(matches!(
            e.evaluate(&cfg, &SimOptions::default()),
            Err(EvalError::InvalidConfig(_))
        ));
    }

    #[test]
    fn objective_perf_per_tdp_differs_from_qps() {
        let qps = evaluator(Objective::Qps)
            .evaluate(&presets::fast_large(), &SimOptions::default())
            .unwrap();
        let ppt = evaluator(Objective::PerfPerTdp)
            .evaluate(&presets::fast_large(), &SimOptions::default())
            .unwrap();
        assert!(ppt.objective_value < qps.objective_value);
        assert!((ppt.geomean_qps - qps.geomean_qps).abs() < 1e-9);
    }

    #[test]
    fn graph_cache_is_shared_across_clones() {
        let e = evaluator(Objective::Qps);
        let e2 = e.clone();
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let _ = e2.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(e.graphs.lock().unwrap().len(), 1);
    }

    #[test]
    fn eval_cache_hits_on_repeat_and_across_clones() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(e.cache_stats(), CacheStats { hits: 0, misses: 1 });
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(e.cache_stats(), CacheStats { hits: 1, misses: 1 });
        // Clones share the tiers; fresh_eval_cache severs them.
        let _ = e.clone().evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(e.cache_stats().hits, 2);
        let fresh = e.fresh_eval_cache();
        let _ = fresh.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(fresh.cache_stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(e.cache_stats().hits, 2, "fresh clone must not touch the original");
    }

    #[test]
    fn repeat_evaluation_is_a_hit_at_every_stage() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let cold = e.staged_cache_stats();
        assert_eq!(cold.sim, CacheStats { hits: 0, misses: 1 });
        assert_eq!(cold.fuse, CacheStats { hits: 0, misses: 1 });
        assert!(cold.op.misses > 0, "the mapper ran for every unique nest");
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let warm = e.staged_cache_stats();
        assert_eq!(warm.sim, CacheStats { hits: 1, misses: 1 });
        assert_eq!(warm.fuse, CacheStats { hits: 1, misses: 1 });
        assert_eq!(warm.op, cold.op, "a sim-tier hit re-runs no mapper at all");
    }

    #[test]
    fn eval_cache_result_is_bit_identical_to_fresh_run() {
        let e = evaluator(Objective::PerfPerTdp);
        let cfg = presets::fast_large();
        let sim = SimOptions::default();
        let first = e.evaluate(&cfg, &sim).unwrap();
        let cached = e.evaluate(&cfg, &sim).unwrap();
        assert!(e.cache_stats().hits >= 1);
        assert_eq!(first.objective_value.to_bits(), cached.objective_value.to_bits());
        assert_eq!(
            first.workloads[0].step_seconds.to_bits(),
            cached.workloads[0].step_seconds.to_bits()
        );
        assert_eq!(first.workloads[0].pinned_weight_bytes, cached.workloads[0].pinned_weight_bytes);
    }

    /// Unit-level check of the acceptance criterion: the staged pipeline is
    /// bit-identical to the monolithic reference path, success and failure
    /// alike (`tests/staged_pipeline.rs` drives the full study matrix).
    #[test]
    fn staged_evaluation_is_bit_identical_to_monolithic() {
        let staged = evaluator(Objective::PerfPerTdp);
        let mono = evaluator(Objective::PerfPerTdp).monolithic();
        let sim = SimOptions::default();
        for cfg in [presets::fast_large(), presets::fast_small(), presets::tpu_v3()] {
            let a = staged.evaluate(&cfg, &sim).unwrap();
            let b = mono.evaluate(&cfg, &sim).unwrap();
            assert_eq!(a.objective_value.to_bits(), b.objective_value.to_bits());
            assert_eq!(a.geomean_qps.to_bits(), b.geomean_qps.to_bits());
            for (x, y) in a.workloads.iter().zip(&b.workloads) {
                assert_eq!(x.step_seconds.to_bits(), y.step_seconds.to_bits());
                assert_eq!(x.qps.to_bits(), y.qps.to_bits());
                assert_eq!(x.utilization.to_bits(), y.utilization.to_bits());
                assert_eq!(x.prefusion_stall.to_bits(), y.prefusion_stall.to_bits());
                assert_eq!(x.postfusion_stall.to_bits(), y.postfusion_stall.to_bits());
                assert_eq!(x.op_intensity_pre.to_bits(), y.op_intensity_pre.to_bits());
                assert_eq!(x.op_intensity_post.to_bits(), y.op_intensity_post.to_bits());
                assert_eq!(x.pinned_weight_bytes, y.pinned_weight_bytes);
            }
        }
        assert_eq!(
            staged.evaluate(&unschedulable(), &sim).unwrap_err(),
            mono.evaluate(&unschedulable(), &sim).unwrap_err(),
            "failures must match, op name and cause included"
        );
        assert_eq!(mono.cache_stats(), CacheStats::default(), "monolithic touches no cache");
    }

    #[test]
    fn schedule_failures_are_cached_in_the_sim_tier() {
        let e = evaluator(Objective::Qps);
        let cfg = unschedulable();
        let a = e.evaluate(&cfg, &SimOptions::default()).unwrap_err();
        let b = e.evaluate(&cfg, &SimOptions::default()).unwrap_err();
        assert_eq!(a, b);
        let stats = e.staged_cache_stats();
        assert_eq!(stats.sim, CacheStats { hits: 1, misses: 1 });
        assert_eq!(stats.fuse, CacheStats { hits: 0, misses: 0 }, "failures never reach fusion");
    }

    #[test]
    fn eval_cache_distinguishes_fusion_options_without_remapping() {
        let base = evaluator(Objective::Qps);
        let cfg = presets::fast_large();
        let sim = SimOptions::default();
        let with_fusion =
            base.clone().with_fusion(FusionOptions { disabled: true, ..FusionOptions::default() });
        let fused = base.evaluate(&cfg, &sim).unwrap();
        let after_first = base.staged_cache_stats();
        // Shares the tiers but must not share fuse entries: options differ.
        let unfused = with_fusion.evaluate(&cfg, &sim).unwrap();
        assert_eq!(base.cache_stats(), CacheStats { hits: 0, misses: 2 });
        assert!(
            unfused.workloads[0].step_seconds >= fused.workloads[0].step_seconds,
            "disabling fusion cannot speed the workload up"
        );
        // The fusion-options sweep re-ran Stage C only: the assembly was a
        // sim-tier hit and the mapper was not consulted at all.
        let after_second = base.staged_cache_stats();
        assert_eq!(after_second.sim, CacheStats { hits: 1, misses: 1 });
        assert_eq!(after_second.op, after_first.op, "fusion sweeps must never re-map");
    }

    #[test]
    fn op_tier_is_shared_across_workloads_and_batches() {
        // B0 and B1 (and different batches of each) share conv shapes: the
        // mapper must see cross-workload hits.
        let e = Evaluator::new(
            vec![
                Workload::EfficientNet(EfficientNet::B0),
                Workload::EfficientNet(EfficientNet::B1),
            ],
            Objective::Qps,
            Budget::paper_default(),
        );
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let stats = e.staged_cache_stats();
        assert!(
            stats.op.hits > 0,
            "B0/B1 share op shapes; expected cross-workload mapper hits, got {stats:?}"
        );
        assert_eq!(e.op_cache_len() as u64, stats.op.misses, "one miss per unique shape");
    }

    #[test]
    fn for_scenario_shares_cache_across_budget_objective_and_domain() {
        use fast_models::EfficientNet;
        let base = evaluator(Objective::Qps);
        let cfg = presets::fast_large();
        let sim = SimOptions::default();
        let _ = base.evaluate(&cfg, &sim).unwrap();
        assert_eq!(base.cache_stats(), CacheStats { hits: 0, misses: 1 });
        // Different objective and a tighter (still admitting) budget: the
        // whole pipeline is a cache hit.
        let tighter = Budget {
            max_area_mm2: Budget::paper_default().max_area_mm2 * 0.9,
            max_tdp_w: Budget::paper_default().max_tdp_w * 0.9,
        };
        let rescore = base.for_scenario(
            vec![Workload::EfficientNet(EfficientNet::B0)],
            Objective::PerfPerTdp,
            tighter,
        );
        let _ = rescore.evaluate(&cfg, &sim).unwrap();
        assert_eq!(base.cache_stats(), CacheStats { hits: 1, misses: 1 });
        // A multi-workload domain containing the simulated workload reuses
        // its simulation and only pays for the new workload.
        let multi = base.for_scenario(
            vec![
                Workload::EfficientNet(EfficientNet::B0),
                Workload::EfficientNet(EfficientNet::B1),
            ],
            Objective::Qps,
            Budget::paper_default(),
        );
        let _ = multi.evaluate(&cfg, &sim).unwrap();
        assert_eq!(base.cache_stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn eval_cache_distinguishes_objectives_without_resimulating() {
        // Multi-objective re-scoring: same design under QPS and Perf/TDP
        // shares one simulation when the evaluators share a cache.
        let qps_eval = evaluator(Objective::Qps);
        let mut ppt_eval = qps_eval.clone();
        ppt_eval.objective = Objective::PerfPerTdp;
        let cfg = presets::fast_large();
        let a = qps_eval.evaluate(&cfg, &SimOptions::default()).unwrap();
        let b = ppt_eval.evaluate(&cfg, &SimOptions::default()).unwrap();
        assert_eq!(qps_eval.cache_stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(a.geomean_qps.to_bits(), b.geomean_qps.to_bits());
        assert!(b.objective_value < a.objective_value);
    }

    /// A per-test scratch path under the target-adjacent temp dir.
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fast-evc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn cache_snapshot_round_trips_both_tiers_bit_identically() {
        let e = evaluator(Objective::PerfPerTdp);
        let sim = SimOptions::default();
        let first = e.evaluate(&presets::fast_large(), &sim).unwrap();
        // A cached schedule failure rides along in the op tier.
        let bad = unschedulable();
        let _ = e.evaluate(&bad, &sim).unwrap_err();

        let path = scratch("roundtrip.bin");
        let (op_written, fuse_written) = e.save_eval_cache(&path).unwrap();
        assert_eq!(op_written, e.op_cache_len());
        assert_eq!(fuse_written, 1, "one successful fusion solve");
        assert!(Evaluator::op_tier_path(&path).exists());

        let fresh = e.fresh_eval_cache();
        let report = fresh.load_eval_cache(&path);
        assert_eq!(report.op_loaded, op_written);
        assert_eq!(report.fuse_loaded, 1);
        assert_eq!(report.warning, None);
        assert_eq!(report.loaded(), op_written + 1);
        // Warm: the success re-assembles from the op tier and answers
        // fusion from the fuse tier, bit-identically; the failure replays
        // from the cached op-tier failure without ever running the mapper.
        let warm = fresh.evaluate(&presets::fast_large(), &sim).unwrap();
        let bad_again = fresh.evaluate(&bad, &sim).unwrap_err();
        let stats = fresh.staged_cache_stats();
        assert_eq!(stats.fuse, CacheStats { hits: 1, misses: 0 });
        assert_eq!(stats.op.misses, 0, "a loaded op tier re-maps nothing");
        assert!(stats.op.hits > 0);
        assert_eq!(warm.objective_value.to_bits(), first.objective_value.to_bits());
        assert_eq!(
            warm.workloads[0].step_seconds.to_bits(),
            first.workloads[0].step_seconds.to_bits()
        );
        assert!(matches!(bad_again, EvalError::ScheduleFailure(_)));
    }

    #[test]
    fn warm_tier_snapshot_rides_along_under_exact_fusion() {
        let exact = FusionOptions {
            exact_binary_limit: 10_000,
            max_nodes: 4_000,
            ..FusionOptions::default()
        };
        let e = evaluator(Objective::PerfPerTdp).with_fusion(exact.clone());
        let sim = SimOptions::default();
        let first = e.evaluate(&presets::fast_large(), &sim).unwrap();
        assert!(!e.warm.is_empty(), "the exact solver must populate the warm tier");
        assert_eq!(e.staged_cache_stats().solver.warm_misses, 1, "one cold structure");

        let path = scratch("warm-rides-along.bin");
        e.save_eval_cache(&path).unwrap();
        assert!(Evaluator::warm_tier_path(&path).exists());

        let fresh = e.fresh_eval_cache();
        let report = fresh.load_eval_cache(&path);
        assert_eq!(report.warm_loaded, e.warm.len());
        assert_eq!(report.warning, None);
        // A loaded tier is a pure hint: re-evaluating answers from the fuse
        // tier, and a fresh structure variant solved through the loaded
        // incumbents stays bit-identical to a tier-less solve.
        let again = fresh.evaluate(&presets::fast_large(), &sim).unwrap();
        assert_eq!(again.objective_value.to_bits(), first.objective_value.to_bits());

        // The heuristic-only default path writes no warm file at all.
        let heuristic = evaluator(Objective::PerfPerTdp);
        let _ = heuristic.evaluate(&presets::fast_large(), &sim).unwrap();
        let hpath = scratch("no-warm-file.bin");
        heuristic.save_eval_cache(&hpath).unwrap();
        assert!(!Evaluator::warm_tier_path(&hpath).exists());
    }

    #[test]
    fn cache_snapshot_missing_files_are_silently_cold() {
        let e = evaluator(Objective::Qps);
        let report = e.load_eval_cache(&scratch("never-written.bin"));
        assert_eq!(
            report,
            CacheLoadReport { op_loaded: 0, fuse_loaded: 0, warm_loaded: 0, warning: None }
        );
    }

    #[test]
    fn degrade_to_cold_warnings_route_through_the_warn_sink() {
        // The serving path: a routed sink captures the degradation warning
        // per job, so a client sees *its* study's snapshot damage in its
        // stream instead of the line landing in the daemon's stderr.
        let path = scratch("warn-routed.bin");
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        let e = evaluator(Objective::Qps);
        let (report, lines) = crate::warn::capture(|| e.load_eval_cache(&path));
        assert!(report.warning.is_some(), "the report still carries the cause");
        assert_eq!(lines.len(), 1, "exactly one warning line: {lines:?}");
        assert!(
            lines[0].starts_with("warning: evaluation-cache snapshot ignored — "),
            "{}",
            lines[0]
        );
        // Outside the capture the sink is uninstalled again; loading the
        // same damaged file must not send anywhere (it prints to stderr).
        let ((), after) = crate::warn::capture(|| ());
        assert!(after.is_empty());
    }

    #[test]
    fn old_format_eval_cache_degrades_to_a_warned_cold_cache() {
        // A version-1 file is what the pre-split monolithic cache wrote;
        // its payload layout is unreadable now, so the version gate must
        // reject it before any decoding is attempted.
        let path = scratch("old-format.bin");
        let old = bin::write_envelope(FUSE_MAGIC, 1, b"pre-split cache payload");
        std::fs::write(&path, &old).unwrap();
        let e = evaluator(Objective::Qps);
        let report = e.load_eval_cache(&path);
        assert_eq!(report.fuse_loaded, 0);
        assert!(report.warning.unwrap().contains("version"), "must name the version skew");
        assert_eq!(e.fuse_cache_len(), 0, "cold means cold");
    }

    /// Writes both tier files for corruption tests, returning `(op, fuse)`
    /// paths.
    fn saved_snapshot(e: &Evaluator, name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let path = scratch(name);
        e.save_eval_cache(&path).unwrap();
        (Evaluator::op_tier_path(&path), path)
    }

    #[test]
    fn cache_snapshot_rejects_truncation_at_every_length_in_both_tiers() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let (op_path, fuse_path) = saved_snapshot(&e, "truncate.bin");

        for (tier, source) in [("op", &op_path), ("fuse", &fuse_path)] {
            let bytes = std::fs::read(source).unwrap();
            for cut in
                [0, 1, bin::ENVELOPE_HEADER_LEN - 1, bin::ENVELOPE_HEADER_LEN, bytes.len() - 1]
            {
                let target = scratch("truncated.bin");
                // Rebuild the pair: one tier intact, the other truncated.
                e.save_eval_cache(&target).unwrap();
                let cut_path =
                    if tier == "op" { Evaluator::op_tier_path(&target) } else { target.clone() };
                std::fs::write(&cut_path, &bytes[..cut]).unwrap();
                let fresh = e.fresh_eval_cache();
                let report = fresh.load_eval_cache(&target);
                if tier == "op" {
                    assert_eq!(report.op_loaded, 0, "{tier} cut at {cut}");
                    assert_eq!(fresh.op_cache_len(), 0, "{tier} cut at {cut}: cold means cold");
                } else {
                    assert_eq!(report.fuse_loaded, 0, "{tier} cut at {cut}");
                    assert_eq!(fresh.fuse_cache_len(), 0, "{tier} cut at {cut}: cold means cold");
                }
                assert!(report.warning.is_some(), "{tier} cut at {cut}");
            }
        }
    }

    #[test]
    fn cache_snapshot_rejects_version_skew_per_tier() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        for tier in ["op", "fuse"] {
            let (op_path, fuse_path) = saved_snapshot(&e, &format!("version-{tier}.bin"));
            let skewed = if tier == "op" { &op_path } else { &fuse_path };
            let mut bytes = std::fs::read(skewed).unwrap();
            bytes[8] = bytes[8].wrapping_add(1); // version u32's low byte
            std::fs::write(skewed, &bytes).unwrap();
            let fresh = e.fresh_eval_cache();
            let report = fresh.load_eval_cache(&fuse_path);
            if tier == "op" {
                assert_eq!(report.op_loaded, 0);
                assert!(report.fuse_loaded > 0, "the intact tier still loads");
            } else {
                assert_eq!(report.fuse_loaded, 0);
                assert!(report.op_loaded > 0, "the intact tier still loads");
            }
            assert!(report.warning.unwrap().contains("version"), "must name the version skew");
        }
    }

    #[test]
    fn cache_snapshot_rejects_foreign_endian_garbage() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let (op_path, fuse_path) = saved_snapshot(&e, "endian.bin");

        // Byte-swap both payloads as a big-endian writer would have
        // produced them: the checksums (computed over the little-endian
        // payloads) fail.
        for path in [&op_path, &fuse_path] {
            let mut swapped = std::fs::read(path).unwrap();
            swapped[bin::ENVELOPE_HEADER_LEN..].reverse();
            std::fs::write(path, &swapped).unwrap();
        }
        let fresh = e.fresh_eval_cache();
        let report = fresh.load_eval_cache(&fuse_path);
        assert_eq!(report.loaded(), 0);
        assert!(report.warning.is_some());

        // Arbitrary garbage of plausible size: bad magic, both tiers.
        std::fs::write(&op_path, vec![0xA5u8; 256]).unwrap();
        std::fs::write(&fuse_path, vec![0xA5u8; 256]).unwrap();
        let report = fresh.load_eval_cache(&fuse_path);
        assert_eq!(report.loaded(), 0);
        assert!(report.warning.unwrap().contains("magic"));
        assert_eq!(fresh.op_cache_len(), 0);
        assert_eq!(fresh.fuse_cache_len(), 0);
    }

    #[test]
    fn cache_snapshot_checksum_catches_flipped_payload_bits_in_both_tiers() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        for tier in ["op", "fuse"] {
            let (op_path, fuse_path) = saved_snapshot(&e, &format!("bitflip-{tier}.bin"));
            let flipped = if tier == "op" { &op_path } else { &fuse_path };
            let mut bytes = std::fs::read(flipped).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x10;
            std::fs::write(flipped, &bytes).unwrap();
            let fresh = e.fresh_eval_cache();
            let report = fresh.load_eval_cache(&fuse_path);
            if tier == "op" {
                assert_eq!(report.op_loaded, 0, "flipped op bit must void the op tier");
            } else {
                assert_eq!(report.fuse_loaded, 0, "flipped fuse bit must void the fuse tier");
            }
            assert!(report.warning.unwrap().contains("checksum"));
        }
    }

    /// Pins the shape of the corrupt-snapshot warning: it must name the
    /// tier, the exact file, and the byte region whose checksum failed —
    /// "cold cache" alone is not actionable when the file came out of a
    /// multi-shard merge.
    #[test]
    fn checksum_warning_names_tier_file_and_byte_range() {
        let e = evaluator(Objective::Qps);
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        for tier in ["op", "fuse"] {
            let (op_path, fuse_path) = saved_snapshot(&e, &format!("warnshape-{tier}.bin"));
            let flipped = if tier == "op" { &op_path } else { &fuse_path };
            let mut bytes = std::fs::read(flipped).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
            std::fs::write(flipped, &bytes).unwrap();

            let fresh = e.fresh_eval_cache();
            let warning = fresh.load_eval_cache(&fuse_path).warning.unwrap();
            assert!(
                warning.starts_with(&format!("{tier} tier snapshot {}", flipped.display())),
                "warning must lead with the tier and file: {warning}"
            );
            assert!(
                warning.contains(&format!(
                    "checksum mismatch over payload bytes {}..{}",
                    bin::ENVELOPE_HEADER_LEN,
                    bytes.len()
                )),
                "warning must give the failing byte range: {warning}"
            );
            assert!(
                warning.contains("stored 0x") && warning.contains("computed 0x"),
                "warning must show both sums: {warning}"
            );
        }
    }

    #[test]
    fn cache_snapshot_merge_keeps_existing_entries() {
        let e = evaluator(Objective::Qps);
        let sim = SimOptions::default();
        let _ = e.evaluate(&presets::fast_large(), &sim).unwrap();
        let path = scratch("merge.bin");
        e.save_eval_cache(&path).unwrap();

        // An evaluator that already computed the snapshot's keys keeps its
        // own entries and gains nothing new for them.
        let other = e.fresh_eval_cache();
        let _ = other.evaluate(&presets::fast_large(), &sim).unwrap();
        let report = other.load_eval_cache(&path);
        assert_eq!(report.fuse_loaded, 1);
        assert_eq!(other.fuse_cache_len(), 1);
        assert_eq!(other.op_cache_len() as u64, other.staged_cache_stats().op.misses);
    }

    #[test]
    fn fusion_only_rounds_rewrite_only_the_fuse_file() {
        let e = evaluator(Objective::Qps);
        let path = scratch("marks.bin");
        let mut marks = e.save_marks();
        assert_eq!(marks, SavedCacheMarks::default());

        // Round 1: fresh simulation — both files written.
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        e.save_eval_cache_if_new(&path, &mut marks);
        let op_path = Evaluator::op_tier_path(&path);
        let op_mtime = |p: &Path| std::fs::metadata(p).unwrap().modified().unwrap();
        assert!(path.exists() && op_path.exists());
        let op_written = std::fs::read(&op_path).unwrap();
        let t0 = op_mtime(&op_path);

        // Round 2: a fusion-only change (same datapath, new options) — the
        // op tier gained nothing, so only the fuse file may be rewritten.
        let sweep = e
            .clone()
            .with_fusion(FusionOptions { residency_window: 1, ..FusionOptions::default() });
        let _ = sweep.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        let fuse_before = std::fs::read(&path).unwrap();
        sweep.save_eval_cache_if_new(&path, &mut marks);
        assert_eq!(std::fs::read(&op_path).unwrap(), op_written, "op tier must not be rewritten");
        assert_eq!(op_mtime(&op_path), t0, "op tier file untouched by a fusion-only round");
        assert_ne!(std::fs::read(&path).unwrap(), fuse_before, "fuse tier gained an entry");

        // Round 3: nothing new — neither file is rewritten.
        let fuse_now = std::fs::read(&path).unwrap();
        let _ = sweep.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        sweep.save_eval_cache_if_new(&path, &mut marks);
        assert_eq!(std::fs::read(&path).unwrap(), fuse_now);
        assert_eq!(std::fs::read(&op_path).unwrap(), op_written);
    }
}
