//! Trial evaluation: the three-phase pipeline of Figure 1.
//!
//! For a candidate design the evaluator (1) validates the datapath and its
//! area/TDP against the budget (Eq. 4), (2) schedules every op of every
//! workload through the Timeloop-style mapper (rejecting on schedule
//! failures, Eq. 5), (3) runs the FAST-fusion ILP, and finally scores the
//! objective. Workload graphs are cached by `(workload, batch)` since the
//! model zoo is immutable across trials.

use crate::search_space::FastSpace;
use fast_arch::{cost, Budget, DatapathConfig};
use fast_fusion::{fuse_workload, FusionOptions, FusionResult};
use fast_models::Workload;
use fast_sim::{simulate, SimOptions, WorkloadPerf};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The optimization objective `f` (§5.2). Higher is better in all cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Inference throughput (queries/second), geomean across workloads.
    Qps,
    /// Throughput per watt of TDP — the paper's headline Perf/TDP metric
    /// (the Perf/TCO proxy).
    #[default]
    PerfPerTdp,
}

/// Why a trial was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The datapath violates a Table-3 range.
    InvalidConfig(String),
    /// Area or TDP exceeds the budget (Eq. 4).
    OverBudget {
        /// Normalized area (1.0 = at budget).
        area: f64,
        /// Normalized TDP (1.0 = at budget).
        tdp: f64,
    },
    /// A workload could not be scheduled (Eq. 5).
    ScheduleFailure(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidConfig(e) => write!(f, "invalid config: {e}"),
            EvalError::OverBudget { area, tdp } => {
                write!(f, "over budget: area {area:.2}, tdp {tdp:.2}")
            }
            EvalError::ScheduleFailure(e) => write!(f, "schedule failure: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Per-workload outcome of one design evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadEval {
    /// The workload.
    pub workload: Workload,
    /// Post-fusion step time (seconds) for one core's batch.
    pub step_seconds: f64,
    /// Chip throughput in queries/second.
    pub qps: f64,
    /// Compute utilization at the post-fusion step time.
    pub utilization: f64,
    /// Pre-fusion memory-stall fraction.
    pub prefusion_stall: f64,
    /// Post-fusion memory-stall fraction.
    pub postfusion_stall: f64,
    /// Pre-fusion operational intensity (FLOPs/DRAM byte).
    pub op_intensity_pre: f64,
    /// Post-fusion operational intensity.
    pub op_intensity_post: f64,
    /// Bytes of weights pinned by FAST fusion.
    pub pinned_weight_bytes: u64,
}

/// Complete evaluation of one design point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignEval {
    /// The evaluated datapath.
    pub config: DatapathConfig,
    /// Scheduling options used.
    pub sim: SimOptions,
    /// Per-workload results.
    pub workloads: Vec<WorkloadEval>,
    /// Power-virus TDP (watts).
    pub tdp_w: f64,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Geomean QPS across workloads.
    pub geomean_qps: f64,
    /// Objective value under the evaluator's objective.
    pub objective_value: f64,
}

/// Evaluates design points for a fixed workload set, objective and budget.
///
/// Clone-cheap: the graph cache is shared behind an `Arc`.
#[derive(Clone)]
pub struct Evaluator {
    workloads: Vec<Workload>,
    objective: Objective,
    budget: Budget,
    fusion: FusionOptions,
    graphs: Arc<Mutex<HashMap<(Workload, u64), Arc<fast_ir::Graph>>>>,
}

impl Evaluator {
    /// Creates an evaluator.
    #[must_use]
    pub fn new(workloads: Vec<Workload>, objective: Objective, budget: Budget) -> Self {
        Evaluator {
            workloads,
            objective,
            budget,
            fusion: FusionOptions::heuristic_only(),
            graphs: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Uses a custom fusion configuration (e.g. the exact ILP path for
    /// one-off reports).
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionOptions) -> Self {
        self.fusion = fusion;
        self
    }

    /// The workload set.
    #[must_use]
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The budget in force.
    #[must_use]
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The objective in force.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    fn graph(&self, w: Workload, batch: u64) -> Arc<fast_ir::Graph> {
        let mut cache = self.graphs.lock().expect("graph cache poisoned");
        cache
            .entry((w, batch))
            .or_insert_with(|| {
                Arc::new(w.build(batch).expect("in-tree workloads always build"))
            })
            .clone()
    }

    /// Simulates one workload on a config (pre-fusion detail), without budget
    /// checks — used by report/breakdown code as well as `evaluate`.
    ///
    /// # Errors
    /// Propagates schedule failures.
    pub fn simulate_workload(
        &self,
        w: Workload,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<WorkloadPerf, EvalError> {
        let graph = self.graph(w, cfg.native_batch);
        simulate(&graph, cfg, sim).map_err(|e| EvalError::ScheduleFailure(e.to_string()))
    }

    /// Runs fusion for a simulated workload.
    #[must_use]
    pub fn fuse(&self, perf: &WorkloadPerf, cfg: &DatapathConfig) -> FusionResult {
        fuse_workload(perf, cfg, &self.fusion)
    }

    /// Full Figure-1 evaluation of one design point.
    ///
    /// # Errors
    /// Returns [`EvalError`] when the design is invalid, over budget, or
    /// unschedulable — the search loop maps these to safe-search rejections.
    pub fn evaluate(
        &self,
        cfg: &DatapathConfig,
        sim: &SimOptions,
    ) -> Result<DesignEval, EvalError> {
        cfg.validate().map_err(|e| EvalError::InvalidConfig(e.to_string()))?;
        let area = cost::area(cfg).total_mm2;
        let tdp = cost::tdp(cfg).total_w;
        if !self.budget.admits(cfg) {
            return Err(EvalError::OverBudget {
                area: self.budget.normalized_area(cfg),
                tdp: self.budget.normalized_tdp(cfg),
            });
        }

        let mut workloads = Vec::with_capacity(self.workloads.len());
        let mut log_qps_sum = 0.0;
        for &w in &self.workloads {
            let perf = self.simulate_workload(w, cfg, sim)?;
            let fused = self.fuse(&perf, cfg);
            let step = fused.total_seconds;
            let qps = (perf.batch_per_core * perf.cores) as f64 / step;
            log_qps_sum += qps.ln();
            workloads.push(WorkloadEval {
                workload: w,
                step_seconds: step,
                qps,
                utilization: perf.utilization_at(step),
                prefusion_stall: perf.prefusion_memory_stall_fraction(),
                postfusion_stall: (1.0 - perf.compute_seconds / step).max(0.0),
                op_intensity_pre: perf.prefusion_op_intensity(),
                op_intensity_post: fused.op_intensity(perf.total_flops),
                pinned_weight_bytes: fused.pinned_weight_bytes,
            });
        }
        let geomean_qps = (log_qps_sum / self.workloads.len() as f64).exp();
        let objective_value = match self.objective {
            Objective::Qps => geomean_qps,
            Objective::PerfPerTdp => geomean_qps / tdp,
        };
        Ok(DesignEval {
            config: *cfg,
            sim: *sim,
            workloads,
            tdp_w: tdp,
            area_mm2: area,
            geomean_qps,
            objective_value,
        })
    }

    /// Evaluates an encoded search-space point.
    ///
    /// # Errors
    /// See [`Evaluator::evaluate`].
    pub fn evaluate_point(
        &self,
        space: &FastSpace,
        point: &[usize],
    ) -> Result<DesignEval, EvalError> {
        let (cfg, sim) = space.decode(point);
        self.evaluate(&cfg, &sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_arch::presets;
    use fast_models::EfficientNet;

    fn evaluator(objective: Objective) -> Evaluator {
        Evaluator::new(
            vec![Workload::EfficientNet(EfficientNet::B0)],
            objective,
            Budget::paper_default(),
        )
    }

    #[test]
    fn evaluates_presets() {
        let e = evaluator(Objective::PerfPerTdp);
        let eval = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert!(eval.geomean_qps > 0.0);
        assert!(eval.objective_value > 0.0);
        assert_eq!(eval.workloads.len(), 1);
        assert!(eval.tdp_w > 50.0);
    }

    #[test]
    fn rejects_over_budget() {
        let e = evaluator(Objective::Qps);
        let mut cfg = presets::fast_large();
        cfg.pes_x = 32;
        cfg.pes_y = 32; // 1M MACs: far over the area budget
        let err = e.evaluate(&cfg, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::OverBudget { .. }));
    }

    #[test]
    fn rejects_schedule_failures() {
        let e = evaluator(Objective::Qps);
        let mut cfg = presets::fast_large();
        cfg.sa_x = 128;
        cfg.sa_y = 128;
        cfg.pes_x = 2;
        cfg.pes_y = 1;
        // 128×128 weight tiles (32 KiB) cannot fit in 8 KiB shared L1.
        let err = e.evaluate(&cfg, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::ScheduleFailure(_)), "{err:?}");
    }

    #[test]
    fn rejects_invalid_config() {
        let e = evaluator(Objective::Qps);
        let mut cfg = presets::fast_large();
        cfg.pes_x = 3;
        assert!(matches!(
            e.evaluate(&cfg, &SimOptions::default()),
            Err(EvalError::InvalidConfig(_))
        ));
    }

    #[test]
    fn objective_perf_per_tdp_differs_from_qps() {
        let qps = evaluator(Objective::Qps)
            .evaluate(&presets::fast_large(), &SimOptions::default())
            .unwrap();
        let ppt = evaluator(Objective::PerfPerTdp)
            .evaluate(&presets::fast_large(), &SimOptions::default())
            .unwrap();
        assert!(ppt.objective_value < qps.objective_value);
        assert!((ppt.geomean_qps - qps.geomean_qps).abs() < 1e-9);
    }

    #[test]
    fn graph_cache_is_shared_across_clones() {
        let e = evaluator(Objective::Qps);
        let e2 = e.clone();
        let _ = e.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        // Second evaluation through the clone hits the cache (smoke test —
        // correctness, not timing).
        let _ = e2.evaluate(&presets::fast_large(), &SimOptions::default()).unwrap();
        assert_eq!(e.graphs.lock().unwrap().len(), 1);
    }
}
