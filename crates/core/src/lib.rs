//! # fast-core — the Full-stack Accelerator Search Technique
//!
//! The paper's primary contribution (§5): joint optimization of the hardware
//! datapath, the software schedule, and compiler passes (FAST fusion, tensor
//! padding, two-pass softmax), targeting inference accelerators for one or a
//! set of workloads under area/TDP budgets.
//!
//! Pipeline per trial (Figure 1):
//! 1. a black-box optimizer ([`fast_search`]) proposes a point in the
//!    [`FastSpace`] (Table 3 + softmax knob);
//! 2. the simulator ([`fast_sim`]) pads and schedules every op of every
//!    workload on the candidate datapath, rejecting schedule failures;
//! 3. the FAST-fusion ILP ([`fast_fusion`]) places activations/weights in
//!    Global Memory and the design is scored (QPS or Perf/TDP geomean).
//!
//! Above the single-study drivers, the [`sweep`] module runs whole result
//! matrices — `{budget × objective × workload domain}` — as Pareto studies
//! over one shared evaluation cache (the paper's Figs. 9–11 sweeps), and
//! makes them durable: [`Checkpointer`] + [`SweepRunner::resume`] let a
//! killed sweep continue bit-identically, with the evaluation cache
//! persisted via [`Evaluator::save_eval_cache`] /
//! [`Evaluator::load_eval_cache`].
//!
//! ```no_run
//! use fast_core::{Evaluator, FastStudy, Objective};
//! use fast_arch::Budget;
//! use fast_models::Workload;
//!
//! let evaluator = Evaluator::new(
//!     vec![Workload::ResNet50],
//!     Objective::PerfPerTdp,
//!     Budget::paper_default(),
//! );
//! let report = FastStudy::new(&evaluator, 400).run().expect("valid configuration");
//! println!("best objective: {:?}", report.study.best_objective);
//! ```

pub mod analysis;
pub mod driver;
pub mod evaluate;
pub mod journal;
pub mod merge;
pub mod report;
pub mod search_space;
pub mod sweep;
pub mod warn;

pub use analysis::{
    ablation_study, ablation_variants, ablation_workloads, component_breakdown,
    frontier_hypervolume, hypervolume_3d, kendall_tau, spearman_rank, AblationRow, BreakdownRow,
};
pub use driver::{FastStudy, OptimizerKind, SearchConfig, SearchReport};
// The unified study axes, re-exported so driver callers need one import.
pub use evaluate::{
    CacheLoadReport, CacheStats, DesignEval, EvalError, Evaluator, Objective, SavedCacheMarks,
    SolverStats, StagedCacheStats, WorkloadEval,
};
pub use fast_search::{
    Durability, Execution, Fidelity, FidelityReport, StudyConfigError, StudyObjective, StudyReport,
    SurrogateTier,
};
pub use fast_surrogate::{GuideMetric, SurrogateScreener};
pub use journal::{JobEntry, JobId, JobJournal, JobSpec, JobState};
pub use merge::{
    merge_eval_caches, merge_sweep_checkpoints, CacheMergeStats, MergeError, MergeReport,
};
pub use report::{design_report, relative_to_tpu, DesignReport, RelativePerf};
pub use search_space::{combined_search_space_log10, FastSpace, SpaceDims};
pub use sweep::{
    points_table, BudgetLevel, Checkpointer, CompletedScenario, FrontierDesign, Scenario,
    ScenarioMatrix, ScenarioResult, SweepConfig, SweepEvent, SweepObserver, SweepResult,
    SweepRunner, SweepSession,
};
