//! The job journal: crash-safe bookkeeping for a serving process.
//!
//! A `fast-serve` daemon accepts sweep jobs over a socket and must survive
//! `kill -9` without losing an accepted job or a computed result.
//! [`JobJournal`] provides exactly that, as a thin directory layout over the
//! existing durability machinery:
//!
//! ```text
//! <root>/jobs/job-000001/job.bin         the accepted JobSpec (FASTJOB1)
//! <root>/jobs/job-000001/eval_cache.bin  the job's Checkpointer pair —
//! <root>/jobs/job-000001/eval_cache.op.bin   written while the sweep runs
//! <root>/jobs/job-000001/sweep.bin       the job's scenario ledger
//! <root>/jobs/job-000001/result.bin      final records (FASTJRS1); its
//!                                        existence marks the job done
//! ```
//!
//! Every file is written atomically (temp + rename), so a job is always in
//! exactly one of three states: **pending** (spec recorded, no result — in
//! flight or never started), **done** (result recorded), or **damaged**
//! (spec unreadable). On restart a server replays [`JobJournal::jobs`]:
//! done jobs serve their recorded result, pending jobs re-run through
//! [`crate::SweepRunner::run_session`] with `resume: true` against their
//! checkpoint directory — bit-identical to an uninterrupted run by the
//! sweep determinism contract — and damaged jobs are reported, never
//! silently dropped.

use crate::sweep::{Checkpointer, CompletedScenario, ScenarioMatrix, SweepConfig};
use serde::bin::{self, Decode, Encode, Reader, Writer};
use std::fmt;
use std::path::{Path, PathBuf};

/// Magic prefix of job-spec files.
pub(crate) const JOB_MAGIC: [u8; 8] = *b"FASTJOB1";
/// Job-spec format version; bump on layout changes.
pub(crate) const JOB_VERSION: u32 = 1;
/// Magic prefix of job-result files.
pub(crate) const RESULT_MAGIC: [u8; 8] = *b"FASTJRS1";
/// Job-result format version; bump on layout changes.
pub(crate) const RESULT_VERSION: u32 = 1;

/// A declarative sweep request — what a client submits and the journal
/// persists: a [`ScenarioMatrix`] plus the search settings to run it under.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen display name (free-form; not an identifier).
    pub name: String,
    /// The scenario matrix to run.
    pub matrix: ScenarioMatrix,
    /// Search settings (trials, optimizer, seed, batch, seed designs).
    pub config: SweepConfig,
}

impl Encode for JobSpec {
    fn encode(&self, w: &mut Writer) {
        let JobSpec { name, matrix, config } = self;
        name.encode(w);
        matrix.encode(w);
        config.encode(w);
    }
}

impl Decode for JobSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, bin::DecodeError> {
        Ok(JobSpec {
            name: Decode::decode(r)?,
            matrix: Decode::decode(r)?,
            config: Decode::decode(r)?,
        })
    }
}

/// A journal-assigned job identifier, monotone per journal directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{:06}", self.0)
    }
}

/// The durable state of a journaled job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Spec recorded, no result yet: queued or in flight when the process
    /// died; a restarted server resumes it.
    Pending,
    /// Result recorded; the job is complete.
    Done,
    /// The spec file is unreadable (the stored reason says why). The job
    /// cannot be resumed, but its directory is preserved for inspection.
    Damaged(String),
}

/// One journaled job, as enumerated by [`JobJournal::jobs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEntry {
    /// The job's identifier (also its directory name).
    pub id: JobId,
    /// Its durable state.
    pub state: JobState,
}

/// A directory of journaled jobs. See the [module docs](self) for the
/// layout and restart semantics.
#[derive(Debug, Clone)]
pub struct JobJournal {
    root: PathBuf,
}

impl JobJournal {
    /// Opens (creating if needed) a journal rooted at `root`.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(root.join("jobs"))?;
        Ok(JobJournal { root })
    }

    /// The journal's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of job `id` (which may not exist yet).
    #[must_use]
    pub fn job_dir(&self, id: JobId) -> PathBuf {
        self.root.join("jobs").join(id.to_string())
    }

    /// Accepts a job: allocates the next id, creates its directory, and
    /// atomically records `spec`. Once this returns, the job survives
    /// `kill -9` — a restarted server will see it as [`JobState::Pending`]
    /// and run it.
    ///
    /// # Errors
    /// Propagates directory and file I/O failures; on failure no id is
    /// consumed (a later call may reuse it).
    pub fn create(&self, spec: &JobSpec) -> std::io::Result<JobId> {
        let mut next = self.jobs()?.last().map_or(1, |e| e.id.0 + 1);
        // One server process owns a journal, but stay robust to a stale
        // directory from a crashed create: claim ids until one is free.
        let dir = loop {
            let dir = self.job_dir(JobId(next));
            match std::fs::create_dir(&dir) {
                Ok(()) => break dir,
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => next += 1,
                Err(e) => return Err(e),
            }
        };
        let mut w = Writer::new();
        spec.encode(&mut w);
        let file = bin::write_envelope(JOB_MAGIC, JOB_VERSION, &w.into_bytes());
        let path = dir.join("job.bin");
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &file)?;
        std::fs::rename(&tmp, &path)?;
        Ok(JobId(next))
    }

    /// Reads and fully validates job `id`'s spec, strictly: any damage is
    /// an error naming the file and cause (the recovery path surfaces it as
    /// [`JobState::Damaged`]).
    ///
    /// # Errors
    /// Returns a description of the damage (missing file, envelope or
    /// payload corruption, trailing bytes).
    pub fn load_spec(&self, id: JobId) -> Result<JobSpec, String> {
        let path = self.job_dir(id).join("job.bin");
        read_strict(&path, JOB_MAGIC, JOB_VERSION)
    }

    /// Atomically records job `id`'s final per-scenario records; their
    /// existence marks the job [`JobState::Done`].
    ///
    /// # Errors
    /// Propagates file I/O failures.
    pub fn record_result(&self, id: JobId, records: &[CompletedScenario]) -> std::io::Result<()> {
        let mut w = Writer::new();
        records.to_vec().encode(&mut w);
        let file = bin::write_envelope(RESULT_MAGIC, RESULT_VERSION, &w.into_bytes());
        let path = self.job_dir(id).join("result.bin");
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &file)?;
        std::fs::rename(&tmp, &path)
    }

    /// Whether job `id` has a recorded result.
    #[must_use]
    pub fn has_result(&self, id: JobId) -> bool {
        self.job_dir(id).join("result.bin").exists()
    }

    /// Reads and fully validates job `id`'s recorded result.
    ///
    /// # Errors
    /// Returns a description of the damage (missing file, envelope or
    /// payload corruption, trailing bytes).
    pub fn load_result(&self, id: JobId) -> Result<Vec<CompletedScenario>, String> {
        let path = self.job_dir(id).join("result.bin");
        read_strict(&path, RESULT_MAGIC, RESULT_VERSION)
    }

    /// The job's sweep [`Checkpointer`] — `eval_cache.bin` + `sweep.bin`
    /// live directly in the job directory, so the whole job is one
    /// subtree.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn checkpointer(&self, id: JobId) -> std::io::Result<Checkpointer> {
        Checkpointer::new(self.job_dir(id))
    }

    /// Every journaled job in id order, classified: done (has a result),
    /// pending (spec but no result — the restart queue, in original
    /// acceptance order), or damaged (unreadable spec, with the reason).
    ///
    /// # Errors
    /// Propagates directory-enumeration failures.
    pub fn jobs(&self) -> std::io::Result<Vec<JobEntry>> {
        let mut entries = Vec::new();
        for entry in std::fs::read_dir(self.root.join("jobs"))? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name.to_str().and_then(parse_job_dir) else {
                continue;
            };
            let state = if self.has_result(id) {
                JobState::Done
            } else {
                match self.load_spec(id) {
                    Ok(_) => JobState::Pending,
                    Err(what) => JobState::Damaged(what),
                }
            };
            entries.push(JobEntry { id, state });
        }
        entries.sort_by_key(|e| e.id);
        Ok(entries)
    }
}

/// Parses a `job-NNNNNN` directory name back to its id.
fn parse_job_dir(name: &str) -> Option<JobId> {
    name.strip_prefix("job-")?.parse().ok().map(JobId)
}

/// Reads one enveloped journal file strictly, decoding the whole payload.
fn read_strict<T: Decode>(path: &Path, magic: [u8; 8], version: u32) -> Result<T, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let payload = bin::read_envelope(magic, version, &bytes)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let mut r = Reader::new(payload);
    let decoded = T::decode(&mut r).map_err(|e| format!("{}: {e}", path.display()))?;
    if !r.is_done() {
        return Err(format!("{}: {} trailing bytes", path.display(), r.remaining()));
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Objective;
    use crate::sweep::BudgetLevel;
    use fast_models::{Workload, WorkloadDomain};
    use fast_search::FrontierPoint;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fast-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            matrix: ScenarioMatrix {
                budgets: vec![BudgetLevel::scaled(1.0)],
                objectives: vec![Objective::Qps],
                domains: vec![WorkloadDomain::per_model(Workload::ResNet50)],
            },
            config: SweepConfig { trials: 8, batch: 4, ..SweepConfig::default() },
        }
    }

    #[test]
    fn create_load_roundtrip_and_id_order() {
        let j = JobJournal::open(scratch("roundtrip")).unwrap();
        let a = j.create(&spec("first")).unwrap();
        let b = j.create(&spec("second")).unwrap();
        assert!(a < b);
        assert_eq!(j.load_spec(a).unwrap().name, "first");
        let back = j.load_spec(b).unwrap();
        assert_eq!(back.name, "second");
        assert_eq!(back.matrix.len(), 1);
        assert_eq!(back.config.trials, 8);
        assert_eq!(
            j.jobs().unwrap(),
            [
                JobEntry { id: a, state: JobState::Pending },
                JobEntry { id: b, state: JobState::Pending },
            ]
        );
    }

    #[test]
    fn result_marks_done_and_roundtrips() {
        let j = JobJournal::open(scratch("result")).unwrap();
        let id = j.create(&spec("job")).unwrap();
        assert!(!j.has_result(id));
        let records = vec![CompletedScenario {
            name: "d/1.00x/Qps".to_string(),
            frontier_points: vec![FrontierPoint {
                point: vec![1, 2, 3],
                metrics: vec![4.0, 5.0, 6.0],
            }],
            invalid_trials: 2,
            best_objective: Some(4.0),
            fidelity: Some(fast_search::FidelityReport {
                tier: fast_search::SurrogateTier::S0,
                keep_fraction: 0.25,
                min_full: 2,
                full_evals: 6,
                screened_out: 18,
                pairs: 6,
                spearman: Some(1.0),
                kendall: Some(1.0),
            }),
        }];
        j.record_result(id, &records).unwrap();
        assert!(j.has_result(id));
        assert_eq!(j.load_result(id).unwrap(), records);
        assert_eq!(j.jobs().unwrap(), [JobEntry { id, state: JobState::Done }]);
    }

    #[test]
    fn ids_survive_restart_and_continue_monotone() {
        let root = scratch("restart");
        let a = {
            let j = JobJournal::open(&root).unwrap();
            j.create(&spec("before the crash")).unwrap()
        };
        // A fresh journal handle (fresh process, conceptually) sees the job
        // and continues the id sequence after it.
        let j = JobJournal::open(&root).unwrap();
        assert_eq!(j.jobs().unwrap().len(), 1);
        let b = j.create(&spec("after the restart")).unwrap();
        assert_eq!(b.0, a.0 + 1);
    }

    #[test]
    fn damaged_spec_is_reported_not_dropped() {
        let j = JobJournal::open(scratch("damaged")).unwrap();
        let id = j.create(&spec("to be trashed")).unwrap();
        std::fs::write(j.job_dir(id).join("job.bin"), b"garbage").unwrap();
        let jobs = j.jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        let JobState::Damaged(what) = &jobs[0].state else {
            panic!("expected Damaged, got {:?}", jobs[0].state)
        };
        assert!(what.contains("job.bin"), "{what}");
        assert!(j.load_spec(id).is_err());
    }

    #[test]
    fn truncated_and_bitflipped_results_are_rejected() {
        let j = JobJournal::open(scratch("corrupt-result")).unwrap();
        let id = j.create(&spec("job")).unwrap();
        j.record_result(id, &[]).unwrap();
        let path = j.job_dir(id).join("result.bin");
        let good = std::fs::read(&path).unwrap();

        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(j.load_result(id).is_err(), "truncation must be rejected");

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert!(j.load_result(id).is_err(), "bit flip must be rejected");

        std::fs::write(&path, &good).unwrap();
        assert!(j.load_result(id).is_ok(), "restored file must load again");
    }

    #[test]
    fn checkpointer_lives_in_the_job_dir() {
        let j = JobJournal::open(scratch("ck")).unwrap();
        let id = j.create(&spec("job")).unwrap();
        let ck = j.checkpointer(id).unwrap();
        assert_eq!(ck.dir(), j.job_dir(id));
    }
}
