//! Design reports in the shape of the paper's Table 5, plus the
//! TPU-v3-relative comparisons used by Figures 9/10 and Table 6.

use crate::evaluate::{EvalError, Evaluator, Objective};
use fast_arch::{presets, Budget, DatapathConfig};
use fast_models::Workload;
use fast_sim::SimOptions;
use serde::{Deserialize, Serialize};

/// A Table-5-style summary of one design on one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignReport {
    /// Design name.
    pub name: String,
    /// TDP normalized to the search budget.
    pub normalized_tdp: f64,
    /// Area normalized to the search budget.
    pub normalized_area: f64,
    /// Peak bf16 compute (TFLOPS).
    pub peak_tflops: f64,
    /// Peak DRAM bandwidth (GB/s).
    pub peak_bandwidth_gbs: f64,
    /// Native batch size per core.
    pub batch: u64,
    /// PEs per core.
    pub num_pes: u64,
    /// Core count.
    pub cores: u64,
    /// Systolic-array dimensions.
    pub sa_dims: (u64, u64),
    /// VPU width per PE.
    pub vpu_width: u64,
    /// L1 bytes per PE.
    pub l1_bytes_per_pe: u64,
    /// Global Memory MiB per core.
    pub global_memory_mib: u64,
    /// Compute utilization at the post-fusion step time.
    pub compute_utilization: f64,
    /// Pre-fusion memory-stall percentage.
    pub prefusion_stall_pct: f64,
    /// Fusion efficiency: fraction of pre-fusion stall removed (Table 5's
    /// "Fusion Efficiency").
    pub fusion_efficiency_pct: f64,
    /// Operational-intensity ridgepoint (peak FLOPS / bandwidth).
    pub ridgepoint: f64,
    /// Post-fusion model operational intensity.
    pub fused_op_intensity: f64,
    /// Chip throughput (QPS).
    pub qps: f64,
    /// Inference step latency (ms).
    pub latency_ms: f64,
}

/// Builds a Table-5 report of `cfg` on `workload`.
///
/// # Errors
/// Propagates evaluation failures (schedule failures etc.).
pub fn design_report(
    name: &str,
    cfg: &DatapathConfig,
    sim: &SimOptions,
    workload: Workload,
    budget: &Budget,
) -> Result<DesignReport, EvalError> {
    let evaluator = Evaluator::new(vec![workload], Objective::PerfPerTdp, *budget);
    let perf = evaluator.simulate_workload(workload, cfg, sim)?;
    let fused = evaluator.fuse(&perf, cfg);
    let step = fused.total_seconds;
    let qps = (perf.batch_per_core * perf.cores) as f64 / step;
    let pre = perf.prefusion_memory_stall_fraction();
    let post = (1.0 - perf.compute_seconds / step).max(0.0);
    let fusion_efficiency = if pre > 1e-9 { (pre - post).max(0.0) / pre } else { 0.0 };
    Ok(DesignReport {
        name: name.to_string(),
        normalized_tdp: budget.normalized_tdp(cfg),
        normalized_area: budget.normalized_area(cfg),
        peak_tflops: cfg.peak_flops() / 1e12,
        peak_bandwidth_gbs: cfg.dram_bytes_per_sec() / 1e9,
        batch: cfg.native_batch,
        num_pes: cfg.pes_per_core(),
        cores: cfg.cores,
        sa_dims: (cfg.sa_x, cfg.sa_y),
        vpu_width: cfg.vpu_lanes_per_pe(),
        l1_bytes_per_pe: cfg.l1_bytes_per_pe(),
        global_memory_mib: cfg.global_memory_mib,
        compute_utilization: perf.utilization_at(step),
        prefusion_stall_pct: pre * 100.0,
        fusion_efficiency_pct: fusion_efficiency * 100.0,
        ridgepoint: cfg.ridgepoint(),
        fused_op_intensity: fused.op_intensity(perf.total_flops),
        qps,
        latency_ms: step * 1e3,
    })
}

/// QPS and Perf/TDP of `cfg` relative to the modeled TPU-v3 baseline on one
/// workload — the unit of Figures 9 and 10.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RelativePerf {
    /// Throughput ratio vs TPU-v3 (Figure 9).
    pub speedup: f64,
    /// Perf/TDP ratio vs the die-shrunk TPU-v3 (Figure 10).
    pub perf_per_tdp: f64,
}

/// Evaluates `cfg` against the TPU-v3 baseline on `workload`.
///
/// The baseline runs the stock TPU execution stack (weight-stationary MXU
/// schedules, XLA-quality mappings, three-pass softmax, XLA fusion regions
/// only — no FAST fusion), simulated by the same simulator — §6.1.
///
/// # Errors
/// Propagates evaluation failures of either design.
pub fn relative_to_tpu(
    cfg: &DatapathConfig,
    sim: &SimOptions,
    workload: Workload,
    budget: &Budget,
) -> Result<RelativePerf, EvalError> {
    let evaluator = Evaluator::new(vec![workload], Objective::PerfPerTdp, *budget);
    let tpu = presets::tpu_v3();
    let tpu_eval = evaluator
        .clone()
        .with_fusion(fast_fusion::FusionOptions::disabled())
        .evaluate(&tpu, &SimOptions::tpu_baseline())?;
    let eval = evaluator.evaluate(cfg, sim)?;
    let speedup = eval.geomean_qps / tpu_eval.geomean_qps;
    let perf_per_tdp = (eval.geomean_qps / eval.tdp_w) / (tpu_eval.geomean_qps / tpu_eval.tdp_w);
    Ok(RelativePerf { speedup, perf_per_tdp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_models::EfficientNet;

    #[test]
    fn table5_fast_large_report_shape() {
        let budget = Budget::paper_default();
        let r = design_report(
            "FAST-Large",
            &presets::fast_large(),
            &SimOptions::default(),
            Workload::EfficientNet(EfficientNet::B7),
            &budget,
        )
        .unwrap();
        // Table 5 anchors (loose bands; exact values in EXPERIMENTS.md).
        assert!((r.peak_tflops - 131.0).abs() < 1.0);
        assert!((r.peak_bandwidth_gbs - 448.0).abs() < 1.0);
        assert!((r.ridgepoint - 292.0).abs() < 3.0);
        assert!(r.normalized_tdp < 0.7);
        assert!(r.compute_utilization > 0.25, "util {}", r.compute_utilization);
        assert!(r.prefusion_stall_pct > 40.0, "stall {}", r.prefusion_stall_pct);
        assert!(r.fusion_efficiency_pct > 60.0, "fusion eff {}", r.fusion_efficiency_pct);
        assert!(r.latency_ms < 20.0, "latency {}", r.latency_ms);
    }

    #[test]
    fn tpu_report_is_self_relative_one() {
        let budget = Budget::paper_default();
        let rel = relative_to_tpu(
            &presets::tpu_v3(),
            &SimOptions::tpu_baseline(),
            Workload::ResNet50,
            &budget,
        )
        .unwrap();
        assert!((rel.speedup - 1.0).abs() < 1e-9);
        assert!((rel.perf_per_tdp - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fast_large_beats_tpu_on_b7() {
        let budget = Budget::paper_default();
        let rel = relative_to_tpu(
            &presets::fast_large(),
            &SimOptions::default(),
            Workload::EfficientNet(EfficientNet::B7),
            &budget,
        )
        .unwrap();
        // Paper: 3.5× QPS, 3.9–4.3× Perf/TDP. Accept the right regime.
        assert!(rel.speedup > 2.0, "speedup {}", rel.speedup);
        assert!(rel.perf_per_tdp > 2.5, "perf/tdp {}", rel.perf_per_tdp);
    }
}
