//! Merging sharded sweep checkpoints back into the single-process artifact
//! set.
//!
//! A distributed sweep runs [`crate::SweepRunner::run_shard`] once per shard,
//! each worker checkpointing into its own directory. This module folds those
//! directories back together: [`merge_eval_caches`] unions the key-sorted
//! tier snapshots (`eval_cache.bin` / `eval_cache.op.bin`), and
//! [`merge_sweep_checkpoints`] additionally stitches the shard ledgers into
//! one full-matrix ledger, re-running [`ParetoArchive`] insertion over every
//! recorded frontier. The merged directory is then indistinguishable from a
//! single-process [`crate::SweepRunner::run_checkpointed`] checkpoint — byte
//! for byte, because [`crate::evaluate`] writes tier entries sorted by
//! encoded key and evaluation is deterministic, so the union of the shard
//! entry sets *is* the single-process entry set.
//!
//! # Conflict policy
//!
//! The warm-start loader degrades damage to a cold cache; the merger must
//! not — a silently dropped shard would un-account its scenarios and break
//! the merged == single-process contract. Every abnormality is therefore a
//! hard [`MergeError`]:
//!
//! * a missing, truncated, version-skewed or checksum-damaged shard snapshot
//!   ([`MergeError::Snapshot`] / [`MergeError::Ledger`]);
//! * the same tier key bound to two different values — impossible under
//!   deterministic evaluation, so it means a poisoned or stale shard
//!   ([`MergeError::TierConflict`]);
//! * a shard ledger whose completed set does not cover its declared range —
//!   the worker was killed mid-shard and must be resumed before merging
//!   ([`MergeError::IncompleteShard`]);
//! * shard ranges that do not jointly cover the matrix
//!   ([`MergeError::CoverageGap`]).
//!
//! The one tolerated redundancy is *identical* overlap: two shards that both
//! completed a scenario (or both hold a tier entry) merge fine when the
//! records agree byte-for-byte — first-wins dedup, counted in the
//! [`MergeReport`]. Disagreement is [`MergeError::ScenarioConflict`].

use crate::evaluate::{
    read_tier_strict, Evaluator, TierReadError, FUSE_MAGIC, FUSE_VERSION, OP_MAGIC, OP_VERSION,
};
use crate::sweep::{
    read_ledger_strict, CompletedScenario, LedgerFile, DIRECTIONS, SWEEP_MAGIC, SWEEP_VERSION,
};
use fast_search::ParetoArchive;
use fast_sim::{MapFailure, Mapping, OpKey};
use serde::bin::{self, Decode, Encode, Writer};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a merge was refused. Every variant is a hard error by design — see
/// the module docs for the policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A shard tier snapshot is missing or damaged (truncation, version
    /// skew, checksum failure, undecodable entries). The message names the
    /// tier, the file, and the failing byte region.
    Snapshot(String),
    /// The same tier key carries different values in two shards.
    /// Evaluation is deterministic, so this means a poisoned or stale
    /// snapshot, never a legitimate disagreement.
    TierConflict {
        /// Which tier (`"op"` or `"fuse"`).
        tier: &'static str,
        /// The two snapshot files that disagree and a key preview.
        detail: String,
    },
    /// A shard ledger is missing or damaged.
    Ledger(String),
    /// Shard ledgers disagree about what is being merged (different
    /// matrix/config fingerprints or matrix sizes).
    LedgerMismatch(String),
    /// A shard completed fewer scenarios than its declared range — the
    /// worker was killed mid-shard. Resume it, then re-merge.
    IncompleteShard(String),
    /// The shard ranges do not jointly cover every scenario of the matrix.
    CoverageGap(String),
    /// Two shards completed the same scenario with different results.
    ScenarioConflict(String),
    /// A recorded frontier failed [`ParetoArchive`] re-insertion (dominated
    /// or duplicate points) — the ledger record is corrupt.
    Frontier(String),
    /// A filesystem error writing the merged artifacts.
    Io(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Snapshot(s) => write!(f, "shard snapshot unusable: {s}"),
            MergeError::TierConflict { tier, detail } => {
                write!(f, "{tier} tier conflict (same key, different value): {detail}")
            }
            MergeError::Ledger(s) => write!(f, "shard ledger unusable: {s}"),
            MergeError::LedgerMismatch(s) => write!(f, "shard ledgers disagree: {s}"),
            MergeError::IncompleteShard(s) => {
                write!(f, "shard incomplete (killed mid-range; resume it before merging): {s}")
            }
            MergeError::CoverageGap(s) => write!(f, "shards do not cover the matrix: {s}"),
            MergeError::ScenarioConflict(s) => {
                write!(f, "shards disagree on a completed scenario: {s}")
            }
            MergeError::Frontier(s) => write!(f, "recorded frontier is not a Pareto set: {s}"),
            MergeError::Io(s) => write!(f, "could not write merged artifacts: {s}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// What [`merge_eval_caches`] merged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMergeStats {
    /// Distinct op-tier entries written.
    pub op_entries: usize,
    /// Distinct fuse-tier entries written.
    pub fuse_entries: usize,
    /// Op-tier entries seen in more than one input (identical values).
    pub op_duplicates: usize,
    /// Fuse-tier entries seen in more than one input (identical values).
    pub fuse_duplicates: usize,
}

/// What [`merge_sweep_checkpoints`] merged.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeReport {
    /// Number of shard directories merged.
    pub shards: usize,
    /// Scenarios in the merged ledger (the full matrix).
    pub scenarios: usize,
    /// Scenarios recorded by more than one shard (identical records).
    pub scenario_duplicates: usize,
    /// Tier statistics from the cache merge.
    pub cache: CacheMergeStats,
    /// The merged ledger records, in matrix order.
    pub completed: Vec<CompletedScenario>,
}

/// First bytes of an encoded key, for conflict messages.
fn key_preview(key: &[u8]) -> String {
    let shown = &key[..key.len().min(16)];
    let hex: String = shown.iter().map(|b| format!("{b:02x}")).collect();
    if key.len() > shown.len() {
        format!("0x{hex}… ({} bytes)", key.len())
    } else {
        format!("0x{hex}")
    }
}

/// Atomically writes `file` (temp + rename), mapping failures to
/// [`MergeError::Io`].
fn write_atomic(path: &Path, file: &[u8]) -> Result<(), MergeError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, file)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| MergeError::Io(format!("{}: {e}", path.display())))
}

/// Unions one tier across `paths` into `out`.
///
/// Entries are decoded strictly (any damage aborts), compared by their
/// encoded bytes, and re-written sorted by encoded key — the same canonical
/// form [`crate::evaluate`] writes, so a union equal to a single process's
/// entry set produces a byte-identical file.
fn merge_tier<K, V>(
    paths: &[PathBuf],
    out: &Path,
    magic: [u8; 8],
    version: u32,
    tier: &'static str,
) -> Result<(usize, usize), MergeError>
where
    K: Encode + Decode,
    V: Encode + Decode,
{
    // key bytes → (value bytes, index of the shard that contributed them)
    let mut union: BTreeMap<Vec<u8>, (Vec<u8>, usize)> = BTreeMap::new();
    let mut duplicates = 0usize;
    for (i, path) in paths.iter().enumerate() {
        let entries: Vec<(K, V)> =
            read_tier_strict(path, magic, version, tier).map_err(|e| match e {
                TierReadError::Missing => MergeError::Snapshot(format!(
                    "{tier} tier snapshot {} does not exist (a completed worker always \
                     leaves both tier files; exclude empty shards instead of \
                     pointing at missing ones)",
                    path.display()
                )),
                TierReadError::Damaged(what) => MergeError::Snapshot(what),
            })?;
        for (k, v) in entries {
            let (kb, vb) = (k.to_bytes(), v.to_bytes());
            match union.entry(kb) {
                Entry::Vacant(slot) => {
                    slot.insert((vb, i));
                }
                Entry::Occupied(slot) => {
                    let (prior, from) = slot.get();
                    if *prior != vb {
                        return Err(MergeError::TierConflict {
                            tier,
                            detail: format!(
                                "key {} has one value in {} and another in {}",
                                key_preview(slot.key()),
                                paths[*from].display(),
                                path.display()
                            ),
                        });
                    }
                    duplicates += 1;
                }
            }
        }
    }
    let mut payload = Writer::new();
    payload.put_u64(union.len() as u64);
    for (k, (v, _)) in &union {
        payload.put_bytes(k);
        payload.put_bytes(v);
    }
    write_atomic(out, &bin::write_envelope(magic, version, &payload.into_bytes()))?;
    Ok((union.len(), duplicates))
}

/// Unions evaluation-cache snapshot pairs into one pair at `output`.
///
/// `inputs` and `output` are fuse-tier paths (`eval_cache.bin`); each op
/// tier rides along at [`Evaluator::op_tier_path`]. Both tiers are merged
/// with conflict detection — the same key bound to two different values is a
/// hard [`MergeError::TierConflict`], since deterministic evaluation cannot
/// legitimately disagree. Unlike [`Evaluator::load_eval_cache`], nothing
/// degrades: a missing or damaged input is an error, because silently
/// dropping a shard's entries would break the merged == single-process
/// byte-identity.
///
/// # Errors
/// See [`MergeError`].
pub fn merge_eval_caches(inputs: &[PathBuf], output: &Path) -> Result<CacheMergeStats, MergeError> {
    let op_inputs: Vec<PathBuf> = inputs.iter().map(|p| Evaluator::op_tier_path(p)).collect();
    #[allow(clippy::type_complexity)] // the op tier's on-disk entry type, spelled once
    let (op_entries, op_duplicates) = merge_tier::<OpKey, Result<Mapping, MapFailure>>(
        &op_inputs,
        &Evaluator::op_tier_path(output),
        OP_MAGIC,
        OP_VERSION,
        "op",
    )?;
    let (fuse_entries, fuse_duplicates) = merge_tier::<
        crate::evaluate::FuseKey,
        crate::evaluate::FusedSummary,
    >(inputs, output, FUSE_MAGIC, FUSE_VERSION, "fuse")?;
    Ok(CacheMergeStats { op_entries, fuse_entries, op_duplicates, fuse_duplicates })
}

/// Validates a recorded frontier by re-running [`ParetoArchive`] insertion
/// over it and returns the canonical (re-derived) frontier.
fn revalidate_frontier(record: &CompletedScenario) -> Result<CompletedScenario, MergeError> {
    let archive = ParetoArchive::from_parts(&DIRECTIONS, record.frontier_points.clone())
        .map_err(|e| MergeError::Frontier(format!("scenario {}: {e}", record.name)))?;
    Ok(CompletedScenario { frontier_points: archive.frontier(), ..record.clone() })
}

/// Merges shard checkpoint directories into `output`, producing the exact
/// artifact set a single-process checkpointed sweep of the same matrix and
/// config would have left:
///
/// * `eval_cache.bin` / `eval_cache.op.bin` — the tier union, byte-identical
///   to the single-process snapshots (see [`merge_eval_caches`]);
/// * `sweep.bin` — a full-matrix ledger (`0..total`) whose records are the
///   shards' records concatenated in matrix order, each frontier
///   re-validated through [`ParetoArchive`] insertion.
///
/// The merged directory is therefore directly resumable: pointing the
/// single-process sweep at it with `--resume` replays every scenario from
/// the warm cache and cross-checks each against the merged ledger.
///
/// Shards must share one fingerprint and matrix size, each must be complete
/// (its ledger covers its declared range), and together they must cover
/// every scenario. Overlap is tolerated only when the overlapping records
/// agree exactly. Shards with an empty range contribute nothing and may
/// omit their tier files.
///
/// # Errors
/// See [`MergeError`] for the full refusal policy.
pub fn merge_sweep_checkpoints(
    inputs: &[PathBuf],
    output: &Path,
) -> Result<MergeReport, MergeError> {
    if inputs.is_empty() {
        return Err(MergeError::CoverageGap("no shard directories given".to_string()));
    }
    let mut shards: Vec<(PathBuf, LedgerFile)> = Vec::new();
    for dir in inputs {
        let ledger = read_ledger_strict(&dir.join("sweep.bin")).map_err(MergeError::Ledger)?;
        shards.push((dir.clone(), ledger));
    }

    let (first_dir, first) = &shards[0];
    for (dir, ledger) in &shards[1..] {
        if ledger.fingerprint != first.fingerprint {
            return Err(MergeError::LedgerMismatch(format!(
                "{} and {} come from different matrix/config fingerprints",
                first_dir.display(),
                dir.display()
            )));
        }
        if ledger.total != first.total {
            return Err(MergeError::LedgerMismatch(format!(
                "{} covers a {}-scenario matrix, {} a {}-scenario one",
                first_dir.display(),
                first.total,
                dir.display(),
                ledger.total
            )));
        }
    }
    let (fingerprint, total) = (first.fingerprint, first.total);

    for (dir, ledger) in &shards {
        let expected = ledger.end - ledger.start;
        if (ledger.completed.len() as u64) < expected {
            return Err(MergeError::IncompleteShard(format!(
                "{} completed {} of its {} scenarios ({}..{})",
                dir.display(),
                ledger.completed.len(),
                expected,
                ledger.start,
                ledger.end
            )));
        }
    }

    // Shard ranges are contiguous index windows; sorted by start, they must
    // tile 0..total with no gap (overlap is handled by record dedup below).
    shards.sort_by_key(|(_, l)| (l.start, l.end));
    let mut covered = 0u64;
    for (dir, ledger) in &shards {
        if ledger.start > covered {
            return Err(MergeError::CoverageGap(format!(
                "scenarios {covered}..{} of {total} are not covered by any shard (next is {})",
                ledger.start,
                dir.display()
            )));
        }
        covered = covered.max(ledger.end);
    }
    if covered < total {
        return Err(MergeError::CoverageGap(format!(
            "scenarios {covered}..{total} of {total} are not covered by any shard"
        )));
    }

    // Concatenate records in matrix order, first-wins on identical overlap.
    let mut completed: Vec<CompletedScenario> = Vec::new();
    let mut taken: HashMap<String, usize> = HashMap::new();
    let mut scenario_duplicates = 0usize;
    for (dir, ledger) in &shards {
        for record in &ledger.completed {
            if let Some(&at) = taken.get(&record.name) {
                if completed[at] != revalidate_frontier(record)? {
                    return Err(MergeError::ScenarioConflict(format!(
                        "scenario {} differs between shards (second copy in {})",
                        record.name,
                        dir.display()
                    )));
                }
                scenario_duplicates += 1;
                continue;
            }
            taken.insert(record.name.clone(), completed.len());
            completed.push(revalidate_frontier(record)?);
        }
    }

    // Union the tier snapshots. Empty-range shards never evaluated anything
    // and legitimately have no tier files; every other shard must.
    let cache_inputs: Vec<PathBuf> = shards
        .iter()
        .filter(|(_, l)| l.start < l.end)
        .map(|(dir, _)| dir.join("eval_cache.bin"))
        .collect();
    std::fs::create_dir_all(output)
        .map_err(|e| MergeError::Io(format!("{}: {e}", output.display())))?;
    let cache = merge_eval_caches(&cache_inputs, &output.join("eval_cache.bin"))?;

    let ledger =
        LedgerFile { fingerprint, start: 0, end: total, total, completed: completed.clone() };
    let file = bin::write_envelope(SWEEP_MAGIC, SWEEP_VERSION, &ledger.encode_payload());
    write_atomic(&output.join("sweep.bin"), &file)?;

    Ok(MergeReport {
        shards: shards.len(),
        scenarios: completed.len(),
        scenario_duplicates,
        cache,
        completed,
    })
}
